"""Fig 3 — sensitivity of Volley's default parameters to network conditions.

Paper: downloads of 2K–2M files over conditioned 3G with the default
2500 ms timeout + 1 retry.  Success stays ~1.0 with no loss and collapses
with size under 10 % packet loss.
"""

from repro.eval.experiments import run_fig3

from .conftest import assert_close


def test_fig3_default_parameter_sensitivity(benchmark):
    report = benchmark.pedantic(run_fig3, kwargs={"trials": 200}, rounds=1, iterations=1)
    print("\n" + str(report))
    clean = report.data["series"]["3G"]
    lossy = report.data["series"]["3G+loss10%"]

    # No loss: the defaults work at every size (flat 1.0 line).
    assert min(clean) >= 0.97

    # 10% loss: small files fine, large files fail — the paper's headline.
    assert lossy[0] > 0.95  # 2K
    assert lossy[-1] < 0.15  # 2M
    # Monotone decline (allowing Monte-Carlo wiggle).
    for earlier, later in zip(lossy, lossy[2:]):
        assert later <= earlier + 0.05

    # The crossover (success < 50%) falls in the paper's mid-size band.
    sizes = report.data["sizes"]
    crossover = next(
        size for size, rate in zip(sizes, lossy) if rate < 0.5
    )
    assert 64 * 1024 <= crossover <= 1024 * 1024


def test_fig3_loss_sweep(benchmark):
    """Extension of Fig 3's second axis: success degrades monotonically in
    the loss rate at a fixed mid-range size."""
    from repro.netsim import RequestPolicy, THREE_G, download_success_rate

    size = 128 * 1024
    policy = RequestPolicy.volley_default()
    losses = [0.0, 0.05, 0.10, 0.20]

    def sweep():
        return [
            download_success_rate(THREE_G.with_loss(loss), size, policy, trials=150)
            for loss in losses
        ]

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nloss sweep @128K:", dict(zip(losses, [f"{r:.2f}" for r in rates])))
    for earlier, later in zip(rates, rates[1:]):
        assert later <= earlier + 0.03  # monotone modulo Monte-Carlo noise
    assert rates[0] == 1.0
    assert rates[-1] < 0.5
