"""Table 2, executed — the six representative NPDs as buggy/fixed pairs.

For every row: the buggy build shows the paper's symptom under the
triggering network, the paper's resolution removes it, and the matching
NChecker flag clears.
"""

from repro.eval.experiments import run_table2x


def test_table2_executes(benchmark):
    report = benchmark.pedantic(run_table2x, rounds=1, iterations=1)
    print("\n" + str(report))
    for case_id, row in report.data.items():
        assert row["buggy_symptom"], (case_id, row)
        assert not row["fixed_symptom"], (case_id, row)
        assert row["flag_cleared"], (case_id, row)
    assert len(report.data) == 6
