"""Table 4 — library NPD-tolerance matrix; Table 5 — misuse patterns;
§4.3 — annotation counts."""

from repro.core.defects import DefectKind, KIND_PATTERN, MisusePattern
from repro.eval.experiments import run_table4
from repro.libmodels import Tolerance, tolerance


def test_table4_capability_matrix(benchmark):
    report = benchmark(run_table4)
    print("\n" + str(report))

    counts = report.data["counts"]
    assert counts["target_apis"] == 14  # paper §4.3
    assert counts["config_apis"] == 77
    assert counts["response_check_apis"] == 2
    assert counts["libraries"] == 6

    # Spot-check the matrix against the printed paper values.
    assert tolerance("volley", "No timeout") is Tolerance.AUTO
    assert tolerance("okhttp", "No timeout") is Tolerance.MANUAL
    assert tolerance("volley", "No invalid response check") is Tolerance.AUTO
    assert tolerance("apache", "No retry on transient error") is Tolerance.MANUAL


def test_table5_misuse_patterns(benchmark):
    """Every detectable defect kind maps to one of Table 5's patterns."""
    patterns = benchmark(lambda: {KIND_PATTERN[kind] for kind in DefectKind})
    assert patterns == set(MisusePattern)
    # Table 5 row examples:
    assert KIND_PATTERN[DefectKind.MISSED_CONNECTIVITY_CHECK] is (
        MisusePattern.MISS_REQUEST_SETTING
    )
    assert KIND_PATTERN[DefectKind.OVER_RETRY_POST] is MisusePattern.IMPROPER_PARAMETERS
    assert KIND_PATTERN[DefectKind.MISSED_NOTIFICATION] is MisusePattern.NO_ERROR_MESSAGE
    assert KIND_PATTERN[DefectKind.MISSED_RESPONSE_CHECK] is (
        MisusePattern.MISS_RESPONSE_CHECK
    )
