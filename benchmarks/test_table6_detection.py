"""Tables 6 & 7 — detection effectiveness over the 285-app corpus.

Paper values (Table 6): conn 43 %, timeout 49 %, retry 70 %, over-retry
55 %, notifications 57 %, response checks 75 %; 4180 NPDs in 281/285
apps.  The synthetic corpus reproduces the rates within tolerance bands.
"""

from repro.eval.experiments import run_table6, run_table7

from .conftest import assert_close


def test_table6_buggy_app_rates(benchmark, paper_corpus_results):
    report = benchmark.pedantic(run_table6, rounds=1, iterations=1)
    print("\n" + str(report))
    data = report.data

    assert_close(data["Missed conn. checks"][2], 43, 7, "conn never-check %")
    assert_close(data["Missed timeout APIs"][2], 49, 7, "timeout never-set %")
    assert_close(data["Missed retry APIs"][2], 70, 8, "retry never-set %")
    assert_close(data["Over retries"][2], 55, 8, "over-retry %")
    assert_close(
        data["Missed failure notifications"][2], 57, 8, "notification never %"
    )
    assert_close(data["Missed response checks"][2], 75, 15, "response-check %")

    # Headline: thousands of NPDs, nearly every app buggy (paper: 4180 in
    # 281/285 = 98+%).
    assert_close(data["total_npds"], 4180, 600, "total NPDs")
    assert data["buggy_apps"] / data["n_apps"] >= 0.98


def test_table7_library_mix(benchmark, paper_corpus_results):
    report = benchmark(run_table7)
    print("\n" + str(report))
    counts = report.data["counts"]
    # Paper Table 7: Native 270, Volley 78, Async 25, Basic 18, OkHttp 11.
    assert_close(counts["Native"], 270, 12, "native apps")
    assert_close(counts["Volley"], 78, 15, "volley apps")
    assert_close(counts["Android Async Http"], 25, 10, "async-http apps")
    assert_close(counts["Basic Http"], 18, 8, "basic-http apps")
    assert_close(counts["OkHttp"], 11, 6, "okhttp apps")
