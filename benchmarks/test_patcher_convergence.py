"""Patcher at corpus scale: scan → patch → rescan over generated apps.

Beyond the paper's user study: the §4.6 fix suggestions are concrete
enough to apply mechanically, and doing so across a corpus slice drives
every finding to zero.
"""

from repro.core import NChecker
from repro.core.patcher import Patcher
from repro.corpus import CorpusGenerator, PAPER_PROFILE


def test_patcher_cleans_the_corpus(benchmark):
    pairs = CorpusGenerator(PAPER_PROFILE.scaled(40)).generate()
    checker = NChecker()
    patcher = Patcher()

    def patch_all():
        total_before = 0
        total_after = 0
        total_patches = 0
        for apk, _truth in pairs:
            total_before += len(checker.scan(apk).findings)
            fixed, applied = patcher.patch_until_clean(apk, checker)
            total_patches += len(applied)
            total_after += len(checker.scan(fixed).findings)
        return total_before, total_patches, total_after

    before, patches, after = benchmark.pedantic(patch_all, rounds=1, iterations=1)
    print(
        f"\npatched 40 apps: {before} findings -> {after} "
        f"({patches} patches applied)"
    )
    assert before > 100  # the corpus is seriously buggy
    assert after == 0  # ...and mechanically fixable
