"""Table 9 — detection accuracy on the 16 open-source apps.

Paper: 130 correct warnings, 9 false positives, 5 known false negatives
→ 94 % accuracy; the FPs come from inter-component flows, the FNs from
path-insensitivity.  The reproduction hits the table exactly.
"""

from repro.eval.experiments import run_table9


def test_table9_accuracy(benchmark):
    report = benchmark.pedantic(run_table9, rounds=1, iterations=1)
    print("\n" + str(report))

    table = report.data["table"]
    rows = {
        label: (c.correct, c.false_positives, c.false_negatives)
        for label, c in table.items()
    }
    # Exact reproduction of Table 9.
    assert rows["Missed conn. checks"] == (31, 4, 5)
    assert rows["Missed timeout APIs"] == (58, 0, 0)
    assert rows["Missed retry APIs"] == (12, 0, 0)
    assert rows["Over retries"] == (4, 0, 0)
    assert rows["Missed failure notifications"] == (20, 5, 0)
    assert rows["Missed response checks"] == (5, 0, 0)
    assert report.data["totals"] == [130, 9, 5]
    assert 0.93 <= report.data["accuracy"] < 0.95  # "94%"
