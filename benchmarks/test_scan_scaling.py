"""Scan-time scaling: NChecker's analyses should scale near-linearly with
app size (the paper scanned 285 real APKs; per-app statement-level
analyses dominate, so statements are the natural size metric)."""

import time

from repro.core import NChecker
from repro.corpus.appbuilder import AppBuilder
from repro.corpus.snippets import RequestSpec, inject_request
from repro.corpus.generator import _UI_METHODS, _UI_PARAMS
from repro.ir import app_metrics


def _app_with_requests(n_requests: int):
    app = AppBuilder(f"com.scale.n{n_requests}")
    libraries = ["basichttp", "volley", "apache", "okhttp", "asynchttp"]
    activity = None
    slots = []
    for i in range(n_requests):
        if not slots:
            activity = app.activity(f"Screen{i}")
            slots = list(_UI_METHODS)
        name = slots.pop(0)
        body = activity.method(name, params=_UI_PARAMS[name])
        inject_request(
            app, body, RequestSpec(library=libraries[i % len(libraries)]),
            user_initiated=True,
        )
        body.ret()
        activity.add(body)
    return app.build()


def test_scan_scales_near_linearly(benchmark):
    sizes = [4, 16, 64]
    apps = {n: _app_with_requests(n) for n in sizes}
    checker = NChecker()

    def scan_all():
        timings = {}
        for n, apk in apps.items():
            start = time.perf_counter()
            result = checker.scan(apk)
            timings[n] = time.perf_counter() - start
            assert len(result.requests) == n
        return timings

    timings = benchmark.pedantic(scan_all, rounds=1, iterations=1)
    stmts = {n: app_metrics(apk).statements for n, apk in apps.items()}
    print("\nscan-time scaling:")
    for n in sizes:
        per_stmt = 1e6 * timings[n] / stmts[n]
        print(f"  {n:3d} requests, {stmts[n]:5d} stmts: "
              f"{timings[n]*1000:7.1f} ms ({per_stmt:.1f} us/stmt)")

    # Near-linear: time per statement must not blow up with size
    # (allow 4x drift for constant overheads and cache effects).
    small = timings[sizes[0]] / stmts[sizes[0]]
    large = timings[sizes[-1]] / stmts[sizes[-1]]
    assert large < small * 4
