"""Beyond the paper: defect manifestation under simulated disruption.

Every corpus app is executed against poor-3G and offline links; the
symptoms (crash, silent failure, battery drain, long hang) are
cross-tabulated against the static findings.  The detector's warnings
predict the user experience: flagged apps exhibit the matching symptom
at a far higher rate than clean apps.
"""

from repro.corpus import CorpusGenerator, PAPER_PROFILE
from repro.eval.manifestation import manifestation_study, render_manifestation


def test_defect_manifestation(benchmark):
    pairs = CorpusGenerator(PAPER_PROFILE.scaled(40)).generate()
    rows = benchmark.pedantic(
        manifestation_study, args=(pairs,), kwargs={"seed": 3}, rounds=1, iterations=1
    )
    print("\n" + render_manifestation(rows))

    by_symptom = {row.symptom: row for row in rows}

    crash = by_symptom["crash"]
    assert crash.flagged_rate >= 0.75
    assert crash.clean_rate <= 0.1

    silent = by_symptom["silent failure"]
    assert silent.flagged_rate >= 0.8
    assert silent.flagged_rate > silent.clean_rate

    hang = by_symptom["long hang"]
    assert hang.flagged_rate >= 0.7

    drain = by_symptom["battery drain"]
    assert drain.clean_rate == 0.0  # no false battery alarms
