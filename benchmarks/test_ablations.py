"""Ablations over the design choices §4 calls out.

* **Path-insensitive vs guard-aware connectivity** — the paper accepts 5
  FNs to stay path-insensitive; guard-aware mode trades them away.
* **Inter-component analysis off** — the source of the paper's 9 FPs.
* **Interprocedural connectivity off** — checks wrapped in helpers/callers
  stop counting; FP volume explodes.
* **Retry-loop detection off** — custom retry logic loses credit and
  MISSED_RETRY over-reports.
"""

import pytest

from repro.core import DefectKind, NChecker, NCheckerOptions
from repro.corpus import (
    build_opensource_corpus,
    overall_accuracy,
    table9_confusions,
)


@pytest.fixture(scope="module")
def corpus():
    return build_opensource_corpus()


def _accuracy(corpus, options):
    checker = NChecker(options=options)
    results = [checker.scan(apk) for apk, _ in corpus]
    truths = [t for _, t in corpus]
    table = table9_confusions(truths, results)
    conn = table["Missed conn. checks"]
    return overall_accuracy(table), conn


def test_ablation_guard_aware_connectivity(benchmark, corpus):
    """Guard-aware mode removes the 5 connectivity FNs at no FP cost."""
    default_acc, default_conn = _accuracy(corpus, NCheckerOptions())
    options = NCheckerOptions(guard_aware_connectivity=True)
    aware_acc, aware_conn = benchmark.pedantic(
        _accuracy, args=(corpus, options), rounds=1, iterations=1
    )
    print(
        f"\npath-insensitive: FN={default_conn.false_negatives} "
        f"FP={default_conn.false_positives} acc={default_acc:.3f}\n"
        f"guard-aware:      FN={aware_conn.false_negatives} "
        f"FP={aware_conn.false_positives} acc={aware_acc:.3f}"
    )
    assert default_conn.false_negatives == 5
    assert aware_conn.false_negatives == 0
    assert aware_conn.false_positives == default_conn.false_positives
    assert aware_acc >= default_acc


def test_ablation_inter_component_analysis(benchmark, corpus):
    """The paper's §4.7 future work (IccTA-style ICC): launcher-side
    connectivity checks and broadcast-routed error displays become
    visible, removing all 9 FPs; combined with guard-aware connectivity
    the 16-app corpus is classified perfectly."""
    _default_acc, default_conn = _accuracy(corpus, NCheckerOptions())
    icc_acc, icc_conn = benchmark.pedantic(
        _accuracy,
        args=(corpus, NCheckerOptions(inter_component=True)),
        rounds=1,
        iterations=1,
    )
    both_acc, _ = _accuracy(
        corpus,
        NCheckerOptions(inter_component=True, guard_aware_connectivity=True),
    )
    print(
        f"\ndefault acc={_default_acc:.3f}, +ICC acc={icc_acc:.3f}, "
        f"+ICC+guard acc={both_acc:.3f}"
    )
    assert default_conn.false_positives == 4
    assert icc_conn.false_positives == 0
    assert icc_acc == 1.0  # no FPs left anywhere
    assert both_acc == 1.0


def test_ablation_intraprocedural_connectivity(benchmark):
    """Restricting the connectivity analysis to the request's own method
    makes helper-wrapped checks invisible — a false positive the full
    analysis avoids."""
    from repro.corpus.snippets import Connectivity, RequestSpec
    from tests.conftest import single_request_app

    apk, _ = single_request_app(RequestSpec(connectivity=Connectivity.HELPER))
    interproc = NChecker().scan(apk)
    intra = benchmark.pedantic(
        NChecker(options=NCheckerOptions(interprocedural_connectivity=False)).scan,
        args=(apk,), rounds=1, iterations=1,
    )
    print(
        f"\nhelper-wrapped check: interprocedural finds "
        f"{interproc.count_of(DefectKind.MISSED_CONNECTIVITY_CHECK)} conn FPs, "
        f"intraprocedural finds "
        f"{intra.count_of(DefectKind.MISSED_CONNECTIVITY_CHECK)}"
    )
    assert interproc.count_of(DefectKind.MISSED_CONNECTIVITY_CHECK) == 0
    assert intra.count_of(DefectKind.MISSED_CONNECTIVITY_CHECK) == 1


def test_ablation_retry_loop_detection(benchmark):
    """Disabling §4.5 makes hand-rolled retry loops look like missing
    retry configuration."""
    from repro.corpus.snippets import Backoff, RequestSpec, RetryLoopShape
    from tests.conftest import single_request_app

    spec = RequestSpec(
        library="basichttp",
        retry_loop=RetryLoopShape.CATCH_DEPENDENT,
        backoff=Backoff.EXPONENTIAL,
    )
    apk, _ = single_request_app(spec)

    with_loops = NChecker().scan(apk)
    options = NCheckerOptions(detect_retry_loops=False)
    without_loops = benchmark.pedantic(
        NChecker(options=options).scan, args=(apk,), rounds=1, iterations=1
    )
    assert with_loops.count_of(DefectKind.MISSED_RETRY) == 0
    assert without_loops.count_of(DefectKind.MISSED_RETRY) == 1


def test_ablation_summary_engine(benchmark, corpus):
    """Interprocedural summaries vs the one-hop legacy walks.

    On the open-source corpus (whose defects sit within one hop of the
    request) the two modes must agree — the engine is a strict
    generalisation.  On apps that pass the configured client through
    helper frames, only summary mode suppresses the false alarms.  The
    per-APK engine cache also makes repeat scans cheaper: re-scanning the
    corpus hits the cache once per app.
    """
    import time

    from repro.corpus.appbuilder import AppBuilder
    from repro.ir import Local

    def deep_chain_app(package):
        app = AppBuilder(package)
        activity = app.activity("MainActivity")
        client_cls = "com.turbomanage.httpclient.BasicHttpClient"
        entry = activity.method("onClick", params=[("android.view.View", "v")])
        client = entry.new(client_cls, "c")
        entry.call(client, "setReadWriteTimeout", 7000)
        entry.call(client, "setMaxRetries", 2)
        entry.call(Local("this"), "go", client, cls=activity.name)
        entry.ret()
        activity.add(entry)
        mid = activity.method("go", params=[(client_cls, "c1")])
        mid.call(Local("this"), "issue", Local("c1"), cls=activity.name)
        mid.ret()
        activity.add(mid)
        leaf = activity.method("issue", params=[(client_cls, "c2")])
        leaf.call(Local("c2"), "get", "http://x", cls=client_cls, ret="r")
        leaf.ret()
        activity.add(leaf)
        return app.build()

    deep_apps = [deep_chain_app(f"com.abl.deep{i}") for i in range(4)]
    truths = [t for _, t in corpus]

    legacy_checker = NChecker(options=NCheckerOptions(summary_based=False))
    start = time.perf_counter()
    legacy_results = [legacy_checker.scan(apk) for apk, _ in corpus]
    legacy_s = time.perf_counter() - start

    summary_checker = NChecker()
    start = time.perf_counter()
    summary_results = benchmark.pedantic(
        lambda: [summary_checker.scan(apk) for apk, _ in corpus],
        rounds=1, iterations=1,
    )
    summary_s = time.perf_counter() - start

    legacy_table = table9_confusions(truths, legacy_results)
    summary_table = table9_confusions(truths, summary_results)
    legacy_correct = sum(c.correct for c in legacy_table.values())
    summary_correct = sum(c.correct for c in summary_table.values())
    legacy_fp = sum(c.false_positives for c in legacy_table.values())
    summary_fp = sum(c.false_positives for c in summary_table.values())

    deep_config_fps = {
        "summary": sum(
            NChecker().scan(apk).count_of(
                DefectKind.MISSED_TIMEOUT, DefectKind.MISSED_RETRY
            )
            for apk in deep_apps
        ),
        "one-hop": sum(
            NChecker(options=NCheckerOptions(summary_based=False))
            .scan(apk)
            .count_of(DefectKind.MISSED_TIMEOUT, DefectKind.MISSED_RETRY)
            for apk in deep_apps
        ),
    }

    # Cache effectiveness: the second sweep reuses every engine.
    start = time.perf_counter()
    for apk, _ in corpus:
        summary_checker.scan(apk)
    rescan_s = time.perf_counter() - start

    print(
        f"\ncorpus ({len(corpus)} apps): one-hop correct={legacy_correct} "
        f"FP={legacy_fp} acc={overall_accuracy(legacy_table):.3f} "
        f"in {legacy_s * 1000:.0f} ms\n"
        f"                  summaries correct={summary_correct} "
        f"FP={summary_fp} acc={overall_accuracy(summary_table):.3f} "
        f"in {summary_s * 1000:.0f} ms (rescan {rescan_s * 1000:.0f} ms, "
        f"{summary_checker.summary_cache.hits} cache hits)\n"
        f"deep config chains ({len(deep_apps)} apps): "
        f"one-hop FPs={deep_config_fps['one-hop']}, "
        f"summary FPs={deep_config_fps['summary']}"
    )

    assert summary_correct >= legacy_correct
    assert summary_fp <= legacy_fp
    assert deep_config_fps["one-hop"] == 2 * len(deep_apps)
    assert deep_config_fps["summary"] == 0
    assert summary_checker.summary_cache.hits >= len(corpus)


def test_ablation_notification_depth(benchmark):
    """Callee search depth 0 misses notifications behind helper methods.

    The depth knob only exists on the legacy walk, so both scans pin
    ``summary_based=False`` (the engine's facts are transitive and would
    find the helper's Toast at any depth)."""
    from repro.corpus.appbuilder import AppBuilder
    from repro.corpus.snippets import RequestSpec, inject_request
    from repro.ir import Local

    app = AppBuilder("com.abl.depth")
    activity = app.activity("MainActivity")
    body = activity.method("onClick", params=[("android.view.View", "v")])
    client = body.new("com.turbomanage.httpclient.BasicHttpClient", "c")
    region = body.begin_try()
    body.call(client, "get", "http://x", ret="r")
    body.begin_catch(region, "java.io.IOException")
    body.call(Local("this"), "showError", cls=activity.name)
    body.end_try(region)
    body.ret()
    activity.add(body)
    helper = activity.method("showError")
    toast = helper.static_call(
        "android.widget.Toast", "makeText", "ctx", "err", 0,
        ret="t", return_type="android.widget.Toast",
    )
    helper.call(toast, "show", cls="android.widget.Toast")
    helper.ret()
    activity.add(helper)
    apk = app.build()

    deep = benchmark.pedantic(
        NChecker(
            options=NCheckerOptions(summary_based=False, notification_callee_depth=2)
        ).scan,
        args=(apk,), rounds=1, iterations=1,
    )
    shallow = NChecker(
        options=NCheckerOptions(summary_based=False, notification_callee_depth=0)
    ).scan(apk)
    assert deep.count_of(DefectKind.MISSED_NOTIFICATION) == 0
    assert shallow.count_of(DefectKind.MISSED_NOTIFICATION) == 1
