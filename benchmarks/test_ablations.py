"""Ablations over the design choices §4 calls out.

* **Path-insensitive vs guard-aware connectivity** — the paper accepts 5
  FNs to stay path-insensitive; guard-aware mode trades them away.
* **Inter-component analysis off** — the source of the paper's 9 FPs.
* **Interprocedural connectivity off** — checks wrapped in helpers/callers
  stop counting; FP volume explodes.
* **Retry-loop detection off** — custom retry logic loses credit and
  MISSED_RETRY over-reports.
"""

import pytest

from repro.core import DefectKind, NChecker, NCheckerOptions
from repro.corpus import (
    build_opensource_corpus,
    overall_accuracy,
    table9_confusions,
)


@pytest.fixture(scope="module")
def corpus():
    return build_opensource_corpus()


def _accuracy(corpus, options):
    checker = NChecker(options=options)
    results = [checker.scan(apk) for apk, _ in corpus]
    truths = [t for _, t in corpus]
    table = table9_confusions(truths, results)
    conn = table["Missed conn. checks"]
    return overall_accuracy(table), conn


def test_ablation_guard_aware_connectivity(benchmark, corpus):
    """Guard-aware mode removes the 5 connectivity FNs at no FP cost."""
    default_acc, default_conn = _accuracy(corpus, NCheckerOptions())
    options = NCheckerOptions(guard_aware_connectivity=True)
    aware_acc, aware_conn = benchmark.pedantic(
        _accuracy, args=(corpus, options), rounds=1, iterations=1
    )
    print(
        f"\npath-insensitive: FN={default_conn.false_negatives} "
        f"FP={default_conn.false_positives} acc={default_acc:.3f}\n"
        f"guard-aware:      FN={aware_conn.false_negatives} "
        f"FP={aware_conn.false_positives} acc={aware_acc:.3f}"
    )
    assert default_conn.false_negatives == 5
    assert aware_conn.false_negatives == 0
    assert aware_conn.false_positives == default_conn.false_positives
    assert aware_acc >= default_acc


def test_ablation_inter_component_analysis(benchmark, corpus):
    """The paper's §4.7 future work (IccTA-style ICC): launcher-side
    connectivity checks and broadcast-routed error displays become
    visible, removing all 9 FPs; combined with guard-aware connectivity
    the 16-app corpus is classified perfectly."""
    _default_acc, default_conn = _accuracy(corpus, NCheckerOptions())
    icc_acc, icc_conn = benchmark.pedantic(
        _accuracy,
        args=(corpus, NCheckerOptions(inter_component=True)),
        rounds=1,
        iterations=1,
    )
    both_acc, _ = _accuracy(
        corpus,
        NCheckerOptions(inter_component=True, guard_aware_connectivity=True),
    )
    print(
        f"\ndefault acc={_default_acc:.3f}, +ICC acc={icc_acc:.3f}, "
        f"+ICC+guard acc={both_acc:.3f}"
    )
    assert default_conn.false_positives == 4
    assert icc_conn.false_positives == 0
    assert icc_acc == 1.0  # no FPs left anywhere
    assert both_acc == 1.0


def test_ablation_intraprocedural_connectivity(benchmark):
    """Restricting the connectivity analysis to the request's own method
    makes helper-wrapped checks invisible — a false positive the full
    analysis avoids."""
    from repro.corpus.snippets import Connectivity, RequestSpec
    from tests.conftest import single_request_app

    apk, _ = single_request_app(RequestSpec(connectivity=Connectivity.HELPER))
    interproc = NChecker().scan(apk)
    intra = benchmark.pedantic(
        NChecker(options=NCheckerOptions(interprocedural_connectivity=False)).scan,
        args=(apk,), rounds=1, iterations=1,
    )
    print(
        f"\nhelper-wrapped check: interprocedural finds "
        f"{interproc.count_of(DefectKind.MISSED_CONNECTIVITY_CHECK)} conn FPs, "
        f"intraprocedural finds "
        f"{intra.count_of(DefectKind.MISSED_CONNECTIVITY_CHECK)}"
    )
    assert interproc.count_of(DefectKind.MISSED_CONNECTIVITY_CHECK) == 0
    assert intra.count_of(DefectKind.MISSED_CONNECTIVITY_CHECK) == 1


def test_ablation_retry_loop_detection(benchmark):
    """Disabling §4.5 makes hand-rolled retry loops look like missing
    retry configuration."""
    from repro.corpus.snippets import Backoff, RequestSpec, RetryLoopShape
    from tests.conftest import single_request_app

    spec = RequestSpec(
        library="basichttp",
        retry_loop=RetryLoopShape.CATCH_DEPENDENT,
        backoff=Backoff.EXPONENTIAL,
    )
    apk, _ = single_request_app(spec)

    with_loops = NChecker().scan(apk)
    options = NCheckerOptions(detect_retry_loops=False)
    without_loops = benchmark.pedantic(
        NChecker(options=options).scan, args=(apk,), rounds=1, iterations=1
    )
    assert with_loops.count_of(DefectKind.MISSED_RETRY) == 0
    assert without_loops.count_of(DefectKind.MISSED_RETRY) == 1


def test_ablation_notification_depth(benchmark):
    """Callee search depth 0 misses notifications behind helper methods."""
    from repro.corpus.appbuilder import AppBuilder
    from repro.corpus.snippets import RequestSpec, inject_request
    from repro.ir import Local

    app = AppBuilder("com.abl.depth")
    activity = app.activity("MainActivity")
    body = activity.method("onClick", params=[("android.view.View", "v")])
    client = body.new("com.turbomanage.httpclient.BasicHttpClient", "c")
    region = body.begin_try()
    body.call(client, "get", "http://x", ret="r")
    body.begin_catch(region, "java.io.IOException")
    body.call(Local("this"), "showError", cls=activity.name)
    body.end_try(region)
    body.ret()
    activity.add(body)
    helper = activity.method("showError")
    toast = helper.static_call(
        "android.widget.Toast", "makeText", "ctx", "err", 0,
        ret="t", return_type="android.widget.Toast",
    )
    helper.call(toast, "show", cls="android.widget.Toast")
    helper.ret()
    activity.add(helper)
    apk = app.build()

    deep = benchmark.pedantic(
        NChecker(options=NCheckerOptions(notification_callee_depth=2)).scan,
        args=(apk,), rounds=1, iterations=1,
    )
    shallow = NChecker(options=NCheckerOptions(notification_callee_depth=0)).scan(apk)
    assert deep.count_of(DefectKind.MISSED_NOTIFICATION) == 0
    assert shallow.count_of(DefectKind.MISSED_NOTIFICATION) == 1
