"""Pipeline benchmarks: batch-scan scaling, disk-cache warm starts,
service throughput, and incremental patcher convergence.

Four claims from the pipeline work, measured:

* ``scan --jobs N`` fans whole apps across worker processes with
  *identical* results — the speedup is bounded by the core count, so the
  ≥2x assertion only applies on multi-core hosts (CI smoke runs may be
  single-core);
* the persistent artifact cache (``--cache-dir`` / ``--cache-backend``)
  makes a warm re-scan perform **zero** app-scoped artifact builds with
  identical findings, timed against both a cold and a cache-disabled
  sweep — including the ``threadcontext`` artifact the extended checks
  add (timed and asserted separately, since default scans never build
  it) — and the guarantee holds on every backend (``local``,
  ``memory``, ``memory+local``), measured per backend;
* the ``nchecker serve`` daemon sustains the corpus over HTTP — warm
  resubmissions and a second host on the ``remote:URL`` cache tier
  both complete with zero app-scoped artifact builds;
* the incremental patch loop rebuilds only the dirty region after each
  patch round — asserted via the public metrics snapshot
  (``artifact.cfg.builds`` / ``artifact.invalidated_methods``), not by
  reaching into store internals — while producing byte-identical fixed
  apps.

The tests read the telemetry through :mod:`repro.obs` — the
snapshot/merge protocol the ``--metrics`` flag exposes — and append
their measurements (including the merged per-pass timing fields) to
``BENCH_pipeline.json`` in the working directory.
"""

import json
import multiprocessing
import time
from pathlib import Path

from repro.app.loader import dumps_apk, loads_apk
from repro.core import NChecker
from repro.core.checker import NCheckerOptions
from repro.core.patcher import Patcher
from repro.corpus import CorpusGenerator, PAPER_PROFILE
from repro.obs import use_metrics
from repro.pipeline.batch import scan_corpus

BENCH_FILE = Path("BENCH_pipeline.json")


def _provenance() -> dict:
    """Identity block for the derived BENCH export: which schema wrote
    it, under which options fingerprint, at which commit."""
    from repro.obs import BENCH_SCHEMA_VERSION, git_head_sha
    from repro.pipeline.cachestore.fingerprints import scan_options_fingerprint

    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "options_fingerprint": scan_options_fingerprint(NCheckerOptions()),
        "git_sha": git_head_sha(),
        "source": "benchmarks/test_pipeline_scaling.py",
    }


def _record(section: str, data: dict) -> None:
    payload = {}
    if BENCH_FILE.exists():
        payload = json.loads(BENCH_FILE.read_text())
    prov = _provenance()
    payload["schema_version"] = prov.pop("schema_version")
    payload["provenance"] = prov
    payload[section] = data
    BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n")


def _scan_signature(results) -> list:
    return [
        (r.package, [(f.kind.value, f.method_key, f.stmt_index) for f in r.findings])
        for r in results
    ]


def _timing_fields(snapshot: dict) -> dict:
    """The per-pass/per-artifact timing summary of a merged snapshot
    (histogram reservoirs stripped — BENCH files stay small)."""
    return {
        name: {k: hist[k] for k in ("count", "total", "p50", "p95", "p99", "max")}
        for name, hist in snapshot.get("histograms", {}).items()
    }


def test_batch_scan_scaling(benchmark):
    n_apps = 16
    cores = multiprocessing.cpu_count()
    jobs = min(4, cores)
    serial_telemetry: dict = {}
    parallel_telemetry: dict = {}

    def serial():
        serial_telemetry.clear()
        return scan_corpus(PAPER_PROFILE, n_apps, jobs=1,
                           telemetry=serial_telemetry)

    start = time.perf_counter()
    parallel_results = scan_corpus(PAPER_PROFILE, n_apps, jobs=jobs,
                                   telemetry=parallel_telemetry)
    parallel_s = time.perf_counter() - start

    serial_results = benchmark.pedantic(serial, rounds=1, iterations=1)
    serial_s = benchmark.stats.stats.mean

    assert _scan_signature(serial_results) == _scan_signature(parallel_results)
    # The merged worker snapshots equal a serial run wherever the
    # underlying quantity is deterministic: every counter, summed across
    # the pool, must match.
    assert serial_telemetry["counters"] == parallel_telemetry["counters"]
    assert parallel_telemetry["counters"]["scan.apps"] == n_apps
    speedup = serial_s / parallel_s if parallel_s else float("inf")
    print(
        f"\nbatch scan of {n_apps} apps: serial {serial_s*1000:.0f} ms, "
        f"--jobs {jobs} {parallel_s*1000:.0f} ms ({speedup:.2f}x, {cores} cores)"
    )
    # Parallel fan-out only pays off with real cores behind it.
    if cores >= 4 and jobs >= 4:
        assert speedup >= 2.0, f"expected >=2x on {cores} cores, got {speedup:.2f}x"
    _record("batch_scan", {
        "n_apps": n_apps,
        "jobs": jobs,
        "cores": cores,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": speedup,
        "identical_results": True,
        "counters": parallel_telemetry["counters"],
        "timings": _timing_fields(parallel_telemetry),
    })


def test_disk_cache_cold_warm(benchmark, tmp_path):
    """The persistent artifact cache: a warm re-scan performs zero
    app-scoped builds and must not be slower than a cache-disabled scan;
    findings are identical disabled/cold/warm."""
    n_apps = 12
    apps = [apk for apk, _ in CorpusGenerator(PAPER_PROFILE.scaled(n_apps)).generate()]
    blobs = [dumps_apk(apk) for apk in apps]
    cache_dir = tmp_path / "artifact-cache"
    app_kinds = ("callgraph", "summaries", "requests", "retry-loops", "icc-model")

    def sweep(cache: bool):
        """One fresh-process-equivalent scan of every app."""
        options = NCheckerOptions(cache_dir=str(cache_dir) if cache else None)
        with use_metrics() as registry:
            checker = NChecker(options=options)
            results = [
                checker.open_session(loads_apk(blob)).scan() for blob in blobs
            ]
            return results, registry.snapshot()

    start = time.perf_counter()
    disabled_results, disabled_snap = sweep(cache=False)
    disabled_s = time.perf_counter() - start

    start = time.perf_counter()
    cold_results, cold_snap = sweep(cache=True)
    cold_s = time.perf_counter() - start

    (warm_results, warm_snap) = benchmark.pedantic(
        sweep, args=(True,), rounds=1, iterations=1
    )
    warm_s = benchmark.stats.stats.mean

    assert _scan_signature(disabled_results) == _scan_signature(cold_results)
    assert _scan_signature(disabled_results) == _scan_signature(warm_results)
    counters = warm_snap["counters"]
    for kind in app_kinds:
        assert counters.get(f"artifact.{kind}.builds", 0) == 0, (
            f"warm run built {kind}"
        )
    assert counters.get("cache.local.callgraph.hits", 0) == n_apps
    assert cold_snap["counters"]["artifact.callgraph.builds"] == n_apps
    print(
        f"\ndisk cache over {n_apps} apps: disabled {disabled_s*1000:.0f} ms, "
        f"cold {cold_s*1000:.0f} ms, warm {warm_s*1000:.0f} ms "
        f"({disabled_s/warm_s if warm_s else float('inf'):.2f}x vs disabled)"
    )
    _record("disk_cache", {
        "n_apps": n_apps,
        "disabled_s": disabled_s,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "warm_speedup_vs_disabled": disabled_s / warm_s if warm_s else None,
        "cold_overhead_vs_disabled": cold_s / disabled_s if disabled_s else None,
        "warm_app_scoped_builds": 0,
        "identical_results": True,
        "counters": counters,
        "timings": _timing_fields(warm_snap),
    })


def test_cache_backends_cold_warm(benchmark, tmp_path):
    """Every cache backend gives a build-free warm re-scan with
    identical findings; cold/warm wall times are recorded per backend
    into the ``cache_backends`` section of ``BENCH_pipeline.json``."""
    from repro.pipeline.cachestore import (
        LocalDirBackend,
        MemoryBackend,
        TieredBackend,
    )

    n_apps = 8
    apps = [apk for apk, _ in CorpusGenerator(PAPER_PROFILE.scaled(n_apps)).generate()]
    blobs = [dumps_apk(apk) for apk in apps]
    app_kinds = ("callgraph", "summaries", "requests", "retry-loops", "icc-model")
    # (spec, backend, the tier a warm hit is served from) — the tiered
    # chain serves warm hits from memory after the cold run's
    # write-through.
    backends = [
        ("local", LocalDirBackend(tmp_path / "local-root"), "local"),
        ("memory", MemoryBackend(), "memory"),
        (
            "memory+local",
            TieredBackend(
                [MemoryBackend(), LocalDirBackend(tmp_path / "tier-root")]
            ),
            "memory",
        ),
    ]

    def sweep(backend):
        options = NCheckerOptions(cache_backend=backend)
        with use_metrics() as registry:
            checker = NChecker(options=options)
            results = [
                checker.open_session(loads_apk(blob)).scan() for blob in blobs
            ]
            return results, registry.snapshot()

    section = {}
    baseline_sig = None
    for spec, backend, serving in backends:
        start = time.perf_counter()
        cold_results, _cold_snap = sweep(backend)
        cold_s = time.perf_counter() - start

        if spec == backends[-1][0]:
            warm_results, warm_snap = benchmark.pedantic(
                sweep, args=(backend,), rounds=1, iterations=1
            )
            warm_s = benchmark.stats.stats.mean
        else:
            start = time.perf_counter()
            warm_results, warm_snap = sweep(backend)
            warm_s = time.perf_counter() - start

        if baseline_sig is None:
            baseline_sig = _scan_signature(cold_results)
        assert baseline_sig == _scan_signature(cold_results), spec
        assert baseline_sig == _scan_signature(warm_results), spec
        counters = warm_snap["counters"]
        for kind in app_kinds:
            assert counters.get(f"artifact.{kind}.builds", 0) == 0, (
                f"{spec}: warm run built {kind}"
            )
        assert counters.get(f"cache.{serving}.callgraph.hits", 0) == n_apps, spec
        section[spec] = {
            "cold_s": cold_s,
            "warm_s": warm_s,
            "warm_app_scoped_builds": 0,
            "warm_hits_tier": serving,
            "identical_results": True,
        }
        print(
            f"\ncache backend {spec} over {n_apps} apps: "
            f"cold {cold_s*1000:.0f} ms, warm {warm_s*1000:.0f} ms "
            f"(warm hits from {serving})"
        )
    _record("cache_backends", {"n_apps": n_apps, "backends": section})


def test_threadcontext_cache_warm(benchmark, tmp_path):
    """Extended-checks sweep: the thread-context analysis builds once
    per app cold and **zero** times on a warm re-scan, and its build time
    is a small fraction of the scan (recorded to BENCH_pipeline.json)."""
    from repro.core.checker import DEFAULT_CHECKS, EXTENDED_CHECKS

    n_apps = 12
    apps = [apk for apk, _ in CorpusGenerator(PAPER_PROFILE.scaled(n_apps)).generate()]
    blobs = [dumps_apk(apk) for apk in apps]
    cache_dir = tmp_path / "artifact-cache"
    options = NCheckerOptions(
        cache_dir=str(cache_dir),
        enabled_checks=DEFAULT_CHECKS | EXTENDED_CHECKS,
    )

    def sweep():
        with use_metrics() as registry:
            checker = NChecker(options=options)
            results = [
                checker.open_session(loads_apk(blob)).scan() for blob in blobs
            ]
            return results, registry.snapshot()

    start = time.perf_counter()
    cold_results, cold_snap = sweep()
    cold_s = time.perf_counter() - start

    (warm_results, warm_snap) = benchmark.pedantic(sweep, rounds=1, iterations=1)
    warm_s = benchmark.stats.stats.mean

    assert _scan_signature(cold_results) == _scan_signature(warm_results)
    assert cold_snap["counters"]["artifact.threadcontext.builds"] == n_apps
    counters = warm_snap["counters"]
    assert counters.get("artifact.threadcontext.builds", 0) == 0, (
        "warm re-scan rebuilt the threadcontext artifact"
    )
    assert counters.get("cache.local.threadcontext.hits", 0) == n_apps
    build_hist = cold_snap["histograms"].get("artifact.threadcontext.build_ms", {})
    build_total_ms = build_hist.get("total", 0.0)
    print(
        f"\nthreadcontext over {n_apps} apps: cold {cold_s*1000:.0f} ms "
        f"(analysis builds {build_total_ms:.1f} ms), warm {warm_s*1000:.0f} ms, "
        f"zero warm builds"
    )
    _record("threadcontext_cache", {
        "n_apps": n_apps,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cold_build_total_ms": build_total_ms,
        "warm_threadcontext_builds": 0,
        "identical_results": True,
        "counters": counters,
        "timings": _timing_fields(cold_snap),
    })


def test_summary_laziness(benchmark):
    """Demand-driven summaries evaluate only the SCC cones the planned
    passes actually query; ``--eager-summaries`` (the pre-lazy behavior)
    builds whole-app fact maps.  Findings are identical either way — the
    saving is pure work volume, measured here as evaluated-SCC counts
    and wall time, for the default check set and for
    ``--extended-checks``."""
    from repro.core.checker import DEFAULT_CHECKS, EXTENDED_CHECKS

    n_apps = 12
    apps = [apk for apk, _ in CorpusGenerator(PAPER_PROFILE.scaled(n_apps)).generate()]
    blobs = [dumps_apk(apk) for apk in apps]

    def sweep(eager: bool, checks):
        options = NCheckerOptions(eager_summaries=eager, enabled_checks=checks)
        with use_metrics() as registry:
            checker = NChecker(options=options)
            results = [
                checker.open_session(loads_apk(blob)).scan() for blob in blobs
            ]
            return results, registry.snapshot()

    section = {}
    for label, checks in (
        ("default", DEFAULT_CHECKS),
        ("extended", DEFAULT_CHECKS | EXTENDED_CHECKS),
    ):
        start = time.perf_counter()
        eager_results, eager_snap = sweep(True, checks)
        eager_s = time.perf_counter() - start

        if label == "default":
            lazy_results, lazy_snap = benchmark.pedantic(
                sweep, args=(False, checks), rounds=1, iterations=1
            )
            lazy_s = benchmark.stats.stats.mean
        else:
            start = time.perf_counter()
            lazy_results, lazy_snap = sweep(False, checks)
            lazy_s = time.perf_counter() - start

        assert _scan_signature(eager_results) == _scan_signature(lazy_results)
        eager_sccs = eager_snap["counters"].get("dataflow.bool_fact_sccs", 0)
        lazy_sccs = lazy_snap["counters"].get("dataflow.bool_fact_sccs", 0)
        # The demanded cones are subsets of the whole condensation; with
        # per-site error callbacks they are strict subsets.
        assert 0 < lazy_sccs < eager_sccs, (
            f"{label}: lazy evaluated {lazy_sccs} SCCs vs eager {eager_sccs}"
        )
        section[label] = {
            "eager_s": eager_s,
            "lazy_s": lazy_s,
            "eager_bool_fact_sccs": eager_sccs,
            "lazy_bool_fact_sccs": lazy_sccs,
            "scc_work_ratio": lazy_sccs / eager_sccs,
            "identical_results": True,
            "lazy_counters": lazy_snap["counters"],
            "lazy_timings": _timing_fields(lazy_snap),
        }
        print(
            f"\nsummary laziness ({label} checks, {n_apps} apps): "
            f"eager {eager_s*1000:.0f} ms / {eager_sccs} SCCs, "
            f"lazy {lazy_s*1000:.0f} ms / {lazy_sccs} SCCs "
            f"({lazy_sccs/eager_sccs:.0%} of eager work)"
        )
    _record("summary_laziness", {"n_apps": n_apps, "modes": section})


def test_service_throughput(benchmark, tmp_path):
    """The ``nchecker serve`` daemon under load: submissions/second over
    a small corpus (cold, then warm on the same daemon), plus a second
    host completing the same sweep warm through the ``remote:URL`` cache
    tier with zero app-scoped builds — recorded to the ``service``
    section of ``BENCH_pipeline.json``."""
    import urllib.request

    from repro.service import ServiceConfig, start_in_thread

    n_apps = 8
    workers = 2
    apps = [apk for apk, _ in CorpusGenerator(PAPER_PROFILE.scaled(n_apps)).generate()]
    blobs = [dumps_apk(apk) for apk in apps]
    app_kinds = ("callgraph", "summaries", "requests", "retry-loops", "icc-model")

    handle = start_in_thread(ServiceConfig(
        port=0, workers=workers, cache_dir=str(tmp_path / "served"),
    ))

    def get_json(path):
        with urllib.request.urlopen(handle.base_url + path, timeout=30) as r:
            return json.loads(r.read())

    def sweep():
        """Submit every app, poll every job to completion."""
        ids = []
        for blob in blobs:
            request = urllib.request.Request(
                handle.base_url + "/v1/scans", data=blob.encode(),
                method="POST", headers={"Content-Type": "text/plain"},
            )
            with urllib.request.urlopen(request, timeout=30) as reply:
                assert reply.status == 202
                ids.append(json.loads(reply.read())["id"])
        views = []
        deadline = time.monotonic() + 120
        for job_id in ids:
            while True:
                view = get_json(f"/v1/scans/{job_id}")
                if view["status"] in ("done", "failed"):
                    break
                assert time.monotonic() < deadline, "service sweep stalled"
                time.sleep(0.02)
            assert view["status"] == "done", view.get("error")
            views.append(view)
        return views

    def remote_sweep():
        """A fresh host pointed at the daemon's cache over HTTP."""
        options = NCheckerOptions(cache_backend=f"remote:{handle.base_url}")
        with use_metrics() as registry:
            checker = NChecker(options=options)
            results = [
                checker.open_session(loads_apk(blob)).scan() for blob in blobs
            ]
            return results, registry.snapshot()

    try:
        start = time.perf_counter()
        cold_views = sweep()
        cold_s = time.perf_counter() - start

        warm_views = benchmark.pedantic(sweep, rounds=1, iterations=1)
        warm_s = benchmark.stats.stats.mean

        assert [v["package"] for v in cold_views] == [
            v["package"] for v in warm_views
        ]
        assert [v["findings"] for v in cold_views] == [
            v["findings"] for v in warm_views
        ]
        # Warm jobs rebuild nothing app-scoped: either the worker's
        # session is warm or the shared cache tiers serve every blob.
        for view in warm_views:
            for kind in app_kinds:
                assert view["counters"].get(f"artifact.{kind}.builds", 0) == 0

        start = time.perf_counter()
        remote_results, remote_snap = remote_sweep()
        remote_s = time.perf_counter() - start
        assert _scan_signature(remote_results), "remote sweep scanned nothing"
        remote_counters = remote_snap["counters"]
        for kind in app_kinds:
            assert remote_counters.get(f"artifact.{kind}.builds", 0) == 0, (
                f"second host rebuilt {kind} despite the remote tier"
            )
        assert remote_counters.get("cache.remote.callgraph.hits", 0) == n_apps

        service_counters = get_json("/metrics")["counters"]
        assert service_counters["service.scans.completed"] == 2 * n_apps
    finally:
        handle.stop()

    cold_rps = n_apps / cold_s if cold_s else float("inf")
    warm_rps = n_apps / warm_s if warm_s else float("inf")
    print(
        f"\nservice over {n_apps} apps ({workers} workers): "
        f"cold {cold_s*1000:.0f} ms ({cold_rps:.1f} scans/s), "
        f"warm {warm_s*1000:.0f} ms ({warm_rps:.1f} scans/s), "
        f"remote-tier second host {remote_s*1000:.0f} ms, zero warm builds"
    )
    _record("service", {
        "n_apps": n_apps,
        "workers": workers,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cold_scans_per_s": cold_rps,
        "warm_scans_per_s": warm_rps,
        "remote_warm_s": remote_s,
        "warm_app_scoped_builds": 0,
        "remote_app_scoped_builds": 0,
        "counters": {
            name: value for name, value in sorted(service_counters.items())
            if name.startswith("service.")
        },
    })


def test_incremental_patcher_convergence(benchmark):
    pairs = CorpusGenerator(PAPER_PROFILE.scaled(12)).generate()
    buggy = [apk for apk, _ in pairs]
    patcher = Patcher()

    def patch_incremental():
        fixed_blobs = []
        cfg_first_scan = 0
        cfg_incremental_rounds = 0
        full_equivalent_rounds = 0
        invalidated = 0
        snapshots = []
        for apk in buggy:
            # One registry per app: the store binds the registry active
            # at session creation, so every artifact counter of this
            # app's patch loop lands here — the public telemetry the
            # assertions below read instead of store internals.
            with use_metrics() as registry:
                checker = NChecker()
                working = loads_apk(dumps_apk(apk))
                session = checker.open_session(working)
                result = session.scan()
                first = registry.counter_value("artifact.cfg.builds")
                cfg_first_scan += first
                rounds = 0
                while result.findings and rounds < 3:
                    outcome = patcher.patch_in_place(working, result)
                    if not outcome.applied:
                        break
                    session.invalidate_methods(outcome.touched)
                    rounds += 1
                    result = session.scan()
                cfg_incremental_rounds += (
                    registry.counter_value("artifact.cfg.builds") - first
                )
                full_equivalent_rounds += first * rounds
                invalidated += registry.counter_value(
                    "artifact.invalidated_methods"
                )
                snapshots.append(registry.snapshot())
            fixed_blobs.append(dumps_apk(working))
        return (fixed_blobs, cfg_first_scan, cfg_incremental_rounds,
                full_equivalent_rounds, invalidated, snapshots)

    (blobs, first, incremental_cfgs, full_equiv, invalidated,
     snapshots) = benchmark.pedantic(patch_incremental, rounds=1, iterations=1)
    incremental_s = benchmark.stats.stats.mean

    start = time.perf_counter()
    full_blobs = [
        dumps_apk(Patcher().patch_until_clean(apk, NChecker(), incremental=False)[0])
        for apk in buggy
    ]
    full_s = time.perf_counter() - start

    assert blobs == full_blobs, "incremental patching changed the fixed apps"
    # The dirty region is a strict subset: rescans after each patch round
    # rebuild fewer CFGs than scanning every method from scratch would.
    assert invalidated > 0
    assert incremental_cfgs < full_equiv, (
        f"incremental rounds rebuilt {incremental_cfgs} CFGs, "
        f"full rescans would have rebuilt {full_equiv}"
    )
    from repro.obs import merge_snapshots

    merged = merge_snapshots(snapshots)
    print(
        f"\nincremental patching of {len(buggy)} apps: "
        f"{incremental_s*1000:.0f} ms vs full-rescan {full_s*1000:.0f} ms; "
        f"round rebuilds {incremental_cfgs}/{full_equiv} CFGs "
        f"({invalidated} methods invalidated)"
    )
    _record("incremental_patcher", {
        "n_apps": len(buggy),
        "incremental_s": incremental_s,
        "full_rescan_s": full_s,
        "first_scan_cfg_builds": first,
        "incremental_round_cfg_builds": incremental_cfgs,
        "full_equivalent_cfg_builds": full_equiv,
        "methods_invalidated": invalidated,
        "identical_output": True,
        "counters": merged["counters"],
        "timings": _timing_fields(merged),
    })
