"""Table 11 — observations → library-design guidelines, recomputed from
the corpus scan."""

import re

from repro.eval.experiments import run_table11


def test_table11_guidelines(benchmark, paper_corpus_results):
    report = benchmark.pedantic(run_table11, rounds=1, iterations=1)
    print("\n" + str(report))

    guidelines = report.data["guidelines"]
    assert len(guidelines) == 7

    # Each observation carries a recomputed percentage...
    for guideline in guidelines:
        assert re.search(r"\d+%", guideline.observation)

    # ...and the headline numbers sit near the paper's (43 / 70 / 76+ /
    # 57 / 75 / 93).
    def pct(text):
        return int(re.search(r"(\d+)%", text).group(1))

    assert abs(pct(guidelines[0].observation) - 43) <= 7
    assert abs(pct(guidelines[1].observation) - 70) <= 8
    assert pct(guidelines[2].observation) >= 60  # "over 76% ... defaults"
    assert abs(pct(guidelines[3].observation) - 57) <= 8
    assert abs(pct(guidelines[4].observation) - 75) <= 12
    assert pct(guidelines[6].observation) >= 85  # "93% don't check types"
