"""§5.2 headline — 4180 NPDs in 281/285 apps — plus scan throughput.

The throughput micro-benchmark times one full app scan (call graph,
request extraction, all four analyses) on a representative generated app;
the whole-corpus benchmark times the complete 285-app sweep.
"""

from repro.core import NChecker
from repro.corpus import CorpusGenerator, PAPER_PROFILE

from .conftest import assert_close


def test_headline_full_corpus_scan(benchmark):
    generator = CorpusGenerator(PAPER_PROFILE)
    apps = [apk for apk, _ in generator.iter_apps()]
    checker = NChecker()

    def sweep():
        results = [checker.scan(apk) for apk in apps]
        return (
            sum(len(r.findings) for r in results),
            sum(1 for r in results if r.is_buggy),
        )

    total_npds, buggy = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nHeadline: {total_npds} NPDs in {buggy}/285 apps "
          f"(paper: 4180 in 281/285)")
    assert_close(total_npds, 4180, 600, "total NPDs")
    assert buggy / 285 >= 0.98  # "98+% of the evaluated mobile apps"


def test_single_app_scan_throughput(benchmark):
    generator = CorpusGenerator(PAPER_PROFILE)
    apk, _ = generator.generate_app(3)
    checker = NChecker()
    result = benchmark(checker.scan, apk)
    assert result.requests  # the timed work is real
