"""Fig 10 / Table 10 — the controlled user study.

Paper: 20 volunteers fix 6 NPD types in 1.7 ± 0.14 minutes on average;
the 'no retried exception' task is excluded (only 1/20 solved it).
"""

from repro.eval.experiments import run_fig10

from .conftest import assert_close


def test_fig10_fix_times(benchmark):
    report = benchmark(run_fig10)
    print("\n" + str(report))

    assert_close(report.data["overall_mean"], 1.7, 0.35, "overall mean (min)")
    assert_close(report.data["overall_ci"], 0.14, 0.10, "overall 95% CI (min)")

    per_task = report.data["per_task"]
    timing_means = {
        name: mean for name, (mean, _ci) in per_task.items()
        if "retried exception" not in name
    }
    # Every fix is a couple of minutes — the practicality headline.
    assert all(mean < 4.0 for mean in timing_means.values())
    # Ranking shape: over-retry is the quickest, invalid-response among the
    # slowest (matching the bar heights in Fig 10).
    fastest = min(timing_means, key=timing_means.get)
    assert "over retry" in fastest
    slowest = max(timing_means, key=timing_means.get)
    assert "invalid resp" in slowest or "conn" in slowest
