"""Table 8 — inappropriate retry behaviours and their default-caused share.

Paper: 8 % of retry-lib apps never retry user requests; 32 % over-retry
in Services (76 % default-caused); 25 % over-retry POSTs (98 %
default-caused).
"""

from repro.eval.experiments import run_table8

from .conftest import assert_close


def test_table8_improper_retry_parameters(benchmark, paper_corpus_results):
    report = benchmark.pedantic(run_table8, rounds=1, iterations=1)
    print("\n" + str(report))
    data = report.data

    no_retry_apps, no_retry_default = data["No retry in Activities"]
    service_apps, service_default = data["Over retry in Services"]
    post_apps, post_default = data["Over retry in POST requests"]

    assert_close(no_retry_apps, 8, 5, "no-retry-in-activities %")
    assert_close(service_apps, 32, 8, "over-retry-in-services %")
    assert_close(post_apps, 25, 8, "over-retry-on-post %")

    # The paper's key insight: defaults cause most over-retries.
    assert_close(service_default, 76, 14, "service default-caused %")
    assert_close(post_default, 98, 8, "post default-caused %")
    # Explicit zero-retries are never default-caused (there is no 0-retry
    # default among the studied libraries).
    assert no_retry_default == 0

    # Ordering: services > POST > no-retry (who wins).
    assert service_apps > post_apps > no_retry_apps
