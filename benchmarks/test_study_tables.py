"""Tables 1–3 and Fig 4 — the §2 empirical study artifacts."""

from repro.core.defects import Impact, RootCause
from repro.eval.experiments import run_study_tables


def test_empirical_study_tables(benchmark):
    report = benchmark(run_study_tables)
    print("\n" + str(report))

    impact = report.data["impact_percent"]
    assert impact[Impact.DYSFUNCTION] == 36
    assert impact[Impact.UNFRIENDLY_UI] == 33
    assert impact[Impact.CRASH_FREEZE] == 21
    assert impact[Impact.BATTERY_DRAIN] == 10

    causes = report.data["cause_percent"]
    assert causes[RootCause.NO_CONNECTIVITY_CHECK] == 30
    assert causes[RootCause.MISHANDLED_TRANSIENT] == 13
    assert causes[RootCause.MISHANDLED_PERMANENT] == 27
    assert causes[RootCause.MISHANDLED_SWITCH] == 30

    assert report.data["total"] == 90
    assert "Chrome" in report.text and "ChatSecure" in report.text
