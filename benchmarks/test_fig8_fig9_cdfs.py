"""Figs 8 & 9 — CDFs of per-app request miss ratios.

Paper: among partially-configuring apps, 62 % miss the connectivity check
in over half their requests and 58 % miss the timeout in over half;
Fig 9 shows a similar spread for failure notifications; 30 % of requests
with explicit error callbacks notify vs 12 % without.
"""

from repro.eval.experiments import run_fig8, run_fig9

from .conftest import assert_close


def test_fig8_connectivity_and_timeout_cdfs(benchmark, paper_corpus_results):
    report = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    print("\n" + str(report))

    assert_close(
        100 * report.data["conn_over_half"], 62, 12, "conn miss>50% share"
    )
    assert_close(
        100 * report.data["timeout_over_half"], 58, 12, "timeout miss>50% share"
    )
    # CDFs are proper CDFs.
    for key in ("conn_cdf", "timeout_cdf"):
        values = [v for _p, v in report.data[key]]
        assert values == sorted(values)
        assert values[-1] == 1.0


def test_fig9_notification_cdf(benchmark, paper_corpus_results):
    report = benchmark(run_fig9)
    print("\n" + str(report))

    values = [v for _p, v in report.data["cdf"]]
    assert values == sorted(values) and values[-1] == 1.0

    # §5.2.3's explicit-vs-implicit split: explicit callbacks attract
    # notification code (paper: 30% vs 12%).
    explicit = 100 * report.data["explicit_rate"]
    implicit = 100 * report.data["implicit_rate"]
    assert explicit > implicit
    assert_close(explicit, 30, 12, "explicit-callback notify rate")
    assert_close(implicit, 12, 8, "implicit notify rate")
