"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables/figures, prints it
(run with ``-s`` to see the artifacts), and asserts the paper's *shape* —
who wins, by roughly what factor, where crossovers fall — with tolerance
bands around the published numbers.  Heavy whole-corpus pipelines are
timed with ``benchmark.pedantic(rounds=1)``; micro-kernels use the plain
``benchmark`` fixture.
"""

import pytest


@pytest.fixture(autouse=True)
def _hermetic_disk_cache(tmp_path, monkeypatch):
    """Keep benchmark runs cold and hermetic: the persistent artifact
    cache defaults to ``$NCHECKER_CACHE_DIR``, so point it per-test at a
    throwaway directory (the disk-cache benchmark manages its own)."""
    monkeypatch.setenv("NCHECKER_CACHE_DIR", str(tmp_path / "artifact-cache"))


def assert_close(measured, paper, tolerance, label=""):
    """Shape assertion: measured within ±tolerance (absolute, in the same
    unit as the paper's number — usually percentage points)."""
    assert abs(measured - paper) <= tolerance, (
        f"{label}: measured {measured} vs paper {paper} "
        f"(tolerance ±{tolerance})"
    )


@pytest.fixture(scope="session")
def paper_corpus_results():
    """The full 285-app corpus scan, shared by the corpus benchmarks."""
    from repro.eval.experiments import corpus_scan

    return corpus_scan(285)
