"""Every example script must run to completion and print its headline."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "NPD(s)" in out
        assert "Fix Suggestion" in out

    def test_scan_corpus(self):
        out = _run("scan_corpus.py", "10")
        assert "NPDs across" in out
        assert "Missed conn. checks" in out

    def test_disruption_lab(self):
        out = _run("disruption_lab.py")
        assert "CRASH" in out
        assert "BATTERY DRAIN" in out
        assert "Volley defaults" in out

    def test_fix_workflow(self):
        out = _run("fix_workflow.py")
        assert "Before: 5 NPD(s)" in out
        assert "After: 0 NPD(s)" in out

    def test_auto_patch(self):
        out = _run("auto_patch.py")
        assert "After patching: 0 NPDs" in out
        assert "$npd_cm" in out  # the inserted guard is visible

    def test_network_switch_demo(self):
        out = _run("network_switch_demo.py")
        assert "message LOST" in out
        assert "message delivered" in out
