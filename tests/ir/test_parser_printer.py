"""Parser/printer tests, including a hypothesis round-trip property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import (
    ClassBuilder,
    Local,
    MethodBuilder,
    ParseError,
    parse_class,
    parse_stmt,
    print_class,
    format_stmt,
)
from repro.ir.parser import parse_atom, parse_classes
from repro.ir.values import Const


class TestAtoms:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("null", None),
            ("true", True),
            ("false", False),
            ("42", 42),
            ("-7", -7),
            ("2.5", 2.5),
            ("'http://x'", "http://x"),
        ],
    )
    def test_constants(self, text, value):
        atom = parse_atom(text)
        assert isinstance(atom, Const) and atom.value == value

    def test_identifier_is_local(self):
        assert parse_atom("client") == Local("client")

    def test_dollar_names(self):
        assert parse_atom("$t1") == Local("$t1")

    def test_dotted_name_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("com.example.Foo")


class TestStatements:
    @pytest.mark.parametrize(
        "line",
        [
            "nop",
            "return",
            "return x",
            "throw e",
            "goto L1",
            "if x == null goto L2",
            "x = 5",
            "x = y",
            "x = new com.C",
            "x = a + b",
            "x = cast int y",
            "x = e instanceof com.E",
            "x = lengthof arr",
            "x = catch java.io.IOException",
            "x = getfield o com.C.f",
            "x = getstatic com.C.f",
            "putfield o com.C.f = v",
            "putstatic com.C.f = v",
            "x = aload arr i",
            "astore arr i = v",
            "invoke static com.Util#log('hi')",
            "invoke virtual c:com.C#get('http://x') -> com.Resp",
            "r = invoke virtual c:com.C#get(u, 5)",
        ],
    )
    def test_round_trip(self, line):
        stmt = parse_stmt(line)
        assert parse_stmt(format_stmt(stmt)) == stmt

    @pytest.mark.parametrize("name", ["if", "goto", "return", "throw", "nop", "invoke"])
    def test_keyword_named_local_assignment(self, name):
        """Locals may shadow statement keywords; assignment dispatch wins."""
        stmt = parse_stmt(f"{name} = 0")
        assert stmt == parse_stmt(format_stmt(stmt))
        assert format_stmt(stmt) == f"{name} = 0"

    def test_malformed_if_rejected(self):
        with pytest.raises(ParseError):
            parse_stmt("if x goto L")

    def test_unknown_statement_rejected(self):
        with pytest.raises(ParseError):
            parse_stmt("frobnicate x")

    def test_string_with_comma_in_args(self):
        stmt = parse_stmt("invoke static com.U#log('a,b', x)")
        invoke = stmt.invoke()
        assert invoke.args[0].value == "a,b"
        assert invoke.args[1] == Local("x")


class TestClassParsing:
    def test_missing_brace_rejected(self):
        with pytest.raises(ParseError):
            parse_class("class com.C {\n  method void m() {\n    return\n")

    def test_duplicate_label_rejected(self):
        text = (
            "class com.C {\n  method void m() {\n  L:\n  L:\n    return\n  }\n}"
        )
        with pytest.raises(ParseError):
            parse_class(text)

    def test_interface_and_extends(self):
        text = "class com.C extends com.B implements com.I, com.J {\n}"
        cls = parse_class(text)
        assert cls.superclass == "com.B"
        assert cls.interfaces == ("com.I", "com.J")

    def test_comments_stripped(self):
        text = (
            "# leading comment\n"
            "class com.C {  # trailing\n"
            "  method void m() {\n"
            "    x = 5  # set x\n"
            "    return\n"
            "  }\n"
            "}\n"
        )
        cls = parse_class(text)
        assert cls.get_method("m", 0) is not None

    def test_invoke_hash_survives_comment_stripping(self):
        text = (
            "class com.C {\n"
            "  method void m() {\n"
            "    invoke static com.U#log('x')\n"
            "    return\n"
            "  }\n"
            "}\n"
        )
        cls = parse_class(text)
        invoke = next(cls.get_method("m", 0).invoke_sites())[1]
        assert invoke.sig.name == "log"

    def test_multiple_classes(self):
        text = "class com.A {\n}\nclass com.B {\n}"
        assert [c.name for c in parse_classes(text)] == ["com.A", "com.B"]


# -- property: printer/parser round trip on generated programs ---------------

_ident = st.from_regex(r"[a-z][a-z0-9]{0,5}", fullmatch=True)
_const = st.one_of(
    st.integers(-1000, 1000),
    st.booleans(),
    st.none(),
    st.from_regex(r"[a-zA-Z0-9_/:.]{0,12}", fullmatch=True),
)


@st.composite
def _programs(draw):
    """Random straight-line+branchy method bodies via the builder."""
    b = MethodBuilder("com.gen.C", "m")
    n = draw(st.integers(1, 12))
    known_locals = ["x"]
    b.assign("x", 0)
    for i in range(n):
        choice = draw(st.integers(0, 5))
        if choice == 0:
            name = draw(_ident)
            b.assign(name, draw(_const))
            known_locals.append(name)
        elif choice == 1:
            src = draw(st.sampled_from(known_locals))
            name = draw(_ident)
            b.assign(name, Local(src))
            known_locals.append(name)
        elif choice == 2:
            base = b.new(f"com.gen.K{i}", f"o{i}")
            known_locals.append(base.name)
        elif choice == 3:
            base = draw(st.sampled_from(known_locals))
            b.call(Local(base), f"m{i}", draw(_const), cls=f"com.gen.K{i}")
        elif choice == 4:
            with b.if_then("==", Local(draw(st.sampled_from(known_locals))), 0):
                b.assign(draw(_ident), draw(_const))
        else:
            region = b.begin_try()
            b.call(Local(draw(st.sampled_from(known_locals))), "send", cls="com.gen.N")
            b.begin_catch(region, "java.io.IOException")
            b.nop()
            b.end_try(region)
    b.ret()
    cb = ClassBuilder("com.gen.C")
    method = b.build()
    cls = cb.build()
    cls.add_method(method)
    return cls


@given(_programs())
@settings(max_examples=60, deadline=None)
def test_print_parse_round_trip(cls):
    text = print_class(cls)
    reparsed = parse_class(text)
    assert print_class(reparsed) == text
