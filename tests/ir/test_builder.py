"""Unit tests for the fluent method/class builders."""

import pytest

from repro.ir import (
    AssignStmt,
    ClassBuilder,
    GotoStmt,
    IfStmt,
    InvokeStmt,
    Local,
    MethodBuilder,
    NewExpr,
    ReturnStmt,
)


class TestBasics:
    def test_new_emits_alloc_plus_ctor(self):
        b = MethodBuilder("com.C", "m")
        local = b.new("com.lib.Client", "c", args=[1])
        b.ret()
        method = b.build()
        assert isinstance(method.statements[0], AssignStmt)
        assert isinstance(method.statements[0].value, NewExpr)
        ctor = method.statements[1].invoke()
        assert ctor.is_constructor and ctor.args[0].value == 1
        assert local.type_hint == "com.lib.Client"

    def test_call_uses_type_hint_for_class(self):
        b = MethodBuilder("com.C", "m")
        c = b.new("com.lib.Client", "c")
        b.call(c, "get", "http://x")
        b.ret()
        method = b.build()
        assert method.statements[2].invoke().sig.class_name == "com.lib.Client"

    def test_static_call_with_return(self):
        b = MethodBuilder("com.C", "m")
        r = b.static_call("com.Util", "now", ret="t")
        b.ret(r)
        method = b.build()
        invoke = method.statements[0].invoke()
        assert invoke.base is None and invoke.sig.class_name == "com.Util"

    def test_missing_return_appended(self):
        b = MethodBuilder("com.C", "m")
        b.nop()
        method = b.build()
        assert isinstance(method.statements[-1], ReturnStmt)

    def test_duplicate_label_rejected(self):
        b = MethodBuilder("com.C", "m")
        b.label("L")
        with pytest.raises(ValueError):
            b.label("L")


class TestStructuredControlFlow:
    def test_if_then_branches_around_body(self):
        b = MethodBuilder("com.C", "m")
        b.assign("x", 1)
        with b.if_then("==", Local("x"), 1):
            b.assign("y", 2)
        b.ret()
        method = b.build()
        branch = next(s for s in method.statements if isinstance(s, IfStmt))
        # The emitted branch is the negation, jumping over the body.
        assert branch.condition.op == "!="
        assert method.label_index(branch.target) > method.statements.index(branch)

    def test_if_else_both_branches_reach_end(self):
        b = MethodBuilder("com.C", "m")
        with b.if_else("==", Local("x"), 0) as orelse:
            b.assign("y", 1)
            orelse.start()
            b.assign("y", 2)
        b.ret()
        method = b.build()
        method.validate()
        gotos = [s for s in method.statements if isinstance(s, GotoStmt)]
        assert gotos, "then-branch must jump over the else-branch"

    def test_if_else_without_else_branch(self):
        b = MethodBuilder("com.C", "m")
        with b.if_else("==", Local("x"), 0) as orelse:
            b.assign("y", 1)
        b.ret()
        b.build().validate()

    def test_else_cannot_start_twice(self):
        b = MethodBuilder("com.C", "m")
        with pytest.raises(RuntimeError):
            with b.if_else("==", Local("x"), 0) as orelse:
                orelse.start()
                orelse.start()

    def test_loop_emits_back_edge(self):
        b = MethodBuilder("com.C", "m")
        with b.loop() as loop:
            b.assign("x", 1)
            loop.break_()
        b.ret()
        method = b.build()
        method.validate()
        gotos = [s for s in method.statements if isinstance(s, GotoStmt)]
        targets = {method.label_index(g.target) for g in gotos}
        assert min(targets) == 0  # back edge to the loop head

    def test_while_loop_tests_at_head(self):
        b = MethodBuilder("com.C", "m")
        b.assign("go", True)
        with b.while_loop("==", Local("go"), True):
            b.assign("go", False)
        b.ret()
        method = b.build()
        method.validate()
        branch = next(s for s in method.statements if isinstance(s, IfStmt))
        assert branch.condition.op == "!="  # negated exit test


class TestTryCatch:
    def test_trap_recorded_and_valid(self):
        b = MethodBuilder("com.C", "m")
        region = b.begin_try()
        b.assign("x", 1)
        b.call(Local("c"), "send", cls="com.lib.C")
        exc = b.begin_catch(region, "java.io.IOException", "e")
        b.assign("handled", True)
        b.end_try(region)
        b.ret()
        method = b.build()
        method.validate()
        assert len(method.traps) == 1
        trap = method.traps[0]
        assert trap.exc_type == "java.io.IOException"
        assert exc == Local("e")
        # The protected range covers the call site.
        call_idx = next(i for i, _ in method.invoke_sites())
        assert method.traps_covering(call_idx) == [trap]

    def test_multi_catch(self):
        b = MethodBuilder("com.C", "m")
        region = b.begin_try()
        b.call(Local("c"), "send", cls="com.lib.C")
        b.begin_catch(region, "java.io.IOException")
        b.nop()
        b.begin_catch(region, "java.lang.Exception")
        b.nop()
        b.end_try(region)
        b.ret()
        method = b.build()
        method.validate()
        assert len(method.traps) == 2
        assert {t.exc_type for t in method.traps} == {
            "java.io.IOException",
            "java.lang.Exception",
        }

    def test_handler_not_in_protected_range(self):
        b = MethodBuilder("com.C", "m")
        region = b.begin_try()
        b.call(Local("c"), "send", cls="com.lib.C")
        b.begin_catch(region, "java.io.IOException")
        b.nop()
        b.end_try(region)
        b.ret()
        method = b.build()
        handler_idx = method.label_index(method.traps[0].handler)
        assert method.traps_covering(handler_idx) == []


class TestClassBuilder:
    def test_duplicate_method_rejected(self):
        cb = ClassBuilder("com.C")
        b1 = cb.method("m")
        b1.ret()
        cb.add(b1)
        b2 = cb.method("m")
        b2.ret()
        with pytest.raises(ValueError):
            cb.add(b2)

    def test_fields_and_interfaces(self):
        cb = ClassBuilder("com.C", "com.Base", ["com.I"])
        cb.add_field("queue", "com.lib.Queue")
        cls = cb.build()
        assert cls.superclass == "com.Base"
        assert cls.interfaces == ("com.I",)
        assert cls.fields["queue"].type_name == "com.lib.Queue"
