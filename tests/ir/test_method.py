"""Unit tests for IRMethod: labels, traps, validation."""

import pytest

from repro.ir import (
    AssignStmt,
    Const,
    GotoStmt,
    IRMethod,
    IfStmt,
    Local,
    MethodSig,
    NopStmt,
    ReturnStmt,
    Trap,
    ConditionExpr,
)


def _method(stmts, labels=None, traps=None):
    return IRMethod(MethodSig("com.C", "m"), [], stmts, labels or {}, traps or [])


class TestValidation:
    def test_empty_body_rejected(self):
        with pytest.raises(ValueError, match="empty body"):
            _method([]).validate()

    def test_fallthrough_off_end_rejected(self):
        with pytest.raises(ValueError, match="falls off the end"):
            _method([NopStmt()]).validate()

    def test_dangling_branch_target_rejected(self):
        method = _method([GotoStmt("nowhere"), ReturnStmt()])
        with pytest.raises(ValueError, match="undefined label"):
            method.validate()

    def test_trap_with_undefined_label_rejected(self):
        method = _method(
            [ReturnStmt()],
            labels={"a": 0},
            traps=[Trap("a", "a", "missing")],
        )
        with pytest.raises(ValueError, match="undefined"):
            method.validate()

    def test_inverted_trap_range_rejected(self):
        method = _method(
            [NopStmt(), ReturnStmt()],
            labels={"a": 1, "b": 0, "h": 0},
            traps=[Trap("a", "b", "h")],
        )
        with pytest.raises(ValueError, match="inverted"):
            method.validate()

    def test_valid_method_passes(self):
        method = _method(
            [NopStmt(), GotoStmt("end"), NopStmt(), ReturnStmt()],
            labels={"end": 3},
        )
        method.validate()


class TestQueries:
    def test_label_index_and_error(self):
        method = _method([ReturnStmt()], labels={"L": 0})
        assert method.label_index("L") == 0
        with pytest.raises(KeyError):
            method.label_index("missing")

    def test_traps_covering(self):
        method = _method(
            [NopStmt(), NopStmt(), NopStmt(), ReturnStmt()],
            labels={"b": 0, "e": 2, "h": 2},
            traps=[Trap("b", "e", "h", "java.io.IOException")],
        )
        assert len(method.traps_covering(0)) == 1
        assert len(method.traps_covering(1)) == 1
        assert method.traps_covering(2) == []  # end is exclusive

    def test_trap_handlers(self):
        method = _method(
            [NopStmt(), NopStmt(), ReturnStmt()],
            labels={"b": 0, "e": 1, "h": 1},
            traps=[Trap("b", "e", "h")],
        )
        assert method.trap_handlers() == {1}

    def test_invoke_sites_empty_for_pure_method(self):
        method = _method([AssignStmt(Local("x"), Const(1)), ReturnStmt()])
        assert list(method.invoke_sites()) == []

    def test_labels_at(self):
        method = _method([ReturnStmt()], labels={"a": 0, "b": 0})
        assert sorted(method.labels_at(0)) == ["a", "b"]
