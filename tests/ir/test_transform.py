"""IR transformation (statement insertion) tests."""

import pytest

from repro.ir import AssignStmt, Const, GotoStmt, Local, MethodBuilder, NopStmt
from repro.ir.transform import fresh_label, insert_statements


def _looped_method():
    b = MethodBuilder("com.t.C", "m")
    b.assign("go", True)
    with b.while_loop("==", Local("go"), True):
        b.assign("go", False)
    b.ret()
    return b.build()


class TestInsertStatements:
    def test_insert_at_start_shifts_labels(self):
        method = _looped_method()
        old_labels = dict(method.labels)
        insert_statements(method, 0, [NopStmt(), NopStmt()])
        for name, old in old_labels.items():
            assert method.labels[name] == old + 2
        method.validate()

    def test_insert_preserves_branch_semantics(self):
        method = _looped_method()
        n_before = len(method.statements)
        insert_statements(method, 0, [AssignStmt(Local("x"), Const(1))])
        assert len(method.statements) == n_before + 1
        method.validate()
        from repro.cfg import CFG, natural_loops

        loops = natural_loops(CFG(method))
        assert len(loops) == 1
        # The inserted statement sits before the loop, not inside it.
        assert 0 not in loops[0].body

    def test_labels_before_insertion_point_unchanged(self):
        method = _looped_method()
        head_labels = {
            name: idx for name, idx in method.labels.items() if idx < 2
        }
        insert_statements(method, len(method.statements) - 1, [NopStmt()])
        for name, idx in head_labels.items():
            assert method.labels[name] == idx
        method.validate()

    def test_new_labels_bound_relative(self):
        method = _looped_method()
        name = fresh_label(method)
        insert_statements(
            method, 1, [NopStmt(), NopStmt()], new_labels={name: 2}
        )
        assert method.labels[name] == 3
        method.validate()

    def test_duplicate_new_label_rejected(self):
        method = _looped_method()
        existing = next(iter(method.labels))
        with pytest.raises(ValueError):
            insert_statements(method, 0, [NopStmt()], new_labels={existing: 0})

    def test_out_of_range_index_rejected(self):
        method = _looped_method()
        with pytest.raises(IndexError):
            insert_statements(method, 999, [NopStmt()])

    def test_relative_label_out_of_block_rejected(self):
        method = _looped_method()
        with pytest.raises(ValueError):
            insert_statements(
                method, 0, [NopStmt()], new_labels={fresh_label(method): 5}
            )

    def test_empty_insert_is_noop(self):
        method = _looped_method()
        before = list(method.statements)
        insert_statements(method, 0, [])
        assert method.statements == before

    def test_trap_ranges_follow_labels(self):
        b = MethodBuilder("com.t.C", "m")
        region = b.begin_try()
        b.call(Local("c"), "send", cls="com.C")
        b.begin_catch(region, "java.io.IOException")
        b.nop()
        b.end_try(region)
        b.ret()
        method = b.build()
        call_idx_before = next(i for i, _ in method.invoke_sites())
        insert_statements(method, 0, [NopStmt(), NopStmt()])
        method.validate()
        call_idx_after = next(i for i, _ in method.invoke_sites())
        assert call_idx_after == call_idx_before + 2
        # The call is still protected.
        assert method.traps_covering(call_idx_after)


class TestRetargetMode:
    def test_default_branches_skip_insertion(self):
        method = _looped_method()
        # Insert at the loop header: the back edge must skip the new code.
        header = min(
            idx for idx in method.labels.values() if idx > 0
        )
        insert_statements(method, header, [AssignStmt(Local("guard"), Const(1))])
        from repro.cfg import CFG, natural_loops

        loops = natural_loops(CFG(method))
        assert header not in loops[0].body  # the inserted stmt is outside

    def test_retarget_puts_branches_on_insertion(self):
        method = _looped_method()
        header = min(idx for idx in method.labels.values() if idx > 0)
        insert_statements(
            method,
            header,
            [AssignStmt(Local("cfg"), Const(1))],
            retarget_labels_at_index=True,
        )
        from repro.cfg import CFG, natural_loops

        loops = natural_loops(CFG(method))
        assert header in loops[0].body  # the inserted stmt joined the loop

    def test_retarget_still_shifts_later_labels(self):
        method = _looped_method()
        tail_labels = {
            n: i for n, i in method.labels.items()
            if i == len(method.statements)
        }
        insert_statements(
            method, 1, [NopStmt()], retarget_labels_at_index=True
        )
        for name, old in tail_labels.items():
            assert method.labels[name] == old + 1


class TestFreshLabel:
    def test_avoids_collisions(self):
        method = _looped_method()
        method.labels["patch0"] = 0
        assert fresh_label(method) == "patch1"
