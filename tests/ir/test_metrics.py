"""Code-metrics tests."""

import pytest

from repro.ir import Local, MethodBuilder, app_metrics, method_metrics


def _method(fn):
    b = MethodBuilder("com.m.C", "m")
    fn(b)
    return b.build()


class TestMethodMetrics:
    def test_straight_line_complexity_is_one(self):
        m = _method(lambda b: (b.assign("x", 1), b.ret()))
        assert method_metrics(m).cyclomatic == 1

    def test_single_branch_complexity_two(self):
        def fn(b):
            b.assign("x", 1)
            with b.if_then("==", Local("x"), 1):
                b.assign("y", 2)
            b.ret()

        assert method_metrics(_method(fn)).cyclomatic == 2

    def test_loop_adds_complexity(self):
        def fn(b):
            b.assign("go", True)
            with b.while_loop("==", Local("go"), True):
                b.assign("go", False)
            b.ret()

        assert method_metrics(_method(fn)).cyclomatic >= 2

    def test_invoke_and_trap_counts(self):
        def fn(b):
            region = b.begin_try()
            b.call(Local("c"), "send", cls="com.C")
            b.begin_catch(region, "java.io.IOException")
            b.nop()
            b.end_try(region)
            b.ret()

        metrics = method_metrics(_method(fn))
        assert metrics.invoke_sites == 1
        assert metrics.traps == 1


class TestAppMetrics:
    def test_aggregates(self, small_corpus):
        apk, _ = small_corpus[0]
        metrics = app_metrics(apk)
        assert metrics.classes == len(apk.hierarchy)
        assert metrics.methods > 0
        assert metrics.statements > metrics.methods  # bodies are non-trivial
        assert metrics.mean_statements_per_method == pytest.approx(
            metrics.statements / metrics.methods
        )

    def test_rows_render(self, small_corpus):
        apk, _ = small_corpus[0]
        rows = app_metrics(apk).as_rows()
        assert len(rows) == 7
        assert all(len(r) == 2 for r in rows)
