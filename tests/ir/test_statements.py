"""Unit tests for IR statements: defs/uses, invokes, terminators."""

from repro.ir import (
    ArrayRef,
    AssignStmt,
    BinaryExpr,
    ConditionExpr,
    Const,
    FieldRef,
    FieldSig,
    GotoStmt,
    IfStmt,
    InvokeExpr,
    InvokeStmt,
    KIND_VIRTUAL,
    Local,
    MethodSig,
    NopStmt,
    ReturnStmt,
    ThrowStmt,
)


def _invoke(base="c", args=()):
    return InvokeExpr(
        KIND_VIRTUAL,
        Local(base),
        MethodSig("com.C", "m", tuple("?" for _ in args)),
        tuple(args),
    )


class TestAssignStmt:
    def test_local_target_defines(self):
        stmt = AssignStmt(Local("x"), Const(1))
        assert stmt.defs() == (Local("x"),)
        assert stmt.uses() == ()

    def test_copy_uses_source(self):
        stmt = AssignStmt(Local("x"), Local("y"))
        assert stmt.uses() == (Local("y"),)

    def test_field_store_defines_nothing_uses_base(self):
        stmt = AssignStmt(FieldRef(Local("o"), FieldSig("com.C", "f")), Local("v"))
        assert stmt.defs() == ()
        assert set(stmt.uses()) == {Local("o"), Local("v")}

    def test_array_store_uses_base_index_value(self):
        stmt = AssignStmt(ArrayRef(Local("a"), Local("i")), Local("v"))
        assert set(stmt.uses()) == {Local("a"), Local("i"), Local("v")}

    def test_invoke_extraction(self):
        stmt = AssignStmt(Local("r"), _invoke())
        assert stmt.invoke() is stmt.value

    def test_non_invoke_has_no_invoke(self):
        stmt = AssignStmt(Local("x"), BinaryExpr("+", Local("a"), Const(1)))
        assert stmt.invoke() is None


class TestControlStatements:
    def test_goto_is_terminator(self):
        assert GotoStmt("L").is_terminator

    def test_return_is_terminator(self):
        assert ReturnStmt().is_terminator
        assert ReturnStmt(Local("x")).uses() == (Local("x"),)

    def test_throw_is_terminator_and_uses(self):
        stmt = ThrowStmt(Local("e"))
        assert stmt.is_terminator
        assert stmt.uses() == (Local("e"),)

    def test_if_is_not_terminator(self):
        stmt = IfStmt(ConditionExpr("==", Local("x"), Const(None)), "L")
        assert not stmt.is_terminator
        assert stmt.uses() == (Local("x"),)

    def test_nop_neutral(self):
        stmt = NopStmt()
        assert stmt.defs() == () and stmt.uses() == ()
        assert not stmt.is_terminator


class TestInvokeStmt:
    def test_uses_and_invoke(self):
        stmt = InvokeStmt(_invoke(args=(Local("a"),)))
        assert set(stmt.uses()) == {Local("c"), Local("a")}
        assert stmt.invoke() is stmt.expr
