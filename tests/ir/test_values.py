"""Unit tests for IR values and expressions."""

import pytest

from repro.ir import (
    BinaryExpr,
    CastExpr,
    ConditionExpr,
    Const,
    FieldRef,
    FieldSig,
    InstanceOfExpr,
    InvokeExpr,
    KIND_STATIC,
    KIND_VIRTUAL,
    Local,
    MethodSig,
    NewExpr,
    UnaryExpr,
    locals_in,
)


class TestLocal:
    def test_equality_is_by_name(self):
        assert Local("x") == Local("x", type_hint="com.Foo")
        assert Local("x") != Local("y")

    def test_hash_consistent_with_equality(self):
        assert hash(Local("x")) == hash(Local("x", "com.Foo"))

    def test_str(self):
        assert str(Local("client")) == "client"


class TestConst:
    @pytest.mark.parametrize(
        "value,text",
        [(None, "null"), (True, "true"), (False, "false"), (5, "5"), (2.5, "2.5")],
    )
    def test_rendering(self, value, text):
        assert str(Const(value)) == text

    def test_string_rendering_quotes(self):
        assert str(Const("http://x")) == "'http://x'"


class TestMethodSig:
    def test_arity_and_names(self):
        sig = MethodSig("com.C", "get", ("java.lang.String",), "com.Resp")
        assert sig.arity == 1
        assert sig.qualified_name == "com.C.get"
        assert "com.C.get" in str(sig)


class TestInvokeExpr:
    def test_static_invoke_rejects_receiver(self):
        sig = MethodSig("com.C", "m")
        with pytest.raises(ValueError):
            InvokeExpr(KIND_STATIC, Local("x"), sig)

    def test_virtual_invoke_requires_receiver(self):
        sig = MethodSig("com.C", "m")
        with pytest.raises(ValueError):
            InvokeExpr(KIND_VIRTUAL, None, sig)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            InvokeExpr("dynamic", None, MethodSig("com.C", "m"))

    def test_operands_include_receiver_and_args(self):
        expr = InvokeExpr(
            KIND_VIRTUAL,
            Local("c"),
            MethodSig("com.C", "m", ("?",)),
            (Local("a"),),
        )
        assert expr.operands() == (Local("c"), Local("a"))

    def test_constructor_detection(self):
        ctor = InvokeExpr(
            "special", Local("c"), MethodSig("com.C", "<init>")
        )
        assert ctor.is_constructor


class TestConditionExpr:
    @pytest.mark.parametrize(
        "op,negated",
        [("==", "!="), ("!=", "=="), ("<", ">="), (">=", "<"), (">", "<="), ("<=", ">")],
    )
    def test_negation(self, op, negated):
        cond = ConditionExpr(op, Local("a"), Const(0))
        assert cond.negate().op == negated

    def test_double_negation_is_identity(self):
        cond = ConditionExpr("<", Local("a"), Const(0))
        assert cond.negate().negate() == cond

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            ConditionExpr("===", Local("a"), Const(0))


class TestBinaryExpr:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            BinaryExpr("**", Local("a"), Const(2))

    def test_operands(self):
        expr = BinaryExpr("+", Local("a"), Local("b"))
        assert expr.operands() == (Local("a"), Local("b"))


class TestLocalsIn:
    def test_atomic_local(self):
        assert locals_in(Local("x")) == (Local("x"),)

    def test_constant_has_no_locals(self):
        assert locals_in(Const(3)) == ()

    def test_nested_expression(self):
        expr = BinaryExpr("+", CastExpr("int", Local("a")), Local("b"))
        assert set(locals_in(expr)) == {Local("a"), Local("b")}

    def test_invoke_collects_receiver_and_args(self):
        expr = InvokeExpr(
            KIND_VIRTUAL, Local("c"), MethodSig("com.C", "m", ("?", "?")),
            (Local("x"), Const(1)),
        )
        assert set(locals_in(expr)) == {Local("c"), Local("x")}

    def test_field_ref(self):
        ref = FieldRef(Local("o"), FieldSig("com.C", "f"))
        assert locals_in(ref) == (Local("o"),)

    def test_instanceof(self):
        expr = InstanceOfExpr(Local("e"), "com.E")
        assert locals_in(expr) == (Local("e"),)

    def test_unary(self):
        assert locals_in(UnaryExpr("neg", Local("n"))) == (Local("n"),)

    def test_new_has_no_locals(self):
        assert locals_in(NewExpr("com.C")) == ()
