"""Parser internals: comment stripping, argument splitting, edge cases."""

import pytest

from repro.ir import ParseError, parse_stmt
from repro.ir.parser import _split_args, _strip_comment, parse_atom


class TestStripComment:
    def test_plain_comment_removed(self):
        assert _strip_comment("x = 5  # set x") == "x = 5"

    def test_full_line_comment_empties(self):
        assert _strip_comment("# just a note") == ""

    def test_hash_inside_string_kept(self):
        assert _strip_comment("x = 'a#b'") == "x = 'a#b'"

    def test_invoke_callee_hash_kept(self):
        line = "invoke static com.U#log('x')"
        assert _strip_comment(line) == line

    def test_apostrophe_in_comment_safe(self):
        # Regression: "the paper's" in a comment must not leak through.
        assert _strip_comment("# the paper's FP shape") == ""

    def test_comment_after_invoke(self):
        assert (
            _strip_comment("invoke static com.U#log('x')  # logs")
            == "invoke static com.U#log('x')"
        )


class TestSplitArgs:
    def test_empty(self):
        assert _split_args("") == []

    def test_simple(self):
        assert _split_args("a, 5, null") == ["a", "5", "null"]

    def test_comma_inside_string(self):
        assert _split_args("'a,b', c") == ["'a,b'", "c"]

    def test_trailing_whitespace(self):
        assert _split_args("  a ,  b  ") == ["a", "b"]


class TestAtoms:
    def test_empty_string_constant(self):
        atom = parse_atom("''")
        assert atom.value == ""

    def test_garbage_rejected_with_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            parse_atom("@@bad@@", line_no=42)
        assert "line 42" in str(excinfo.value)


class TestStatementEdgeCases:
    def test_return_with_string(self):
        stmt = parse_stmt("return 'done'")
        assert stmt.value.value == "done"

    def test_invoke_no_args(self):
        stmt = parse_stmt("invoke virtual c:com.C#close()")
        assert stmt.invoke().args == ()

    def test_negative_constant_argument(self):
        stmt = parse_stmt("invoke virtual c:com.C#seek(-5)")
        assert stmt.invoke().args[0].value == -5

    def test_missing_paren_rejected(self):
        with pytest.raises(ParseError):
            parse_stmt("invoke virtual c:com.C#close(")

    def test_bad_assignment_target_rejected(self):
        with pytest.raises(ParseError):
            parse_stmt("com.Class.field = 5")

    def test_binary_with_negative_right(self):
        stmt = parse_stmt("x = a + -3")
        from repro.ir import BinaryExpr

        assert isinstance(stmt.value, BinaryExpr)
        assert stmt.value.right.value == -3

    @pytest.mark.parametrize(
        "line",
        [
            "invoke bogus c:com.C#m()",  # unknown dispatch kind
            "invoke static c:com.C#m()",  # static call with a receiver
            "invoke virtual com.C#m()",  # instance call without one
        ],
    )
    def test_invoke_shape_errors_are_parse_errors(self, line):
        """Structural invoke violations surface as ParseError, never as a
        bare ValueError from the value layer."""
        with pytest.raises(ParseError):
            parse_stmt(line)
