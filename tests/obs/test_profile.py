"""Span-tree profile attribution: folding traces, merging forests, and
the `--profile` CLI surface (including `--jobs N` node-for-node parity)."""

import json
from pathlib import Path

from repro.cli import main
from repro.obs import (
    flatten_profile,
    merge_profiles,
    profile_from_events,
    profile_total_ms,
    render_profile,
)

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "apps"
APPS = sorted(str(p) for p in EXAMPLES.glob("*.apkt"))


def _ev(name, ph, ts, pid=1, tid=1):
    return {"name": name, "cat": "scan", "ph": ph, "ts": ts,
            "pid": pid, "tid": tid}


def _shape(profile):
    """The deterministic axis of a forest: names and counts only."""
    return {
        name: (node["count"], _shape(node["children"]))
        for name, node in profile.items()
    }


class TestFold:
    def test_nesting_and_self_vs_cumulative(self):
        # a [0, 5ms] containing b [1ms, 3ms]: a's self time excludes b.
        events = [
            _ev("a", "B", 0), _ev("b", "B", 1000),
            _ev("b", "E", 3000), _ev("a", "E", 5000),
        ]
        forest = profile_from_events(events)
        assert list(forest) == ["a"]
        a = forest["a"]
        assert (a["count"], a["cum_ms"], a["self_ms"]) == (1, 5.0, 3.0)
        b = a["children"]["b"]
        assert (b["count"], b["cum_ms"], b["self_ms"]) == (1, 2.0, 2.0)
        assert profile_total_ms(forest) == 5.0

    def test_same_name_siblings_pool_into_one_node(self):
        events = [
            _ev("a", "B", 0),
            _ev("b", "B", 1000), _ev("b", "E", 2000),
            _ev("b", "B", 3000), _ev("b", "E", 5000),
            _ev("a", "E", 6000),
        ]
        a = profile_from_events(events)["a"]
        assert list(a["children"]) == ["b"]
        b = a["children"]["b"]
        assert b["count"] == 2
        assert b["cum_ms"] == 3.0
        assert a["self_ms"] == 3.0

    def test_tracks_nest_independently_but_share_the_forest(self):
        # The same root name on two (pid, tid) tracks pools: counts sum.
        events = [
            _ev("scan", "B", 0, tid=1), _ev("scan", "B", 0, tid=2),
            _ev("scan", "E", 1000, tid=1), _ev("scan", "E", 3000, tid=2),
        ]
        forest = profile_from_events(events)
        assert forest["scan"]["count"] == 2
        assert forest["scan"]["cum_ms"] == 4.0

    def test_interleaved_tracks_do_not_cross_attribute(self):
        # tid 2's span opens and closes while tid 1's is open; it must
        # not become tid 1's child.
        events = [
            _ev("outer", "B", 0, tid=1),
            _ev("other", "B", 100, tid=2), _ev("other", "E", 600, tid=2),
            _ev("outer", "E", 1000, tid=1),
        ]
        forest = profile_from_events(events)
        assert set(forest) == {"outer", "other"}
        assert forest["outer"]["children"] == {}
        assert forest["outer"]["self_ms"] == 1.0

    def test_malformed_streams_are_tolerated(self):
        # An E with no open B is skipped; a never-closed B contributes
        # nothing and is pruned unless a closed descendant needs it.
        orphan_e = [_ev("x", "E", 100)]
        assert profile_from_events(orphan_e) == {}
        unclosed_b = [_ev("x", "B", 0)]
        assert profile_from_events(unclosed_b) == {}
        kept_path = [
            _ev("x", "B", 0),
            _ev("y", "B", 100), _ev("y", "E", 600),
        ]
        forest = profile_from_events(kept_path)
        assert forest["x"]["count"] == 0
        assert forest["x"]["children"]["y"]["count"] == 1

    def test_non_be_phases_are_ignored(self):
        events = [
            _ev("a", "B", 0),
            {"name": "meta", "ph": "M", "ts": 0, "pid": 1, "tid": 1},
            _ev("a", "E", 1000),
        ]
        assert list(profile_from_events(events)) == ["a"]

    def test_forest_is_json_safe_and_sorted(self):
        events = [
            _ev("b", "B", 0), _ev("b", "E", 1000),
            _ev("a", "B", 2000), _ev("a", "E", 3000),
        ]
        forest = profile_from_events(events)
        assert json.loads(json.dumps(forest)) == forest
        assert list(forest) == ["a", "b"]


class TestMerge:
    def _tree(self, ms):
        # Durations are whole milliseconds, so float sums stay exact and
        # the associativity assertions below can use ==.
        return profile_from_events([
            _ev("a", "B", 0), _ev("b", "B", 0),
            _ev("b", "E", ms * 1000), _ev("a", "E", ms * 2000),
        ])

    def test_counts_and_times_sum_children_recurse(self):
        merged = merge_profiles([self._tree(1), self._tree(2)])
        a = merged["a"]
        assert a["count"] == 2
        assert a["cum_ms"] == 6.0
        assert a["children"]["b"]["cum_ms"] == 3.0

    def test_merge_is_associative_and_commutative(self):
        trees = [self._tree(ms) for ms in (1, 2, 4)]
        left = merge_profiles([merge_profiles(trees[:2]), trees[2]])
        right = merge_profiles([trees[0], merge_profiles(trees[1:])])
        flat = merge_profiles(trees)
        reverse = merge_profiles(list(reversed(trees)))
        assert left == right == flat == reverse

    def test_merge_identity_and_empties(self):
        tree = self._tree(3)
        assert merge_profiles([tree]) == tree
        assert merge_profiles([]) == {}
        assert merge_profiles([{}, None, tree]) == tree


class TestFlattenAndRender:
    def _forest(self):
        return profile_from_events([
            _ev("scan", "B", 0),
            _ev("pass:connectivity", "B", 1000),
            _ev("pass:connectivity", "E", 4000),
            _ev("scan", "E", 5000),
            _ev("load", "B", 6000), _ev("load", "E", 7000),
        ])

    def test_flatten_joins_paths(self):
        flat = flatten_profile(self._forest())
        assert set(flat) == {"scan", "scan/pass:connectivity", "load"}
        assert flat["scan/pass:connectivity"]["count"] == 1
        assert flat["scan/pass:connectivity"]["cum_ms"] == 3.0

    def test_render_orders_by_cumulative_time_and_indents(self):
        text = render_profile(self._forest())
        lines = text.splitlines()
        assert lines[0] == "== profile =="
        assert lines[1].startswith("span")
        body = lines[2:]
        assert body[0].startswith("scan")  # 5ms before load's 1ms
        assert body[1].startswith("  pass:connectivity")
        assert body[2].startswith("load")

    def test_render_empty_profile(self):
        assert "(no spans recorded)" in render_profile({})


class TestCli:
    def _profile(self, tmp_path, capsys, jobs):
        out = tmp_path / f"m{jobs}.json"
        main(["scan", "--jobs", str(jobs), "--no-disk-cache",
              "--metrics", str(out), *APPS])
        capsys.readouterr()
        return json.loads(out.read_text())["profile"]

    def test_jobs_profile_matches_serial_node_for_node(self, tmp_path, capsys):
        # The acceptance bar: a merged `--jobs 4` tree equals `--jobs 1`
        # on every name and count (times are clock, so only the shape is
        # exact).
        serial = self._profile(tmp_path, capsys, 1)
        merged = self._profile(tmp_path, capsys, 4)
        assert serial  # non-empty: the scan recorded spans
        assert _shape(serial) == _shape(merged)
        flat = flatten_profile(serial)
        assert any(p.startswith("scan/pass:") for p in flat)
        assert "load" in flat

    def test_profile_flag_renders_table_on_stderr_only(self, capsys):
        main(["scan", "--no-disk-cache", "--profile", APPS[0]])
        captured = capsys.readouterr()
        assert "== profile ==" in captured.err
        assert "== profile ==" not in captured.out

    def test_default_stdout_identical_with_profiling_on(self, capsys):
        main(["scan", "--no-disk-cache", *APPS])
        plain = capsys.readouterr().out
        main(["scan", "--no-disk-cache", "--profile", *APPS])
        profiled = capsys.readouterr().out
        assert plain == profiled
