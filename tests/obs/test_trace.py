"""Tracer correctness: event schema, B/E nesting, thread safety."""

import json
import threading

from repro.obs import NULL_SPAN, Tracer, chrome_trace, span, tracer, use_tracer
from repro.obs.trace import _Span

REQUIRED_KEYS = {"name", "cat", "ph", "ts", "pid", "tid"}


def check_balanced_be(events):
    """Every exported tid must carry a properly nested B/E sequence."""
    stacks = {}
    for event in events:
        stack = stacks.setdefault(event["tid"], [])
        if event["ph"] == "B":
            stack.append(event["name"])
        elif event["ph"] == "E":
            assert stack, f"E without open B on tid {event['tid']}"
            stack.pop()
    for tid, stack in stacks.items():
        assert not stack, f"unclosed spans on tid {tid}: {stack}"


class TestTracer:
    def test_disabled_returns_null_span_singleton(self):
        t = Tracer(enabled=False)
        assert t.span("a") is NULL_SPAN
        assert t.span("b", key="v") is NULL_SPAN
        with t.span("c"):
            pass
        assert t.export() == []
        assert t.spans_opened == 0

    def test_default_global_tracer_is_disabled(self):
        assert not tracer().enabled
        assert span("anything") is NULL_SPAN

    def test_events_have_required_keys(self):
        t = Tracer(enabled=True)
        with t.span("outer", package="com.x"):
            with t.span("inner"):
                pass
        events = t.export()
        assert len(events) == 4
        for event in events:
            assert REQUIRED_KEYS <= set(event)
        assert events[0]["args"] == {"package": "com.x"}

    def test_nesting_is_balanced(self):
        t = Tracer(enabled=True)
        with t.span("a"):
            with t.span("b"):
                pass
            with t.span("c"):
                with t.span("d"):
                    pass
        events = t.export()
        check_balanced_be(events)
        assert [e["name"] for e in events if e["ph"] == "B"] == [
            "a", "b", "c", "d"
        ]

    def test_timestamps_monotone_per_thread(self):
        t = Tracer(enabled=True)
        with t.span("a"):
            with t.span("b"):
                pass
        ts = [e["ts"] for e in t.export()]
        assert ts == sorted(ts)

    def test_thread_safety(self):
        t = Tracer(enabled=True)

        def work():
            for _ in range(50):
                with t.span("w"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        events = t.export()
        assert len(events) == 4 * 50 * 2
        check_balanced_be(events)
        assert t.spans_opened == 4 * 50

    def test_use_tracer_restores_previous(self):
        before = tracer()
        with use_tracer(Tracer(enabled=True)) as active:
            assert tracer() is active
            with span("x"):
                pass
            assert active.spans_opened == 1
        assert tracer() is before

    def test_export_is_picklable_and_json_safe(self):
        t = Tracer(enabled=True)
        with t.span("s", n=1):
            pass
        wrapped = chrome_trace(t.export())
        parsed = json.loads(json.dumps(wrapped))
        assert parsed["traceEvents"][0]["name"] == "s"
        assert parsed["displayTimeUnit"] == "ms"

    def test_clear_resets(self):
        t = Tracer(enabled=True)
        with t.span("s"):
            pass
        t.clear()
        assert t.export() == []
        assert t.spans_opened == 0

    def test_span_allocates_only_when_enabled(self):
        t = Tracer(enabled=True)
        assert isinstance(t.span("s"), _Span)
        t.enabled = False
        assert t.span("s") is NULL_SPAN
