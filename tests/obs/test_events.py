"""The run ledger: record identity, the JSONL file contract, and
directory resolution."""

import json

from repro.core.checker import NCheckerOptions
from repro.obs import (
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    app_set_digest,
    git_head_sha,
    provenance,
    resolve_ledger_dir,
    run_record,
)
from repro.obs.events import timing_summary


def _snapshot(counters=None):
    return {
        "counters": counters or {"scan.apps": 2, "pass.connectivity.runs": 2},
        "gauges": {"callgraph.methods": 10.0},
        "histograms": {
            "pass.connectivity.wall_ms": {
                "count": 2, "total": 3.0, "p50": 1.0, "p95": 2.0,
                "p99": 2.0, "max": 2.0, "decimation": 1,
                "values": [1.0, 2.0],
            },
        },
    }


def _record(**kwargs):
    defaults = dict(
        options=NCheckerOptions(),
        app_set={"count": 2, "digest": "abc"},
        snapshot=_snapshot(),
    )
    defaults.update(kwargs)
    return run_record("bench", **defaults)


class TestLedgerDir:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("NCHECKER_LEDGER_DIR", "/env/dir")
        assert resolve_ledger_dir("/my/dir") == "/my/dir"

    def test_env_var_beats_xdg(self, monkeypatch):
        monkeypatch.setenv("NCHECKER_LEDGER_DIR", "/env/dir")
        monkeypatch.setenv("XDG_STATE_HOME", "/xdg/state")
        assert resolve_ledger_dir() == "/env/dir"

    def test_xdg_state_home(self, monkeypatch):
        monkeypatch.delenv("NCHECKER_LEDGER_DIR", raising=False)
        monkeypatch.setenv("XDG_STATE_HOME", "/xdg/state")
        assert resolve_ledger_dir() == "/xdg/state/nchecker"

    def test_home_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("NCHECKER_LEDGER_DIR", raising=False)
        monkeypatch.delenv("XDG_STATE_HOME", raising=False)
        monkeypatch.setenv("HOME", str(tmp_path))
        assert resolve_ledger_dir() == str(
            tmp_path / ".local" / "state" / "nchecker"
        )


class TestAppSetDigest:
    def test_order_independent_and_content_sensitive(self, tmp_path):
        a = tmp_path / "a.apkt"
        b = tmp_path / "b.apkt"
        a.write_text("alpha")
        b.write_text("beta")
        forward = app_set_digest([str(a), str(b)])
        assert forward == app_set_digest([str(b), str(a)])
        assert forward["count"] == 2
        a.write_text("alpha-changed")
        assert app_set_digest([str(a), str(b)]) != forward

    def test_digest_survives_directory_moves(self, tmp_path):
        one = tmp_path / "one" / "app.apkt"
        two = tmp_path / "two" / "app.apkt"
        for path in (one, two):
            path.parent.mkdir()
            path.write_text("same bytes")
        assert app_set_digest([str(one)]) == app_set_digest([str(two)])

    def test_unreadable_file_degrades_to_its_name(self, tmp_path):
        digest = app_set_digest([str(tmp_path / "missing.apkt")])
        assert digest["count"] == 1  # counted, not dropped


class TestRunRecord:
    def test_identity_ignores_wall_clock_fields(self):
        fast = _record(wall_s=0.1, label="fast", git_sha="a" * 40)
        slow = _record(wall_s=99.0, label="slow", git_sha=None)
        assert fast["run_id"] == slow["run_id"]

    def test_identity_tracks_behaviour(self):
        base = _record()
        changed = _record(
            snapshot=_snapshot({"scan.apps": 2, "pass.connectivity.runs": 3})
        )
        other_apps = _record(app_set={"count": 2, "digest": "zzz"})
        assert base["run_id"] != changed["run_id"]
        assert base["run_id"] != other_apps["run_id"]

    def test_record_is_json_safe_with_summarized_timings(self):
        record = _record(wall_s=1.0)
        assert json.loads(json.dumps(record)) == record
        assert record["schema_version"] == LEDGER_SCHEMA_VERSION
        hist = record["timings"]["pass.connectivity.wall_ms"]
        assert set(hist) == {
            "count", "total", "p50", "p95", "p99", "max", "decimation"
        }
        assert "values" not in hist  # reservoirs never reach the ledger

    def test_provenance_carries_identity_not_measurements(self):
        record = _record(wall_s=1.0)
        prov = provenance(record)
        assert prov["run_id"] == record["run_id"]
        assert prov["options_fingerprint"] == record["options_fingerprint"]
        for key in ("wall_s", "counters", "timings", "profile"):
            assert key not in prov


class TestTimingSummary:
    def test_sorted_and_defaulted(self):
        snap = {"histograms": {"b": {"count": 1}, "a": {}}}
        out = timing_summary(snap)
        assert list(out) == ["a", "b"]
        assert out["a"]["decimation"] == 1
        assert out["b"]["count"] == 1


class TestRunLedger:
    def test_append_and_read_back(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "state"))
        stored = ledger.append(_record(wall_s=0.5))
        assert ledger.path.exists()
        entries = ledger.entries()
        assert entries == [stored]
        assert ledger.last("bench") == stored
        assert ledger.last("scan") is None

    def test_append_stamps_handmade_records(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        stored = ledger.append({"kind": "bench", "counters": {"c": 1}})
        assert stored["schema_version"] == LEDGER_SCHEMA_VERSION
        assert stored["run_id"]

    def test_torn_lines_are_skipped(self, tmp_path):
        ledger = RunLedger(str(tmp_path))
        first = ledger.append(_record())
        with open(ledger.path, "a") as fh:
            fh.write('{"torn": \n')
        second = ledger.append(_record(label="after"))
        assert ledger.entries() == [first, second]

    def test_missing_file_reads_empty(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "never-written"))
        assert ledger.entries() == []
        assert ledger.last() is None


class TestGitSha:
    def test_repo_checkout_or_none(self):
        sha = git_head_sha()
        assert sha is None or (len(sha) == 40 and int(sha, 16) >= 0)

    def test_non_repo_directory_is_none(self, tmp_path):
        assert git_head_sha(cwd=str(tmp_path)) is None
