"""Regression comparison: the rules `bench compare|gate` apply to two
recorded runs."""

import copy
import json

import pytest

from repro.core.checker import NCheckerOptions
from repro.obs import compare_runs, load_run, run_record
from repro.obs.compare import gate


def _snapshot():
    return {
        "counters": {
            "scan.apps": 4,
            "pass.connectivity.runs": 4,
            "cache.local.callgraph.hits": 7,
        },
        "gauges": {},
        "histograms": {
            "pass.connectivity.wall_ms": {
                "count": 4, "total": 100.0, "p50": 20.0, "p95": 40.0,
                "p99": 40.0, "max": 40.0, "decimation": 1, "values": [],
            },
            "pass.tiny.wall_ms": {
                "count": 4, "total": 0.04, "p50": 0.01, "p95": 0.02,
                "p99": 0.02, "max": 0.02, "decimation": 1, "values": [],
            },
        },
        "profile": {
            "scan": {
                "count": 4, "cum_ms": 100.0, "self_ms": 60.0,
                "children": {
                    "pass:connectivity": {
                        "count": 4, "cum_ms": 40.0, "self_ms": 40.0,
                        "children": {},
                    },
                },
            },
        },
    }


def _run(**kwargs):
    defaults = dict(
        options=NCheckerOptions(),
        app_set={"count": 4, "digest": "abc"},
        snapshot=_snapshot(),
        wall_s=1.0,
    )
    defaults.update(kwargs)
    return run_record("bench", **defaults)


@pytest.fixture
def baseline():
    return _run()


class TestCounters:
    def test_identical_runs_pass(self, baseline):
        result = compare_runs(baseline, copy.deepcopy(baseline))
        assert result.ok
        assert result.counter_rows == []
        code, _ = gate(baseline, copy.deepcopy(baseline))
        assert code == 0

    def test_deterministic_counter_drift_gates(self, baseline):
        current = copy.deepcopy(baseline)
        current["counters"]["pass.connectivity.runs"] = 5
        code, result = gate(baseline, current)
        assert code == 1
        assert any("pass.connectivity.runs" in r for r in result.regressions)

    def test_missing_counter_compares_as_zero(self, baseline):
        current = copy.deepcopy(baseline)
        del current["counters"]["pass.connectivity.runs"]
        assert not compare_runs(baseline, current).ok

    def test_cache_counters_report_but_never_gate(self, baseline):
        current = copy.deepcopy(baseline)
        current["counters"]["cache.local.callgraph.hits"] = 0
        result = compare_runs(baseline, current)
        assert result.ok
        assert ["cache.local.callgraph.hits", 7, 0, "state-dependent"] in (
            result.counter_rows
        )


class TestTimings:
    def _with_total(self, record, total):
        out = copy.deepcopy(record)
        out["timings"]["pass.connectivity.wall_ms"]["total"] = total
        return out

    def test_regression_beyond_threshold_gates(self, baseline):
        current = self._with_total(baseline, 125.0)  # +25% on 100 ms
        code, result = gate(baseline, current)
        assert code == 1
        assert any("pass.connectivity.wall_ms" in r for r in result.regressions)

    def test_threshold_is_configurable(self, baseline):
        current = self._with_total(baseline, 125.0)
        code, _ = gate(baseline, current, threshold=0.5)
        assert code == 0

    def test_improvement_reports_without_gating(self, baseline):
        current = self._with_total(baseline, 50.0)
        result = compare_runs(baseline, current)
        assert result.ok
        assert any(row[4] == "improved" for row in result.timing_rows)

    def test_sub_floor_jitter_never_gates(self, baseline):
        # pass.tiny doubles from 0.04 to 0.08 ms: +100%, but both totals
        # sit under the absolute noise floor.
        current = copy.deepcopy(baseline)
        current["timings"]["pass.tiny.wall_ms"]["total"] = 0.08
        assert compare_runs(baseline, current).ok
        # Lowering the floor turns the same delta into a regression.
        assert not compare_runs(baseline, current, min_total_ms=0.01).ok

    def test_gone_and_new_timings_inform_only(self, baseline):
        current = copy.deepcopy(baseline)
        del current["timings"]["pass.tiny.wall_ms"]
        current["timings"]["pass.fresh.wall_ms"] = {"total": 1.0}
        result = compare_runs(baseline, current)
        assert result.ok
        notes = {row[4] for row in result.timing_rows}
        assert {"gone", "new"} <= notes


class TestIdentityGuards:
    def test_options_fingerprint_mismatch_gates(self, baseline):
        current = copy.deepcopy(baseline)
        current["options_fingerprint"] = "f" * 24
        code, result = gate(baseline, current)
        assert code == 1
        assert any("options fingerprint" in r for r in result.regressions)

    def test_app_set_mismatch_gates(self, baseline):
        current = copy.deepcopy(baseline)
        current["app_set"]["digest"] = "other"
        assert not compare_runs(baseline, current).ok


class TestProfile:
    def test_count_change_gates(self, baseline):
        current = copy.deepcopy(baseline)
        node = current["profile"]["scan"]["children"]["pass:connectivity"]
        node["count"] = 5
        code, result = gate(baseline, current)
        assert code == 1
        assert any("scan/pass:connectivity" in r for r in result.regressions)

    def test_time_shift_informs_without_gating(self, baseline):
        current = copy.deepcopy(baseline)
        current["profile"]["scan"]["cum_ms"] = 200.0
        result = compare_runs(baseline, current)
        assert result.ok
        assert ["scan", 4, 4, 100.0, 200.0, "time shifted"] in (
            result.profile_rows
        )


class TestLoadRun:
    def test_single_json_with_provenance_lifted(self, tmp_path, baseline):
        export = {
            "schema_version": 2,
            "provenance": {
                "run_id": baseline["run_id"],
                "options_fingerprint": baseline["options_fingerprint"],
            },
            "counters": baseline["counters"],
            "timings": baseline["timings"],
        }
        path = tmp_path / "export.json"
        path.write_text(json.dumps(export))
        loaded = load_run(path)
        assert loaded["run_id"] == baseline["run_id"]
        assert loaded["options_fingerprint"] == baseline["options_fingerprint"]

    def test_jsonl_takes_last_record(self, tmp_path, baseline):
        newer = copy.deepcopy(baseline)
        newer["label"] = "newer"
        path = tmp_path / "ledger.jsonl"
        path.write_text(
            json.dumps(baseline) + "\n" + json.dumps(newer) + "\n"
        )
        assert load_run(path)["label"] == "newer"

    def test_raw_metrics_snapshot_gets_timings_summarized(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(_snapshot()))
        loaded = load_run(path)
        assert "pass.connectivity.wall_ms" in loaded["timings"]
        assert loaded["timings"]["pass.connectivity.wall_ms"]["p99"] == 40.0

    def test_counterless_file_is_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"timings": {}}))
        with pytest.raises(ValueError):
            load_run(path)


class TestRender:
    def test_sections_and_verdict(self, baseline):
        current = copy.deepcopy(baseline)
        current["counters"]["pass.connectivity.runs"] = 9
        text = compare_runs(baseline, current).render()
        assert "== bench compare ==" in text
        assert "-- counters:" in text
        assert "-- timings:" in text
        assert "REGRESSION: deterministic counter" in text
        clean = compare_runs(baseline, copy.deepcopy(baseline)).render()
        assert "-- verdict: OK --" in clean
