"""Metrics registry: instruments, snapshots, and the merge protocol."""

import json
import pickle

import pytest

from repro.obs import (
    MetricsRegistry,
    empty_snapshot,
    merge_snapshots,
    metrics,
    use_metrics,
)
from repro.obs.metrics import Histogram, percentile


class TestInstruments:
    def test_counter(self):
        r = MetricsRegistry()
        r.inc("a")
        r.inc("a", 4)
        assert r.counter_value("a") == 5
        assert r.counter_value("missing") == 0

    def test_gauge(self):
        r = MetricsRegistry()
        r.set_gauge("g", 3.5)
        r.set_gauge("g", 2.0)  # last write wins
        assert r.gauge_value("g") == 2.0
        assert r.gauge_value("missing") == 0.0

    def test_histogram_exact_fields(self):
        r = MetricsRegistry()
        for v in (1.0, 2.0, 3.0, 10.0):
            r.observe("h", v)
        h = r.histogram("h")
        assert h.count == 4
        assert h.total == 16.0
        assert h.max == 10.0

    def test_timer_records_milliseconds(self):
        r = MetricsRegistry()
        with r.timer("t.wall_ms"):
            pass
        h = r.histogram("t.wall_ms")
        assert h.count == 1
        assert 0.0 <= h.max < 1000.0

    def test_same_name_returns_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")
        assert r.gauge("x") is r.gauge("x")
        assert r.histogram("x") is r.histogram("x")


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 100) == 100.0

    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 95) == 7.0


class TestHistogramReservoir:
    def test_decimation_keeps_exact_count_total_max(self):
        h = Histogram()
        n = Histogram.CAP * 3
        for v in range(n):
            h.observe(float(v))
        assert h.count == n
        assert h.total == sum(float(v) for v in range(n))
        assert h.max == float(n - 1)
        assert len(h.values) <= Histogram.CAP

    def test_percentiles_stay_plausible_after_decimation(self):
        h = Histogram()
        n = Histogram.CAP * 2
        for v in range(n):
            h.observe(float(v))
        # Decimation keeps the tail at full rate, so on a monotone stream
        # percentiles skew recent — but must stay ordered and in range.
        assert 0.0 <= h.percentile(50) <= h.percentile(95) <= h.max
        assert h.percentile(50) >= percentile(
            [float(v) for v in range(n)], 50
        )


class TestSnapshot:
    def test_snapshot_is_json_safe_and_picklable(self):
        r = MetricsRegistry()
        r.inc("c", 2)
        r.set_gauge("g", 1.5)
        r.observe("h", 4.0)
        snap = r.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert pickle.loads(pickle.dumps(snap)) == snap
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        hist = snap["histograms"]["h"]
        assert hist["count"] == 1
        assert hist["p50"] == hist["p95"] == hist["p99"] == hist["max"] == 4.0

    def test_snapshot_exposes_decimation_factor(self):
        r = MetricsRegistry()
        r.observe("small", 1.0)
        assert r.snapshot()["histograms"]["small"]["decimation"] == 1
        for v in range(Histogram.CAP * 3):
            r.observe("big", float(v))
        big = r.snapshot()["histograms"]["big"]
        assert big["decimation"] > 1  # reservoir halved at least once
        assert big["count"] == Histogram.CAP * 3  # exact fields stay exact

    def test_snapshot_keys_are_sorted(self):
        r = MetricsRegistry()
        r.inc("b")
        r.inc("a")
        assert list(r.snapshot()["counters"]) == ["a", "b"]

    def test_empty_snapshot_shape(self):
        assert empty_snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }


class TestMerge:
    def _registry(self, counter, gauge, samples):
        r = MetricsRegistry()
        r.inc("c", counter)
        r.set_gauge("g", gauge)
        for v in samples:
            r.observe("h", v)
        return r

    def test_counters_sum_gauges_max_histograms_pool(self):
        a = self._registry(2, 5.0, [1.0, 2.0])
        b = self._registry(3, 4.0, [3.0])
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["c"] == 5
        assert merged["gauges"]["g"] == 5.0
        hist = merged["histograms"]["h"]
        assert hist["count"] == 3
        assert hist["total"] == 6.0
        assert hist["max"] == 3.0
        assert hist["p50"] == 2.0

    def test_merge_is_order_independent_on_deterministic_fields(self):
        snaps = [self._registry(i, float(i), [float(i)]).snapshot()
                 for i in range(1, 5)]
        forward = merge_snapshots(snaps)
        backward = merge_snapshots(list(reversed(snaps)))
        assert forward["counters"] == backward["counters"]
        assert forward["gauges"] == backward["gauges"]
        for name in forward["histograms"]:
            for key in ("count", "total", "max"):
                assert (forward["histograms"][name][key]
                        == backward["histograms"][name][key])

    def test_merge_skips_empty_and_none(self):
        a = self._registry(1, 1.0, [1.0])
        merged = merge_snapshots([None, {}, a.snapshot(), empty_snapshot()])
        assert merged["counters"] == {"c": 1}

    def test_merge_of_nothing_is_empty(self):
        assert merge_snapshots([]) == empty_snapshot()

    def test_disjoint_key_sets_union(self):
        a = MetricsRegistry()
        a.inc("only.a")
        a.observe("hist.a", 1.0)
        b = MetricsRegistry()
        b.inc("only.b", 2)
        b.set_gauge("gauge.b", 4.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"] == {"only.a": 1, "only.b": 2}
        assert merged["gauges"] == {"gauge.b": 4.0}
        assert merged["histograms"]["hist.a"]["count"] == 1

    def test_merge_of_one_is_identity_on_deterministic_fields(self):
        snap = self._registry(3, 2.0, [1.0, 2.0, 3.0]).snapshot()
        merged = merge_snapshots([snap])
        assert merged["counters"] == snap["counters"]
        assert merged["gauges"] == snap["gauges"]
        for key in ("count", "total", "max", "decimation"):
            assert (merged["histograms"]["h"][key]
                    == snap["histograms"]["h"][key])

    def test_self_merge_doubles_counters_keeps_gauges_and_max(self):
        snap = self._registry(3, 2.0, [1.0, 5.0]).snapshot()
        merged = merge_snapshots([snap, snap])
        assert merged["counters"]["c"] == 6
        assert merged["gauges"]["g"] == 2.0  # max of equals
        hist = merged["histograms"]["h"]
        assert hist["count"] == 4
        assert hist["max"] == 5.0

    def test_profile_trees_pool_through_the_snapshot_merge(self):
        # A worker snapshot may carry a `profile` forest; merging must
        # pool the trees with everything else, associatively.  Whole-ms
        # durations keep float sums binary-exact, so == is safe.
        def snap(ms):
            from repro.obs import profile_from_events

            s = self._registry(1, 1.0, [1.0]).snapshot()
            s["profile"] = profile_from_events([
                {"name": "scan", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
                {"name": "scan", "ph": "E", "ts": ms * 1000,
                 "pid": 1, "tid": 1},
            ])
            return s

        snaps = [snap(ms) for ms in (1, 2, 4)]
        left = merge_snapshots([merge_snapshots(snaps[:2]), snaps[2]])
        flat = merge_snapshots(snaps)
        assert left["profile"] == flat["profile"]
        assert flat["profile"]["scan"]["count"] == 3
        assert flat["profile"]["scan"]["cum_ms"] == 7.0
        # A profile-less snapshot in the pool neither crashes nor zeroes
        # the merged tree.
        mixed = merge_snapshots([snaps[0], self._registry(1, 1.0, []).snapshot()])
        assert mixed["profile"]["scan"]["count"] == 1
        # No input carried a profile -> the merged snapshot has none.
        plain = merge_snapshots([self._registry(1, 1.0, []).snapshot()])
        assert "profile" not in plain

    def test_merged_equals_single_run(self):
        """The protocol's core promise: splitting deterministic work
        across registries and merging equals recording it all in one."""
        whole = self._registry(10, 3.0, [float(v) for v in range(10)])
        parts = [
            self._registry(4, 3.0, [0.0, 1.0, 2.0, 3.0]),
            self._registry(6, 2.0, [float(v) for v in range(4, 10)]),
        ]
        merged = merge_snapshots([p.snapshot() for p in parts])
        single = whole.snapshot()
        assert merged["counters"] == single["counters"]
        hist, ref = merged["histograms"]["h"], single["histograms"]["h"]
        assert hist["count"] == ref["count"]
        assert hist["total"] == ref["total"]
        assert hist["max"] == ref["max"]
        assert sorted(hist["values"]) == sorted(ref["values"])


class TestActiveRegistry:
    def test_use_metrics_installs_and_restores(self):
        before = metrics()
        with use_metrics() as fresh:
            assert metrics() is fresh
            assert fresh is not before
            metrics().inc("scoped")
            assert fresh.counter_value("scoped") == 1
        assert metrics() is before
        assert before.counter_value("scoped") == 0

    def test_use_metrics_accepts_existing_registry(self):
        mine = MetricsRegistry()
        with use_metrics(mine) as active:
            assert active is mine

    def test_use_metrics_restores_on_error(self):
        before = metrics()
        with pytest.raises(RuntimeError):
            with use_metrics():
                raise RuntimeError("boom")
        assert metrics() is before
