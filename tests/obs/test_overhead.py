"""Overhead guard: telemetry off must mean *no span objects at all* on
the scan hot path, and turning it on must never change scan results."""

from pathlib import Path

import pytest

from repro.app.loader import load_apk
from repro.core import NChecker
from repro.obs import NULL_SPAN, Tracer, tracer, use_tracer
from repro.obs import trace as trace_mod

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "apps"


@pytest.fixture()
def span_allocations(monkeypatch):
    """Count every _Span constructed while the fixture is live."""
    allocations = []
    real_init = trace_mod._Span.__init__

    def counting_init(self, *args, **kwargs):
        allocations.append(1)
        real_init(self, *args, **kwargs)

    monkeypatch.setattr(trace_mod._Span, "__init__", counting_init)
    return allocations


def test_disabled_scan_allocates_no_spans(span_allocations):
    assert not tracer().enabled, "tests must run with the default tracer"
    apk = load_apk(EXAMPLES / "newsreader.apkt")
    result = NChecker().scan(apk)
    assert result.findings  # the scan really ran
    assert span_allocations == []
    assert tracer().spans_opened == 0


def test_enabled_scan_does_allocate(span_allocations):
    """The guard above is meaningful only if the counter actually fires
    when tracing is on."""
    apk = load_apk(EXAMPLES / "newsreader.apkt")
    with use_tracer(Tracer(enabled=True)) as active:
        NChecker().scan(apk)
        assert active.spans_opened > 0
    assert len(span_allocations) == active.spans_opened


def test_disabled_span_helper_returns_the_singleton(span_allocations):
    from repro.obs import span

    first = span("a", key="value")
    second = span("b")
    assert first is NULL_SPAN and second is NULL_SPAN
    assert span_allocations == []


def test_tracing_never_changes_findings():
    apk_plain = load_apk(EXAMPLES / "newsreader.apkt")
    plain = NChecker().scan(apk_plain)
    apk_traced = load_apk(EXAMPLES / "newsreader.apkt")
    with use_tracer(Tracer(enabled=True)):
        traced = NChecker().scan(apk_traced)
    signature = lambda r: [
        (f.kind.value, f.method_key, f.stmt_index) for f in r.findings
    ]
    assert signature(plain) == signature(traced)
