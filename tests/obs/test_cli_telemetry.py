"""`nchecker scan` telemetry flags: --trace, --metrics, --stats,
--progress — and the stdout byte-identity contract behind all of them."""

import json
from pathlib import Path

import pytest

from repro.cli import main

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "apps"
APPS = sorted(str(p) for p in EXAMPLES.glob("*.apkt"))

REQUIRED_KEYS = {"name", "cat", "ph", "ts", "pid", "tid"}


def check_balanced(events):
    """B/E pairs must nest properly within every (pid, tid) track."""
    stacks = {}
    for event in events:
        stack = stacks.setdefault((event["pid"], event["tid"]), [])
        if event["ph"] == "B":
            stack.append(event["name"])
        elif event["ph"] == "E":
            assert stack, f"E without open B on track {event['pid']}/{event['tid']}"
            stack.pop()
    for track, stack in stacks.items():
        assert not stack, f"unclosed spans on track {track}: {stack}"


@pytest.fixture(autouse=True)
def _have_examples():
    assert len(APPS) >= 2, "example apps missing"


class TestTraceExport:
    def test_trace_is_schema_valid_chrome_json(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        main(["scan", "--trace", str(out), *APPS])
        trace = json.loads(out.read_text())
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert events
        for event in events:
            assert REQUIRED_KEYS <= set(event)
            assert event["ph"] in {"B", "E"}
            assert isinstance(event["ts"], int)
        check_balanced(events)
        names = {e["name"] for e in events}
        assert "scan" in names
        assert any(n.startswith("pass:") for n in names)
        assert any(n.startswith("artifact:") for n in names)

    def test_spans_survive_the_process_pool(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        main(["scan", "--jobs", "2", "--trace", str(out), *APPS])
        events = json.loads(out.read_text())["traceEvents"]
        check_balanced(events)
        # One scan span per app made it back across the pool.
        scans = [e for e in events if e["name"] == "scan" and e["ph"] == "B"]
        assert len(scans) == len(APPS)
        packages = {e["args"]["package"] for e in scans}
        assert len(packages) == len(APPS)

    def test_trace_notice_is_stderr_only(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        main(["scan", "--trace", str(out), APPS[0]])
        captured = capsys.readouterr()
        assert "wrote Chrome trace" not in captured.out
        assert "wrote Chrome trace" in captured.err


class TestMetricsExport:
    def _counters(self, tmp_path, capsys, jobs, *extra):
        out = tmp_path / f"m{jobs}.json"
        main(["scan", "--jobs", str(jobs), "--metrics", str(out), *extra, *APPS])
        capsys.readouterr()
        return json.loads(out.read_text())

    def test_merged_worker_metrics_equal_a_jobs1_run(self, tmp_path, capsys):
        # Cache off for both runs: the comparison is about merging worker
        # telemetry, so the second run must not be warmer than the first
        # (tests/pipeline/test_diskcache.py covers warm --jobs runs).
        serial = self._counters(tmp_path, capsys, 1, "--no-disk-cache")
        merged = self._counters(tmp_path, capsys, 2, "--no-disk-cache")
        assert serial["counters"] == merged["counters"]
        assert merged["counters"]["scan.apps"] == len(APPS)
        # Timing histograms merge too: counts are deterministic even
        # though the sampled durations are not.
        for name, hist in serial["histograms"].items():
            assert merged["histograms"][name]["count"] == hist["count"]

    def test_snapshot_covers_every_layer(self, tmp_path, capsys):
        snap = self._counters(tmp_path, capsys, jobs=1)
        counters = snap["counters"]
        assert any(n.startswith("pass.") for n in counters)
        assert any(n.startswith("artifact.") for n in counters)
        assert any(n.startswith("dataflow.") for n in counters)
        assert any(n.startswith("pass.") for n in snap["histograms"])
        assert snap["gauges"].get("callgraph.methods", 0) > 0


class TestStatsAndProgress:
    def test_stats_prints_telemetry_table_on_stderr(self, capsys):
        main(["scan", "--stats", APPS[0]])
        captured = capsys.readouterr()
        assert "== telemetry ==" in captured.err
        assert "-- passes --" in captured.err
        assert "-- artifacts --" in captured.err
        assert "== telemetry ==" not in captured.out

    def test_progress_heartbeats_on_stderr(self, capsys):
        main(["scan", "--progress", *APPS])
        captured = capsys.readouterr()
        assert f"[1/{len(APPS)}]" in captured.err
        assert f"[{len(APPS)}/{len(APPS)}]" in captured.err
        assert "[1/" not in captured.out

    def test_quiet_suppresses_diagnostics(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        main(["scan", "-q", "--progress", "--metrics", str(out), APPS[0]])
        captured = capsys.readouterr()
        assert captured.err == ""
        assert out.exists()  # the artifact still lands


class TestByteIdentity:
    def _stdout(self, capsys, argv):
        main(["scan", *argv])
        return capsys.readouterr().out

    def test_stdout_identical_with_telemetry_flags(self, tmp_path, capsys):
        plain = self._stdout(capsys, APPS)
        traced = self._stdout(capsys, [
            "--trace", str(tmp_path / "t.json"),
            "--metrics", str(tmp_path / "m.json"),
            "--progress", *APPS,
        ])
        assert plain == traced

    def test_stdout_identical_across_job_counts_with_tracing_on(
            self, tmp_path, capsys):
        one = self._stdout(
            capsys, ["--jobs", "1", "--trace", str(tmp_path / "t1.json"), *APPS]
        )
        four = self._stdout(
            capsys, ["--jobs", "4", "--trace", str(tmp_path / "t4.json"), *APPS]
        )
        assert one == four

    def test_json_output_unpolluted_by_stats(self, capsys):
        main(["scan", "--json", "--stats", *APPS])
        captured = capsys.readouterr()
        parsed = json.loads(captured.out)  # would raise if table leaked in
        assert len(parsed) == len(APPS)
        assert "== telemetry ==" in captured.err
