"""`nchecker bench record|compare|gate` end to end, plus the scan
`--ledger` hook."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import BENCH_SCHEMA_VERSION, RunLedger

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "apps"
APPS = sorted(str(p) for p in EXAMPLES.glob("*.apkt"))


@pytest.fixture(autouse=True)
def _isolated_ledger(monkeypatch, tmp_path):
    # Bench commands must never write the developer's real state dir
    # from a test run.
    monkeypatch.delenv("NCHECKER_LEDGER_DIR", raising=False)
    monkeypatch.setenv("XDG_STATE_HOME", str(tmp_path / "xdg-state"))


def _record(tmp_path, capsys, *extra):
    out = tmp_path / "export.json"
    code = main([
        "bench", "record", "--ledger-dir", str(tmp_path / "ledger"),
        "--out", str(out), *extra, *APPS,
    ])
    stdout = capsys.readouterr().out
    return code, stdout, out


class TestRecord:
    def test_appends_ledger_and_writes_export(self, tmp_path, capsys):
        code, stdout, out = _record(tmp_path, capsys, "--label", "smoke")
        assert code == 0
        assert "recorded bench run" in stdout
        entries = RunLedger(str(tmp_path / "ledger")).entries()
        assert len(entries) == 1
        record = entries[0]
        assert record["kind"] == "bench"
        assert record["label"] == "smoke"
        assert record["app_set"]["count"] == len(APPS)
        assert record["profile"]  # span tree rides along
        export = json.loads(out.read_text())
        assert export["schema_version"] == BENCH_SCHEMA_VERSION
        assert export["provenance"]["run_id"] == record["run_id"]
        assert export["counters"] == record["counters"]

    def test_run_id_is_reproducible(self, tmp_path, capsys):
        _record(tmp_path, capsys)
        _record(tmp_path, capsys)
        ids = [r["run_id"] for r in RunLedger(str(tmp_path / "ledger")).entries()]
        assert len(set(ids)) == 1

    def test_baseline_flag_writes_the_refresh_target(self, tmp_path, capsys,
                                                     monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["bench", "record", *APPS, "--ledger-dir",
                     str(tmp_path / "ledger"), "--baseline"])
        capsys.readouterr()
        assert code == 0
        baseline = tmp_path / "benchmarks" / "bench_baseline.json"
        assert baseline.exists()
        assert json.loads(baseline.read_text())["schema_version"] == (
            BENCH_SCHEMA_VERSION
        )

    def test_record_refuses_to_overwrite_non_json_files(self, tmp_path,
                                                        capsys):
        # `--baseline`'s optional value can swallow a following app path;
        # the write must bounce off anything that isn't a JSON export.
        victim = tmp_path / "app.apkt"
        victim.write_text("# not an export\n")
        code = main(["bench", "record", "--ledger-dir",
                     str(tmp_path / "ledger"), "--out", str(victim), *APPS])
        captured = capsys.readouterr()
        assert code == 2
        assert "refusing to overwrite" in captured.err
        assert victim.read_text() == "# not an export\n"

    def test_missing_apps_is_an_error(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)  # no examples/apps here
        code = main(["bench", "record", "--ledger-dir", str(tmp_path)])
        assert code == 2
        assert "no apps" in capsys.readouterr().err


class TestCompareAndGate:
    def _exports(self, tmp_path, capsys):
        _, _, out = _record(tmp_path, capsys)
        return out

    def test_compare_self_is_clean_and_exits_zero(self, tmp_path, capsys):
        out = self._exports(tmp_path, capsys)
        code = main(["bench", "compare", str(out), str(out)])
        stdout = capsys.readouterr().out
        assert code == 0
        assert "== bench compare ==" in stdout
        assert "-- verdict: OK --" in stdout

    def test_gate_passes_against_own_baseline(self, tmp_path, capsys):
        out = self._exports(tmp_path, capsys)
        code = main(["bench", "gate", "--baseline", str(out),
                     "--current", str(out)])
        capsys.readouterr()
        assert code == 0

    def test_gate_fails_on_injected_timing_regression(self, tmp_path, capsys):
        # The acceptance bar: inflate one timing well past the 20%
        # threshold (and the absolute noise floor) and the gate must
        # exit nonzero.
        out = self._exports(tmp_path, capsys)
        export = json.loads(out.read_text())
        name, hist = next(iter(export["timings"].items()))
        hist["total"] = hist["total"] * 10 + 100.0
        regressed = tmp_path / "regressed.json"
        regressed.write_text(json.dumps(export))
        code = main(["bench", "gate", "--baseline", str(out),
                     "--current", str(regressed)])
        stdout = capsys.readouterr().out
        assert code == 1
        assert f"REGRESSION: timing {name}" in stdout
        # A generous threshold lets the same delta through.
        code = main(["bench", "gate", "--baseline", str(out),
                     "--current", str(regressed),
                     "--timing-threshold", "1000"])
        capsys.readouterr()
        assert code == 0

    def test_gate_fails_on_counter_drift(self, tmp_path, capsys):
        out = self._exports(tmp_path, capsys)
        export = json.loads(out.read_text())
        export["counters"]["scan.apps"] += 1
        drifted = tmp_path / "drifted.json"
        drifted.write_text(json.dumps(export))
        code = main(["bench", "gate", "--baseline", str(out),
                     "--current", str(drifted)])
        capsys.readouterr()
        assert code == 1

    def test_gate_measures_fresh_when_no_current_given(self, tmp_path, capsys):
        out = self._exports(tmp_path, capsys)
        # A generous timing threshold, as CI uses: this exercises the
        # measure-fresh path and the counter exact-match, not the clock.
        code = main(["bench", "gate", "--baseline", str(out),
                     "--timing-threshold", "1000",
                     "--ledger-dir", str(tmp_path / "gate-ledger"), *APPS])
        capsys.readouterr()
        assert code == 0  # same code, same apps: counters match exactly
        assert RunLedger(str(tmp_path / "gate-ledger")).last("bench")

    def test_compare_missing_file_exits_two(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["bench", "compare", str(tmp_path / "nope.json"),
                  str(tmp_path / "nope.json")])
        assert exc.value.code == 2
        assert "no such file" in capsys.readouterr().err


class TestScanLedgerHook:
    def test_scan_ledger_flag_appends_a_scan_record(self, tmp_path, capsys,
                                                    monkeypatch):
        monkeypatch.setenv("NCHECKER_LEDGER_DIR", str(tmp_path / "scan-ledger"))
        main(["scan", "--no-disk-cache", "--ledger", APPS[0]])
        capsys.readouterr()
        record = RunLedger(str(tmp_path / "scan-ledger")).last("scan")
        assert record is not None
        assert record["app_set"]["count"] == 1
        assert record["counters"].get("scan.apps") == 1

    def test_env_dir_alone_records_instrumented_scans(self, tmp_path, capsys,
                                                      monkeypatch):
        monkeypatch.setenv("NCHECKER_LEDGER_DIR", str(tmp_path / "auto"))
        main(["scan", "--no-disk-cache", "--stats", APPS[0]])
        capsys.readouterr()
        assert RunLedger(str(tmp_path / "auto")).last("scan") is not None

    def test_plain_scan_never_touches_the_ledger(self, tmp_path, capsys,
                                                 monkeypatch):
        monkeypatch.setenv("NCHECKER_LEDGER_DIR", str(tmp_path / "untouched"))
        main(["scan", "--no-disk-cache", APPS[0]])
        capsys.readouterr()
        assert not (tmp_path / "untouched").exists()
