"""CLI tests (`nchecker scan|experiments|corpus`)."""

import pytest

from repro.app import save_apk
from repro.cli import main
from repro.corpus.snippets import Connectivity, Notification, RequestSpec

from tests.conftest import single_request_app


@pytest.fixture()
def buggy_app_file(tmp_path):
    apk, _ = single_request_app(RequestSpec())
    path = tmp_path / "buggy.apkt"
    save_apk(apk, path)
    return path


@pytest.fixture()
def clean_app_file(tmp_path):
    spec = RequestSpec(
        connectivity=Connectivity.GUARDED,
        with_timeout=True,
        with_retry=True,
        retry_value=2,
        with_notification=Notification.TOAST,
        with_response_check=True,
    )
    apk, _ = single_request_app(spec, package="com.test.clean")
    path = tmp_path / "clean.apkt"
    save_apk(apk, path)
    return path


class TestScan:
    def test_buggy_app_exits_nonzero(self, buggy_app_file, capsys):
        code = main(["scan", str(buggy_app_file)])
        assert code == 1
        out = capsys.readouterr().out
        assert "NPD Information" in out
        assert "Fix Suggestion" in out

    def test_clean_app_exits_zero(self, clean_app_file, capsys):
        code = main(["scan", str(clean_app_file)])
        assert code == 0
        assert "0 NPD(s)" in capsys.readouterr().out

    def test_summary_mode(self, buggy_app_file, capsys):
        main(["scan", "--summary", str(buggy_app_file)])
        out = capsys.readouterr().out
        assert "missed-timeout" in out

    def test_guard_aware_flag(self, tmp_path, capsys):
        apk, _ = single_request_app(
            RequestSpec(connectivity=Connectivity.UNGUARDED)
        )
        path = tmp_path / "fn.apkt"
        save_apk(apk, path)
        # Default misses the unguarded-check defect...
        main(["scan", "--summary", str(path)])
        default_out = capsys.readouterr().out
        assert "missed-connectivity-check" not in default_out
        # ...guard-aware mode reports it.
        main(["scan", "--summary", "--guard-aware", str(path)])
        aware_out = capsys.readouterr().out
        assert "missed-connectivity-check" in aware_out


class TestErrorHandling:
    def test_missing_file_is_friendly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["scan", "/no/such/file.apkt"])
        assert excinfo.value.code == 2
        assert "no such file" in capsys.readouterr().err

    def test_malformed_file_is_friendly(self, tmp_path, capsys):
        bad = tmp_path / "bad.apkt"
        bad.write_text("definitely not an app\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["scan", str(bad)])
        assert excinfo.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_patch_on_missing_file_is_friendly(self, capsys):
        with pytest.raises(SystemExit):
            main(["patch", "/no/such/file.apkt"])


class TestExperiments:
    def test_unknown_experiment_rejected(self, capsys):
        assert main(["experiments", "table99"]) == 2

    def test_single_experiment(self, capsys):
        assert main(["experiments", "table4"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out


class TestPatch:
    def test_patch_writes_clean_app(self, buggy_app_file, tmp_path, capsys):
        out = tmp_path / "fixed.apkt"
        code = main(["patch", str(buggy_app_file), "-o", str(out)])
        assert code == 0
        assert "0 finding(s) remain" in capsys.readouterr().out
        assert main(["scan", "--summary", str(out)]) == 0

    def test_patch_default_output_name(self, buggy_app_file, capsys):
        code = main(["patch", str(buggy_app_file)])
        assert code == 0
        fixed = buggy_app_file.with_suffix(".fixed.apkt")
        assert fixed.exists()

    def test_clean_app_patches_trivially(self, clean_app_file, tmp_path, capsys):
        out = tmp_path / "noop.apkt"
        assert main(["patch", str(clean_app_file), "-o", str(out)]) == 0
        assert "applied 0 patch(es)" in capsys.readouterr().out


class TestRun:
    def test_run_reports_symptoms(self, buggy_app_file, capsys):
        code = main(["run", str(buggy_app_file), "--network", "poor-3g"])
        out = capsys.readouterr().out
        assert "onClick on poor-3g" in out
        assert code in (0, 1)

    def test_unknown_scenario_rejected(self, buggy_app_file, capsys):
        assert main(["run", str(buggy_app_file), "--network", "marsnet"]) == 2

    def test_explicit_entry(self, buggy_app_file, capsys):
        code = main(
            [
                "run",
                str(buggy_app_file),
                "--network",
                "wifi",
                "--entry",
                "com.test.app.MainActivity.onClick",
                "--invalid-response-rate",
                "0",
            ]
        )
        out = capsys.readouterr().out
        assert "on wifi" in out and "ok" in out
        assert code == 0

    def test_crash_sets_exit_code(self, buggy_app_file, capsys):
        code = main(
            ["run", str(buggy_app_file), "--network", "poor-3g", "--seed", "7"]
        )
        out = capsys.readouterr().out
        if "CRASH" in out:
            assert code == 1


class TestExperimentExport:
    def test_export_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        assert main(["experiments", "table4", "--export", str(out_dir)]) == 0
        assert (out_dir / "table4.txt").exists()
        assert (out_dir / "table4.json").exists()


class TestCorpus:
    def test_emits_apkt_files(self, tmp_path, capsys):
        out_dir = tmp_path / "corpus"
        assert main(["corpus", str(out_dir), "--apps", "3"]) == 0
        files = list(out_dir.glob("*.apkt"))
        assert len(files) == 3

    def test_emitted_files_scannable(self, tmp_path, capsys):
        out_dir = tmp_path / "corpus"
        main(["corpus", str(out_dir), "--apps", "2"])
        files = sorted(out_dir.glob("*.apkt"))
        code = main(["scan", "--summary", *map(str, files)])
        assert code in (0, 1)
