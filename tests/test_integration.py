"""Integration tests closing the loop the paper argues for:

1. **detect → manifest** — every defect NChecker reports corresponds to a
   symptom the runtime actually produces under a disruptive network, and
   applying the suggested fix removes both the warning and the symptom;
2. **serialise → rescan** — apps survive the `.apkt` round trip with
   identical findings.
"""

import pytest

from repro.app import dumps_apk, loads_apk
from repro.core import DefectKind, NChecker
from repro.corpus.snippets import (
    Backoff,
    Connectivity,
    Notification,
    RequestSpec,
    RetryLoopShape,
)
from repro.netsim import LinkProfile, OFFLINE, Runtime, THREE_G

from tests.conftest import single_request_app

TERRIBLE = LinkProfile("terrible", bandwidth_kbps=780, rtt_ms=100, loss_rate=0.6)


def scan_and_run(spec, link, seed=7):
    apk, _ = single_request_app(spec, package="com.itest.app")
    result = NChecker().scan(apk)
    report = Runtime(apk, link, seed=seed).run_entry(
        "com.itest.app.MainActivity", "onClick"
    )
    return result, report


class TestDefectsManifest:
    def test_missed_response_check_becomes_crash(self):
        result, report = scan_and_run(RequestSpec(library="basichttp"), TERRIBLE)
        assert result.count_of(DefectKind.MISSED_RESPONSE_CHECK) == 1
        assert report.crashed

    def test_fixed_response_check_no_warning_no_crash(self):
        result, report = scan_and_run(
            RequestSpec(library="basichttp", with_response_check=True), TERRIBLE
        )
        assert result.count_of(DefectKind.MISSED_RESPONSE_CHECK) == 0
        assert not report.crashed

    def test_missed_notification_becomes_silent_failure(self):
        result, report = scan_and_run(RequestSpec(library="okhttp"), OFFLINE)
        assert result.count_of(DefectKind.MISSED_NOTIFICATION) == 1
        assert report.silent_failure

    def test_fixed_notification_surfaces_failure(self):
        result, report = scan_and_run(
            RequestSpec(library="okhttp", with_notification=Notification.TOAST),
            OFFLINE,
        )
        assert result.count_of(DefectKind.MISSED_NOTIFICATION) == 0
        assert report.user_notified_of_failure

    def test_aggressive_loop_becomes_battery_drain(self):
        result, report = scan_and_run(
            RequestSpec(
                library="basichttp",
                retry_loop=RetryLoopShape.UNCONDITIONAL_EXIT,
                backoff=Backoff.NONE,
            ),
            OFFLINE,
        )
        assert result.count_of(DefectKind.AGGRESSIVE_RETRY_LOOP) == 1
        assert report.battery_drain

    def test_fixed_backoff_no_warning_no_drain(self):
        result, report = scan_and_run(
            RequestSpec(
                library="basichttp",
                retry_loop=RetryLoopShape.UNCONDITIONAL_EXIT,
                backoff=Backoff.EXPONENTIAL,
            ),
            OFFLINE,
        )
        assert result.count_of(DefectKind.AGGRESSIVE_RETRY_LOOP) == 0
        assert not report.battery_drain

    def test_missed_connectivity_check_wastes_attempts_offline(self):
        result, report = scan_and_run(
            RequestSpec(connectivity=Connectivity.NONE), OFFLINE
        )
        assert result.count_of(DefectKind.MISSED_CONNECTIVITY_CHECK) == 1
        assert report.network_attempts > 0

    def test_fixed_connectivity_check_saves_the_radio(self):
        result, report = scan_and_run(
            RequestSpec(connectivity=Connectivity.GUARDED), OFFLINE
        )
        assert result.count_of(DefectKind.MISSED_CONNECTIVITY_CHECK) == 0
        assert report.network_attempts == 0

    def test_missed_timeout_becomes_long_hang(self):
        result, report = scan_and_run(RequestSpec(library="okhttp"), OFFLINE)
        assert result.count_of(DefectKind.MISSED_TIMEOUT) == 1
        assert report.sim_time_ms > 30_000  # the user stares for minutes

    def test_fixed_timeout_bounds_the_hang(self):
        result, report = scan_and_run(
            RequestSpec(library="okhttp", with_timeout=True, timeout_ms=3000),
            OFFLINE,
        )
        assert result.count_of(DefectKind.MISSED_TIMEOUT) == 0
        assert report.sim_time_ms < 15_000

    def test_clean_app_clean_run(self):
        spec = RequestSpec(
            library="basichttp",
            connectivity=Connectivity.GUARDED,
            with_timeout=True,
            with_retry=True,
            retry_value=2,
            with_notification=Notification.TOAST,
            with_response_check=True,
        )
        result, report = scan_and_run(spec, THREE_G)
        assert not result.is_buggy
        assert report.requests_succeeded == 1
        assert not report.crashed


class TestSerialisationStability:
    def test_findings_stable_across_apkt_round_trip(self, small_corpus):
        checker = NChecker()
        for apk, _ in small_corpus[:8]:
            before = checker.scan(apk).summary()
            reloaded = loads_apk(dumps_apk(apk))
            after = checker.scan(reloaded).summary()
            assert before == after, apk.package


class TestChatSecureMotivation:
    """The paper's Fig 1 story: checking isConnected() does not make
    login() safe under a *poor* network — only proper error handling does."""

    def _chatsecure_app(self):
        from repro.corpus.appbuilder import AppBuilder
        from repro.ir import Local

        app = AppBuilder("com.itest.chat")
        activity = app.activity("MainActivity")
        b = activity.method("onClick", params=[("android.view.View", "v")])
        cm = b.new("android.net.ConnectivityManager", "cm")
        ni = b.call(cm, "getActiveNetworkInfo", ret="ni")
        with b.if_then("!=", Local("ni"), None):
            # "Connected" — but the network may still be terrible.
            conn = b.new("java.net.HttpURLConnection", "conn")
            b.call(conn, "getInputStream", ret="stream")  # no try/catch!
        b.ret()
        activity.add(b)
        return app.build()

    def test_guard_passes_but_request_still_crashes_when_poor(self):
        apk = self._chatsecure_app()
        # The link is *up* (the guard passes) but drops most packets.
        poor = LinkProfile("poor", bandwidth_kbps=780, rtt_ms=100, loss_rate=0.995)
        report = Runtime(apk, poor, seed=11).run_entry(
            "com.itest.chat.MainActivity", "onClick"
        )
        assert report.network_attempts > 0  # the guard let it through
        assert report.crashed  # and the unhandled failure killed the app
