"""User-study model tests (Fig 10 / Table 10)."""

import pytest

from repro.core.defects import DefectKind
from repro.userstudy import N_PARTICIPANTS, STUDY_TASKS, run_study


class TestTable10:
    def test_seven_tasks(self):
        assert len(STUDY_TASKS) == 7

    def test_apps_match_paper(self):
        apps = {t.app for t in STUDY_TASKS}
        assert apps == {"AnkiDroid", "GPSLogger", "DevFest", "Maoshishu"}

    def test_kinds_cover_diverse_causes(self):
        kinds = {t.kind for t in STUDY_TASKS}
        assert {
            DefectKind.MISSED_CONNECTIVITY_CHECK,
            DefectKind.MISSED_TIMEOUT,
            DefectKind.MISSED_RETRY,
            DefectKind.MISSED_NOTIFICATION,
            DefectKind.MISSED_RESPONSE_CHECK,
            DefectKind.OVER_RETRY_POST,
        } <= kinds

    def test_retried_exception_task_excluded_from_timing(self):
        excluded = [t for t in STUDY_TASKS if not t.in_timing_figure]
        assert len(excluded) == 1
        assert "retried exception" in excluded[0].name

    def test_every_task_has_fix_text(self):
        for task in STUDY_TASKS:
            assert task.correct_fix


class TestFig10:
    def test_default_twenty_participants(self):
        study = run_study(seed=1)
        assert all(len(t.times_minutes) == N_PARTICIPANTS for t in study.tasks)

    def test_overall_mean_close_to_paper(self):
        """Paper: 1.7 ± 0.14 minutes."""
        study = run_study(seed=2016)
        assert study.overall_mean == pytest.approx(1.7, abs=0.35)
        assert study.overall_ci95 == pytest.approx(0.14, abs=0.10)

    def test_all_tasks_under_four_minutes(self):
        """Fig 10's y-axis tops out at 4 minutes."""
        study = run_study(seed=2016)
        for task in study.timing_tasks():
            assert task.mean < 4.0

    def test_over_retry_is_fastest(self):
        """Fix ranking: 'set retries to 0' is the quickest fix."""
        study = run_study(seed=2016)
        timing = study.timing_tasks()
        fastest = min(timing, key=lambda t: t.mean)
        assert "over retry" in fastest.task.name

    def test_retried_exception_rarely_solved(self):
        """Paper: only one volunteer could set the exception class."""
        study = run_study(seed=2016)
        hard = next(t for t in study.tasks if not t.task.in_timing_figure)
        assert hard.solved <= 3

    def test_deterministic_per_seed(self):
        assert run_study(seed=5).overall_mean == run_study(seed=5).overall_mean

    def test_ci_shrinks_with_more_participants(self):
        small = run_study(seed=3, n_participants=10)
        large = run_study(seed=3, n_participants=200)
        assert large.overall_ci95 < small.overall_ci95


class TestControlArm:
    """The arm the paper did not run: fixing without NChecker's reports."""

    def test_reports_make_fixes_much_faster(self):
        with_reports = run_study(seed=2016)
        without = run_study(seed=2016, with_reports=False)
        assert without.overall_mean > 4 * with_reports.overall_mean

    def test_reports_raise_solve_rates(self):
        with_reports = run_study(seed=2016)
        without = run_study(seed=2016, with_reports=False)
        solved_with = sum(t.solved for t in with_reports.tasks)
        solved_without = sum(t.solved for t in without.tasks)
        assert solved_with > solved_without

    def test_hard_task_stays_hard_either_way(self):
        """The 'retried exception' task needs domain knowledge the report
        cannot supply — solve rates are poor in both arms."""
        for arm in (run_study(seed=1), run_study(seed=1, with_reports=False)):
            hard = next(t for t in arm.tasks if not t.task.in_timing_figure)
            assert hard.solved <= 4
