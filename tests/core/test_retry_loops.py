"""Customized retry-loop identification tests (paper §4.5, Fig 6)."""

import pytest

from repro.core import NChecker
from repro.core.requests import AnalysisContext, find_requests
from repro.core.retry_loops import identify_retry_loops
from repro.corpus.appbuilder import AppBuilder
from repro.corpus.snippets import Backoff, RequestSpec, RetryLoopShape, inject_request
from repro.ir import Local
from repro.libmodels import default_registry

from tests.conftest import single_request_app


def _loops_for(spec):
    apk, _ = single_request_app(spec)
    ctx = AnalysisContext.build(apk, default_registry())
    requests = find_requests(ctx)
    return identify_retry_loops(ctx, requests)


class TestFig6Shapes:
    def test_fig6b_unconditional_exit(self):
        loops = _loops_for(
            RequestSpec(retry_loop=RetryLoopShape.UNCONDITIONAL_EXIT)
        )
        assert len(loops) == 1
        assert loops[0].kind == "unconditional-exit"

    def test_fig6c_catch_data_dependency(self):
        loops = _loops_for(RequestSpec(retry_loop=RetryLoopShape.CATCH_DEPENDENT))
        assert len(loops) == 1
        assert loops[0].kind == "catch-dependent"

    def test_fig6d_callee_catch_dependency(self):
        loops = _loops_for(RequestSpec(retry_loop=RetryLoopShape.CALLEE_CATCH))
        assert len(loops) == 1
        loop = loops[0]
        assert loop.kind == "catch-dependent"
        assert loop.retried_callees  # the sendOnce helper


class TestNonRetryLoops:
    def test_sequence_loop_not_flagged(self):
        """The paper's key challenge: a loop that sends a *sequence* of
        requests (one per item) is not a retry loop."""
        from repro.ir import BinaryExpr, Const

        app = AppBuilder("com.test.seq")
        activity = app.activity("MainActivity")
        b = activity.method("onClick", params=[("android.view.View", "v")])
        client = b.new("com.turbomanage.httpclient.BasicHttpClient", "client")
        b.assign("i", 0)
        with b.while_loop("<", Local("i"), 10):
            b.call(client, "get", "http://x", ret=b.fresh_local("r").name)
            b.assign("i", BinaryExpr("+", Local("i"), Const(1)))
        b.ret()
        activity.add(b)
        apk = app.build()
        ctx = AnalysisContext.build(apk, default_registry())
        loops = identify_retry_loops(ctx, find_requests(ctx))
        assert loops == []

    def test_sequence_loop_with_swallowing_catch_not_retry(self):
        """Catching per-item errors to continue the *sequence* is not
        retrying: the exit condition is the item counter."""
        from repro.ir import BinaryExpr, Const

        app = AppBuilder("com.test.seq2")
        activity = app.activity("MainActivity")
        b = activity.method("onClick", params=[("android.view.View", "v")])
        client = b.new("com.turbomanage.httpclient.BasicHttpClient", "client")
        b.assign("i", 0)
        with b.while_loop("<", Local("i"), 10):
            region = b.begin_try()
            b.call(client, "get", "http://x", ret=b.fresh_local("r").name)
            b.begin_catch(region, "java.io.IOException")
            b.static_call("android.util.Log", "e", "t", "skip", ret=None)
            b.end_try(region)
            b.assign("i", BinaryExpr("+", Local("i"), Const(1)))
        b.ret()
        activity.add(b)
        apk = app.build()
        ctx = AnalysisContext.build(apk, default_registry())
        loops = identify_retry_loops(ctx, find_requests(ctx))
        assert loops == []

    def test_no_loop_no_detection(self):
        loops = _loops_for(RequestSpec())
        assert loops == []


class TestNestedLoops:
    def test_inner_retry_loop_found_outer_pagination_not(self):
        """Paginated fetch with per-page retry: only the inner loop is
        retry logic; the outer loop iterates pages."""
        from repro.ir import BinaryExpr, Const

        app = AppBuilder("com.nest.app")
        activity = app.activity("MainActivity")
        b = activity.method("onClick", params=[("android.view.View", "v")])
        client = b.new("com.turbomanage.httpclient.BasicHttpClient", "client")
        b.assign("page", 0)
        with b.while_loop("<", Local("page"), 10):
            b.assign("retry", True)
            with b.while_loop("==", Local("retry"), True):
                region = b.begin_try()
                b.call(client, "get", "http://x", ret=b.fresh_local("r").name)
                b.assign("retry", False)
                b.begin_catch(region, "java.io.IOException")
                should = b.static_call(
                    "java.lang.Math", "random", ret=b.fresh_local("s").name
                )
                b.assign("retry", Local(should.name))
                b.end_try(region)
            b.assign("page", BinaryExpr("+", Local("page"), Const(1)))
        b.ret()
        activity.add(b)
        apk = app.build()
        ctx = AnalysisContext.build(apk, default_registry())
        loops = identify_retry_loops(ctx, find_requests(ctx))
        assert len(loops) == 1
        assert loops[0].kind == "catch-dependent"
        # The detected loop is the inner (smaller) one.
        from repro.cfg import CFG, natural_loops

        method = loops[0].method
        all_loops = natural_loops(CFG(method))
        assert len(loops[0].loop.body) == min(len(l) for l in all_loops)


class TestBackoffClassification:
    def test_no_sleep_is_aggressive(self):
        loops = _loops_for(
            RequestSpec(
                retry_loop=RetryLoopShape.UNCONDITIONAL_EXIT, backoff=Backoff.NONE
            )
        )
        assert loops[0].aggressive

    def test_fixed_small_sleep_is_aggressive(self):
        loops = _loops_for(
            RequestSpec(
                retry_loop=RetryLoopShape.UNCONDITIONAL_EXIT,
                backoff=Backoff.FIXED_SMALL,
            )
        )
        assert loops[0].aggressive

    def test_growing_delay_is_backoff(self):
        loops = _loops_for(
            RequestSpec(
                retry_loop=RetryLoopShape.UNCONDITIONAL_EXIT,
                backoff=Backoff.EXPONENTIAL,
            )
        )
        assert not loops[0].aggressive

    def test_large_fixed_delay_is_backoff(self):
        """A fixed but long (>= 2 s) delay is not the Telegram bug."""
        app = AppBuilder("com.test.slow")
        activity = app.activity("MainActivity")
        b = activity.method("onClick", params=[("android.view.View", "v")])
        client = b.new("com.turbomanage.httpclient.BasicHttpClient", "client")
        with b.loop():
            region = b.begin_try()
            b.call(client, "get", "http://x", ret="r")
            b.ret()
            b.begin_catch(region, "java.io.IOException")
            b.static_call("java.lang.Thread", "sleep", 5000, ret=None)
            b.end_try(region)
        b.ret()
        activity.add(b)
        apk = app.build()
        ctx = AnalysisContext.build(apk, default_registry())
        loops = identify_retry_loops(ctx, find_requests(ctx))
        assert len(loops) == 1 and not loops[0].aggressive


class TestStats:
    def test_scan_result_exposes_loops(self):
        apk, _ = single_request_app(
            RequestSpec(retry_loop=RetryLoopShape.CATCH_DEPENDENT)
        )
        result = NChecker().scan(apk)
        assert len(result.retry_loops) == 1

    def test_detection_can_be_disabled(self):
        from repro.core import NCheckerOptions

        apk, _ = single_request_app(
            RequestSpec(retry_loop=RetryLoopShape.CATCH_DEPENDENT)
        )
        options = NCheckerOptions(detect_retry_loops=False)
        result = NChecker(options=options).scan(apk)
        assert result.retry_loops == []
