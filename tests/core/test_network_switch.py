"""Experimental network-switch check tests (paper Cause 4 — the class of
NPD the original tool could not check) and the matching runtime
semantics."""

import pytest

from repro.core import DefectKind, NChecker, NCheckerOptions
from repro.corpus.appbuilder import AppBuilder
from repro.ir import Local
from repro.libmodels import extended_registry
from repro.netsim import LinkSchedule, OFFLINE, Runtime, THREE_G, WIFI

_XMPP = "org.jivesoftware.smack.XMPPConnection"
_XMPP_CFG = "org.jivesoftware.smack.ConnectionConfiguration"


def _chat_app(
    package="com.test.chat",
    with_receiver=False,
    reconnection=None,  # None = API never called; True/False = value
    sleep_before_send=10_000,
):
    """ChatSecure-style app: connect + login in onCreate, send on click."""
    app = AppBuilder(package)
    activity = app.activity("ChatActivity")

    body = activity.method("onCreate", params=[("android.os.Bundle", "saved")])
    if with_receiver:
        receiver = body.new(f"{package}.NetReceiver", "receiver")
        body.static_call(
            "android.content.Context", "registerReceiver", receiver, ret=None
        )
    if reconnection is not None:
        cfg = body.new(_XMPP_CFG, "cfg")
        body.call(cfg, "setReconnectionAllowed", reconnection)
    conn = body.new(_XMPP, "conn")
    region = body.begin_try()
    body.call(conn, "connect")
    body.call(conn, "login")
    body.begin_catch(region, "java.io.IOException")
    body.static_call("android.util.Log", "e", "xmpp", "connect failed", ret=None)
    body.end_try(region)
    body.set_field(Local("this"), activity.name, "conn", conn)
    body.ret()
    activity.add(body)

    send = activity.method("onClick", params=[("android.view.View", "v")])
    c = send.get_field(Local("this"), activity.name, "conn", "c")
    send.static_call("java.lang.Thread", "sleep", sleep_before_send, ret=None)
    send.call(c, "sendPacket", "hello", cls=_XMPP)
    send.ret()
    activity.add(send)

    if with_receiver:
        net_receiver = app.new_class("NetReceiver", "android.content.BroadcastReceiver")
        on_receive = net_receiver.method(
            "onReceive",
            params=[("android.content.Context", "ctx"), ("android.content.Intent", "i")],
        )
        on_receive.ret()
        net_receiver.add(on_receive)
    return app.build()


def _scan(apk):
    options = NCheckerOptions(check_network_switch=True)
    return NChecker(registry=extended_registry(), options=options).scan(apk)


class TestStaticCheck:
    def test_unmonitored_connection_flagged(self):
        result = _scan(_chat_app())
        assert result.count_of(DefectKind.NO_RECONNECT_ON_SWITCH) == 1

    def test_connectivity_receiver_credits(self):
        result = _scan(_chat_app(with_receiver=True))
        assert result.count_of(DefectKind.NO_RECONNECT_ON_SWITCH) == 0

    def test_reconnection_manager_credits(self):
        result = _scan(_chat_app(reconnection=True))
        assert result.count_of(DefectKind.NO_RECONNECT_ON_SWITCH) == 0

    def test_reconnection_explicitly_disabled_flagged(self):
        result = _scan(_chat_app(reconnection=False))
        assert result.count_of(DefectKind.NO_RECONNECT_ON_SWITCH) == 1

    def test_check_off_by_default(self):
        result = NChecker(registry=extended_registry()).scan(_chat_app())
        assert result.count_of(DefectKind.NO_RECONNECT_ON_SWITCH) == 0

    def test_http_only_apps_not_flagged(self):
        from repro.corpus.snippets import RequestSpec
        from tests.conftest import single_request_app

        apk, _ = single_request_app(RequestSpec(library="basichttp"))
        options = NCheckerOptions(check_network_switch=True)
        result = NChecker(registry=extended_registry(), options=options).scan(apk)
        assert result.count_of(DefectKind.NO_RECONNECT_ON_SWITCH) == 0

    def test_finding_has_switch_metadata(self):
        result = _scan(_chat_app())
        finding = result.findings_of(DefectKind.NO_RECONNECT_ON_SWITCH)[0]
        from repro.core.defects import KIND_ROOT_CAUSE, RootCause

        assert KIND_ROOT_CAUSE[finding.kind] is RootCause.MISHANDLED_SWITCH


class TestRuntimeStaleness:
    """The GTalkSMS symptom, executed: after a WiFi→3G hop the old
    connection is stale."""

    HANDOVER = LinkSchedule(((0.0, WIFI), (5_000.0, THREE_G)))

    def _run(self, apk):
        runtime = Runtime(apk, self.HANDOVER, registry=extended_registry(), seed=3)
        runtime.run_entry(f"{apk.package}.ChatActivity", "onCreate")
        # Re-use the same runtime state (connection object lives in a field
        # of a *new* receiver object per entry, so re-connect explicitly):
        return runtime

    def test_send_on_stale_connection_fails(self):
        apk = _chat_app(package="com.test.stale")
        runtime = Runtime(apk, self.HANDOVER, registry=extended_registry(), seed=3)
        report = runtime.run_entry("com.test.stale.ChatActivity", "onCreate")
        assert report.requests_succeeded >= 1  # connect+login on WiFi

    def test_stale_send_raises_without_reconnection(self):
        """Drive connect and a delayed send within one method: the sleep
        crosses the handover, so sendPacket hits a stale socket."""
        app = AppBuilder("com.test.inline")
        activity = app.activity("ChatActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        conn = body.new(_XMPP, "conn")
        body.call(conn, "connect")
        body.static_call("java.lang.Thread", "sleep", 10_000, ret=None)
        body.call(conn, "sendPacket", "hello")
        body.ret()
        activity.add(body)
        apk = app.build()
        report = Runtime(
            apk, self.HANDOVER, registry=extended_registry(), seed=3
        ).run_entry("com.test.inline.ChatActivity", "onClick")
        assert report.crashed
        assert report.crash_type == "java.io.IOException"

    def test_reconnection_manager_survives_handover(self):
        app = AppBuilder("com.test.reconn")
        activity = app.activity("ChatActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        cfg = body.new(_XMPP_CFG, "cfg")
        body.call(cfg, "setReconnectionAllowed", True)
        conn = body.new(_XMPP, "conn")
        body.call(conn, "setReconnectionAllowed", True)  # policy on the conn
        body.call(conn, "connect")
        body.static_call("java.lang.Thread", "sleep", 10_000, ret=None)
        body.call(conn, "sendPacket", "hello")
        body.ret()
        activity.add(body)
        apk = app.build()
        report = Runtime(
            apk, self.HANDOVER, registry=extended_registry(), seed=3
        ).run_entry("com.test.reconn.ChatActivity", "onClick")
        assert not report.crashed
        assert report.requests_succeeded >= 2  # connect + send

    def test_no_switch_no_staleness(self):
        app = AppBuilder("com.test.stable")
        activity = app.activity("ChatActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        conn = body.new(_XMPP, "conn")
        body.call(conn, "connect")
        body.static_call("java.lang.Thread", "sleep", 10_000, ret=None)
        body.call(conn, "sendPacket", "hello")
        body.ret()
        activity.add(body)
        apk = app.build()
        report = Runtime(
            apk, WIFI, registry=extended_registry(), seed=3
        ).run_entry("com.test.stable.ChatActivity", "onClick")
        assert not report.crashed


class TestLinkSchedule:
    def test_segment_lookup(self):
        schedule = LinkSchedule(((0.0, WIFI), (100.0, THREE_G), (200.0, OFFLINE)))
        assert schedule.link_at(0) is WIFI
        assert schedule.link_at(150) is THREE_G
        assert schedule.link_at(99.9) is WIFI
        assert schedule.link_at(5000) is OFFLINE
        assert schedule.segment_index(150) == 1

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError):
            LinkSchedule(((5.0, WIFI),))

    def test_must_be_ordered(self):
        with pytest.raises(ValueError):
            LinkSchedule(((0.0, WIFI), (200.0, THREE_G), (100.0, OFFLINE)))

    def test_constant(self):
        schedule = LinkSchedule.constant(WIFI)
        assert schedule.link_at(1e9) is WIFI
