"""Checker edge cases that cross feature boundaries."""

import pytest

from repro.core import DefectKind, NChecker, NCheckerOptions
from repro.corpus.appbuilder import AppBuilder
from repro.corpus.snippets import Connectivity, RequestSpec, inject_request
from repro.ir import Local

from tests.conftest import single_request_app


class TestGuardAwareInteractions:
    def test_guard_aware_accepts_helper_wrapped_guard(self):
        """`if (isNetworkOnline()) { request }` — the helper's result
        control-guards the request, so guard-aware mode is satisfied."""
        apk, _ = single_request_app(RequestSpec(connectivity=Connectivity.HELPER))
        options = NCheckerOptions(guard_aware_connectivity=True)
        result = NChecker(options=options).scan(apk)
        assert result.count_of(DefectKind.MISSED_CONNECTIVITY_CHECK) == 0

    def test_guard_aware_plus_icc(self):
        """All four option combinations agree on a plain guarded app."""
        apk, _ = single_request_app(RequestSpec(connectivity=Connectivity.GUARDED))
        for guard in (False, True):
            for icc in (False, True):
                options = NCheckerOptions(
                    guard_aware_connectivity=guard, inter_component=icc
                )
                result = NChecker(options=options).scan(apk)
                assert result.count_of(DefectKind.MISSED_CONNECTIVITY_CHECK) == 0


class TestConstructorRequests:
    def test_request_inside_app_constructor_reachable(self):
        """A request issued from a class's <init>, reached via `new` in a
        click handler."""
        app = AppBuilder("com.edge.ctor")
        worker = app.new_class("Session")
        ctor = worker.method("<init>")
        client = ctor.new("com.turbomanage.httpclient.BasicHttpClient", "c")
        ctor.call(client, "get", "http://handshake", ret="r")
        ctor.ret()
        worker.add(ctor)

        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        body.new("com.edge.ctor.Session", "session")
        body.ret()
        activity.add(body)

        result = NChecker().scan(app.build())
        assert len(result.requests) == 1
        request = result.requests[0]
        assert request.reachable
        assert request.user_initiated


class TestMultiLibraryApps:
    def test_findings_attributed_to_right_library(self):
        """Two libraries in one method: each request judged against its
        own library's capabilities."""
        app = AppBuilder("com.edge.multi")
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        # HttpURLConnection request (no retry API: no missed-retry row).
        conn = body.new("java.net.HttpURLConnection", "conn")
        body.call(conn, "getInputStream", ret="in")
        # Basic HTTP request (retry API exists: missed-retry fires).
        client = body.new("com.turbomanage.httpclient.BasicHttpClient", "c")
        body.call(client, "get", "http://x", ret="r")
        body.ret()
        activity.add(body)

        result = NChecker().scan(app.build())
        assert len(result.requests) == 2
        retry_findings = result.findings_of(DefectKind.MISSED_RETRY)
        assert len(retry_findings) == 1
        assert retry_findings[0].request.library.key == "basichttp"

    def test_per_request_timeouts_judged_separately(self):
        app = AppBuilder("com.edge.twotimeouts")
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        configured = body.new("com.turbomanage.httpclient.BasicHttpClient", "a")
        body.call(configured, "setReadWriteTimeout", 5000)
        body.call(configured, "get", "http://one", ret="r1")
        bare = body.new("java.net.HttpURLConnection", "conn")
        body.call(bare, "getInputStream", ret="in")
        body.ret()
        activity.add(body)

        result = NChecker().scan(app.build())
        timeout_findings = result.findings_of(DefectKind.MISSED_TIMEOUT)
        assert len(timeout_findings) == 1
        assert timeout_findings[0].request.library.key == "httpurlconnection"


class TestRegistryInjection:
    def test_custom_registry_scopes_detection(self):
        """A registry with only Volley registered ignores Basic HTTP."""
        from repro.libmodels import VOLLEY
        from repro.libmodels.annotations import LibraryRegistry

        apk, _ = single_request_app(RequestSpec(library="basichttp"))
        checker = NChecker(registry=LibraryRegistry([VOLLEY]))
        result = checker.scan(apk)
        # BasicHttpClient.get is not annotated in this registry...
        # except name-fallback does not apply: the call site is qualified.
        assert result.requests == []
