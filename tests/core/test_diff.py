"""Scan-diff tests."""

import pytest

from repro.core import NChecker, diff_scans
from repro.core.patcher import Patcher
from repro.corpus.snippets import Connectivity, Notification, RequestSpec

from tests.conftest import single_request_app


@pytest.fixture(scope="module")
def checker():
    return NChecker()


class TestDiffScans:
    def test_identical_scans_all_persist(self, checker):
        apk, _ = single_request_app(RequestSpec())
        result = checker.scan(apk)
        diff = diff_scans(result, checker.scan(apk))
        assert diff.fixed == [] and diff.introduced == []
        assert len(diff.persisting) == len(result.findings)
        assert not diff.is_improvement

    def test_patch_shows_as_all_fixed(self, checker):
        apk, _ = single_request_app(RequestSpec(library="volley"))
        before = checker.scan(apk)
        fixed_apk, _ = Patcher().patch_until_clean(apk, checker)
        diff = diff_scans(before, checker.scan(fixed_apk))
        assert len(diff.fixed) == len(before.findings)
        assert diff.is_improvement and diff.is_clean

    def test_regression_detected(self, checker):
        good, _ = single_request_app(
            RequestSpec(
                connectivity=Connectivity.GUARDED,
                with_timeout=True,
                with_retry=True,
                retry_value=2,
                with_notification=Notification.TOAST,
                with_response_check=True,
            )
        )
        bad, _ = single_request_app(RequestSpec())
        diff = diff_scans(checker.scan(good), checker.scan(bad))
        assert diff.introduced and not diff.fixed
        assert not diff.is_improvement

    def test_multiplicity_matching(self, checker):
        """Two same-kind findings in one method match one-for-one."""
        from repro.corpus.appbuilder import AppBuilder

        def build(n_requests):
            app = AppBuilder("com.diff.multi")
            activity = app.activity("MainActivity")
            body = activity.method("onClick", params=[("android.view.View", "v")])
            for i in range(n_requests):
                client = body.new("java.net.HttpURLConnection", f"c{i}")
                body.call(client, "getInputStream", ret=f"in{i}")
            body.ret()
            activity.add(body)
            return app.build()

        two = checker.scan(build(2))
        one = checker.scan(build(1))
        diff = diff_scans(two, one)
        # One of each finding kind fixed, one persists.
        kinds_fixed = sorted(f.kind.value for f in diff.fixed)
        kinds_persist = sorted(f.kind.value for f in diff.persisting)
        assert kinds_fixed == kinds_persist

    def test_render(self, checker):
        apk, _ = single_request_app(RequestSpec())
        diff = diff_scans(checker.scan(apk), checker.scan(apk))
        text = diff.render()
        assert "persisting" in text and "fixed," in text


class TestDiffCLI:
    def test_diff_exit_codes(self, tmp_path, capsys):
        from repro.app import save_apk
        from repro.cli import main

        buggy, _ = single_request_app(RequestSpec())
        clean, _ = single_request_app(
            RequestSpec(
                connectivity=Connectivity.GUARDED,
                with_timeout=True,
                with_retry=True,
                retry_value=2,
                with_notification=Notification.TOAST,
                with_response_check=True,
            ),
            package="com.test.clean",
        )
        buggy_path = tmp_path / "buggy.apkt"
        clean_path = tmp_path / "clean.apkt"
        save_apk(buggy, buggy_path)
        save_apk(clean, clean_path)

        assert main(["diff", str(buggy_path), str(clean_path)]) == 0  # improved
        out = capsys.readouterr().out
        assert "fixed" in out
        assert main(["diff", str(clean_path), str(buggy_path)]) == 1  # regressed
