"""The three extended-taxonomy checks (`ui-thread-network`,
`callback-leak`, `offline-cache`) end to end: per-app verdicts on the
lifecycle corpus, the Table 6x precision/recall floor, opt-in gating,
SARIF rule metadata, and patcher convergence."""

import pytest

from repro.app.loader import dumps_apk, loads_apk
from repro.core import NChecker
from repro.core.checker import DEFAULT_CHECKS, EXTENDED_CHECKS, NCheckerOptions
from repro.core.defects import DefectKind
from repro.core.patcher import Patcher
from repro.corpus.lifecycle import EXTENDED_KINDS, build_lifecycle_corpus
from repro.eval.experiments import run_table6x
from repro.eval.sarif import sarif_log


def extended_checker() -> NChecker:
    return NChecker(
        options=NCheckerOptions(enabled_checks=DEFAULT_CHECKS | EXTENDED_CHECKS)
    )


def extended_findings(result) -> set[tuple]:
    return {
        (f.kind, f.method_key[0], f.method_key[1])
        for f in result.findings
        if f.kind in EXTENDED_KINDS
    }


@pytest.fixture(scope="module")
def corpus():
    return build_lifecycle_corpus()


@pytest.fixture(scope="module")
def scans(corpus):
    checker = extended_checker()
    return {apk.package: checker.scan(apk) for apk, _ in corpus}


class TestPerAppVerdicts:
    """Each buggy app is flagged at the injected site; each clean
    variant stays silent — per app, not just in aggregate."""

    def kinds_of(self, scans, package) -> set[DefectKind]:
        return {kind for kind, _cls, _m in extended_findings(scans[package])}

    @pytest.mark.parametrize(
        "package,method,kind",
        [
            ("org.lifecycle.uidirect", "onClick", DefectKind.UI_THREAD_NETWORK),
            ("org.lifecycle.uihelper", "fetchData", DefectKind.UI_THREAD_NETWORK),
            ("org.lifecycle.leakactivity", "onResume", DefectKind.CALLBACK_LEAK),
            ("org.lifecycle.leakservice", "onCreate", DefectKind.CALLBACK_LEAK),
            (
                "org.lifecycle.offlineguarded",
                "onStartCommand",
                DefectKind.MISSED_OFFLINE_CACHE,
            ),
            (
                "org.lifecycle.offlinehelper",
                "onStartCommand",
                DefectKind.MISSED_OFFLINE_CACHE,
            ),
        ],
    )
    def test_buggy_app_flagged_at_site(self, scans, package, method, kind):
        assert {
            (k, m) for k, _cls, m in extended_findings(scans[package])
        } == {(kind, method)}

    @pytest.mark.parametrize(
        "package",
        [
            "org.lifecycle.uitask",
            "org.lifecycle.uiasync",
            "org.lifecycle.cleanactivity",
            "org.lifecycle.cleanservice",
            "org.lifecycle.offlinecached",
            "org.lifecycle.offlinehelpercache",
            "org.lifecycle.offlineunguarded",
        ],
    )
    def test_clean_variant_not_flagged(self, scans, package):
        assert extended_findings(scans[package]) == set()


class TestAccuracyFloor:
    def test_table6x_meets_the_nine_tenths_bar(self):
        report = run_table6x()
        for kind in EXTENDED_KINDS:
            row = report.data[kind.value]
            assert row["injected"] == 2
            assert row["precision"] >= 0.9, (kind, row)
            assert row["recall"] >= 0.9, (kind, row)


class TestOptInGating:
    """Default scans never run the new checks nor build their artifact —
    the paper-faithful five-analysis output stays untouched."""

    def test_default_scan_reports_no_extended_kinds(self, corpus):
        checker = NChecker()
        for apk, _truth in corpus:
            session = checker.session_for(apk)
            result = session.scan()
            assert not any(f.kind in EXTENDED_KINDS for f in result.findings)
            assert session.store.counters.builds_of("threadcontext") == 0

    def test_extended_scan_keeps_default_findings(self, corpus, scans):
        checker = NChecker()
        for apk, _truth in corpus:
            default = checker.scan(apk)
            extended = scans[apk.package]
            default_sigs = [
                (f.kind, f.method_key, f.stmt_index) for f in default.findings
            ]
            kept = [
                (f.kind, f.method_key, f.stmt_index)
                for f in extended.findings
                if f.kind not in EXTENDED_KINDS
            ]
            assert kept == default_sigs


class TestSarifRules:
    def test_extended_kinds_become_rules_and_results(self, corpus, scans):
        log = sarif_log([scans[apk.package] for apk, _ in corpus])
        run = log["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {k.value for k in EXTENDED_KINDS} <= rule_ids
        result_rules = {r["ruleId"] for r in run["results"]}
        assert {k.value for k in EXTENDED_KINDS} <= result_rules


class TestPatcherConvergence:
    def test_every_lifecycle_app_patches_clean(self, corpus):
        checker = extended_checker()
        for apk, _truth in corpus:
            working = loads_apk(dumps_apk(apk))  # patching mutates in place
            before = extended_findings(checker.scan(working))
            fixed, applied = Patcher().patch_until_clean(
                working, checker, max_rounds=5
            )
            assert checker.scan(fixed).findings == []
            if before:
                assert applied
