"""Connectivity-check analysis tests (paper §4.4.1 + its FN/FP behaviour)."""

import pytest

from repro.core import DefectKind, NChecker, NCheckerOptions
from repro.corpus.snippets import Connectivity, RequestSpec

from tests.conftest import single_request_app


def _scan(spec, options=NCheckerOptions(), in_service=False):
    apk, record = single_request_app(spec, in_service=in_service)
    return NChecker(options=options).scan(apk), record


def _conn_findings(result):
    return result.findings_of(DefectKind.MISSED_CONNECTIVITY_CHECK)


class TestBasic:
    def test_unchecked_request_flagged(self):
        result, _ = _scan(RequestSpec(connectivity=Connectivity.NONE))
        assert len(_conn_findings(result)) == 1

    def test_guarded_request_clean(self):
        result, _ = _scan(RequestSpec(connectivity=Connectivity.GUARDED))
        assert _conn_findings(result) == []

    def test_helper_wrapped_check_recognised(self):
        result, _ = _scan(RequestSpec(connectivity=Connectivity.HELPER))
        assert _conn_findings(result) == []

    def test_service_request_also_checked(self):
        result, _ = _scan(
            RequestSpec(connectivity=Connectivity.NONE), in_service=True
        )
        assert len(_conn_findings(result)) == 1


class TestPaperLimitations:
    def test_unguarded_check_is_false_negative(self):
        """Path-insensitive default: a check whose result never guards the
        request still counts — the paper's 5 known FNs."""
        result, record = _scan(RequestSpec(connectivity=Connectivity.UNGUARDED))
        assert _conn_findings(result) == []  # tool misses it
        assert DefectKind.MISSED_CONNECTIVITY_CHECK in record.expected  # human finds it

    def test_guard_aware_mode_catches_unguarded_check(self):
        """The ablation flag closes the FN class."""
        options = NCheckerOptions(guard_aware_connectivity=True)
        result, _ = _scan(RequestSpec(connectivity=Connectivity.UNGUARDED), options)
        assert len(_conn_findings(result)) == 1

    def test_guard_aware_mode_keeps_guarded_clean(self):
        options = NCheckerOptions(guard_aware_connectivity=True)
        result, _ = _scan(RequestSpec(connectivity=Connectivity.GUARDED), options)
        assert _conn_findings(result) == []

    def test_inter_component_check_is_false_positive(self):
        """A check performed in the launcher before starting this activity
        is invisible — the paper's 4 FPs."""
        from repro.corpus.appbuilder import AppBuilder
        from repro.corpus.opensource import _add_launcher_with_check
        from repro.corpus.snippets import inject_request

        app = AppBuilder("com.test.fp")
        _add_launcher_with_check(app)
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        record = inject_request(
            app, body, RequestSpec(connectivity=Connectivity.INTER_COMPONENT),
            user_initiated=True,
        )
        body.ret()
        activity.add(body)
        result = NChecker().scan(app.build())
        assert len(_conn_findings(result)) == 1  # reported...
        assert DefectKind.MISSED_CONNECTIVITY_CHECK not in record.expected  # ...wrongly


class TestInterprocedural:
    def test_check_in_caller_guards_callee_request(self):
        from repro.corpus.appbuilder import AppBuilder
        from repro.corpus.snippets import inject_request
        from repro.ir import Local

        app = AppBuilder("com.test.ip")
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        cm = body.new("android.net.ConnectivityManager", "cm")
        ni = body.call(cm, "getActiveNetworkInfo", ret="ni")
        with body.if_then("!=", Local("ni"), None):
            body.call(Local("this"), "doFetch", cls=activity.name)
        body.ret()
        activity.add(body)

        fetch = activity.method("doFetch")
        inject_request(app, fetch, RequestSpec(), user_initiated=True)
        fetch.ret()
        activity.add(fetch)

        result = NChecker().scan(app.build())
        assert _conn_findings(result) == []

    def test_intraprocedural_ablation_misses_caller_check(self):
        from repro.corpus.appbuilder import AppBuilder
        from repro.corpus.snippets import inject_request
        from repro.ir import Local

        app = AppBuilder("com.test.ip2")
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        cm = body.new("android.net.ConnectivityManager", "cm")
        body.call(cm, "getActiveNetworkInfo", ret="ni")
        with body.if_then("!=", Local("ni"), None):
            body.call(Local("this"), "doFetch", cls=activity.name)
        body.ret()
        activity.add(body)
        fetch = activity.method("doFetch")
        inject_request(app, fetch, RequestSpec(), user_initiated=True)
        fetch.ret()
        activity.add(fetch)

        options = NCheckerOptions(interprocedural_connectivity=False)
        result = NChecker(options=options).scan(app.build())
        assert len(_conn_findings(result)) == 1
