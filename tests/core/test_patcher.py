"""Automated-patcher tests: scan → patch → rescan converges to clean, and
patched apps lose their runtime symptoms too."""

import pytest

from repro.core import DefectKind, NChecker
from repro.core.patcher import Patcher
from repro.corpus.snippets import (
    Backoff,
    Notification,
    RequestSpec,
    RetryLoopShape,
    SUPPORTED_LIBRARIES,
)
from repro.netsim import LinkProfile, OFFLINE, Runtime

from tests.conftest import single_request_app


@pytest.fixture(scope="module")
def checker():
    return NChecker()


@pytest.fixture(scope="module")
def patcher():
    return Patcher()


class TestConvergence:
    @pytest.mark.parametrize("library", SUPPORTED_LIBRARIES)
    def test_fully_buggy_app_patches_clean(self, library, checker, patcher):
        apk, _ = single_request_app(RequestSpec(library=library))
        fixed, applied = patcher.patch_until_clean(apk, checker)
        assert applied
        assert not checker.scan(fixed).findings

    def test_original_app_untouched(self, checker, patcher):
        apk, _ = single_request_app(RequestSpec())
        before = checker.scan(apk).summary()
        patcher.patch_until_clean(apk, checker)
        assert checker.scan(apk).summary() == before

    def test_clean_app_needs_no_patches(self, checker, patcher):
        from repro.corpus.snippets import Connectivity

        spec = RequestSpec(
            connectivity=Connectivity.GUARDED,
            with_timeout=True,
            with_retry=True,
            retry_value=2,
            with_notification=Notification.TOAST,
            with_response_check=True,
        )
        apk, _ = single_request_app(spec)
        _fixed, applied = patcher.patch_until_clean(apk, checker)
        assert applied == []

    def test_service_over_retry_patched_to_zero(self, checker, patcher):
        apk, _ = single_request_app(RequestSpec(library="volley"), in_service=True)
        fixed, _ = patcher.patch_until_clean(apk, checker)
        result = checker.scan(fixed)
        assert result.count_of(DefectKind.OVER_RETRY_SERVICE) == 0
        info = result.config_of(result.requests[0])
        assert info.retries == 0

    def test_post_over_retry_patched(self, checker, patcher):
        apk, _ = single_request_app(RequestSpec(library="asynchttp", http_post=True))
        fixed, _ = patcher.patch_until_clean(apk, checker)
        assert checker.scan(fixed).count_of(DefectKind.OVER_RETRY_POST) == 0

    def test_aggressive_loop_gets_backoff(self, checker, patcher):
        apk, _ = single_request_app(
            RequestSpec(
                library="basichttp",
                retry_loop=RetryLoopShape.UNCONDITIONAL_EXIT,
                backoff=Backoff.NONE,
            )
        )
        fixed, _ = patcher.patch_until_clean(apk, checker)
        result = checker.scan(fixed)
        assert result.count_of(DefectKind.AGGRESSIVE_RETRY_LOOP) == 0
        assert result.retry_loops and result.retry_loops[0].has_backoff

    def test_patched_methods_validate(self, checker, patcher):
        apk, _ = single_request_app(RequestSpec(library="volley"))
        fixed, _ = patcher.patch_until_clean(apk, checker)
        fixed.validate()

    def test_patch_ledger_describes_fixes(self, checker, patcher):
        apk, _ = single_request_app(RequestSpec(library="basichttp"))
        result = checker.scan(apk)
        outcome = patcher.patch(apk, result)
        assert len(outcome.applied) == len(result.findings)
        for patch in outcome.applied:
            assert patch.description
            assert str(patch)


class TestRuntimeEffect:
    """The patched app behaves better, not just scans cleaner."""

    TERRIBLE = LinkProfile("terrible", bandwidth_kbps=780, rtt_ms=100, loss_rate=0.6)

    def _entry(self, apk):
        return next(
            cls.name for cls in apk.classes() if cls.name.endswith("MainActivity")
        )

    def test_crash_fixed(self, checker, patcher):
        apk, _ = single_request_app(
            RequestSpec(library="basichttp"), package="com.patch.crash"
        )
        assert Runtime(apk, self.TERRIBLE, seed=7).run_entry(
            "com.patch.crash.MainActivity", "onClick"
        ).crashed
        fixed, _ = patcher.patch_until_clean(apk, checker)
        report = Runtime(fixed, self.TERRIBLE, seed=7).run_entry(
            "com.patch.crash.MainActivity", "onClick"
        )
        assert not report.crashed

    def test_battery_drain_fixed(self, checker, patcher):
        apk, _ = single_request_app(
            RequestSpec(
                library="basichttp",
                retry_loop=RetryLoopShape.UNCONDITIONAL_EXIT,
                backoff=Backoff.NONE,
            ),
            package="com.patch.drain",
        )
        assert Runtime(apk, OFFLINE, seed=7).run_entry(
            "com.patch.drain.MainActivity", "onClick"
        ).battery_drain
        fixed, _ = patcher.patch_until_clean(apk, checker)
        report = Runtime(fixed, OFFLINE, seed=7).run_entry(
            "com.patch.drain.MainActivity", "onClick"
        )
        assert not report.battery_drain

    def test_offline_guard_saves_radio(self, checker, patcher):
        apk, _ = single_request_app(RequestSpec(), package="com.patch.guard")
        fixed, _ = patcher.patch_until_clean(apk, checker)
        report = Runtime(fixed, OFFLINE, seed=7).run_entry(
            "com.patch.guard.MainActivity", "onClick"
        )
        assert report.network_attempts == 0  # the inserted guard bailed out

    def test_silent_failure_fixed_for_async(self, checker, patcher):
        apk, _ = single_request_app(
            RequestSpec(library="volley"), package="com.patch.silent"
        )
        fixed, _ = patcher.patch_until_clean(apk, checker)
        # The patched app checks connectivity first; offline it simply does
        # not fire the request — also acceptable UX. Run on a *lossy* link
        # instead so the request goes out and fails.
        report = Runtime(fixed, self.TERRIBLE, seed=9).run_entry(
            "com.patch.silent.MainActivity", "onClick"
        )
        if report.network_failures:
            assert report.user_notified_of_failure


class TestCorpusScale:
    def test_patching_the_small_corpus(self, small_corpus, checker, patcher):
        """Every generated app patches to (near-)clean in ≤3 rounds."""
        for apk, _ in small_corpus[:10]:
            fixed, _ = patcher.patch_until_clean(apk, checker)
            remaining = checker.scan(fixed).findings
            assert not remaining, (apk.package, [str(f) for f in remaining])
