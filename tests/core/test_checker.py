"""End-to-end NChecker tests: orchestration, options, reports."""

import pytest

from repro.core import (
    DefectKind,
    NChecker,
    NCheckerOptions,
    build_report,
)
from repro.corpus.snippets import Connectivity, Notification, RequestSpec

from tests.conftest import single_request_app


class TestScan:
    def test_clean_app_has_no_findings(self):
        spec = RequestSpec(
            library="basichttp",
            connectivity=Connectivity.GUARDED,
            with_timeout=True,
            with_retry=True,
            retry_value=2,
            with_notification=Notification.TOAST,
            with_response_check=True,
        )
        apk, _ = single_request_app(spec)
        result = NChecker().scan(apk)
        assert not result.is_buggy

    def test_fully_buggy_app_finds_all_kinds(self):
        apk, record = single_request_app(RequestSpec(library="basichttp"))
        result = NChecker().scan(apk)
        assert {f.kind for f in result.findings} == record.expected

    def test_findings_sorted_deterministically(self):
        apk, _ = single_request_app(RequestSpec())
        r1 = NChecker().scan(apk)
        r2 = NChecker().scan(apk)
        assert [str(f) for f in r1.findings] == [str(f) for f in r2.findings]

    def test_summary_counts(self):
        apk, record = single_request_app(RequestSpec())
        result = NChecker().scan(apk)
        summary = result.summary()
        assert sum(summary.values()) == len(result.findings)
        assert set(summary) == {k.value for k in record.expected}

    def test_libraries_used(self):
        apk, _ = single_request_app(RequestSpec(library="volley"))
        result = NChecker().scan(apk)
        assert result.libraries_used() == {"volley"}

    def test_app_without_requests_is_clean(self):
        from repro.corpus.appbuilder import AppBuilder

        app = AppBuilder("com.test.empty")
        activity = app.activity("MainActivity")
        b = activity.method("onCreate", params=[("android.os.Bundle", "s")])
        b.ret()
        activity.add(b)
        result = NChecker().scan(app.build())
        assert result.requests == [] and not result.is_buggy


class TestCheckSelection:
    @pytest.mark.parametrize(
        "enabled,expected_kinds",
        [
            (
                frozenset({"connectivity"}),
                {DefectKind.MISSED_CONNECTIVITY_CHECK},
            ),
            (
                frozenset({"config-apis"}),
                {DefectKind.MISSED_TIMEOUT, DefectKind.MISSED_RETRY},
            ),
            (
                frozenset({"invalid-response"}),
                {DefectKind.MISSED_RESPONSE_CHECK},
            ),
        ],
    )
    def test_only_enabled_checks_run(self, enabled, expected_kinds):
        apk, _ = single_request_app(RequestSpec(library="basichttp"))
        options = NCheckerOptions(enabled_checks=enabled)
        result = NChecker(options=options).scan(apk)
        assert {f.kind for f in result.findings} == expected_kinds


class TestReports:
    def test_report_has_all_five_sections(self):
        """Paper §4.6: information, impact, context, call stack, fix."""
        apk, _ = single_request_app(RequestSpec())
        result = NChecker().scan(apk)
        report = build_report(result.findings[0])
        text = report.render()
        for section in (
            "NPD Information",
            "NPD impact",
            "Network request context",
            "Network request call stack",
            "Fix Suggestion",
        ):
            assert section in text

    def test_user_context_mentions_users(self):
        apk, _ = single_request_app(RequestSpec())
        result = NChecker().scan(apk)
        report = build_report(result.findings[0])
        assert "user" in report.request_context.lower()

    def test_background_context_mentions_energy(self):
        apk, _ = single_request_app(RequestSpec(library="volley"), in_service=True)
        result = NChecker().scan(apk)
        finding = result.findings_of(DefectKind.OVER_RETRY_SERVICE)[0]
        report = build_report(finding)
        assert "background" in report.request_context.lower()

    def test_call_stack_starts_at_entry_point(self):
        apk, _ = single_request_app(RequestSpec())
        result = NChecker().scan(apk)
        report = build_report(result.findings[0])
        assert "onClick" in report.call_stack[0]

    def test_fix_suggestion_names_an_api(self):
        apk, _ = single_request_app(RequestSpec(library="basichttp"))
        result = NChecker().scan(apk)
        timeout_finding = result.findings_of(DefectKind.MISSED_TIMEOUT)[0]
        report = build_report(timeout_finding)
        assert "Timeout" in report.fix_suggestion or "timeout" in report.fix_suggestion

    def test_reports_for_all_findings(self):
        apk, _ = single_request_app(RequestSpec())
        result = NChecker().scan(apk)
        assert len(result.reports()) == len(result.findings)


class TestDefectMetadata:
    def test_every_kind_has_complete_metadata(self):
        from repro.core.defects import (
            FIX_SUGGESTIONS,
            KIND_IMPACT,
            KIND_PATTERN,
            KIND_ROOT_CAUSE,
            defect_info,
        )

        for kind in DefectKind:
            assert kind in KIND_PATTERN
            assert kind in KIND_ROOT_CAUSE
            assert kind in KIND_IMPACT
            assert kind in FIX_SUGGESTIONS
            info = defect_info(kind)
            assert info.kind is kind

    def test_study_distributions_sum(self):
        from repro.core.defects import IMPACT_DISTRIBUTION, ROOT_CAUSE_CASES

        assert sum(IMPACT_DISTRIBUTION.values()) == 100
        assert sum(ROOT_CAUSE_CASES.values()) == 90
