"""Invalid-response analysis tests (paper §4.4.4)."""

import pytest

from repro.core import DefectKind, NChecker
from repro.corpus.snippets import RequestSpec

from tests.conftest import single_request_app


def _scan(spec, **kw):
    apk, record = single_request_app(spec, **kw)
    return NChecker().scan(apk), record


class TestBlockingResponse:
    @pytest.mark.parametrize("library", ["basichttp", "okhttp"])
    def test_unchecked_use_flagged(self, library):
        result, _ = _scan(RequestSpec(library=library))
        assert result.count_of(DefectKind.MISSED_RESPONSE_CHECK) == 1

    @pytest.mark.parametrize("library", ["basichttp", "okhttp"])
    def test_checked_use_clean(self, library):
        result, _ = _scan(RequestSpec(library=library, with_response_check=True))
        assert result.count_of(DefectKind.MISSED_RESPONSE_CHECK) == 0

    def test_volley_auto_check_exempt(self):
        """Volley routes invalid responses to the error callback (Table 4 ⋆)."""
        result, _ = _scan(RequestSpec(library="volley"))
        assert result.count_of(DefectKind.MISSED_RESPONSE_CHECK) == 0

    def test_libraries_without_check_apis_exempt(self):
        result, _ = _scan(RequestSpec(library="apache"))
        assert result.count_of(DefectKind.MISSED_RESPONSE_CHECK) == 0


class TestPathSensitivity:
    def _app(self, build_use):
        from repro.corpus.appbuilder import AppBuilder
        from repro.ir import Local

        app = AppBuilder("com.test.resp")
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        client = body.new("com.turbomanage.httpclient.BasicHttpClient", "c")
        response = body.call(
            client, "get", "http://x", ret="r",
            return_type="com.turbomanage.httpclient.HttpResponse",
        )
        build_use(body, response)
        body.ret()
        activity.add(body)
        return app.build()

    def test_null_check_guards_use(self):
        def use(body, response):
            with body.if_then("!=", response, None):
                body.call(response, "getBodyAsString", ret="data",
                          cls="com.turbomanage.httpclient.HttpResponse")

        result = NChecker().scan(self._app(use))
        assert result.count_of(DefectKind.MISSED_RESPONSE_CHECK) == 0

    def test_unguarded_path_detected(self):
        """A check on one path does not absolve a use reachable without it."""
        from repro.ir import Local

        def use(body, response):
            body.assign("mode", 1)
            with body.if_then("==", Local("mode"), 0):
                with body.if_then("!=", response, None):
                    body.nop()
            # This use is NOT under the null check.
            body.call(response, "getBodyAsString", ret="data",
                      cls="com.turbomanage.httpclient.HttpResponse")

        result = NChecker().scan(self._app(use))
        assert result.count_of(DefectKind.MISSED_RESPONSE_CHECK) == 1

    def test_derived_alias_checked(self):
        """Copying the response keeps the taint and the obligation."""
        from repro.ir import Local

        def use(body, response):
            body.assign("alias", response)
            body.call(Local("alias"), "getBodyAsString", ret="data",
                      cls="com.turbomanage.httpclient.HttpResponse")

        result = NChecker().scan(self._app(use))
        assert result.count_of(DefectKind.MISSED_RESPONSE_CHECK) == 1

    def test_status_check_via_derived_value(self):
        """`s = r.getStatus(); if s < 400 ...` validates the response."""
        from repro.ir import Local

        def use(body, response):
            status = body.call(response, "getStatus", ret="s",
                               cls="com.turbomanage.httpclient.HttpResponse",
                               return_type="int")
            with body.if_then("<", status, 400):
                body.call(response, "getBodyAsString", ret="data",
                          cls="com.turbomanage.httpclient.HttpResponse")

        result = NChecker().scan(self._app(use))
        assert result.count_of(DefectKind.MISSED_RESPONSE_CHECK) == 0

    def test_discarded_response_is_clean(self):
        def use(body, response):
            pass  # never touched

        result = NChecker().scan(self._app(use))
        assert result.count_of(DefectKind.MISSED_RESPONSE_CHECK) == 0


class TestEscapedResponse:
    """One-hop interprocedural tracking: a helper returning the raw
    response transfers the checking obligation to its caller."""

    def _app(self, guard_in_caller):
        from repro.corpus.appbuilder import AppBuilder
        from repro.ir import Local

        app = AppBuilder("com.test.escape")
        activity = app.activity("MainActivity")
        fetch = activity.method(
            "fetchFeed", return_type="com.turbomanage.httpclient.HttpResponse"
        )
        client = fetch.new("com.turbomanage.httpclient.BasicHttpClient", "c")
        response = fetch.call(
            client, "get", "http://x", ret="r",
            return_type="com.turbomanage.httpclient.HttpResponse",
        )
        fetch.ret(response)
        activity.add(fetch)

        click = activity.method("onClick", params=[("android.view.View", "v")])
        resp = click.call(
            Local("this"), "fetchFeed", ret="resp", cls=activity.name,
            return_type="com.turbomanage.httpclient.HttpResponse",
        )
        if guard_in_caller:
            with click.if_then("!=", resp, None):
                click.call(resp, "getBodyAsString", ret="body",
                           cls="com.turbomanage.httpclient.HttpResponse")
        else:
            click.call(resp, "getBodyAsString", ret="body",
                       cls="com.turbomanage.httpclient.HttpResponse")
        click.ret()
        activity.add(click)
        return app.build()

    def test_unchecked_caller_use_flagged_at_caller(self):
        result = NChecker().scan(self._app(guard_in_caller=False))
        findings = result.findings_of(DefectKind.MISSED_RESPONSE_CHECK)
        assert len(findings) == 1
        assert findings[0].method_key[1] == "onClick"

    def test_caller_side_guard_suffices(self):
        result = NChecker().scan(self._app(guard_in_caller=True))
        assert result.count_of(DefectKind.MISSED_RESPONSE_CHECK) == 0


class TestAsyncResponse:
    def _okhttp_enqueue_app(self, with_check):
        from repro.corpus.appbuilder import AppBuilder
        from repro.ir import Local

        app = AppBuilder("com.test.enq")
        callback = app.new_class("Cb", interfaces=["com.squareup.okhttp.Callback"])
        ok = callback.method(
            "onResponse", params=[("com.squareup.okhttp.Response", "response")]
        )
        if with_check:
            good = ok.call(Local("response"), "isSuccessful", ret="good",
                           cls="com.squareup.okhttp.Response", return_type="boolean")
            with ok.if_then("==", good, True):
                ok.call(Local("response"), "body", ret="b",
                        cls="com.squareup.okhttp.Response")
        else:
            ok.call(Local("response"), "body", ret="b",
                    cls="com.squareup.okhttp.Response")
        ok.ret()
        callback.add(ok)
        fail = callback.method(
            "onFailure",
            params=[("com.squareup.okhttp.Request", "req"), ("java.io.IOException", "e")],
        )
        fail.ret()
        callback.add(fail)

        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        client = body.new("com.squareup.okhttp.OkHttpClient", "client")
        call = body.call(client, "newCall", "http://x", ret="call",
                         return_type="com.squareup.okhttp.Call")
        cb = body.new(f"{app.package}.Cb", "cb")
        body.call(call, "enqueue", cb, cls="com.squareup.okhttp.Call")
        body.ret()
        activity.add(body)
        return app.build()

    def test_unchecked_async_response_flagged(self):
        result = NChecker().scan(self._okhttp_enqueue_app(with_check=False))
        assert result.count_of(DefectKind.MISSED_RESPONSE_CHECK) == 1

    def test_checked_async_response_clean(self):
        result = NChecker().scan(self._okhttp_enqueue_app(with_check=True))
        assert result.count_of(DefectKind.MISSED_RESPONSE_CHECK) == 0
