"""Improper-retry-parameter analysis tests (paper §4.4.2, Table 8)."""

import pytest

from repro.core import DefectKind, NChecker
from repro.corpus.snippets import Backoff, RequestSpec, RetryLoopShape

from tests.conftest import single_request_app


def _scan(spec, in_service=False):
    apk, record = single_request_app(spec, in_service=in_service)
    return NChecker().scan(apk), record


class TestTimeSensitive:
    def test_user_request_with_zero_retries_flagged(self):
        result, _ = _scan(
            RequestSpec(library="basichttp", with_retry=True, retry_value=0)
        )
        assert result.count_of(DefectKind.NO_RETRY_TIME_SENSITIVE) == 1

    def test_user_request_with_retries_clean(self):
        result, _ = _scan(
            RequestSpec(library="basichttp", with_retry=True, retry_value=2)
        )
        assert result.count_of(DefectKind.NO_RETRY_TIME_SENSITIVE) == 0

    def test_default_retries_satisfy_time_sensitivity(self):
        """Volley defaults to 1 retry: a user request is fine unconfigured."""
        result, _ = _scan(RequestSpec(library="volley"))
        assert result.count_of(DefectKind.NO_RETRY_TIME_SENSITIVE) == 0

    def test_custom_retry_loop_counts_as_retrying(self):
        result, _ = _scan(
            RequestSpec(
                library="basichttp",
                with_retry=True,
                retry_value=0,
                retry_loop=RetryLoopShape.CATCH_DEPENDENT,
                backoff=Backoff.EXPONENTIAL,
            )
        )
        assert result.count_of(DefectKind.NO_RETRY_TIME_SENSITIVE) == 0


class TestOverRetryService:
    def test_background_default_retries_flagged(self):
        result, _ = _scan(RequestSpec(library="asynchttp"), in_service=True)
        findings = result.findings_of(DefectKind.OVER_RETRY_SERVICE)
        assert len(findings) == 1
        assert findings[0].default_caused  # Table 8 column 3

    def test_background_explicit_retries_flagged_not_default(self):
        result, _ = _scan(
            RequestSpec(library="basichttp", with_retry=True, retry_value=3),
            in_service=True,
        )
        findings = result.findings_of(DefectKind.OVER_RETRY_SERVICE)
        assert len(findings) == 1
        assert not findings[0].default_caused

    def test_background_zero_retries_clean(self):
        result, _ = _scan(
            RequestSpec(library="basichttp", with_retry=True, retry_value=0),
            in_service=True,
        )
        assert result.count_of(DefectKind.OVER_RETRY_SERVICE) == 0

    def test_user_request_never_flagged_for_service_rule(self):
        result, _ = _scan(RequestSpec(library="asynchttp"))
        assert result.count_of(DefectKind.OVER_RETRY_SERVICE) == 0


class TestOverRetryPost:
    def test_volley_post_default_retry_flagged(self):
        """Volley's method-agnostic DefaultRetryPolicy retries POSTs."""
        result, _ = _scan(RequestSpec(library="volley", http_post=True))
        findings = result.findings_of(DefectKind.OVER_RETRY_POST)
        assert len(findings) == 1 and findings[0].default_caused

    def test_asynchttp_post_default_retry_flagged(self):
        result, _ = _scan(RequestSpec(library="asynchttp", http_post=True))
        assert result.count_of(DefectKind.OVER_RETRY_POST) == 1

    def test_okhttp_post_defaults_are_safe(self):
        """OkHttp's connection-failure retry skips non-idempotent methods."""
        result, _ = _scan(RequestSpec(library="okhttp", http_post=True))
        assert result.count_of(DefectKind.OVER_RETRY_POST) == 0

    def test_explicit_post_retry_flagged_not_default(self):
        result, _ = _scan(
            RequestSpec(
                library="basichttp", http_post=True, with_retry=True, retry_value=2
            )
        )
        findings = result.findings_of(DefectKind.OVER_RETRY_POST)
        assert len(findings) == 1 and not findings[0].default_caused

    def test_get_request_not_flagged(self):
        result, _ = _scan(RequestSpec(library="volley"))
        assert result.count_of(DefectKind.OVER_RETRY_POST) == 0

    def test_apache_post_detected_via_request_class(self):
        """Apache's POST-ness is carried by the HttpPost object."""
        result, _ = _scan(
            RequestSpec(library="apache", http_post=True, with_retry=True, retry_value=3)
        )
        assert result.count_of(DefectKind.OVER_RETRY_POST) == 1

    def test_urlconnection_post_via_setrequestmethod(self):
        from repro.core.requests import AnalysisContext, find_requests
        from repro.libmodels import HttpMethod, default_registry

        apk, _ = single_request_app(
            RequestSpec(library="httpurlconnection", http_post=True)
        )
        ctx = AnalysisContext.build(apk, default_registry())
        request = find_requests(ctx)[0]
        assert request.http_method is HttpMethod.POST


class TestAggressiveLoops:
    @pytest.mark.parametrize(
        "shape",
        [
            RetryLoopShape.UNCONDITIONAL_EXIT,
            RetryLoopShape.CATCH_DEPENDENT,
            RetryLoopShape.CALLEE_CATCH,
        ],
    )
    def test_no_backoff_flagged(self, shape):
        result, _ = _scan(
            RequestSpec(library="basichttp", retry_loop=shape, backoff=Backoff.NONE)
        )
        assert result.count_of(DefectKind.AGGRESSIVE_RETRY_LOOP) == 1

    def test_fixed_small_delay_still_aggressive(self):
        """The Telegram shape (Fig 2): a constant 500 ms reconnect timer."""
        result, _ = _scan(
            RequestSpec(
                library="basichttp",
                retry_loop=RetryLoopShape.UNCONDITIONAL_EXIT,
                backoff=Backoff.FIXED_SMALL,
            )
        )
        assert result.count_of(DefectKind.AGGRESSIVE_RETRY_LOOP) == 1

    def test_exponential_backoff_clean(self):
        result, _ = _scan(
            RequestSpec(
                library="basichttp",
                retry_loop=RetryLoopShape.UNCONDITIONAL_EXIT,
                backoff=Backoff.EXPONENTIAL,
            )
        )
        assert result.count_of(DefectKind.AGGRESSIVE_RETRY_LOOP) == 0
