"""Failure-notification analysis tests (paper §4.4.3)."""

import pytest

from repro.core import DefectKind, NChecker
from repro.corpus.snippets import Notification, RequestSpec

from tests.conftest import single_request_app


def _scan(spec, in_service=False):
    apk, record = single_request_app(spec, in_service=in_service)
    return NChecker().scan(apk), record


class TestBlockingLibraries:
    def test_silent_catch_flagged(self):
        result, _ = _scan(RequestSpec(with_notification=Notification.NONE))
        assert result.count_of(DefectKind.MISSED_NOTIFICATION) == 1

    def test_toast_in_catch_clean(self):
        result, _ = _scan(RequestSpec(with_notification=Notification.TOAST))
        assert result.count_of(DefectKind.MISSED_NOTIFICATION) == 0

    def test_handler_notification_counts(self):
        result, _ = _scan(RequestSpec(with_notification=Notification.HANDLER))
        assert result.count_of(DefectKind.MISSED_NOTIFICATION) == 0
        info = result.notification_of(result.requests[0])
        assert info.notified_via_handler

    def test_log_only_is_not_notification(self):
        """Table 2(iii): a Log.e leaves the user staring at silence."""
        result, _ = _scan(RequestSpec(with_notification=Notification.LOG))
        assert result.count_of(DefectKind.MISSED_NOTIFICATION) == 1

    def test_broadcast_is_invisible_to_the_analysis(self):
        """The paper's 5 notification FPs: inter-component display."""
        result, record = _scan(
            RequestSpec(with_notification=Notification.BROADCAST)
        )
        assert result.count_of(DefectKind.MISSED_NOTIFICATION) == 1  # FP
        assert DefectKind.MISSED_NOTIFICATION not in record.expected


class TestAsyncLibraries:
    @pytest.mark.parametrize("library", ["volley", "asynchttp"])
    def test_silent_error_callback_flagged(self, library):
        result, _ = _scan(
            RequestSpec(library=library, with_notification=Notification.NONE)
        )
        assert result.count_of(DefectKind.MISSED_NOTIFICATION) == 1

    @pytest.mark.parametrize("library", ["volley", "asynchttp"])
    def test_toast_in_error_callback_clean(self, library):
        result, _ = _scan(
            RequestSpec(library=library, with_notification=Notification.TOAST)
        )
        assert result.count_of(DefectKind.MISSED_NOTIFICATION) == 0

    def test_explicit_callback_recorded(self):
        result, _ = _scan(
            RequestSpec(library="volley", with_notification=Notification.TOAST)
        )
        info = result.notification_of(result.requests[0])
        assert info.has_explicit_error_callback


class TestContextGating:
    def test_background_requests_not_checked(self):
        """Paper: error messages only help user-initiated requests."""
        result, _ = _scan(
            RequestSpec(with_notification=Notification.NONE), in_service=True
        )
        assert result.count_of(DefectKind.MISSED_NOTIFICATION) == 0


class TestAsyncTaskShape:
    def test_notification_in_onpostexecute_credited(self):
        """Fig 5's shape: blocking request in doInBackground; the Toast
        lives in onPostExecute."""
        from repro.corpus.appbuilder import AppBuilder
        from repro.ir import Local

        app = AppBuilder("com.test.task")
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        task = body.new("com.test.task.FetchTask", "t")
        body.call(task, "execute")
        body.ret()
        activity.add(body)

        task_cls = app.async_task("FetchTask")
        bg = task_cls.method("doInBackground")
        client = bg.new("com.turbomanage.httpclient.BasicHttpClient", "c")
        bg.call(client, "get", "http://x", ret="r")
        bg.ret()
        task_cls.add(bg)
        post = task_cls.method("onPostExecute", params=[("java.lang.String", "r")])
        toast = post.static_call(
            "android.widget.Toast", "makeText", "ctx", "failed", 0,
            ret="t2", return_type="android.widget.Toast",
        )
        post.call(toast, "show", cls="android.widget.Toast")
        post.ret()
        task_cls.add(post)

        result = NChecker().scan(app.build())
        assert result.count_of(DefectKind.MISSED_NOTIFICATION) == 0


class TestErrorTypes:
    def test_volley_untyped_error_callback_flagged(self):
        result, _ = _scan(
            RequestSpec(library="volley", with_notification=Notification.TOAST)
        )
        assert result.count_of(DefectKind.MISSED_ERROR_TYPE_CHECK) == 1

    def test_volley_error_instanceof_credited(self):
        result, _ = _scan(
            RequestSpec(
                library="volley",
                with_notification=Notification.TOAST,
                uses_error_types=True,
            )
        )
        assert result.count_of(DefectKind.MISSED_ERROR_TYPE_CHECK) == 0

    def test_other_libraries_exempt(self):
        """Only Volley exposes error types (§4.4.3)."""
        result, _ = _scan(
            RequestSpec(library="asynchttp", with_notification=Notification.TOAST)
        )
        assert result.count_of(DefectKind.MISSED_ERROR_TYPE_CHECK) == 0
