"""Request extraction and context inference tests (paper §4.4.2)."""

import pytest

from repro.core.requests import AnalysisContext, find_requests
from repro.corpus.appbuilder import AppBuilder
from repro.corpus.snippets import RequestSpec, inject_request
from repro.libmodels import HttpMethod, default_registry

from tests.conftest import single_request_app


def _requests(apk):
    ctx = AnalysisContext.build(apk, default_registry())
    return find_requests(ctx)


class TestExtraction:
    def test_one_request_per_target_call(self):
        apk, _ = single_request_app(RequestSpec(library="basichttp"))
        requests = _requests(apk)
        assert len(requests) == 1
        assert requests[0].library.key == "basichttp"

    def test_location_format(self):
        apk, _ = single_request_app(RequestSpec())
        request = _requests(apk)[0]
        assert request.location().startswith("com.test.app.MainActivity.onClick:")

    def test_config_local_is_receiver_for_blocking_libs(self):
        apk, _ = single_request_app(RequestSpec(library="basichttp"))
        request = _requests(apk)[0]
        assert request.config_local() == request.invoke.base

    def test_config_local_is_request_arg_for_volley(self):
        apk, _ = single_request_app(RequestSpec(library="volley"))
        request = _requests(apk)[0]
        assert request.config_local() != request.invoke.base
        assert request.config_local() == request.invoke.args[0]


class TestContextInference:
    def test_activity_request_is_user_initiated(self):
        apk, _ = single_request_app(RequestSpec())
        request = _requests(apk)[0]
        assert request.user_initiated and not request.background

    def test_service_request_is_background(self):
        apk, _ = single_request_app(RequestSpec(), in_service=True)
        request = _requests(apk)[0]
        assert request.background and not request.user_initiated

    def test_request_reachable_from_both_contexts(self):
        """A helper called from an Activity *and* a Service yields 'both'."""
        from repro.core.findings import context_of
        from repro.ir import Local

        app = AppBuilder("com.ctx.both")
        helper = app.new_class("Api")
        body = helper.method("fetch")
        client = body.new("com.turbomanage.httpclient.BasicHttpClient", "c")
        body.call(client, "get", "http://x", ret="r")
        body.ret()
        helper.add(body)

        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        api = body.new("com.ctx.both.Api", "api")
        body.call(api, "fetch")
        body.ret()
        activity.add(body)

        service = app.service("SyncService")
        body = service.method(
            "onStartCommand",
            params=[("android.content.Intent", "i"), ("int", "f")],
            return_type="int",
        )
        api = body.new("com.ctx.both.Api", "api")
        body.call(api, "fetch")
        body.ret(0)
        service.add(body)

        request = _requests(app.build())[0]
        assert request.user_initiated and request.background
        assert context_of(request) == "both"


class TestHttpMethodInference:
    @pytest.mark.parametrize(
        "library,expected",
        [
            ("basichttp", HttpMethod.POST),
            ("asynchttp", HttpMethod.POST),
            ("volley", HttpMethod.POST),
            ("apache", HttpMethod.POST),
            ("httpurlconnection", HttpMethod.POST),
        ],
    )
    def test_post_detected(self, library, expected):
        apk, _ = single_request_app(RequestSpec(library=library, http_post=True))
        request = _requests(apk)[0]
        assert request.http_method is expected

    @pytest.mark.parametrize("library", ["basichttp", "asynchttp", "volley"])
    def test_get_detected(self, library):
        apk, _ = single_request_app(RequestSpec(library=library))
        request = _requests(apk)[0]
        assert request.http_method is HttpMethod.GET

    def test_okhttp_defaults_to_any(self):
        apk, _ = single_request_app(RequestSpec(library="okhttp"))
        request = _requests(apk)[0]
        assert request.http_method is HttpMethod.ANY

    def test_volley_unknown_code_stays_any(self):
        from repro.ir import Const

        app = AppBuilder("com.ctx.volley")
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        queue = body.new("com.android.volley.RequestQueue", "q")
        request_obj = body.new(
            "com.android.volley.toolbox.StringRequest", "req",
            args=[Const(99), "http://x"],  # not a known method code
        )
        body.call(queue, "add", request_obj)
        body.ret()
        activity.add(body)
        request = _requests(app.build())[0]
        assert request.http_method is HttpMethod.ANY
