"""Config-API (timeout/retry) analysis tests (paper §4.4.1 taint part)."""

import pytest

from repro.core import DefectKind, NChecker
from repro.corpus.snippets import RequestSpec, SUPPORTED_LIBRARIES

from tests.conftest import single_request_app


def _scan(spec, **kw):
    apk, record = single_request_app(spec, **kw)
    return NChecker().scan(apk), record


class TestMissedTimeout:
    @pytest.mark.parametrize("library", SUPPORTED_LIBRARIES)
    def test_no_timeout_flagged_everywhere(self, library):
        result, _ = _scan(RequestSpec(library=library))
        assert result.count_of(DefectKind.MISSED_TIMEOUT) == 1

    @pytest.mark.parametrize("library", SUPPORTED_LIBRARIES)
    def test_timeout_credited_everywhere(self, library):
        result, _ = _scan(RequestSpec(library=library, with_timeout=True))
        assert result.count_of(DefectKind.MISSED_TIMEOUT) == 0

    def test_volley_retry_policy_credits_timeout(self):
        """setRetryPolicy(new DefaultRetryPolicy(t, r, b)) sets both."""
        result, _ = _scan(RequestSpec(library="volley", with_retry=True))
        assert result.count_of(DefectKind.MISSED_TIMEOUT) == 0


class TestMissedRetry:
    RETRY_LIBS = ("apache", "volley", "okhttp", "asynchttp", "basichttp")

    @pytest.mark.parametrize("library", RETRY_LIBS)
    def test_no_retry_flagged(self, library):
        result, _ = _scan(RequestSpec(library=library))
        assert result.count_of(DefectKind.MISSED_RETRY) == 1

    @pytest.mark.parametrize("library", RETRY_LIBS)
    def test_retry_credited(self, library):
        result, _ = _scan(RequestSpec(library=library, with_retry=True, retry_value=2))
        assert result.count_of(DefectKind.MISSED_RETRY) == 0

    def test_httpurlconnection_has_no_retry_check(self):
        result, _ = _scan(RequestSpec(library="httpurlconnection"))
        assert result.count_of(DefectKind.MISSED_RETRY) == 0


class TestResolvedValues:
    def test_basichttp_retry_constant(self):
        result, _ = _scan(
            RequestSpec(library="basichttp", with_retry=True, retry_value=4)
        )
        info = result.config_of(result.requests[0])
        assert info.retries == 4 and not info.retries_from_default

    def test_volley_policy_constants(self):
        result, _ = _scan(
            RequestSpec(
                library="volley", with_retry=True, retry_value=3,
                with_timeout=True, timeout_ms=7500,
            )
        )
        info = result.config_of(result.requests[0])
        assert info.retries == 3
        assert info.timeout_ms == 7500

    def test_apache_handler_constant(self):
        result, _ = _scan(
            RequestSpec(library="apache", with_retry=True, retry_value=2)
        )
        info = result.config_of(result.requests[0])
        assert info.retries == 2

    def test_okhttp_boolean_retry(self):
        result, _ = _scan(
            RequestSpec(library="okhttp", with_retry=True, retry_value=1)
        )
        info = result.config_of(result.requests[0])
        assert info.retries == 1

    def test_defaults_applied_when_unconfigured(self):
        result, _ = _scan(RequestSpec(library="asynchttp"))
        info = result.config_of(result.requests[0])
        assert info.retries == 5 and info.retries_from_default
        assert info.timeout_ms == 10_000 and info.timeout_from_default

    def test_timeout_constant_resolved(self):
        result, _ = _scan(
            RequestSpec(library="basichttp", with_timeout=True, timeout_ms=12345)
        )
        info = result.config_of(result.requests[0])
        assert info.timeout_ms == 12345


class TestAliasTracking:
    def test_okhttp_config_found_through_newcall_chain(self):
        """client.setReadTimeout(...); call = client.newCall(...);
        call.execute() — the backward step must reach the client."""
        result, _ = _scan(
            RequestSpec(library="okhttp", with_timeout=True, with_retry=True)
        )
        assert result.count_of(DefectKind.MISSED_TIMEOUT) == 0
        assert result.count_of(DefectKind.MISSED_RETRY) == 0

    def test_apache_static_params_config_found(self):
        """HttpConnectionParams.setConnectionTimeout(client.getParams(), t)
        is a *static* call configuring the client via its params object."""
        result, _ = _scan(RequestSpec(library="apache", with_timeout=True))
        assert result.count_of(DefectKind.MISSED_TIMEOUT) == 0

    def test_field_held_client_widens_to_class(self):
        """Config applied in one method, request sent in another, client in
        a field: the widened scan still credits the config."""
        from repro.corpus.appbuilder import AppBuilder
        from repro.ir import Local

        app = AppBuilder("com.test.field")
        activity = app.activity("MainActivity")

        setup = activity.method("onCreate", params=[("android.os.Bundle", "b")])
        client = setup.new("com.turbomanage.httpclient.BasicHttpClient", "client")
        setup.call(client, "setReadWriteTimeout", 8000)
        setup.call(client, "setMaxRetries", 2)
        setup.set_field(Local("this"), activity.name, "client", client)
        setup.ret()
        activity.add(setup)

        click = activity.method("onClick", params=[("android.view.View", "v")])
        c = click.get_field(Local("this"), activity.name, "client", "c")
        click.call(
            c, "get", "http://x", ret="r",
            cls="com.turbomanage.httpclient.BasicHttpClient",
        )
        click.ret()
        activity.add(click)

        result = NChecker().scan(app.build())
        assert result.count_of(DefectKind.MISSED_TIMEOUT) == 0
        assert result.count_of(DefectKind.MISSED_RETRY) == 0

    def test_unrelated_client_config_not_credited(self):
        """Configuring client A must not silence warnings about client B's
        request in the same method."""
        from repro.corpus.appbuilder import AppBuilder

        app = AppBuilder("com.test.two")
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        configured = body.new("com.turbomanage.httpclient.BasicHttpClient", "a")
        body.call(configured, "setReadWriteTimeout", 8000)
        bare = body.new("com.turbomanage.httpclient.BasicHttpClient", "b")
        body.call(bare, "get", "http://x", ret="r")
        body.ret()
        activity.add(body)
        result = NChecker().scan(app.build())
        assert result.count_of(DefectKind.MISSED_TIMEOUT) == 1
