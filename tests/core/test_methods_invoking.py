"""`methods_invoking` (`repro.core.checks.base`): the reverse-edge
worklist closure — correctness against a naive fixpoint and the
each-in-edge-at-most-once visit bound its telemetry counter exposes."""

from types import SimpleNamespace

from repro.callgraph.cha import CallGraph
from repro.corpus.appbuilder import AppBuilder
from repro.core.checks.base import methods_invoking
from repro.ir.values import Local
from repro.libmodels import default_registry
from repro.obs import use_metrics


def chain_app():
    """onClick → stepA → stepB, with stepB invoking the probed API and a
    bystander method that never reaches it."""
    app = AppBuilder("org.worklist.chain")
    activity = app.activity("MainActivity")
    cls = f"{app.package}.MainActivity"

    step_b = activity.method("stepB")
    step_b.call(Local("this"), "probedOp", cls="com.ext.Helper")
    step_b.ret()
    activity.add(step_b)

    step_a = activity.method("stepA")
    step_a.call(Local("this"), "stepB", cls=cls)
    step_a.ret()
    activity.add(step_a)

    body = activity.method("onClick", params=[("android.view.View", "v")])
    body.call(Local("this"), "stepA", cls=cls)
    body.ret()
    activity.add(body)

    bystander = activity.method("unrelated")
    bystander.ret()
    activity.add(bystander)
    return app.build()


def probed(invoke) -> bool:
    return invoke.sig.name == "probedOp"


def naive_closure(graph, predicate):
    """The replaced whole-graph re-sweep fixpoint, as the oracle."""
    result = set()
    for key, method in graph.methods.items():
        if any(predicate(inv) for _idx, inv in method.invoke_sites()):
            result.add(key)
    changed = True
    while changed:
        changed = False
        for key, method in graph.methods.items():
            if key in result:
                continue
            for _idx, invoke in method.invoke_sites():
                callee = (invoke.sig.class_name, invoke.sig.name, invoke.sig.arity)
                if callee in result:
                    result.add(key)
                    changed = True
                    break
    return result


class TestWorklistClosure:
    def test_matches_naive_fixpoint(self):
        graph = CallGraph(chain_app(), default_registry())
        ctx = SimpleNamespace(callgraph=graph)
        got = methods_invoking(ctx, probed)
        assert got == naive_closure(graph, probed)
        cls = "org.worklist.chain.MainActivity"
        assert got == {(cls, "stepB", 0), (cls, "stepA", 0), (cls, "onClick", 1)}

    def test_visits_each_member_in_edge_exactly_once(self):
        graph = CallGraph(chain_app(), default_registry())
        ctx = SimpleNamespace(callgraph=graph)
        with use_metrics() as registry:
            members = methods_invoking(ctx, probed)
            visits = registry.counter_value(
                "analysis.methods_invoking.edge_visits"
            )
        # The closure is {stepB, stepA, onClick}; their in-edges are
        # stepA→stepB and onClick→stepA — exactly two edge visits, not
        # the whole-graph re-sweep the old fixpoint performed.
        assert visits == 2
        in_edges = sum(len(graph.callers(key)) for key in members)
        assert visits == in_edges

    def test_no_matches_means_no_edge_visits(self):
        graph = CallGraph(chain_app(), default_registry())
        ctx = SimpleNamespace(callgraph=graph)
        with use_metrics() as registry:
            assert methods_invoking(ctx, lambda inv: False) == set()
            assert (
                registry.counter_value("analysis.methods_invoking.edge_visits")
                == 0
            )
