"""Entry-point discovery tests."""

from repro.app import APK, ComponentKind, Manifest
from repro.callgraph import discover_entry_points, entry_points_by_key
from repro.ir import ClassBuilder


def _app():
    manifest = Manifest(
        "com.x", activities=["com.x.Main"], services=["com.x.Sync"]
    )
    main = ClassBuilder("com.x.Main", "android.app.Activity")
    for name, params in (
        ("onCreate", [("android.os.Bundle", "b")]),
        ("onClick", [("android.view.View", "v")]),
        ("helper", []),
    ):
        b = main.method(name, params=params)
        b.ret()
        main.add(b)
    sync = ClassBuilder("com.x.Sync", "android.app.Service")
    b = sync.method(
        "onStartCommand",
        params=[("android.content.Intent", "i"), ("int", "f")],
        return_type="int",
    )
    b.ret(0)
    sync.add(b)
    listener = ClassBuilder("com.x.Listener", interfaces=["android.view.View$OnClickListener"])
    b = listener.method("onClick", params=[("android.view.View", "v")])
    b.ret()
    listener.add(b)
    return APK(manifest, [main.build(), sync.build(), listener.build()])


class TestDiscovery:
    def test_lifecycle_methods_are_entries(self):
        entries = entry_points_by_key(_app())
        assert ("com.x.Main", "onCreate", 1) in entries
        assert ("com.x.Sync", "onStartCommand", 2) in entries

    def test_ui_callbacks_are_entries(self):
        entries = entry_points_by_key(_app())
        assert ("com.x.Main", "onClick", 1) in entries
        assert ("com.x.Listener", "onClick", 1) in entries

    def test_plain_helpers_are_not_entries(self):
        entries = entry_points_by_key(_app())
        assert ("com.x.Main", "helper", 0) not in entries

    def test_activity_entries_are_user_initiated(self):
        entries = entry_points_by_key(_app())
        assert entries[("com.x.Main", "onCreate", 1)].user_initiated
        assert entries[("com.x.Main", "onClick", 1)].user_initiated

    def test_service_entries_are_background(self):
        entries = entry_points_by_key(_app())
        entry = entries[("com.x.Sync", "onStartCommand", 2)]
        assert entry.background and not entry.user_initiated

    def test_listener_outside_component_assumed_user(self):
        entries = entry_points_by_key(_app())
        assert entries[("com.x.Listener", "onClick", 1)].user_initiated

    def test_no_duplicates(self):
        entries = discover_entry_points(_app())
        keys = [e.key for e in entries]
        assert len(keys) == len(set(keys))
