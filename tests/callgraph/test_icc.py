"""Inter-component-communication analysis tests (the §4.7 extension)."""

import pytest

from repro.callgraph.icc import build_icc_model
from repro.core import DefectKind, NChecker, NCheckerOptions
from repro.corpus import build_opensource_corpus, overall_accuracy, table9_confusions
from repro.corpus.appbuilder import AppBuilder
from repro.corpus.snippets import Connectivity, Notification, RequestSpec, inject_request
from repro.corpus.opensource import _add_error_display_activity, _add_launcher_with_check


def _fp_app():
    """Launcher checks connectivity, then starts the requesting activity."""
    app = AppBuilder("com.icc.fp")
    _add_launcher_with_check(app)
    activity = app.activity("MainActivity")
    body = activity.method("onClick", params=[("android.view.View", "v")])
    inject_request(
        app, body, RequestSpec(connectivity=Connectivity.INTER_COMPONENT),
        user_initiated=True,
    )
    body.ret()
    activity.add(body)
    return app.build()


def _broadcast_app():
    app = AppBuilder("com.icc.bcast")
    _add_error_display_activity(app)
    activity = app.activity("MainActivity")
    body = activity.method("onClick", params=[("android.view.View", "v")])
    inject_request(
        app, body,
        RequestSpec(
            connectivity=Connectivity.GUARDED,
            with_notification=Notification.BROADCAST,
        ),
        user_initiated=True,
    )
    body.ret()
    activity.add(body)
    return app.build()


class TestModel:
    def test_launch_site_resolved(self):
        model = build_icc_model(_fp_app())
        assert len(model.launches) == 1
        assert model.launches[0].target == "com.icc.fp.MainActivity"

    def test_broadcast_and_display_found(self):
        model = build_icc_model(_broadcast_app())
        assert len(model.broadcasts) == 1
        assert model.ui_broadcast_receivers == {"com.icc.bcast.ErrorDisplayActivity"}
        assert model.broadcasts_displayed

    def test_broadcast_without_display_not_credited(self):
        app = AppBuilder("com.icc.nodisp")
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        inject_request(
            app, body,
            RequestSpec(
                connectivity=Connectivity.GUARDED,
                with_notification=Notification.BROADCAST,
            ),
            user_initiated=True,
        )
        body.ret()
        activity.add(body)
        model = build_icc_model(app.build())
        assert not model.broadcasts_displayed

    def test_app_without_icc_has_empty_model(self):
        app = AppBuilder("com.icc.plain")
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        inject_request(app, body, RequestSpec(), user_initiated=True)
        body.ret()
        activity.add(body)
        model = build_icc_model(app.build())
        assert model.launches == [] and model.broadcasts == []


class TestCheckerIntegration:
    def test_icc_suppresses_connectivity_fp(self):
        apk = _fp_app()
        default = NChecker().scan(apk)
        icc = NChecker(options=NCheckerOptions(inter_component=True)).scan(apk)
        assert default.count_of(DefectKind.MISSED_CONNECTIVITY_CHECK) == 1
        assert icc.count_of(DefectKind.MISSED_CONNECTIVITY_CHECK) == 0

    def test_icc_suppresses_notification_fp(self):
        apk = _broadcast_app()
        default = NChecker().scan(apk)
        icc = NChecker(options=NCheckerOptions(inter_component=True)).scan(apk)
        assert default.count_of(DefectKind.MISSED_NOTIFICATION) == 1
        assert icc.count_of(DefectKind.MISSED_NOTIFICATION) == 0

    def test_icc_does_not_suppress_real_defects(self):
        app = AppBuilder("com.icc.real")
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        inject_request(app, body, RequestSpec(), user_initiated=True)
        body.ret()
        activity.add(body)
        apk = app.build()
        default = NChecker().scan(apk)
        icc = NChecker(options=NCheckerOptions(inter_component=True)).scan(apk)
        assert default.summary() == icc.summary()

    def test_icc_restores_perfect_fp_rate_on_table9_corpus(self):
        corpus = build_opensource_corpus()
        truths = [t for _, t in corpus]
        checker = NChecker(options=NCheckerOptions(inter_component=True))
        results = [checker.scan(apk) for apk, _ in corpus]
        table = table9_confusions(truths, results)
        assert sum(c.false_positives for c in table.values()) == 0
        assert sum(c.false_negatives for c in table.values()) == 5  # FNs remain

    def test_icc_plus_guard_aware_is_perfect(self):
        corpus = build_opensource_corpus()
        truths = [t for _, t in corpus]
        options = NCheckerOptions(
            inter_component=True, guard_aware_connectivity=True
        )
        checker = NChecker(options=options)
        results = [checker.scan(apk) for apk, _ in corpus]
        table = table9_confusions(truths, results)
        assert overall_accuracy(table) == 1.0
        assert sum(c.false_negatives for c in table.values()) == 0
