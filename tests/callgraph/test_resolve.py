"""Origin-class resolution and field-type collection tests."""

from repro.callgraph import MethodAnalysisCache, collect_field_types, origin_classes
from repro.ir import ClassBuilder, Local, MethodBuilder


class TestOriginClasses:
    def test_direct_allocation(self):
        b = MethodBuilder("com.x.C", "m")
        obj = b.new("com.x.Task", "t")
        b.call(obj, "execute")
        b.ret()
        method = b.build()
        idx = [i for i, _ in method.invoke_sites()][-1]
        assert origin_classes(method, idx, Local("t")) == {"com.x.Task"}

    def test_through_copy(self):
        b = MethodBuilder("com.x.C", "m")
        obj = b.new("com.x.Task", "t")
        b.assign("alias", obj)
        b.call(Local("alias"), "execute", cls="?")
        b.ret()
        method = b.build()
        idx = [i for i, _ in method.invoke_sites()][-1]
        assert origin_classes(method, idx, Local("alias")) == {"com.x.Task"}

    def test_parameter_uses_type_hint(self):
        b = MethodBuilder(
            "com.x.C", "m", params=[("com.x.Task", "t")]
        )
        b.call(Local("t"), "execute", cls="?")
        b.ret()
        method = b.build()
        assert origin_classes(method, 0, Local("t")) == {"com.x.Task"}

    def test_typed_call_result(self):
        b = MethodBuilder("com.x.C", "m")
        c = b.new("com.lib.Client", "c")
        b.call(c, "newCall", ret="call", return_type="com.lib.Call")
        b.call(Local("call"), "execute", cls="?")
        b.ret()
        method = b.build()
        idx = [i for i, _ in method.invoke_sites()][-1]
        assert origin_classes(method, idx, Local("call")) == {"com.lib.Call"}

    def test_field_load_with_field_types(self):
        store_b = MethodBuilder("com.x.C", "setup")
        task = store_b.new("com.x.Task", "t")
        store_b.set_field(Local("this"), "com.x.C", "task", task)
        store_b.ret()
        setup = store_b.build()

        use_b = MethodBuilder("com.x.C", "go")
        t = use_b.get_field(Local("this"), "com.x.C", "task", "t")
        use_b.call(t, "execute", cls="?")
        use_b.ret()
        go = use_b.build()

        field_types = collect_field_types([setup, go])
        assert field_types[("com.x.C", "task")] == "com.x.Task"
        idx = [i for i, _ in go.invoke_sites()][-1]
        cache = MethodAnalysisCache()
        assert origin_classes(go, idx, Local("t"), cache, field_types) == {
            "com.x.Task"
        }

    def test_conflicting_field_stores_dropped(self):
        b1 = MethodBuilder("com.x.C", "a")
        t = b1.new("com.x.T1", "t")
        b1.set_field(Local("this"), "com.x.C", "f", t)
        b1.ret()
        b2 = MethodBuilder("com.x.C", "b")
        t = b2.new("com.x.T2", "t")
        b2.set_field(Local("this"), "com.x.C", "f", t)
        b2.ret()
        field_types = collect_field_types([b1.build(), b2.build()])
        assert ("com.x.C", "f") not in field_types


class TestCache:
    def test_cfg_cached_by_identity(self):
        b = MethodBuilder("com.x.C", "m")
        b.ret()
        method = b.build()
        cache = MethodAnalysisCache()
        assert cache.cfg(method) is cache.cfg(method)
        assert cache.defuse(method) is cache.defuse(method)
