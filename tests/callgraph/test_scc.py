"""Tarjan SCC / condensation ordering (the summary engine's backbone)."""

from repro.callgraph.scc import condensation_order, strongly_connected_components


def _graph(edges: dict[str, list[str]]):
    nodes = sorted(set(edges) | {s for succ in edges.values() for s in succ})
    return nodes, lambda n: edges.get(n, [])


class TestStronglyConnectedComponents:
    def test_chain_is_callee_first(self):
        nodes, succ = _graph({"a": ["b"], "b": ["c"]})
        assert strongly_connected_components(nodes, succ) == [("c",), ("b",), ("a",)]

    def test_cycle_grouped_into_one_scc(self):
        nodes, succ = _graph({"a": ["b"], "b": ["a", "c"]})
        sccs = strongly_connected_components(nodes, succ)
        assert sorted(sccs[0]) == ["c"]
        assert sorted(sccs[1]) == ["a", "b"]

    def test_self_loop_is_its_own_scc(self):
        nodes, succ = _graph({"a": ["a"]})
        assert strongly_connected_components(nodes, succ) == [("a",)]

    def test_disconnected_nodes_all_emitted(self):
        nodes, succ = _graph({"a": [], "b": [], "c": []})
        emitted = {n for scc in strongly_connected_components(nodes, succ) for n in scc}
        assert emitted == {"a", "b", "c"}

    def test_diamond_respects_dependencies(self):
        nodes, succ = _graph({"a": ["b", "c"], "b": ["d"], "c": ["d"]})
        sccs = strongly_connected_components(nodes, succ)
        pos = {n: i for i, scc in enumerate(sccs) for n in scc}
        assert pos["d"] < pos["b"] < pos["a"]
        assert pos["d"] < pos["c"] < pos["a"]

    def test_deep_chain_does_not_recurse(self):
        # 10k frames would blow Python's recursion limit if Tarjan recursed.
        n = 10_000
        edges = {str(i): [str(i + 1)] for i in range(n)}
        nodes, succ = _graph(edges)
        sccs = strongly_connected_components(nodes, succ)
        assert len(sccs) == n + 1
        assert sccs[0] == (str(n),)
        assert sccs[-1] == ("0",)


class TestCondensationOrder:
    def test_positions_match_emission_order(self):
        nodes, succ = _graph({"a": ["b"], "b": ["c", "a"]})
        sccs, position = condensation_order(nodes, succ)
        assert position["c"] == 0
        assert position["a"] == position["b"] == 1
        assert len(sccs) == 2

    def test_every_node_positioned(self):
        nodes, succ = _graph({"a": ["b", "c"], "b": [], "c": ["b"]})
        _sccs, position = condensation_order(nodes, succ)
        assert set(position) == {"a", "b", "c"}
