"""Call-chain extraction tests."""

from repro.app import APK, Manifest
from repro.callgraph import CallGraph, chains_to_method, entries_reaching
from repro.ir import ClassBuilder, Local
from repro.libmodels import default_registry


def _layered_app():
    """onClick -> level1 -> level2; onStartCommand -> level2."""
    main = ClassBuilder("com.x.Main", "android.app.Activity")
    b = main.method("onClick", params=[("android.view.View", "v")])
    b.call(Local("this"), "level1", cls="com.x.Main")
    b.ret()
    main.add(b)
    b = main.method("level1")
    api = b.new("com.x.Api", "api")
    b.call(api, "level2")
    b.ret()
    main.add(b)

    api = ClassBuilder("com.x.Api")
    b = api.method("level2")
    b.ret()
    api.add(b)

    svc = ClassBuilder("com.x.Sync", "android.app.Service")
    b = svc.method(
        "onStartCommand",
        params=[("android.content.Intent", "i"), ("int", "f")],
        return_type="int",
    )
    a = b.new("com.x.Api", "a")
    b.call(a, "level2")
    b.ret(0)
    svc.add(b)

    manifest = Manifest("com.x", activities=["com.x.Main"], services=["com.x.Sync"])
    apk = APK(manifest, [main.build(), api.build(), svc.build()])
    return CallGraph(apk, default_registry())


class TestChains:
    def test_chains_reach_target_from_both_entries(self):
        graph = _layered_app()
        chains = chains_to_method(graph, ("com.x.Api", "level2", 0))
        entry_names = {c.entry.key[1] for c in chains}
        assert "onClick" in entry_names
        assert "onStartCommand" in entry_names

    def test_chain_frames_are_ordered(self):
        graph = _layered_app()
        chains = chains_to_method(graph, ("com.x.Api", "level2", 0))
        chain = next(c for c in chains if c.entry.key[1] == "onClick")
        frames = chain.frames()
        assert frames[0][0] == ("com.x.Main", "onClick", 1)
        assert chain.target_method == ("com.x.Api", "level2", 0)

    def test_entry_equal_to_target(self):
        graph = _layered_app()
        chains = chains_to_method(graph, ("com.x.Main", "onClick", 1))
        assert any(len(c) == 0 for c in chains)

    def test_entries_reaching(self):
        graph = _layered_app()
        entries = entries_reaching(graph, ("com.x.Api", "level2", 0))
        kinds = {(e.key[1], e.background) for e in entries}
        assert ("onClick", False) in kinds
        assert ("onStartCommand", True) in kinds

    def test_unreachable_method_has_no_chains(self):
        main = ClassBuilder("com.x.Main", "android.app.Activity")
        b = main.method("onClick", params=[("android.view.View", "v")])
        b.ret()
        main.add(b)
        b = main.method("orphan")
        b.ret()
        main.add(b)
        apk = APK(Manifest("com.x", activities=["com.x.Main"]), [main.build()])
        graph = CallGraph(apk, default_registry())
        assert chains_to_method(graph, ("com.x.Main", "orphan", 0)) == []

    def test_max_chains_respected(self):
        graph = _layered_app()
        chains = chains_to_method(graph, ("com.x.Api", "level2", 0), max_chains=1)
        assert len(chains) == 1
