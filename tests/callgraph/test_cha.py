"""Call-graph construction tests: direct, async, and callback edges."""

from repro.app import APK, Manifest
from repro.callgraph import (
    CallGraph,
    EDGE_ASYNC_TASK,
    EDGE_LIB_CALLBACK,
    EDGE_RUNNABLE,
)
from repro.ir import ClassBuilder, Local
from repro.libmodels import default_registry


def _graph(classes, activities=("com.x.Main",)):
    manifest = Manifest("com.x", activities=list(activities))
    apk = APK(manifest, classes)
    return CallGraph(apk, default_registry())


class TestDirectEdges:
    def test_intra_class_call(self):
        cb = ClassBuilder("com.x.Main", "android.app.Activity")
        b = cb.method("onClick", params=[("android.view.View", "v")])
        b.call(Local("this"), "helper", cls="com.x.Main")
        b.ret()
        cb.add(b)
        b = cb.method("helper")
        b.ret()
        cb.add(b)
        graph = _graph([cb.build()])
        edges = graph.callees(("com.x.Main", "onClick", 1))
        assert any(e.callee == ("com.x.Main", "helper", 0) for e in edges)

    def test_cross_class_call_via_allocation(self):
        helper = ClassBuilder("com.x.Api")
        b = helper.method("fetch")
        b.ret()
        helper.add(b)
        main = ClassBuilder("com.x.Main", "android.app.Activity")
        b = main.method("onClick", params=[("android.view.View", "v")])
        api = b.new("com.x.Api", "api")
        b.call(api, "fetch")
        b.ret()
        main.add(b)
        graph = _graph([main.build(), helper.build()])
        edges = graph.callees(("com.x.Main", "onClick", 1))
        assert any(e.callee == ("com.x.Api", "fetch", 0) for e in edges)

    def test_virtual_dispatch_resolves_in_superclass(self):
        base = ClassBuilder("com.x.Base")
        b = base.method("shared")
        b.ret()
        base.add(b)
        derived = ClassBuilder("com.x.Derived", "com.x.Base")
        b = derived.method("stub")
        b.ret()
        derived.add(b)
        main = ClassBuilder("com.x.Main", "android.app.Activity")
        b = main.method("onClick", params=[("android.view.View", "v")])
        obj = b.new("com.x.Derived", "d")
        b.call(obj, "shared")
        b.ret()
        main.add(b)
        graph = _graph([main.build(), base.build(), derived.build()])
        edges = graph.callees(("com.x.Main", "onClick", 1))
        assert any(e.callee == ("com.x.Base", "shared", 0) for e in edges)


class TestAsyncTaskEdges:
    def test_execute_wires_task_callbacks(self):
        task = ClassBuilder("com.x.Task", "android.os.AsyncTask")
        for name in ("doInBackground", "onPostExecute"):
            b = task.method(name)
            b.ret()
            task.add(b)
        main = ClassBuilder("com.x.Main", "android.app.Activity")
        b = main.method("onClick", params=[("android.view.View", "v")])
        t = b.new("com.x.Task", "t")
        b.call(t, "execute")
        b.ret()
        main.add(b)
        graph = _graph([main.build(), task.build()])
        edges = graph.callees(("com.x.Main", "onClick", 1))
        kinds = {(e.callee[1], e.kind) for e in edges}
        assert ("doInBackground", EDGE_ASYNC_TASK) in kinds
        assert ("onPostExecute", EDGE_ASYNC_TASK) in kinds

    def test_non_asynctask_execute_not_wired(self):
        fake = ClassBuilder("com.x.NotATask")
        b = fake.method("doInBackground")
        b.ret()
        fake.add(b)
        main = ClassBuilder("com.x.Main", "android.app.Activity")
        b = main.method("onClick", params=[("android.view.View", "v")])
        t = b.new("com.x.NotATask", "t")
        b.call(t, "execute")
        b.ret()
        main.add(b)
        graph = _graph([main.build(), fake.build()])
        edges = graph.callees(("com.x.Main", "onClick", 1))
        assert not any(e.kind == EDGE_ASYNC_TASK for e in edges)


class TestRunnableEdges:
    def test_thread_start_wires_run(self):
        worker = ClassBuilder("com.x.Worker", "java.lang.Thread")
        b = worker.method("run")
        b.ret()
        worker.add(b)
        main = ClassBuilder("com.x.Main", "android.app.Activity")
        b = main.method("onClick", params=[("android.view.View", "v")])
        w = b.new("com.x.Worker", "w")
        b.call(w, "start")
        b.ret()
        main.add(b)
        graph = _graph([main.build(), worker.build()])
        edges = graph.callees(("com.x.Main", "onClick", 1))
        assert any(
            e.callee == ("com.x.Worker", "run", 0) and e.kind == EDGE_RUNNABLE
            for e in edges
        )

    def test_handler_post_wires_runnable(self):
        runnable = ClassBuilder("com.x.Job", interfaces=["java.lang.Runnable"])
        b = runnable.method("run")
        b.ret()
        runnable.add(b)
        main = ClassBuilder("com.x.Main", "android.app.Activity")
        b = main.method("onClick", params=[("android.view.View", "v")])
        h = b.new("android.os.Handler", "h")
        job = b.new("com.x.Job", "job")
        b.call(h, "post", job, cls="android.os.Handler")
        b.ret()
        main.add(b)
        graph = _graph([main.build(), runnable.build()])
        edges = graph.callees(("com.x.Main", "onClick", 1))
        assert any(e.callee == ("com.x.Job", "run", 0) for e in edges)


class TestLibraryCallbackEdges:
    def test_direct_listener_argument(self):
        handler = ClassBuilder(
            "com.x.H", interfaces=["com.loopj.android.http.AsyncHttpResponseHandler"]
        )
        b = handler.method("onFailure", params=[("int", "code")])
        b.ret()
        handler.add(b)
        main = ClassBuilder("com.x.Main", "android.app.Activity")
        b = main.method("onClick", params=[("android.view.View", "v")])
        client = b.new("com.loopj.android.http.AsyncHttpClient", "client")
        h = b.new("com.x.H", "h")
        b.call(client, "get", "http://x", h)
        b.ret()
        main.add(b)
        graph = _graph([main.build(), handler.build()])
        edges = graph.callees(("com.x.Main", "onClick", 1))
        assert any(
            e.callee == ("com.x.H", "onFailure", 1) and e.kind == EDGE_LIB_CALLBACK
            for e in edges
        )

    def test_listener_through_request_constructor(self):
        """Volley's shape: the listener rides inside the Request object."""
        err = ClassBuilder(
            "com.x.Err", interfaces=["com.android.volley.Response$ErrorListener"]
        )
        b = err.method("onErrorResponse", params=[("com.android.volley.VolleyError", "e")])
        b.ret()
        err.add(b)
        main = ClassBuilder("com.x.Main", "android.app.Activity")
        b = main.method("onClick", params=[("android.view.View", "v")])
        q = b.new("com.android.volley.RequestQueue", "q")
        e = b.new("com.x.Err", "e")
        req = b.new(
            "com.android.volley.toolbox.StringRequest", "req", args=[0, "http://x", e]
        )
        b.call(q, "add", req)
        b.ret()
        main.add(b)
        graph = _graph([main.build(), err.build()])
        edges = graph.callees(("com.x.Main", "onClick", 1))
        assert any(
            e2.callee == ("com.x.Err", "onErrorResponse", 1)
            and e2.kind == EDGE_LIB_CALLBACK
            for e2 in edges
        )


class TestReachability:
    def test_reachable_from_entries(self):
        cb = ClassBuilder("com.x.Main", "android.app.Activity")
        b = cb.method("onClick", params=[("android.view.View", "v")])
        b.call(Local("this"), "helper", cls="com.x.Main")
        b.ret()
        cb.add(b)
        b = cb.method("helper")
        b.ret()
        cb.add(b)
        b = cb.method("dead")
        b.ret()
        cb.add(b)
        graph = _graph([cb.build()])
        reachable = graph.reachable_from_entries()
        assert ("com.x.Main", "helper", 0) in reachable
        assert ("com.x.Main", "dead", 0) not in reachable
