"""Manifest model tests."""

from repro.app import ComponentKind, Manifest


class TestManifest:
    def test_component_kind_lookup(self):
        m = Manifest("com.x", activities=["com.x.Main"], services=["com.x.Sync"])
        assert m.component_kind("com.x.Main") is ComponentKind.ACTIVITY
        assert m.component_kind("com.x.Sync") is ComponentKind.SERVICE
        assert m.component_kind("com.x.Helper") is None

    def test_declare_idempotent(self):
        m = Manifest("com.x")
        m.declare(ComponentKind.ACTIVITY, "com.x.Main")
        m.declare(ComponentKind.ACTIVITY, "com.x.Main")
        assert m.activities == ["com.x.Main"]

    def test_components_iteration_order(self):
        m = Manifest(
            "com.x",
            activities=["com.x.A"],
            services=["com.x.S"],
            receivers=["com.x.R"],
        )
        kinds = [k for k, _ in m.components()]
        assert kinds == [
            ComponentKind.ACTIVITY,
            ComponentKind.SERVICE,
            ComponentKind.RECEIVER,
        ]

    def test_internet_permission(self):
        m = Manifest("com.x", permissions=["android.permission.INTERNET"])
        assert m.has_internet_permission
        assert not Manifest("com.y").has_internet_permission
