"""APK container tests."""

import pytest

from repro.app import APK, ComponentKind, Manifest
from repro.ir import ClassBuilder


def _cls(name, superclass="java.lang.Object"):
    cb = ClassBuilder(name, superclass)
    b = cb.method("stub")
    b.ret()
    cb.add(b)
    return cb.build()


class TestAPK:
    def test_component_kind_from_manifest(self):
        manifest = Manifest("com.x", activities=["com.x.Main"])
        apk = APK(manifest, [_cls("com.x.Main", "android.app.Activity")])
        assert apk.component_kind_of("com.x.Main") is ComponentKind.ACTIVITY

    def test_component_kind_from_hierarchy_fallback(self):
        """Inner classes not declared in the manifest classify by base."""
        manifest = Manifest("com.x")
        apk = APK(manifest, [_cls("com.x.Helper", "android.app.Service")])
        assert apk.component_kind_of("com.x.Helper") is ComponentKind.SERVICE

    def test_framework_hierarchy_wired(self):
        apk = APK(Manifest("com.x"), [_cls("com.x.Main", "android.app.Activity")])
        assert apk.hierarchy.is_subtype("com.x.Main", "android.content.Context")

    def test_validate_rejects_missing_manifest_class(self):
        manifest = Manifest("com.x", activities=["com.x.Ghost"])
        apk = APK(manifest, [])
        with pytest.raises(ValueError, match="missing class"):
            apk.validate()

    def test_stats(self):
        apk = APK(Manifest("com.x"), [_cls("com.x.A"), _cls("com.x.B")])
        stats = apk.stats()
        assert stats["classes"] == 2
        assert stats["methods"] == 2
        assert stats["statements"] >= 2

    def test_duplicate_class_rejected(self):
        apk = APK(Manifest("com.x"), [_cls("com.x.A")])
        with pytest.raises(ValueError):
            apk.add_class(_cls("com.x.A"))


class TestHierarchyQueries:
    def test_appcompat_activity_is_activity(self):
        apk = APK(
            Manifest("com.x"),
            [_cls("com.x.Main", "android.support.v7.app.AppCompatActivity")],
        )
        assert apk.component_kind_of("com.x.Main") is ComponentKind.ACTIVITY

    def test_intent_service_is_service(self):
        apk = APK(
            Manifest("com.x"), [_cls("com.x.Sync", "android.app.IntentService")]
        )
        assert apk.component_kind_of("com.x.Sync") is ComponentKind.SERVICE

    def test_plain_class_has_no_kind(self):
        apk = APK(Manifest("com.x"), [_cls("com.x.Util")])
        assert apk.component_kind_of("com.x.Util") is None
