"""``.apkt`` loader/saver tests."""

import pytest

from repro.app import dumps_apk, load_apk, loads_apk, save_apk
from repro.corpus.appbuilder import AppBuilder
from repro.corpus.snippets import RequestSpec, inject_request
from repro.ir import ParseError

MINIMAL = """\
apk com.example.mini

manifest {
  permission android.permission.INTERNET
  activity com.example.mini.Main
}

class com.example.mini.Main extends android.app.Activity {
  method void onClick(android.view.View v) {
    c = new com.turbomanage.httpclient.BasicHttpClient
    invoke special c:com.turbomanage.httpclient.BasicHttpClient#<init>()
    r = invoke virtual c:com.turbomanage.httpclient.BasicHttpClient#get('http://x')
    return
  }
}
"""


class TestLoads:
    def test_minimal_document(self):
        apk = loads_apk(MINIMAL)
        assert apk.package == "com.example.mini"
        assert apk.manifest.has_internet_permission
        assert apk.get_class("com.example.mini.Main") is not None

    def test_missing_apk_header_rejected(self):
        with pytest.raises(ParseError, match="missing apk header"):
            loads_apk("class com.x.A {\n}")

    def test_manifest_before_header_rejected(self):
        with pytest.raises(ParseError):
            loads_apk("manifest {\n}\napk com.x")

    def test_malformed_manifest_entry_rejected(self):
        with pytest.raises(ParseError, match="malformed manifest"):
            loads_apk("apk com.x\nmanifest {\n  widget com.x.W\n}")

    def test_round_trip(self):
        apk = loads_apk(MINIMAL)
        again = loads_apk(dumps_apk(apk))
        assert dumps_apk(again) == dumps_apk(apk)


class TestFileIO:
    def test_save_and_load(self, tmp_path):
        app = AppBuilder("com.example.filed")
        activity = app.activity("Main")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        inject_request(app, body, RequestSpec(), user_initiated=True)
        body.ret()
        activity.add(body)
        apk = app.build()

        path = tmp_path / "app.apkt"
        save_apk(apk, path)
        loaded = load_apk(path)
        assert loaded.package == apk.package
        assert dumps_apk(loaded) == dumps_apk(apk)

    def test_generated_corpus_apps_round_trip(self, small_corpus):
        """Every generated app survives serialise → parse → serialise."""
        for apk, _truth in small_corpus[:5]:
            text = dumps_apk(apk)
            again = loads_apk(text)
            assert dumps_apk(again) == text
