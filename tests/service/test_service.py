"""End-to-end daemon tests over real sockets.

Covers the full surface promised by ``docs/SERVICE.md``: submit → poll
→ fetch, byte-identical JSON/SARIF parity with the CLI on the same app,
queue-full and rate-limit rejection, the ``/metrics`` merge across a
multi-process pool, and the second-host warm scan through the
``remote:URL`` cache tier.
"""

from __future__ import annotations

import concurrent.futures
import json

import pytest

from repro.cli import main
from repro.service import ServiceConfig, start_in_thread

from .conftest import (
    app_builds,
    app_text,
    get_json,
    http,
    submit,
    submit_and_wait,
    wait_done,
)


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    """One warm daemon for the lifecycle tests: a single worker process
    (so resubmissions land on the same warm session) plus a cache root."""
    root = tmp_path_factory.mktemp("service-cache")
    handle = start_in_thread(
        ServiceConfig(port=0, workers=1, cache_dir=str(root))
    )
    yield handle
    handle.stop()


class TestScanLifecycle:
    def test_submit_poll_fetch(self, daemon):
        status, _, body = submit(daemon.base_url, app_text("com.life.cycle"))
        assert status == 202
        accepted = json.loads(body)
        assert accepted["status"] == "queued"
        assert accepted["url"] == f"/v1/scans/{accepted['id']}"

        view = wait_done(daemon.base_url, accepted["id"])
        assert view["status"] == "done"
        assert view["package"] == "com.life.cycle"
        assert view["findings"] >= 1
        assert view["requests"] == 1
        assert view["result"]["package"] == "com.life.cycle"
        assert set(view["links"]) == {"findings", "sarif", "trace"}

    def test_json_envelope_submission_carries_the_filename(self, daemon):
        view = submit_and_wait(
            daemon.base_url, app_text("com.envelope.app"),
            filename="apps/envelope.apkt",
        )
        assert view["status"] == "done"
        assert view["filename"] == "apps/envelope.apkt"

    def test_trace_view_is_a_chrome_trace(self, daemon):
        view = submit_and_wait(daemon.base_url, app_text("com.trace.app"))
        trace = get_json(daemon.base_url + view["links"]["trace"])
        events = trace["traceEvents"] if isinstance(trace, dict) else trace
        assert any(event.get("name") == "load" for event in events)

    def test_warm_resubmission_builds_nothing(self, daemon):
        text = app_text("com.warm.resubmit")
        cold = submit_and_wait(daemon.base_url, text)
        assert cold["counters"].get("artifact.callgraph.builds") == 1

        warm = submit_and_wait(daemon.base_url, text)
        assert warm["status"] == "done"
        assert app_builds(warm["counters"]) == 0
        assert warm["findings"] == cold["findings"]

    def test_failed_scan_reports_the_error(self, daemon):
        view = submit_and_wait(daemon.base_url, "this is not an app\n")
        assert view["status"] == "failed"
        assert view["error"]
        status, _, body = http(
            "GET", daemon.base_url + f"/v1/scans/{view['id']}/findings"
        )
        assert status == 404
        assert b"failed" in body

    def test_healthz(self, daemon):
        health = get_json(daemon.base_url + "/healthz")
        assert health["status"] == "ok"
        assert health["workers"] == 1
        assert health["cache"] is True
        assert set(health["jobs"]) == {"queued", "running", "done", "failed"}


class TestBadRequests:
    def test_empty_submission_is_400(self, daemon):
        status, _, body = http("POST", daemon.base_url + "/v1/scans", b"")
        assert status == 400
        assert b"empty submission" in body

    def test_json_submission_without_apkt_is_400(self, daemon):
        status, _, body = http(
            "POST", daemon.base_url + "/v1/scans",
            json.dumps({"filename": "x.apkt"}).encode(),
            {"Content-Type": "application/json"},
        )
        assert status == 400
        assert b"apkt" in body

    def test_non_utf8_submission_is_400(self, daemon):
        status, _, _ = http(
            "POST", daemon.base_url + "/v1/scans", b"\xff\xfe\x00\x01",
            {"Content-Type": "application/octet-stream"},
        )
        assert status == 400

    def test_unknown_job_is_404(self, daemon):
        status, _, _ = http(
            "GET", daemon.base_url + "/v1/scans/scan-999999-deadbeef"
        )
        assert status == 404

    def test_unknown_route_is_404(self, daemon):
        assert http("GET", daemon.base_url + "/v2/nope")[0] == 404

    def test_submitting_with_get_is_405(self, daemon):
        assert http("GET", daemon.base_url + "/v1/scans")[0] == 405

    def test_scan_resources_are_read_only(self, daemon):
        view = submit_and_wait(daemon.base_url, app_text("com.readonly.app"))
        status, _, _ = http(
            "DELETE", daemon.base_url + f"/v1/scans/{view['id']}"
        )
        assert status == 405


class TestCliParity:
    """The acceptance bar: service bytes == CLI bytes, same app."""

    @pytest.fixture()
    def app_file(self, tmp_path):
        path = tmp_path / "parity.apkt"
        path.write_text(app_text("com.parity.app"))
        return path

    def test_findings_json_is_byte_identical(self, daemon, app_file, capsys):
        main(["scan", "--json", str(app_file)])
        cli_bytes = capsys.readouterr().out.encode("utf-8")

        view = submit_and_wait(
            daemon.base_url, app_file.read_text(), filename=str(app_file)
        )
        status, headers, body = http(
            "GET", daemon.base_url + view["links"]["findings"]
        )
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert body == cli_bytes

    def test_sarif_is_byte_identical(self, daemon, app_file, tmp_path):
        sarif_file = tmp_path / "cli.sarif"
        main(["scan", "--sarif", str(sarif_file), str(app_file)])

        view = submit_and_wait(
            daemon.base_url, app_file.read_text(), filename=str(app_file)
        )
        status, _, body = http(
            "GET", daemon.base_url + view["links"]["sarif"]
        )
        assert status == 200
        assert body == sarif_file.read_bytes()


class ManualExecutor:
    """A pool whose jobs only finish when the test says so — makes the
    admission-control paths deterministic."""

    def __init__(self):
        self.pending = []

    def submit(self, fn, *args):
        future = concurrent.futures.Future()
        self.pending.append((future, fn, args))
        return future

    def release_all(self):
        for future, fn, args in self.pending:
            future.set_result(fn(*args))
        self.pending.clear()

    def shutdown(self, wait=True, cancel_futures=False):
        self.pending.clear()


class TestAdmissionControl:
    @pytest.fixture()
    def stalled(self):
        """A daemon whose pool never finishes until released."""
        executor = ManualExecutor()
        handle = start_in_thread(ServiceConfig(
            port=0, queue_depth=2, rate_limit=0.001, rate_burst=1,
            executor_factory=lambda workers: executor,
        ))
        yield handle, executor
        executor.release_all()
        handle.stop()

    def test_queue_full_is_503_until_the_backlog_drains(self, stalled):
        handle, executor = stalled
        text = app_text("com.queue.app")
        first = json.loads(submit(handle.base_url, text, tenant="a")[2])
        second = json.loads(submit(handle.base_url, text, tenant="b")[2])

        status, headers, body = submit(handle.base_url, text, tenant="c")
        assert status == 503
        assert headers["Retry-After"] == "1"
        assert b"queue is full" in body
        counters = get_json(handle.base_url + "/metrics")["counters"]
        assert counters["service.scans.rejected.queue_full"] == 1

        executor.release_all()
        wait_done(handle.base_url, first["id"])
        wait_done(handle.base_url, second["id"])
        # A fresh tenant: "c" spent its only token on the 503 attempt
        # (rate admission runs before the queue check).
        assert submit(handle.base_url, text, tenant="d")[0] == 202

    def test_rate_limit_is_429_per_tenant(self, stalled):
        handle, _ = stalled
        text = app_text("com.rate.app")
        assert submit(handle.base_url, text, tenant="noisy")[0] == 202

        status, headers, body = submit(handle.base_url, text, tenant="noisy")
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        assert b"submission rate" in body

        # A different tenant has its own bucket.
        assert submit(handle.base_url, text, tenant="quiet")[0] == 202
        counters = get_json(handle.base_url + "/metrics")["counters"]
        assert counters["service.scans.rejected.rate_limited"] == 1


class TestMetricsMerge:
    def test_metrics_merge_scan_snapshots_across_the_pool(self, tmp_path):
        handle = start_in_thread(
            ServiceConfig(port=0, workers=2, cache_dir=str(tmp_path / "c"))
        )
        try:
            ids = []
            for package in ("com.pool.one", "com.pool.two"):
                _, _, body = submit(handle.base_url, app_text(package))
                ids.append(json.loads(body)["id"])
            for job_id in ids:
                assert wait_done(handle.base_url, job_id)["status"] == "done"

            snapshot = get_json(handle.base_url + "/metrics")
            counters = snapshot["counters"]
            assert counters["service.scans.submitted"] == 2
            assert counters["service.scans.completed"] == 2
            # Worker-side counters merged into the daemon view: both cold
            # scans built their callgraphs, whichever process ran them.
            assert counters["artifact.callgraph.builds"] == 2
            assert counters["service.http.requests"] >= 4
            assert "profile" in snapshot
        finally:
            handle.stop()


class TestRemoteSecondHost:
    """The flagship cache-tier scenario: host A scans through
    ``remote:URL`` and populates the daemon; host B completes the same
    scan warm, with zero app-scoped artifact builds."""

    def test_second_host_scans_warm_through_the_daemon(
        self, tmp_path, capsys
    ):
        handle = start_in_thread(
            ServiceConfig(port=0, cache_dir=str(tmp_path / "served"))
        )
        try:
            spec = f"remote:{handle.base_url}"
            path = tmp_path / "shared.apkt"
            path.write_text(app_text("com.two.hosts"))

            main(["scan", "--json", "--cache-backend", spec, str(path)])
            host_a = capsys.readouterr().out

            metrics_file = tmp_path / "hostb.json"
            main(["scan", "--json", "--cache-backend", spec,
                  "--metrics", str(metrics_file), str(path)])
            host_b = capsys.readouterr().out
            assert host_b == host_a

            counters = json.loads(metrics_file.read_text())["counters"]
            assert app_builds(counters) == 0
            for kind in ("callgraph", "summaries", "requests", "retry-loops"):
                assert counters[f"cache.remote.{kind}.hits"] == 1

            served = get_json(handle.base_url + "/metrics")["counters"]
            assert served["service.cache.puts"] >= 4
            assert served["service.cache.gets"] >= 4
        finally:
            handle.stop()
