"""Token-bucket unit tests with an injected clock — fully deterministic."""

from __future__ import annotations

import pytest

from repro.service.ratelimit import RateLimiter, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_drains_then_denies(self):
        bucket = TokenBucket(rate=1.0, burst=3, clock=FakeClock())
        assert [bucket.allow() for _ in range(4)] == [True, True, True, False]

    def test_refill_restores_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
        assert bucket.allow() and bucket.allow()
        assert not bucket.allow()
        clock.advance(0.5)  # 2/s for half a second -> one token back
        assert bucket.allow()
        assert not bucket.allow()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        clock.advance(3600)
        assert [bucket.allow() for _ in range(3)] == [True, True, False]

    def test_retry_after_names_the_refill_time(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.5, burst=1, clock=clock)
        assert bucket.retry_after() == 0.0
        bucket.allow()
        assert bucket.retry_after() == pytest.approx(2.0)
        clock.advance(1.0)
        assert bucket.retry_after() == pytest.approx(1.0)

    @pytest.mark.parametrize("rate,burst", [(0, 1), (-1.0, 1), (1.0, 0)])
    def test_rejects_degenerate_parameters(self, rate, burst):
        with pytest.raises(ValueError):
            TokenBucket(rate=rate, burst=burst)


class TestRateLimiter:
    def test_rate_zero_disables_limiting(self):
        limiter = RateLimiter(rate=0.0, burst=1)
        assert not limiter.enabled
        assert all(limiter.allow("t") for _ in range(100))
        assert limiter.retry_after("t") == 0.0

    def test_tenants_have_independent_buckets(self):
        limiter = RateLimiter(rate=0.001, burst=1, clock=FakeClock())
        assert limiter.allow("alice")
        assert not limiter.allow("alice")
        assert limiter.allow("bob")  # alice's drain does not starve bob

    def test_bucket_is_stable_per_tenant(self):
        limiter = RateLimiter(rate=1.0, burst=4, clock=FakeClock())
        assert limiter.bucket("t") is limiter.bucket("t")
