"""Transport-layer tests: the hand-rolled HTTP/1.1 core in isolation.

Each test boots a real :class:`HttpServer` on a free port inside a
private event loop and talks to it with raw bytes over a socket — no
urllib niceties — so malformed input paths are exercised exactly as a
hostile client would produce them.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service.http import (
    MAX_HEADER_BYTES,
    HttpServer,
    ProtocolError,
    json_response,
)


async def echo(request):
    return json_response({
        "method": request.method,
        "path": request.path,
        "query": request.query,
        "content_type": request.headers.get("content-type", ""),
        "body": request.body.decode("utf-8", "replace"),
    })


async def crash(request):
    raise RuntimeError("boom")


async def reject(request):
    raise ProtocolError(400, "handler says no")


def exchange(raw: bytes, handler=echo, max_body: int = 1024) -> bytes:
    """Send raw bytes to a fresh server, return the raw reply."""

    async def run() -> bytes:
        server = HttpServer(handler, max_body_bytes=max_body)
        await server.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(raw)
            await writer.drain()
            writer.write_eof()
            reply = await asyncio.wait_for(reader.read(), timeout=10)
            writer.close()
            return reply
        finally:
            await server.close()

    return asyncio.run(run())


def request_bytes(method="GET", target="/", body=b"", headers=()):
    lines = [f"{method} {target} HTTP/1.1", "Host: t"]
    lines += [f"{name}: {value}" for name, value in headers]
    if body:
        lines.append(f"Content-Length: {len(body)}")
    head = "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
    return head + body


def status_of(reply: bytes) -> int:
    return int(reply.split(b" ", 2)[1])


def body_of(reply: bytes) -> bytes:
    return reply.split(b"\r\n\r\n", 1)[1]


class TestRoundTrips:
    def test_get_reaches_the_handler(self):
        reply = exchange(request_bytes(target="/v1/scans/abc"))
        assert status_of(reply) == 200
        echoed = json.loads(body_of(reply))
        assert echoed["method"] == "GET"
        assert echoed["path"] == "/v1/scans/abc"

    def test_body_and_content_type_round_trip(self):
        reply = exchange(request_bytes(
            "POST", "/v1/scans", b"hello body",
            headers=[("Content-Type", "text/plain")],
        ))
        echoed = json.loads(body_of(reply))
        assert echoed["body"] == "hello body"
        assert echoed["content_type"] == "text/plain"

    def test_query_string_and_percent_encoding(self):
        reply = exchange(request_bytes(target="/a%20b?x=1&y=two"))
        echoed = json.loads(body_of(reply))
        assert echoed["path"] == "/a b"
        assert echoed["query"] == {"x": "1", "y": "two"}

    def test_reply_closes_the_connection(self):
        reply = exchange(request_bytes())
        head = reply.split(b"\r\n\r\n", 1)[0].decode("latin-1").lower()
        assert "connection: close" in head
        assert f"content-length: {len(body_of(reply))}" in head

    def test_response_body_ends_in_newline(self):
        # json_response appends one so the findings endpoint can match
        # the CLI's print() byte for byte.
        assert body_of(exchange(request_bytes())).endswith(b"}\n")


class TestMalformedInput:
    def test_garbage_request_line_is_400(self):
        reply = exchange(b"NOT A REQUEST\r\n\r\n")
        assert status_of(reply) == 400

    def test_wrong_protocol_version_is_400(self):
        reply = exchange(b"GET / SPDY/9\r\n\r\n")
        assert status_of(reply) == 400

    def test_header_line_without_colon_is_400(self):
        reply = exchange(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n")
        assert status_of(reply) == 400

    @pytest.mark.parametrize("length", ["banana", "-5"])
    def test_malformed_content_length_is_400(self, length):
        reply = exchange(
            b"GET / HTTP/1.1\r\nContent-Length: "
            + length.encode() + b"\r\n\r\n"
        )
        assert status_of(reply) == 400

    def test_truncated_body_is_400(self):
        reply = exchange(b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")
        assert status_of(reply) == 400

    def test_truncated_head_is_400(self):
        reply = exchange(b"GET / HTTP/1.1\r\nHost: t")
        assert status_of(reply) == 400

    def test_clean_eof_sends_nothing(self):
        assert exchange(b"") == b""


class TestLimits:
    def test_oversized_body_is_413(self):
        reply = exchange(request_bytes("POST", "/", b"x" * 2048), max_body=1024)
        assert status_of(reply) == 413

    def test_body_at_the_limit_passes(self):
        reply = exchange(request_bytes("POST", "/", b"x" * 1024), max_body=1024)
        assert status_of(reply) == 200

    def test_oversized_header_block_is_413(self):
        filler = b"X-Pad: " + b"y" * (MAX_HEADER_BYTES + 1024) + b"\r\n"
        reply = exchange(b"GET / HTTP/1.1\r\n" + filler + b"\r\n")
        assert status_of(reply) == 413


class TestHandlerFailures:
    def test_handler_crash_is_a_500(self):
        reply = exchange(request_bytes(), handler=crash)
        assert status_of(reply) == 500
        assert b"internal server error" in body_of(reply)

    def test_protocol_error_from_handler_keeps_its_status(self):
        reply = exchange(request_bytes(), handler=reject)
        assert status_of(reply) == 400
        assert b"handler says no" in body_of(reply)
