"""Job-table unit tests: identity, state counting, bounded retention."""

from __future__ import annotations

from repro.service.jobs import Job, JobStore


def finish(job: Job, status: str = "done") -> Job:
    job.status = status
    return job


class TestJobStore:
    def test_ids_are_unique_and_resolvable(self):
        store = JobStore()
        jobs = [store.create("default", f"app{i}.apkt") for i in range(5)]
        assert len({job.id for job in jobs}) == 5
        for job in jobs:
            assert store.get(job.id) is job

    def test_unknown_id_is_none(self):
        assert JobStore().get("scan-000000-ffffffff") is None

    def test_active_count_covers_queued_and_running(self):
        store = JobStore()
        store.create("default", "a.apkt")
        finish(store.create("default", "b.apkt"), "running")
        finish(store.create("default", "c.apkt"), "done")
        finish(store.create("default", "d.apkt"), "failed")
        assert store.active_count() == 2

    def test_counts_by_state(self):
        store = JobStore()
        store.create("default", "a.apkt")
        finish(store.create("default", "b.apkt"))
        finish(store.create("default", "c.apkt"))
        assert store.counts() == {
            "queued": 1, "running": 0, "done": 2, "failed": 0,
        }

    def test_finished_jobs_evict_oldest_first(self):
        store = JobStore(retain_finished=2)
        old = finish(store.create("default", "old.apkt"))
        kept = [finish(store.create("default", f"k{i}.apkt")) for i in range(2)]
        store.create("default", "trigger.apkt")  # eviction runs on create
        assert store.get(old.id) is None
        for job in kept:
            assert store.get(job.id) is job

    def test_active_jobs_are_never_evicted(self):
        store = JobStore(retain_finished=0)
        active = store.create("default", "busy.apkt")
        finish(store.create("default", "done.apkt"))
        store.create("default", "trigger.apkt")
        assert store.get(active.id) is active

    def test_done_property(self):
        job = Job(id="x", tenant="t", filename="f")
        assert not job.done
        assert finish(job, "failed").done
        assert finish(job, "done").done
