"""Fixtures and plain-socket HTTP helpers for the service suite.

The helpers speak to a live daemon over ``urllib`` — real sockets, real
bytes — so every assertion here covers the transport as a client sees
it, not an in-process shortcut.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.app.loader import dumps_apk
from repro.corpus.snippets import RequestSpec

from ..conftest import single_request_app


def http(method, url, body=None, headers=None, timeout=30.0):
    """One HTTP exchange; returns ``(status, headers, body_bytes)`` and
    treats error statuses as ordinary replies, never raising."""
    request = urllib.request.Request(url, data=body, method=method)
    for name, value in (headers or {}).items():
        request.add_header(name, value)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, dict(reply.headers), reply.read()
    except urllib.error.HTTPError as exc:
        with exc:
            return exc.code, dict(exc.headers), exc.read()


def get_json(url):
    status, _, body = http("GET", url)
    assert status == 200, body
    return json.loads(body)


def submit(base_url, apkt_text, *, filename=None, tenant=None):
    """POST one submission; raw body by default, the JSON envelope when
    a filename must ride along."""
    headers = {}
    if tenant is not None:
        headers["X-NChecker-Tenant"] = tenant
    if filename is None:
        body = apkt_text.encode("utf-8")
        headers["Content-Type"] = "text/plain"
    else:
        body = json.dumps({"apkt": apkt_text, "filename": filename}).encode()
        headers["Content-Type"] = "application/json"
    return http("POST", f"{base_url}/v1/scans", body, headers)


def wait_done(base_url, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        view = get_json(f"{base_url}/v1/scans/{job_id}")
        if view["status"] in ("done", "failed"):
            return view
        time.sleep(0.05)
    raise AssertionError(f"scan {job_id} still {view['status']} after "
                         f"{timeout}s")


def submit_and_wait(base_url, apkt_text, **kwargs):
    status, _, body = submit(base_url, apkt_text, **kwargs)
    assert status == 202, body
    return wait_done(base_url, json.loads(body)["id"])


def app_text(package="com.service.app"):
    """One buggy single-request app as ``.apkt`` text."""
    apk, _ = single_request_app(RequestSpec(), package=package)
    return dumps_apk(apk)


#: The app-scoped artifact kinds a warm scan must not rebuild (method-
#: scoped ones — cfg, defuse, constants — are rebuilt on demand and are
#: fine either way).
APP_KINDS = ("callgraph", "summaries", "requests", "retry-loops", "icc-model")


def app_builds(counters):
    """Total app-scoped artifact builds in a counters dict — the number
    a warm scan must hold at zero."""
    return sum(counters.get(f"artifact.{kind}.builds", 0) for kind in APP_KINDS)
