"""Cross-cutting property-based tests.

Three invariants tie the substrate layers together:

* **Constant-propagation soundness** — whenever the static analysis
  claims a local holds constant ``c`` at the return, the IR interpreter
  actually returns ``c``;
* **Insertion invariance** — inserting ``nop``s anywhere must not change
  a program's result (the contract the patcher relies on);
* **CFG well-formedness** — preds/succs duality, RPO coverage, dominator
  chains ending at the entry — over arbitrary generated control flow.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.app import APK, Manifest
from repro.cfg import CFG, DominatorTree
from repro.dataflow import ConstantPropagation, TOP
from repro.ir import (
    BinaryExpr,
    ClassBuilder,
    Const,
    IRClass,
    Local,
    MethodBuilder,
    NopStmt,
    ReturnStmt,
)
from repro.ir.transform import insert_statements
from repro.netsim import Runtime, THREE_G

# ---------------------------------------------------------------------------
# Program generator: deterministic integer programs with branches.
# ---------------------------------------------------------------------------

_small_int = st.integers(-50, 50)


@st.composite
def _int_programs(draw):
    """A method computing a deterministic integer, returned at the end."""
    b = MethodBuilder("com.gen.P", "compute", return_type="int")
    locals_ = ["a"]
    b.assign("a", draw(_small_int))
    n = draw(st.integers(1, 10))
    for i in range(n):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            name = f"v{i}"
            b.assign(name, draw(_small_int))
            locals_.append(name)
        elif kind == 1:
            src = draw(st.sampled_from(locals_))
            name = f"c{i}"
            b.assign(name, Local(src))
            locals_.append(name)
        elif kind == 2:
            left = draw(st.sampled_from(locals_))
            right = draw(st.sampled_from(locals_))
            op = draw(st.sampled_from(["+", "-", "*"]))
            name = f"x{i}"
            b.assign(name, BinaryExpr(op, Local(left), Local(right)))
            locals_.append(name)
        else:
            cond_local = draw(st.sampled_from(locals_))
            threshold = draw(_small_int)
            op = draw(st.sampled_from(["<", ">=", "=="]))
            with b.if_then(op, Local(cond_local), threshold):
                target = draw(st.sampled_from(locals_))
                b.assign(target, draw(_small_int))
    result = draw(st.sampled_from(locals_))
    b.ret(Local(result))
    return b.build(), result


def _wrap(method) -> APK:
    cls = IRClass("com.gen.P")
    cls.add_method(method)
    return APK(Manifest("com.gen"), [cls])


def _interpret(method):
    apk = _wrap(method)
    runtime = Runtime(apk, THREE_G, seed=0)
    from repro.netsim.runtime import SimObject

    return runtime.invoke_method(method, SimObject("com.gen.P"), [])


class TestConstantPropagationSoundness:
    @given(_int_programs())
    @settings(max_examples=80, deadline=None)
    def test_claimed_constants_match_execution(self, program):
        method, result_local = program
        cfg = CFG(method)
        cp = ConstantPropagation(cfg)
        return_idx = next(
            i for i, s in enumerate(method.statements)
            if isinstance(s, ReturnStmt) and s.value == Local(result_local)
        )
        claimed = cp.value_before(return_idx, result_local)
        actual = _interpret(method)
        if claimed is not None and claimed is not TOP:
            assert claimed == actual


class TestInsertionInvariance:
    @given(_int_programs(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_nop_insertion_preserves_result(self, program, data):
        method, _result = program
        baseline = _interpret(method)
        # Insert nops at a few random positions (never after the final
        # return, which would break the structural fall-through rule).
        for _ in range(data.draw(st.integers(1, 3))):
            index = data.draw(
                st.integers(0, len(method.statements) - 1), label="pos"
            )
            insert_statements(method, index, [NopStmt()])
        method.validate()
        assert _interpret(method) == baseline


class TestCFGWellFormedness:
    @given(_int_programs())
    @settings(max_examples=60, deadline=None)
    def test_preds_succs_duality(self, program):
        method, _ = program
        cfg = CFG(method)
        for node in cfg.nodes():
            for succ in cfg.succs[node]:
                assert node in cfg.preds[succ]
            for pred in cfg.preds[node]:
                assert node in cfg.succs[pred]

    @given(_int_programs())
    @settings(max_examples=60, deadline=None)
    def test_reachable_non_exit_nodes_have_successors(self, program):
        method, _ = program
        cfg = CFG(method)
        for node in cfg.reachable_from(cfg.entry):
            if node != cfg.exit:
                assert cfg.succs[node], f"dead-end node {node}"

    @given(_int_programs())
    @settings(max_examples=60, deadline=None)
    def test_rpo_covers_exactly_reachable(self, program):
        method, _ = program
        cfg = CFG(method)
        assert set(cfg.reverse_postorder()) == cfg.reachable_from(cfg.entry)

    @given(_int_programs())
    @settings(max_examples=40, deadline=None)
    def test_dominator_chains_reach_entry(self, program):
        method, _ = program
        cfg = CFG(method)
        dom = DominatorTree(cfg)
        for node in cfg.reachable_from(cfg.entry):
            assert cfg.entry in dom.dominators_of(node)

    @given(_int_programs())
    @settings(max_examples=40, deadline=None)
    def test_exit_postdominates_reachable(self, program):
        method, _ = program
        cfg = CFG(method)
        pdom = DominatorTree(cfg, reverse=True)
        for node in cfg.reachable_from(cfg.entry):
            assert pdom.dominates(cfg.exit, node)


class TestTaintMonotonicity:
    @given(_int_programs(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_adding_seeds_never_shrinks_taint(self, program, data):
        from repro.dataflow import ForwardTaint

        method, _ = program
        cfg = CFG(method)
        all_locals = sorted(
            {d.name for s in method.statements for d in s.defs()}
        )
        base_local = data.draw(st.sampled_from(all_locals), label="seed1")
        extra_local = data.draw(st.sampled_from(all_locals), label="seed2")
        small = ForwardTaint(cfg, {(-1, base_local)})
        large = ForwardTaint(cfg, {(-1, base_local), (-1, extra_local)})
        for node in cfg.nodes():
            assert small.tainted_before(node) <= large.tainted_before(node)

    @given(_int_programs())
    @settings(max_examples=40, deadline=None)
    def test_empty_seed_taints_nothing(self, program):
        from repro.dataflow import ForwardTaint

        method, _ = program
        cfg = CFG(method)
        taint = ForwardTaint(cfg, set())
        for node in cfg.nodes():
            assert taint.tainted_before(node) == frozenset()


class TestDesignDocConsistency:
    def test_every_bench_target_in_design_exists(self):
        """DESIGN.md's per-experiment index must not rot."""
        import re
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        text = (root / "DESIGN.md").read_text()
        targets = set(re.findall(r"`(benchmarks/[\w.]+\.py)`", text))
        assert targets, "DESIGN.md must list bench targets"
        for target in targets:
            assert (root / target).exists(), target

    def test_every_registered_experiment_documented(self):
        from pathlib import Path

        from repro.eval.experiments import EXPERIMENTS

        root = Path(__file__).resolve().parent.parent
        experiments_md = (root / "EXPERIMENTS.md").read_text()
        for exp_id in EXPERIMENTS:
            if exp_id == "study":
                continue  # documented as Tables 1-3/Fig 4
            assert f"`{exp_id}`" in experiments_md, exp_id


class TestScanDeterminism:
    @given(st.integers(0, 60))
    @settings(max_examples=25, deadline=None)
    def test_scan_is_a_pure_function_of_the_app(self, index):
        from repro.core import NChecker
        from repro.corpus import CorpusGenerator, PAPER_PROFILE

        generator = CorpusGenerator(PAPER_PROFILE.scaled(61))
        apk, _ = generator.generate_app(index)
        checker = NChecker()
        first = [str(f) for f in checker.scan(apk).findings]
        second = [str(f) for f in checker.scan(apk).findings]
        assert first == second
