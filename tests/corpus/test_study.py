"""Empirical-study dataset tests (Tables 1-3, Fig 4)."""

from repro.core.defects import Impact, RootCause
from repro.corpus.study import (
    IMPACT_CASES,
    REPRESENTATIVE_NPDS,
    ROOT_CAUSE_CASES,
    STUDIED_APPS,
    TOTAL_STUDIED_NPDS,
    PERMANENT_SUBCAUSES,
    SWITCH_SUBCAUSES,
    TRANSIENT_SUBCAUSES,
    impact_distribution_percent,
    root_cause_distribution_percent,
)


class TestTable1:
    def test_twenty_one_apps(self):
        assert len(STUDIED_APPS) == 21

    def test_unique_names(self):
        names = [a.name for a in STUDIED_APPS]
        assert len(set(names)) == 21

    def test_known_entries(self):
        names = {a.name for a in STUDIED_APPS}
        assert {"Chrome", "Telegram", "ChatSecure", "Kontalk"} <= names


class TestTable2:
    def test_six_representative_cases(self):
        assert len(REPRESENTATIVE_NPDS) == 6

    def test_all_impact_categories_covered(self):
        impacts = {n.impact for n in REPRESENTATIVE_NPDS}
        assert impacts == set(Impact)


class TestFig4:
    def test_cases_sum_to_ninety(self):
        assert sum(IMPACT_CASES.values()) == TOTAL_STUDIED_NPDS

    def test_percentages_match_paper(self):
        percent = impact_distribution_percent()
        assert percent[Impact.DYSFUNCTION] == 36
        assert percent[Impact.UNFRIENDLY_UI] == 33
        assert percent[Impact.CRASH_FREEZE] == 21
        assert percent[Impact.BATTERY_DRAIN] == 10

    def test_ranking(self):
        """Dysfunction > Unfriendly UI > Crash/Freeze > Battery drain."""
        ordered = sorted(IMPACT_CASES, key=IMPACT_CASES.get, reverse=True)
        assert ordered == [
            Impact.DYSFUNCTION,
            Impact.UNFRIENDLY_UI,
            Impact.CRASH_FREEZE,
            Impact.BATTERY_DRAIN,
        ]


class TestTable3:
    def test_cases_sum_to_ninety(self):
        assert sum(ROOT_CAUSE_CASES.values()) == TOTAL_STUDIED_NPDS

    def test_percentages_match_paper(self):
        percent = root_cause_distribution_percent()
        assert percent[RootCause.NO_CONNECTIVITY_CHECK] == 30
        assert percent[RootCause.MISHANDLED_TRANSIENT] == 13
        assert percent[RootCause.MISHANDLED_PERMANENT] == 27
        assert percent[RootCause.MISHANDLED_SWITCH] == 30

    def test_subcause_splits(self):
        assert TRANSIENT_SUBCAUSES["No retry for time-sensitive requests"] == 55
        assert TRANSIENT_SUBCAUSES["Over-retry"] == 45
        assert PERMANENT_SUBCAUSES["No timeout setting"] == 33
        assert SWITCH_SUBCAUSES["No reconnection on network switch"] == 67
