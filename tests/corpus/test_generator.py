"""Corpus generator tests: determinism, validity, checker agreement."""

import pytest

from repro.app import dumps_apk
from repro.core import NChecker
from repro.corpus import (
    CorpusGenerator,
    PAPER_PROFILE,
    TABLE9_ROWS,
    confusion_for_app,
)


class TestDeterminism:
    def test_same_seed_same_apps(self):
        g1 = CorpusGenerator(PAPER_PROFILE.scaled(5))
        g2 = CorpusGenerator(PAPER_PROFILE.scaled(5))
        for (a1, _), (a2, _) in zip(g1.iter_apps(), g2.iter_apps()):
            assert dumps_apk(a1) == dumps_apk(a2)

    def test_per_index_independence(self):
        """App N is identical regardless of whether 0..N-1 were generated."""
        gen = CorpusGenerator(PAPER_PROFILE.scaled(10))
        direct = gen.generate_app(7)[0]
        gen2 = CorpusGenerator(PAPER_PROFILE.scaled(10))
        streamed = list(gen2.iter_apps())[7][0]
        assert dumps_apk(direct) == dumps_apk(streamed)

    def test_different_seed_differs(self):
        from repro.corpus.profiles import CorpusProfile

        p1 = PAPER_PROFILE.scaled(3)
        p2 = CorpusProfile(mix=p1.mix, rates=p1.rates, seed=999)
        a1 = CorpusGenerator(p1).generate_app(0)[0]
        a2 = CorpusGenerator(p2).generate_app(0)[0]
        assert dumps_apk(a1) != dumps_apk(a2)


class TestValidity:
    def test_all_apps_validate(self, small_corpus):
        for apk, _ in small_corpus:
            apk.validate()

    def test_every_app_has_requests(self, small_corpus):
        checker = NChecker()
        for apk, truth in small_corpus:
            result = checker.scan(apk)
            assert len(result.requests) == len(truth.requests)

    def test_every_request_reachable(self, small_corpus):
        """Context inference requires every request to be reachable from
        an entry point."""
        checker = NChecker()
        for apk, _ in small_corpus:
            result = checker.scan(apk)
            for request in result.requests:
                assert request.reachable, request.location()

    def test_one_request_per_method(self, small_corpus):
        for _apk, truth in small_corpus:
            hosts = [(r.host_class, r.host_method) for r in truth.requests]
            assert len(hosts) == len(set(hosts))


class TestCheckerAgreement:
    def test_zero_divergence_on_statistical_corpus(self, small_corpus):
        """The statistical corpus contains no trap shapes, so tool output
        must equal ground truth exactly."""
        checker = NChecker()
        for apk, truth in small_corpus:
            result = checker.scan(apk)
            for label, kinds in TABLE9_ROWS:
                confusion = confusion_for_app(truth, result, kinds)
                assert confusion.false_positives == 0, (apk.package, label)
                assert confusion.false_negatives == 0, (apk.package, label)


class TestScaling:
    def test_scaled_profile_counts(self):
        profile = PAPER_PROFILE.scaled(57)
        assert profile.mix.n_apps == 57
        assert profile.mix.native == round(270 * 57 / 285)

    def test_corpus_size_matches_profile(self):
        gen = CorpusGenerator(PAPER_PROFILE.scaled(4))
        assert len(gen.generate()) == 4
