"""Lifecycle corpus (`repro.corpus.lifecycle`): the deterministic apps
behind the extended-taxonomy precision/recall accounting (Table 6x)."""

from repro.core.defects import DefectKind
from repro.corpus.lifecycle import EXTENDED_KINDS, build_lifecycle_corpus
from repro.pipeline.diskcache import app_content_fingerprint


class TestShape:
    def test_thirteen_apps_with_unique_packages(self):
        corpus = build_lifecycle_corpus()
        assert len(corpus) == 13
        packages = [apk.package for apk, _ in corpus]
        assert len(set(packages)) == 13
        assert all(pkg.startswith("org.lifecycle.") for pkg in packages)

    def test_deterministic_across_builds(self):
        first = build_lifecycle_corpus()
        second = build_lifecycle_corpus()
        assert [apk.package for apk, _ in first] == [
            apk.package for apk, _ in second
        ]
        for (a, _), (b, _) in zip(first, second):
            assert app_content_fingerprint(a) == app_content_fingerprint(b)


class TestGroundTruth:
    def test_expectations_restricted_to_extended_kinds(self):
        for _apk, truth in build_lifecycle_corpus():
            for record in truth.requests:
                assert record.expected <= set(EXTENDED_KINDS)

    def test_two_injected_defects_per_extended_kind(self):
        counts = dict.fromkeys(EXTENDED_KINDS, 0)
        for _apk, truth in build_lifecycle_corpus():
            for record in truth.requests:
                for kind in record.expected:
                    counts[kind] += 1
        assert counts == {
            DefectKind.UI_THREAD_NETWORK: 2,
            DefectKind.CALLBACK_LEAK: 2,
            DefectKind.MISSED_OFFLINE_CACHE: 2,
        }

    def test_every_app_carries_a_ledger_entry(self):
        for apk, truth in build_lifecycle_corpus():
            assert truth.package == apk.package
            assert truth.requests
