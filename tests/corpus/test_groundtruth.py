"""Ground-truth ledger and confusion-arithmetic tests."""

import pytest

from repro.core import DefectKind, NChecker
from repro.corpus.groundtruth import (
    AppGroundTruth,
    Confusion,
    OVER_RETRY_KINDS,
    TABLE9_ROWS,
    confusion_for_app,
    overall_accuracy,
    table9_confusions,
)
from repro.corpus.snippets import Connectivity, RequestSpec

from tests.conftest import single_request_app


class TestConfusion:
    def test_addition(self):
        total = Confusion(1, 2, 3) + Confusion(4, 5, 6)
        assert (total.correct, total.false_positives, total.false_negatives) == (
            5, 7, 9,
        )

    def test_reported(self):
        assert Confusion(10, 2, 1).reported == 12

    def test_overall_accuracy(self):
        table = {"a": Confusion(9, 1, 0), "b": Confusion(0, 0, 5)}
        assert overall_accuracy(table) == pytest.approx(0.9)

    def test_accuracy_with_no_reports_is_one(self):
        assert overall_accuracy({"a": Confusion(0, 0, 3)}) == 1.0


class TestConfusionForApp:
    def _scan(self, spec):
        apk, record = single_request_app(spec)
        truth = AppGroundTruth(apk.package, [record])
        return truth, NChecker().scan(apk)

    def test_perfect_agreement(self):
        truth, result = self._scan(RequestSpec())
        kinds = frozenset({DefectKind.MISSED_CONNECTIVITY_CHECK})
        confusion = confusion_for_app(truth, result, kinds)
        assert (confusion.correct, confusion.false_positives,
                confusion.false_negatives) == (1, 0, 0)

    def test_known_false_negative(self):
        truth, result = self._scan(
            RequestSpec(connectivity=Connectivity.UNGUARDED)
        )
        kinds = frozenset({DefectKind.MISSED_CONNECTIVITY_CHECK})
        confusion = confusion_for_app(truth, result, kinds)
        assert confusion.false_negatives == 1
        assert confusion.correct == 0

    def test_clean_kind_counts_nothing(self):
        truth, result = self._scan(RequestSpec(connectivity=Connectivity.GUARDED))
        kinds = frozenset({DefectKind.MISSED_CONNECTIVITY_CHECK})
        confusion = confusion_for_app(truth, result, kinds)
        assert confusion == Confusion(0, 0, 0)

    def test_over_retry_group_aggregates_three_kinds(self):
        assert OVER_RETRY_KINDS == {
            DefectKind.NO_RETRY_TIME_SENSITIVE,
            DefectKind.OVER_RETRY_SERVICE,
            DefectKind.OVER_RETRY_POST,
        }


class TestTable9Machinery:
    def test_rows_match_paper_layout(self):
        labels = [label for label, _ in TABLE9_ROWS]
        assert labels == [
            "Missed conn. checks",
            "Missed timeout APIs",
            "Missed retry APIs",
            "Over retries",
            "Missed failure notifications",
            "Missed response checks",
        ]

    def test_unmatched_package_skipped(self):
        truth = AppGroundTruth("com.ghost.app", [])
        table = table9_confusions([truth], [])
        assert all(c == Confusion(0, 0, 0) for c in table.values())

    def test_expected_counts(self):
        apk, record = single_request_app(RequestSpec())
        truth = AppGroundTruth(apk.package, [record])
        counts = truth.expected_counts()
        assert counts[DefectKind.MISSED_CONNECTIVITY_CHECK] == 1
