"""Accuracy-corpus tests: Table 9 must reproduce exactly."""

import pytest

from repro.core import NChecker
from repro.corpus import overall_accuracy, table9_confusions


@pytest.fixture(scope="module")
def table9(opensource_corpus):
    checker = NChecker()
    results = [checker.scan(apk) for apk, _ in opensource_corpus]
    truths = [t for _, t in opensource_corpus]
    return table9_confusions(truths, results)


class TestStructure:
    def test_sixteen_apps(self, opensource_corpus):
        assert len(opensource_corpus) == 16

    def test_unique_packages(self, opensource_corpus):
        packages = [apk.package for apk, _ in opensource_corpus]
        assert len(set(packages)) == 16

    def test_apps_validate(self, opensource_corpus):
        for apk, _ in opensource_corpus:
            apk.validate()


class TestTable9Exact:
    """Paper Table 9, row by row."""

    def test_connectivity_row(self, table9):
        row = table9["Missed conn. checks"]
        assert (row.correct, row.false_positives, row.false_negatives) == (31, 4, 5)

    def test_timeout_row(self, table9):
        row = table9["Missed timeout APIs"]
        assert (row.correct, row.false_positives, row.false_negatives) == (58, 0, 0)

    def test_retry_row(self, table9):
        row = table9["Missed retry APIs"]
        assert (row.correct, row.false_positives, row.false_negatives) == (12, 0, 0)

    def test_over_retry_row(self, table9):
        row = table9["Over retries"]
        assert (row.correct, row.false_positives, row.false_negatives) == (4, 0, 0)

    def test_notification_row(self, table9):
        row = table9["Missed failure notifications"]
        assert (row.correct, row.false_positives, row.false_negatives) == (20, 5, 0)

    def test_response_row(self, table9):
        row = table9["Missed response checks"]
        assert (row.correct, row.false_positives, row.false_negatives) == (5, 0, 0)

    def test_totals_and_accuracy(self, table9):
        correct = sum(c.correct for c in table9.values())
        fps = sum(c.false_positives for c in table9.values())
        fns = sum(c.false_negatives for c in table9.values())
        assert (correct, fps, fns) == (130, 9, 5)
        accuracy = overall_accuracy(table9)
        assert 0.93 <= accuracy < 0.95  # the paper reports "94%"


class TestFailureMechanisms:
    """FPs/FNs must come from the documented analysis limitations, not
    from mislabeled ground truth."""

    def test_conn_fps_only_in_launcher_apps(self, opensource_corpus):
        from repro.corpus.groundtruth import confusion_for_app
        from repro.core import DefectKind

        checker = NChecker()
        kinds = frozenset({DefectKind.MISSED_CONNECTIVITY_CHECK})
        fp_apps = []
        for apk, truth in opensource_corpus:
            confusion = confusion_for_app(truth, checker.scan(apk), kinds)
            if confusion.false_positives:
                fp_apps.append(apk.package)
        assert fp_apps == ["org.opensource.fdroid", "org.opensource.kontalk"]

    def test_conn_fns_only_in_unguarded_app(self, opensource_corpus):
        from repro.corpus.groundtruth import confusion_for_app
        from repro.core import DefectKind

        checker = NChecker()
        kinds = frozenset({DefectKind.MISSED_CONNECTIVITY_CHECK})
        fn_apps = []
        for apk, truth in opensource_corpus:
            confusion = confusion_for_app(truth, checker.scan(apk), kinds)
            if confusion.false_negatives:
                fn_apps.append(apk.package)
        assert fn_apps == ["org.opensource.gpslogger"]

    def test_notification_fps_only_in_broadcast_app(self, opensource_corpus):
        from repro.corpus.groundtruth import confusion_for_app
        from repro.core import DefectKind

        checker = NChecker()
        kinds = frozenset({DefectKind.MISSED_NOTIFICATION})
        fp_apps = []
        for apk, truth in opensource_corpus:
            confusion = confusion_for_app(truth, checker.scan(apk), kinds)
            if confusion.false_positives:
                fp_apps.append(apk.package)
        assert fp_apps == ["org.opensource.ankidroid"]
