"""Snippet emitter tests: the checker must agree with the semantic ground
truth on every spec combination (modulo the documented FN/FP shapes)."""

import pytest

from repro.core import DefectKind, NChecker
from repro.corpus.snippets import (
    Backoff,
    Connectivity,
    Notification,
    RequestSpec,
    RetryLoopShape,
    SUPPORTED_LIBRARIES,
    expected_defects,
)

from tests.conftest import single_request_app


def _agree(spec, in_service=False):
    apk, record = single_request_app(spec, in_service=in_service)
    result = NChecker().scan(apk)
    return {f.kind for f in result.findings}, record.expected


class TestCheckerMatchesGroundTruth:
    @pytest.mark.parametrize("library", SUPPORTED_LIBRARIES)
    def test_all_defects_spec(self, library):
        got, expected = _agree(RequestSpec(library=library))
        assert got == expected

    @pytest.mark.parametrize("library", SUPPORTED_LIBRARIES)
    def test_clean_spec(self, library):
        got, expected = _agree(
            RequestSpec(
                library=library,
                connectivity=Connectivity.GUARDED,
                with_timeout=True,
                with_retry=True,
                retry_value=2,
                with_notification=Notification.TOAST,
                with_response_check=True,
                uses_error_types=True,
            )
        )
        assert got == expected == set()

    @pytest.mark.parametrize("library", SUPPORTED_LIBRARIES)
    def test_service_placement(self, library):
        got, expected = _agree(RequestSpec(library=library), in_service=True)
        assert got == expected

    @pytest.mark.parametrize(
        "shape", [s for s in RetryLoopShape if s is not RetryLoopShape.NONE]
    )
    @pytest.mark.parametrize("backoff", list(Backoff))
    def test_retry_loop_matrix(self, shape, backoff):
        got, expected = _agree(
            RequestSpec(library="basichttp", retry_loop=shape, backoff=backoff)
        )
        assert got == expected

    @pytest.mark.parametrize("library", ["volley", "asynchttp", "basichttp"])
    def test_post_requests(self, library):
        got, expected = _agree(RequestSpec(library=library, http_post=True))
        assert got == expected

    @pytest.mark.parametrize(
        "notification", [Notification.TOAST, Notification.HANDLER, Notification.LOG]
    )
    def test_notification_variants(self, notification):
        got, expected = _agree(RequestSpec(with_notification=notification))
        assert got == expected

    def test_helper_connectivity(self):
        got, expected = _agree(RequestSpec(connectivity=Connectivity.HELPER))
        assert got == expected


class TestDocumentedDivergences:
    """The paper's FN/FP shapes are exactly where tool and truth differ."""

    def test_unguarded_check_diverges_as_fn(self):
        got, expected = _agree(RequestSpec(connectivity=Connectivity.UNGUARDED))
        assert DefectKind.MISSED_CONNECTIVITY_CHECK in expected
        assert DefectKind.MISSED_CONNECTIVITY_CHECK not in got
        assert got | {DefectKind.MISSED_CONNECTIVITY_CHECK} == expected

    def test_broadcast_notification_diverges_as_fp(self):
        got, expected = _agree(
            RequestSpec(with_notification=Notification.BROADCAST)
        )
        assert DefectKind.MISSED_NOTIFICATION in got
        assert DefectKind.MISSED_NOTIFICATION not in expected


class TestExpectedDefectsFunction:
    def test_httpurl_has_no_retry_rows(self):
        defects = expected_defects(
            RequestSpec(library="httpurlconnection"), True, False
        )
        assert DefectKind.MISSED_RETRY not in defects
        assert DefectKind.NO_RETRY_TIME_SENSITIVE not in defects

    def test_background_skips_notification(self):
        defects = expected_defects(RequestSpec(), False, True)
        assert DefectKind.MISSED_NOTIFICATION not in defects

    def test_volley_error_types_only_for_user(self):
        user = expected_defects(RequestSpec(library="volley"), True, False)
        background = expected_defects(RequestSpec(library="volley"), False, True)
        assert DefectKind.MISSED_ERROR_TYPE_CHECK in user
        assert DefectKind.MISSED_ERROR_TYPE_CHECK not in background

    def test_loop_spec_has_no_response_row(self):
        defects = expected_defects(
            RequestSpec(retry_loop=RetryLoopShape.UNCONDITIONAL_EXIT), True, False
        )
        assert DefectKind.MISSED_RESPONSE_CHECK not in defects
