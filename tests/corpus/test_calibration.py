"""Calibration stability: the corpus rates must be properties of the
profile, not artifacts of one lucky seed."""

import pytest

from repro.core import NChecker
from repro.corpus import CorpusGenerator, PAPER_PROFILE
from repro.corpus.profiles import CorpusProfile
from repro.eval.metrics import table6


def _rates(seed: int, n_apps: int = 120) -> dict[str, int]:
    profile = CorpusProfile(
        mix=PAPER_PROFILE.scaled(n_apps).mix, rates=PAPER_PROFILE.rates, seed=seed
    )
    checker = NChecker()
    results = [
        checker.scan(apk) for apk, _ in CorpusGenerator(profile).iter_apps()
    ]
    return {row.cause: row.percent for row in table6(results)}


@pytest.fixture(scope="module")
def seeded_rates():
    return [_rates(seed) for seed in (1, 2, 3)]


class TestSeedStability:
    """Paper targets, with generous bands (n=120 per seed)."""

    @pytest.mark.parametrize(
        "cause,paper,tolerance",
        [
            ("Missed conn. checks", 43, 12),
            ("Missed timeout APIs", 49, 12),
            ("Missed retry APIs", 70, 12),
            ("Over retries", 55, 14),
            ("Missed failure notifications", 57, 12),
        ],
    )
    def test_rate_within_band_for_every_seed(self, seeded_rates, cause, paper, tolerance):
        for rates in seeded_rates:
            assert abs(rates[cause] - paper) <= tolerance, (cause, rates[cause])

    def test_rates_vary_but_not_wildly(self, seeded_rates):
        """Different seeds give different (but close) corpora."""
        conn = [r["Missed conn. checks"] for r in seeded_rates]
        assert max(conn) - min(conn) <= 20
