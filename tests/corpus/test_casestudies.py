"""Executable Table 2: for every representative NPD, (1) NChecker flags
the buggy app, (2) the symptom manifests at runtime, (3) the paper's
resolution removes the symptom, and (4) the fixed app no longer carries
the flagged defect."""

import pytest

from repro.core import NChecker, NCheckerOptions
from repro.corpus.casestudies import CASE_STUDIES, CaseStudy
from repro.corpus.study import REPRESENTATIVE_NPDS
from repro.libmodels import extended_registry


def _checker(case: CaseStudy) -> NChecker:
    if case.uses_xmpp:
        return NChecker(
            registry=extended_registry(),
            options=NCheckerOptions(check_network_switch=True),
        )
    return NChecker()


@pytest.mark.parametrize("case", CASE_STUDIES, ids=lambda c: f"{c.case_id}-{c.app_name}")
class TestEveryCase:
    def test_buggy_app_is_flagged(self, case):
        result = _checker(case).scan(case.build_buggy())
        kinds = {f.kind for f in result.findings}
        assert case.detected_as in kinds, sorted(k.value for k in kinds)

    def test_symptom_manifests_in_buggy_app(self, case):
        report = case.run(case.build_buggy())
        assert case.symptom(report)

    def test_resolution_removes_the_symptom(self, case):
        report = case.run(case.build_fixed())
        assert not case.symptom(report)

    def test_resolution_removes_the_flag(self, case):
        result = _checker(case).scan(case.build_fixed())
        kinds = {f.kind for f in result.findings}
        assert case.detected_as not in kinds, sorted(k.value for k in kinds)

    def test_apps_validate(self, case):
        case.build_buggy().validate()
        case.build_fixed().validate()


class TestAlignmentWithTable2:
    def test_covers_all_six_rows(self):
        assert [c.case_id for c in CASE_STUDIES] == ["i", "ii", "iii", "iv", "v", "vi"]

    def test_descriptions_match_the_study_dataset(self):
        by_id = {n.case_id: n for n in REPRESENTATIVE_NPDS}
        for case in CASE_STUDIES:
            row = by_id[case.case_id]
            assert case.app_name == row.app
            assert case.description == row.description
            assert case.resolution == row.resolution
            assert case.impact == row.impact
