"""The committed BENCH export: schema, provenance, and no retired
counter names.

PR 7 renamed the cache-hit counters from ``cache.disk.*`` to per-tier
``cache.<tier>.*`` names; the committed measurements must not keep the
retired spelling alive, and nothing the pipeline emits today may
reintroduce it.
"""

import json
from pathlib import Path

from repro.core.checker import NCheckerOptions
from repro.obs import BENCH_SCHEMA_VERSION, use_metrics

REPO = Path(__file__).resolve().parents[1]
BENCH_FILE = REPO / "BENCH_pipeline.json"
RETIRED_PREFIXES = ("cache.disk.",)


class TestCommittedBenchFile:
    def test_carries_schema_version_and_provenance(self):
        payload = json.loads(BENCH_FILE.read_text())
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        prov = payload["provenance"]
        assert prov["options_fingerprint"]
        assert prov["source"] == "benchmarks/test_pipeline_scaling.py"

    def test_no_retired_counter_names_anywhere(self):
        text = BENCH_FILE.read_text()
        for prefix in RETIRED_PREFIXES:
            assert prefix not in text, (
                f"committed BENCH still mentions retired counter prefix "
                f"{prefix!r} — regenerate it with: PYTHONPATH=src python "
                f"-m pytest -q -s benchmarks/test_pipeline_scaling.py"
            )

    def test_baseline_carries_current_schema(self):
        baseline = json.loads(
            (REPO / "benchmarks" / "bench_baseline.json").read_text()
        )
        assert baseline["schema_version"] == BENCH_SCHEMA_VERSION
        assert baseline["provenance"]["run_id"]
        for prefix in RETIRED_PREFIXES:
            assert not any(
                name.startswith(prefix) for name in baseline["counters"]
            )


class TestFreshSnapshots:
    def test_cached_scan_emits_tier_names_not_retired_ones(self, tmp_path):
        from repro.app.loader import load_apk
        from repro.core import NChecker

        apps = sorted((REPO / "examples" / "apps").glob("*.apkt"))
        assert apps, "example apps missing"
        options = NCheckerOptions(cache_dir=str(tmp_path / "cache"))
        with use_metrics() as registry:
            checker = NChecker(options=options)
            for path in apps[:2]:
                checker.open_session(load_apk(str(path))).scan()
                checker.open_session(load_apk(str(path))).scan()  # warm
        counters = registry.snapshot()["counters"]
        retired = [
            name for name in counters
            if name.startswith(RETIRED_PREFIXES)
        ]
        assert not retired, f"pipeline emitted retired counters: {retired}"
        assert any(name.startswith("cache.local.") for name in counters)
