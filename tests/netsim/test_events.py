"""Discrete-event loop tests."""

import pytest

from repro.netsim import EventLoop


class TestEventLoop:
    def test_dispatch_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(30, lambda: order.append("b"))
        loop.schedule(10, lambda: order.append("a"))
        loop.schedule(20, lambda: order.append("mid"))
        loop.run()
        assert order == ["a", "mid", "b"]

    def test_clock_advances_to_event_time(self):
        loop = EventLoop()
        seen = []
        loop.schedule(50, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [50.0]

    def test_ties_fifo(self):
        loop = EventLoop()
        order = []
        loop.schedule(10, lambda: order.append(1))
        loop.schedule(10, lambda: order.append(2))
        loop.run()
        assert order == [1, 2]

    def test_nested_scheduling(self):
        loop = EventLoop()
        order = []

        def outer():
            order.append("outer")
            loop.schedule(5, lambda: order.append("inner"))

        loop.schedule(10, outer)
        loop.run()
        assert order == ["outer", "inner"]
        assert loop.now == 15.0

    def test_until_limit(self):
        loop = EventLoop()
        fired = []
        loop.schedule(10, lambda: fired.append(1))
        loop.schedule(100, lambda: fired.append(2))
        loop.run(until_ms=50)
        assert fired == [1]
        assert loop.pending == 1

    def test_max_events_backstop(self):
        loop = EventLoop()

        def rearm():
            loop.schedule(1, rearm)

        loop.schedule(1, rearm)
        dispatched = loop.run(max_events=100)
        assert dispatched == 100

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule(-1, lambda: None)

    def test_advance_moves_clock_without_dispatch(self):
        loop = EventLoop()
        fired = []
        loop.schedule(10, lambda: fired.append(1))
        loop.advance(100)
        assert loop.now == 100 and fired == []

    def test_stop(self):
        loop = EventLoop()
        loop.schedule(1, loop.stop)
        loop.schedule(2, lambda: (_ for _ in ()).throw(AssertionError))
        loop.run()
        assert loop.pending == 1
