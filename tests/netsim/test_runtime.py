"""IR runtime tests: injected NPDs must manifest as user-visible symptoms."""

import pytest

from repro.corpus.snippets import (
    Backoff,
    Connectivity,
    Notification,
    RequestSpec,
    RetryLoopShape,
)
from repro.netsim import LinkProfile, OFFLINE, Runtime, THREE_G

from tests.conftest import single_request_app

#: A link so degraded that mid-transfer read timeouts are near-certain.
TERRIBLE = LinkProfile("terrible", bandwidth_kbps=780, rtt_ms=100, loss_rate=0.6)


def run(spec, link, seed=7):
    apk, _ = single_request_app(spec, package="com.run.demo")
    runtime = Runtime(apk, link, seed=seed)
    return runtime.run_entry("com.run.demo.MainActivity", "onClick")


class TestCrashSymptom:
    def test_unchecked_response_crashes_on_bad_link(self):
        """Paper Cause 3.3: null response dereference."""
        report = run(RequestSpec(library="basichttp"), TERRIBLE)
        assert report.crashed
        assert report.crash_type == "java.lang.NullPointerException"

    def test_response_check_prevents_crash(self):
        report = run(
            RequestSpec(library="basichttp", with_response_check=True), TERRIBLE
        )
        assert not report.crashed

    def test_clean_link_no_crash(self):
        report = run(RequestSpec(library="basichttp"), THREE_G)
        assert not report.crashed
        assert report.requests_succeeded == 1

    def test_uncaught_ioexception_crashes(self):
        """A blocking request without try/catch dies on disconnect."""
        from repro.corpus.appbuilder import AppBuilder

        app = AppBuilder("com.run.demo")
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        conn = body.new("java.net.HttpURLConnection", "conn")
        body.call(conn, "getInputStream", ret="in")
        body.ret()
        activity.add(body)
        report = Runtime(app.build(), OFFLINE, seed=1).run_entry(
            "com.run.demo.MainActivity", "onClick"
        )
        assert report.crashed and report.crash_type == "java.io.IOException"


class TestSilentFailureSymptom:
    def test_silent_failure_without_notification(self):
        report = run(RequestSpec(library="okhttp"), OFFLINE)
        assert report.silent_failure

    def test_toast_breaks_the_silence(self):
        report = run(
            RequestSpec(library="okhttp", with_notification=Notification.TOAST),
            OFFLINE,
        )
        assert not report.silent_failure
        assert report.user_notified_of_failure

    def test_volley_error_listener_fires(self):
        report = run(
            RequestSpec(library="volley", with_notification=Notification.TOAST),
            OFFLINE,
        )
        assert report.user_notified_of_failure

    def test_volley_success_listener_on_clean_link(self):
        report = run(
            RequestSpec(library="volley", with_notification=Notification.TOAST),
            THREE_G,
        )
        assert report.requests_succeeded == 1
        assert not report.user_notified_of_failure  # no error -> no toast


class TestBatteryDrainSymptom:
    def test_aggressive_loop_drains_battery_offline(self):
        """Fig 2's Telegram bug, reproduced end to end."""
        report = run(
            RequestSpec(
                library="basichttp",
                retry_loop=RetryLoopShape.UNCONDITIONAL_EXIT,
                backoff=Backoff.NONE,
            ),
            OFFLINE,
        )
        assert report.battery_drain
        assert report.attempts_per_minute > 3

    def test_exponential_backoff_avoids_drain(self):
        report = run(
            RequestSpec(
                library="basichttp",
                retry_loop=RetryLoopShape.UNCONDITIONAL_EXIT,
                backoff=Backoff.EXPONENTIAL,
            ),
            OFFLINE,
        )
        assert not report.battery_drain
        assert report.attempts_per_minute < 1

    def test_fig6d_loop_also_drains(self):
        report = run(
            RequestSpec(
                library="basichttp",
                retry_loop=RetryLoopShape.CALLEE_CATCH,
                backoff=Backoff.NONE,
            ),
            OFFLINE,
        )
        assert report.battery_drain


class TestConnectivityGuardEffect:
    def test_guard_prevents_wasted_attempts_offline(self):
        report = run(RequestSpec(connectivity=Connectivity.GUARDED), OFFLINE)
        assert report.network_attempts == 0
        assert not report.crashed

    def test_unguarded_request_attempts_anyway(self):
        report = run(RequestSpec(connectivity=Connectivity.NONE), OFFLINE)
        assert report.network_attempts > 0


class TestVirtualClock:
    def test_sim_time_reflects_waiting(self):
        report = run(RequestSpec(library="okhttp"), OFFLINE)
        # OkHttp has no default timeout: the user waits for the SYN give-up.
        assert report.sim_time_ms > 30_000

    def test_timeout_bounds_waiting(self):
        report = run(
            RequestSpec(library="okhttp", with_timeout=True, timeout_ms=3000),
            OFFLINE,
        )
        assert report.sim_time_ms < 15_000
