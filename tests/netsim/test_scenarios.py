"""Disruption-scenario tests."""

import pytest

from repro.corpus.snippets import Connectivity, Notification, RequestSpec
from repro.netsim import Runtime, SCENARIOS
from repro.netsim.scenarios import AIRPLANE_TOGGLE, COMMUTE_START, SUBWAY

from tests.conftest import single_request_app


class TestScenarioTable:
    def test_all_scenarios_are_valid_schedules(self):
        for name, schedule in SCENARIOS.items():
            assert schedule.segments[0][0] == 0.0, name
            starts = [s for s, _ in schedule.segments]
            assert starts == sorted(starts), name

    def test_commute_has_a_dead_gap(self):
        assert not COMMUTE_START.link_at(11_000).connected
        assert COMMUTE_START.link_at(0).connected
        assert COMMUTE_START.link_at(20_000).connected

    def test_subway_alternates(self):
        connected = [SUBWAY.link_at(t).connected for t in (0, 25_000, 55_000, 80_000)]
        assert connected == [True, False, True, False]


class TestScenarioRuns:
    def _run(self, spec, schedule, seed=7):
        apk, _ = single_request_app(spec, package="com.scen.app")
        return Runtime(apk, schedule, seed=seed).run_entry(
            "com.scen.app.MainActivity", "onClick"
        )

    def test_guarded_app_skips_request_in_airplane_gap(self):
        """A request fired at t=0 (WiFi up) proceeds; the same app started
        during the airplane-mode window doesn't burn the radio."""
        spec = RequestSpec(connectivity=Connectivity.GUARDED)
        report = self._run(spec, AIRPLANE_TOGGLE)
        assert report.network_attempts > 0  # WiFi was up at t=0

    def test_subway_entry_sees_working_network_first(self):
        spec = RequestSpec(
            library="basichttp",
            with_timeout=True,
            with_response_check=True,
            with_notification=Notification.TOAST,
        )
        report = self._run(spec, SUBWAY)
        assert report.requests_succeeded == 1  # t=0 is a good window

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_scenario_executes(self, name):
        spec = RequestSpec(
            library="basichttp", with_timeout=True, with_response_check=True
        )
        report = self._run(spec, SCENARIOS[name])
        assert report.statements_executed > 0
        assert not report.budget_exhausted
