"""IR interpreter internals: exception dispatch, heap, async dispatch."""

import pytest

from repro.app import APK, Manifest
from repro.corpus.appbuilder import AppBuilder
from repro.ir import BinaryExpr, ClassBuilder, Const, InstanceOfExpr, Local
from repro.netsim import Runtime, SimObject, THREE_G, WIFI
from repro.netsim.runtime import _binop, _catches


def _run(build, entry="onClick", package="com.rt.test", link=THREE_G, seed=0):
    app = AppBuilder(package)
    activity = app.activity("MainActivity")
    body = activity.method(entry, params=[("android.view.View", "v")])
    build(app, activity, body)
    body.ret()
    activity.add(body)
    runtime = Runtime(app.build(), link, seed=seed)
    report = runtime.run_entry(f"{package}.MainActivity", entry)
    return runtime, report


class TestExceptionDispatch:
    def test_catches_exact_type(self):
        assert _catches("java.io.IOException", "java.io.IOException")

    def test_catches_supertype(self):
        assert _catches("java.lang.Exception", "java.io.IOException")
        assert _catches("java.lang.Throwable", "java.lang.NullPointerException")

    def test_does_not_catch_sibling(self):
        assert not _catches("java.io.IOException", "java.lang.NullPointerException")

    def test_thrown_app_exception_caught_by_matching_trap(self):
        def build(app, activity, body):
            region = body.begin_try()
            exc = body.new("java.io.IOException", "exc")
            body.throw(exc)
            body.begin_catch(region, "java.lang.Exception")
            body.assign("handled", True)
            body.end_try(region)

        _runtime, report = _run(build)
        assert not report.crashed

    def test_uncaught_throw_crashes(self):
        def build(app, activity, body):
            exc = body.new("java.io.IOException", "exc")
            body.throw(exc)

        _runtime, report = _run(build)
        assert report.crashed and report.crash_type == "java.io.IOException"


class TestHeapSemantics:
    def test_field_round_trip(self):
        def build(app, activity, body):
            obj = body.new("com.rt.test.Box", "box")
            body.set_field(obj, "com.rt.test.Box", "value", 42)
            got = body.get_field(obj, "com.rt.test.Box", "value", "got")
            with body.if_then("!=", got, 42):
                exc = body.new("java.io.IOException", "bad")
                body.throw(exc)

        _runtime, report = _run(build)
        assert not report.crashed  # field read the stored 42

    def test_null_field_base_raises_npe(self):
        def build(app, activity, body):
            body.assign("obj", None)
            body.get_field(Local("obj"), "com.rt.test.Box", "value", "got")

        _runtime, report = _run(build)
        assert report.crashed
        assert report.crash_type == "java.lang.NullPointerException"

    def test_arrays(self):
        from repro.ir import NewArrayExpr, ArrayRef, AssignStmt

        def build(app, activity, body):
            body.emit(AssignStmt(Local("arr"), NewArrayExpr("int", Const(3))))
            body.emit(AssignStmt(ArrayRef(Local("arr"), Const(0)), Const(7)))
            body.emit(AssignStmt(Local("x"), ArrayRef(Local("arr"), Const(0))))
            with body.if_then("!=", Local("x"), 7):
                exc = body.new("java.io.IOException", "bad")
                body.throw(exc)

        _runtime, report = _run(build)
        assert not report.crashed

    def test_instanceof_uses_hierarchy(self):
        def build(app, activity, body):
            sub = app.new_class("Sub", "com.rt.test.Base")
            stub = sub.method("noop")
            stub.ret()
            sub.add(stub)
            base = app.new_class("Base")
            stub = base.method("noop2")
            stub.ret()
            base.add(stub)
            obj = body.new("com.rt.test.Sub", "obj")
            body.assign("isBase", InstanceOfExpr(obj, "com.rt.test.Base"))
            with body.if_then("==", Local("isBase"), False):
                exc = body.new("java.io.IOException", "bad")
                body.throw(exc)

        _runtime, report = _run(build)
        assert not report.crashed


class TestBinop:
    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("+", 2, 3, 5),
            ("-", 2, 3, -1),
            ("*", 4, 3, 12),
            ("/", 7, 2, 3),
            ("%", 7, 2, 1),
            ("cmp", 5, 3, 1),
            ("cmp", 3, 5, -1),
            ("&", 6, 3, 2),
            ("<<", 1, 3, 8),
        ],
    )
    def test_arithmetic(self, op, left, right, expected):
        assert _binop(op, left, right) == expected

    def test_none_coerced_to_zero(self):
        assert _binop("+", None, 5) == 5

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError):
            _binop("**", 2, 3)


class TestAsyncDispatch:
    def test_asynctask_runs_background_then_post(self):
        package = "com.rt.task"
        app = AppBuilder(package)
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        task = body.new(f"{package}.Job", "job")
        body.call(task, "execute")
        body.ret()
        activity.add(body)

        job = app.async_task("Job")
        bg = job.method("doInBackground")
        client = bg.new("com.turbomanage.httpclient.BasicHttpClient", "c")
        bg.call(client, "get", "http://x", ret="r")
        bg.ret("done")
        job.add(bg)
        post = job.method("onPostExecute", params=[("java.lang.String", "r")])
        toast = post.static_call(
            "android.widget.Toast", "makeText", "ctx", "done", 0,
            ret="t", return_type="android.widget.Toast",
        )
        post.call(toast, "show", cls="android.widget.Toast")
        post.ret()
        job.add(post)

        runtime = Runtime(app.build(), WIFI, seed=0)
        report = runtime.run_entry(f"{package}.MainActivity", "onClick")
        assert report.requests_succeeded == 1
        assert report.notifications == 1  # onPostExecute ran

    def test_runnable_via_thread_start(self):
        package = "com.rt.thread"
        app = AppBuilder(package)
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        worker = body.new(f"{package}.Worker", "w")
        body.call(worker, "start")
        body.ret()
        activity.add(body)

        worker_cls = app.new_class("Worker", "java.lang.Thread")
        run = worker_cls.method("run")
        client = run.new("com.turbomanage.httpclient.BasicHttpClient", "c")
        run.call(client, "get", "http://x", ret="r")
        run.ret()
        worker_cls.add(run)

        report = Runtime(app.build(), WIFI, seed=0).run_entry(
            f"{package}.MainActivity", "onClick"
        )
        assert report.network_attempts >= 1


class TestEntryLookup:
    def test_missing_class_raises_keyerror(self):
        app = AppBuilder("com.rt.missing")
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        body.ret()
        activity.add(body)
        runtime = Runtime(app.build(), THREE_G)
        with pytest.raises(KeyError, match="no class"):
            runtime.run_entry("com.rt.missing.Ghost", "onClick")

    def test_missing_method_raises_keyerror(self):
        app = AppBuilder("com.rt.missing2")
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        body.ret()
        activity.add(body)
        runtime = Runtime(app.build(), THREE_G)
        with pytest.raises(KeyError, match="no method"):
            runtime.run_entry("com.rt.missing2.MainActivity", "onSwipe")

    def test_report_is_reusable_view(self):
        """run_entry returns the runtime's report object, updated in place."""
        app = AppBuilder("com.rt.view")
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        body.ret()
        activity.add(body)
        runtime = Runtime(app.build(), THREE_G)
        report = runtime.run_entry("com.rt.view.MainActivity", "onClick")
        assert report is runtime.report
        assert report.statements_executed >= 1


class TestPolicyApplication:
    def test_config_call_shapes_the_simulated_policy(self):
        def build(app, activity, body):
            client = body.new("com.turbomanage.httpclient.BasicHttpClient", "c")
            body.call(client, "setReadWriteTimeout", 1234)
            body.call(client, "setMaxRetries", 3)
            body.call(client, "get", "http://x", ret="r")

        runtime, _report = _run(build)
        # Inspect the recorded policy through a second direct run.
        from repro.netsim import RequestPolicy

        obj = SimObject("com.turbomanage.httpclient.BasicHttpClient")
        from repro.libmodels import default_registry
        from repro.ir import InvokeExpr, KIND_VIRTUAL, MethodSig

        reg = default_registry()
        invoke = InvokeExpr(
            KIND_VIRTUAL, Local("c"),
            MethodSig("com.turbomanage.httpclient.BasicHttpClient", "setMaxRetries", ("?",)),
        )
        found = reg.find_config(invoke)
        assert found is not None
