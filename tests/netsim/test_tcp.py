"""Simplified-TCP model tests, including monotonicity properties."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim import LinkProfile, OFFLINE, THREE_G, connect, transfer


class TestConnect:
    def test_lossless_connect_is_one_rtt(self):
        outcome = connect(THREE_G, random.Random(0))
        assert outcome.completed
        assert outcome.total_ms == THREE_G.rtt_ms

    def test_offline_connect_never_completes(self):
        outcome = connect(OFFLINE, random.Random(0))
        assert not outcome.completed
        assert outcome.total_ms > 10_000  # the SYN give-up horizon

    def test_full_loss_exhausts_syn_attempts(self):
        lossy = LinkProfile("dead", 780, 100, loss_rate=1.0)
        outcome = connect(lossy, random.Random(0))
        assert not outcome.completed


class TestTransfer:
    def test_lossless_transfer_completes(self):
        outcome = transfer(THREE_G, 64 * 1024, random.Random(0))
        assert outcome.completed
        assert outcome.max_stall_ms == 0.0
        assert outcome.segments_lost == 0

    def test_transfer_time_scales_with_size(self):
        rng = random.Random(0)
        small = transfer(THREE_G, 8 * 1024, rng).total_ms
        large = transfer(THREE_G, 512 * 1024, random.Random(0)).total_ms
        assert large > small * 10

    def test_read_timeout_cuts_transfer(self):
        lossy = THREE_G.with_loss(0.9)
        outcome = transfer(lossy, 64 * 1024, random.Random(0), read_timeout_ms=1000)
        assert not outcome.completed
        assert outcome.max_stall_ms >= 1000

    def test_offline_transfer_fails(self):
        outcome = transfer(OFFLINE, 1024, random.Random(0), read_timeout_ms=2500)
        assert not outcome.completed

    def test_loss_increases_time(self):
        clean_time = transfer(THREE_G, 128 * 1024, random.Random(1)).total_ms
        lossy_time = transfer(
            THREE_G.with_loss(0.2), 128 * 1024, random.Random(1)
        ).total_ms
        assert lossy_time > clean_time


class TestLinkProfiles:
    def test_with_loss_renames(self):
        lossy = THREE_G.with_loss(0.1)
        assert lossy.loss_rate == 0.1
        assert "loss" in lossy.name

    def test_serialisation_delay(self):
        # 780 kbps: 1 KB = 8192 bits ≈ 10.5 ms.
        assert THREE_G.ms_per_bytes(1024) == pytest.approx(10.5, rel=0.01)


@given(
    size=st.integers(1024, 512 * 1024),
    loss=st.floats(0.0, 0.3),
    seed=st.integers(0, 100),
)
@settings(max_examples=40, deadline=None)
def test_transfer_without_timeout_always_completes(size, loss, seed):
    """With no read timeout the (finite-RTO) model always finishes."""
    link = THREE_G.with_loss(loss)
    outcome = transfer(link, size, random.Random(seed))
    assert outcome.completed
    assert outcome.total_ms > 0


@given(seed=st.integers(0, 50), size=st.integers(1024, 128 * 1024))
@settings(max_examples=30, deadline=None)
def test_timeout_only_reduces_completion(seed, size):
    """Adding a read timeout can only turn completions into failures."""
    link = THREE_G.with_loss(0.1)
    free = transfer(link, size, random.Random(seed))
    capped = transfer(link, size, random.Random(seed), read_timeout_ms=2500)
    if capped.completed:
        assert free.completed
