"""HTTP client-policy simulation tests (the Fig 3 machinery)."""

import random

import pytest

from repro.libmodels import VOLLEY
from repro.netsim import (
    HttpClientSim,
    OFFLINE,
    RequestPolicy,
    THREE_G_CLEAN,
    THREE_G_LOSSY,
    download_success_rate,
)


class TestPolicies:
    def test_volley_default_matches_paper(self):
        policy = RequestPolicy.volley_default()
        assert policy.timeout_ms == 2500
        assert policy.max_retries == 1
        assert policy.backoff_multiplier == 1.0

    def test_from_library_defaults(self):
        policy = RequestPolicy.from_defaults(VOLLEY.defaults)
        assert policy.timeout_ms == 2500 and policy.max_retries == 1


class TestRequests:
    def test_clean_link_succeeds_first_attempt(self):
        client = HttpClientSim(RequestPolicy.volley_default(), random.Random(0))
        result = client.request(THREE_G_CLEAN, 16 * 1024)
        assert result.success and result.attempts == 1

    def test_offline_fails_after_all_retries(self):
        client = HttpClientSim(RequestPolicy.volley_default(), random.Random(0))
        result = client.request(OFFLINE, 16 * 1024)
        assert not result.success
        assert result.attempts == 2  # 1 + 1 retry
        assert result.failure == "offline"

    def test_no_timeout_policy_blocks_long_offline(self):
        """Paper Cause 3.1: without an explicit timeout the user waits for
        the OS-level give-up — minutes."""
        client = HttpClientSim(RequestPolicy(timeout_ms=None), random.Random(0))
        result = client.request(OFFLINE, 16 * 1024)
        assert not result.success
        assert result.total_ms > 30_000

    def test_backoff_multiplier_grows_timeout(self):
        policy = RequestPolicy(timeout_ms=1000, max_retries=2, backoff_multiplier=2.0)
        client = HttpClientSim(policy, random.Random(3))
        result = client.request(OFFLINE, 16 * 1024)
        # Attempts wait 1000, 2000, 4000 -> at least 7000 total.
        assert result.total_ms >= 3000


class TestFig3Shape:
    """The headline sensitivity result: who wins and where it falls off."""

    def test_clean_3g_succeeds_at_all_sizes(self):
        for size in (2 * 1024, 128 * 1024, 2 * 1024 * 1024):
            rate = download_success_rate(
                THREE_G_CLEAN, size, RequestPolicy.volley_default(), trials=50
            )
            assert rate == 1.0, size

    def test_lossy_3g_small_files_mostly_succeed(self):
        rate = download_success_rate(
            THREE_G_LOSSY, 2 * 1024, RequestPolicy.volley_default(), trials=100
        )
        assert rate > 0.9

    def test_lossy_3g_large_files_mostly_fail(self):
        rate = download_success_rate(
            THREE_G_LOSSY, 2 * 1024 * 1024, RequestPolicy.volley_default(), trials=100
        )
        assert rate < 0.2

    def test_success_rate_monotone_in_size(self):
        policy = RequestPolicy.volley_default()
        sizes = [2 * 1024 * (2 ** i) for i in range(0, 11, 2)]
        rates = [
            download_success_rate(THREE_G_LOSSY, s, policy, trials=150)
            for s in sizes
        ]
        # Allow small Monte-Carlo wiggle but require the downward trend.
        for earlier, later in zip(rates, rates[2:]):
            assert later <= earlier + 0.05

    def test_loss_hurts(self):
        policy = RequestPolicy.volley_default()
        size = 256 * 1024
        clean = download_success_rate(THREE_G_CLEAN, size, policy, trials=100)
        lossy = download_success_rate(THREE_G_LOSSY, size, policy, trials=100)
        assert clean > lossy

    def test_longer_timeout_helps(self):
        """The paper's point: developers must tune the defaults."""
        size = 512 * 1024
        default = download_success_rate(
            THREE_G_LOSSY, size, RequestPolicy.volley_default(), trials=150
        )
        tuned = download_success_rate(
            THREE_G_LOSSY, size,
            RequestPolicy(timeout_ms=20_000, max_retries=1), trials=150,
        )
        assert tuned > default

    def test_deterministic_given_seed(self):
        policy = RequestPolicy.volley_default()
        r1 = download_success_rate(THREE_G_LOSSY, 64 * 1024, policy, trials=60, seed=5)
        r2 = download_success_rate(THREE_G_LOSSY, 64 * 1024, policy, trials=60, seed=5)
        assert r1 == r2
