"""Radio energy-model tests."""

import pytest

from repro.corpus.snippets import Backoff, Connectivity, RequestSpec, RetryLoopShape
from repro.netsim import OFFLINE, Runtime, THREE_G
from repro.netsim.energy import (
    CELLULAR_3G,
    EnergyEstimate,
    WIFI_RADIO,
    energy_per_hour_mj,
    estimate_energy,
)

from tests.conftest import single_request_app


def _run(spec, link, seed=7):
    apk, _ = single_request_app(spec, package="com.energy.app")
    return Runtime(apk, link, seed=seed).run_entry(
        "com.energy.app.MainActivity", "onClick"
    )


class TestEstimate:
    def test_breakdown_sums(self):
        report = _run(RequestSpec(library="basichttp"), THREE_G)
        estimate = estimate_energy(report)
        assert estimate.total_mj == pytest.approx(
            estimate.active_mj + estimate.tail_mj + estimate.idle_mj
        )

    def test_successful_request_costs_something(self):
        report = _run(RequestSpec(library="basichttp"), THREE_G)
        assert estimate_energy(report).total_mj > 0

    def test_no_request_no_active_energy(self):
        report = _run(RequestSpec(connectivity=Connectivity.GUARDED), OFFLINE)
        estimate = estimate_energy(report)
        assert estimate.active_mj == 0.0
        assert report.network_attempts == 0

    def test_tail_clamped_to_wall_clock(self):
        """Overlapping tails in a tight loop cannot exceed the horizon."""
        report = _run(
            RequestSpec(
                library="basichttp",
                retry_loop=RetryLoopShape.UNCONDITIONAL_EXIT,
                backoff=Backoff.NONE,
            ),
            OFFLINE,
        )
        estimate = estimate_energy(report)
        max_tail_mj = report.sim_time_ms * CELLULAR_3G.tail_mw / 1000.0
        assert estimate.tail_mj <= max_tail_mj + 1e-6

    def test_wifi_cheaper_than_cellular(self):
        report = _run(RequestSpec(library="basichttp"), THREE_G)
        assert (
            estimate_energy(report, WIFI_RADIO).total_mj
            < estimate_energy(report, CELLULAR_3G).total_mj
        )

    def test_mah_conversion(self):
        estimate = EnergyEstimate(active_mj=3700.0, tail_mj=0.0, idle_mj=0.0)
        # 3.7 J at 3.7 V is 1 coulomb = 1/3.6 mAh.
        assert estimate.total_mah_at_3v7 == pytest.approx(1 / 3.6)


class TestTelegramBugEnergy:
    """The Fig 2 story in joules: the backoff-free reconnect loop burns
    dramatically more per hour than the fixed version."""

    def test_aggressive_loop_burns_more_per_hour(self):
        aggressive = _run(
            RequestSpec(
                library="basichttp",
                retry_loop=RetryLoopShape.UNCONDITIONAL_EXIT,
                backoff=Backoff.NONE,
            ),
            OFFLINE,
        )
        fixed = _run(
            RequestSpec(
                library="basichttp",
                retry_loop=RetryLoopShape.UNCONDITIONAL_EXIT,
                backoff=Backoff.EXPONENTIAL,
            ),
            OFFLINE,
        )
        ratio = energy_per_hour_mj(aggressive) / max(energy_per_hour_mj(fixed), 1e-9)
        assert ratio > 5.0
