"""Forward taint and backward origin-tracing tests."""

from repro.cfg import CFG
from repro.dataflow import ForwardTaint, TaintPolicy, trace_origins
from repro.ir import CastExpr, Local, MethodBuilder


def _cfg(fn, params=()):
    b = MethodBuilder("com.t.C", "m", params=list(params))
    fn(b)
    return CFG(b.build())


class TestForwardTaint:
    def test_copy_propagates(self):
        def fn(b):
            c = b.new("com.lib.Client", "c")
            b.assign("alias", c)
            b.call(Local("alias"), "get", cls="com.lib.Client")
            b.ret()

        cfg = _cfg(fn)
        taint = ForwardTaint(cfg, {(0, "c")})
        call_idx = [i for i, _ in cfg.method.invoke_sites()][-1]
        assert "alias" in taint.tainted_before(call_idx)

    def test_reassignment_kills(self):
        def fn(b):
            b.new("com.lib.Client", "c")
            b.assign("c", 5)  # overwritten with a constant
            b.assign("y", Local("c"))
            b.ret()

        cfg = _cfg(fn)
        taint = ForwardTaint(cfg, {(0, "c")})
        assert "c" not in taint.tainted_before(3)

    def test_call_result_tainted_from_receiver(self):
        def fn(b):
            c = b.new("com.lib.Client", "c")
            b.call(c, "getParams", ret="params", cls="com.lib.Client")
            b.assign("y", Local("params"))
            b.ret()

        cfg = _cfg(fn)
        taint = ForwardTaint(cfg, {(0, "c")})
        idx = len(cfg.method.statements) - 2
        assert "params" in taint.tainted_before(idx)

    def test_call_results_not_tainted_when_policy_disables(self):
        def fn(b):
            c = b.new("com.lib.Client", "c")
            b.call(c, "getParams", ret="params", cls="com.lib.Client")
            b.assign("y", Local("params"))
            b.ret()

        cfg = _cfg(fn)
        taint = ForwardTaint(
            cfg, {(0, "c")}, TaintPolicy(through_call_results=False)
        )
        idx = len(cfg.method.statements) - 2
        assert "params" not in taint.tainted_before(idx)

    def test_entry_seed_taints_parameter(self):
        def fn(b):
            b.assign("y", Local("resp"))
            b.ret()

        cfg = _cfg(fn, params=[("com.lib.Response", "resp")])
        taint = ForwardTaint(cfg, {(-1, "resp")})
        assert "resp" in taint.tainted_before(0)
        assert "y" in taint.tainted_before(1)

    def test_cast_preserves_taint(self):
        def fn(b):
            b.new("com.lib.Client", "c")
            b.assign("d", CastExpr("com.lib.Client", Local("c")))
            b.assign("y", Local("d"))
            b.ret()

        cfg = _cfg(fn)
        taint = ForwardTaint(cfg, {(0, "c")})
        assert "d" in taint.tainted_before(3)

    def test_invoke_sites_on_tainted(self):
        def fn(b):
            c = b.new("com.lib.Client", "c")
            other = b.new("com.other.Thing", "o")
            b.call(c, "setTimeout", 5, cls="com.lib.Client")
            b.call(other, "irrelevant", cls="com.other.Thing")
            b.ret()

        cfg = _cfg(fn)
        taint = ForwardTaint(cfg, {(0, "c")})
        names = {expr.sig.name for _i, expr in taint.invoke_sites_on_tainted()}
        assert "setTimeout" in names
        # The constructor of `o` and its call are not on tainted receivers
        # (except c's own ctor, whose receiver *is* tainted).
        assert "irrelevant" not in names


class TestTraceOrigins:
    def test_allocation_origin(self):
        def fn(b):
            b.new("com.lib.Client", "c")
            b.assign("alias", Local("c"))
            b.call(Local("alias"), "get", cls="com.lib.Client")
            b.ret()

        cfg = _cfg(fn)
        call_idx = [i for i, _ in cfg.method.invoke_sites()][-1]
        origins = trace_origins(cfg, call_idx, "alias")
        assert origins == {0}

    def test_parameter_origin(self):
        def fn(b):
            b.call(Local("p"), "get", cls="com.lib.Client")
            b.ret()

        cfg = _cfg(fn, params=[("com.lib.Client", "p")])
        assert trace_origins(cfg, 0, "p") == {-1}

    def test_two_origins_through_branch(self):
        def fn(b):
            b.assign("sel", 0)
            with b.if_else("==", Local("sel"), 0) as orelse:
                b.new("com.lib.A", "c")
                orelse.start()
                b.new("com.lib.B", "c")
            b.call(Local("c"), "get", cls="?")
            b.ret()

        cfg = _cfg(fn)
        call_idx = [i for i, _ in cfg.method.invoke_sites()][-1]
        origins = trace_origins(cfg, call_idx, "c")
        from repro.ir import AssignStmt, NewExpr

        classes = {
            cfg.method.statements[o].value.class_name
            for o in origins
            if isinstance(cfg.method.statements[o], AssignStmt)
            and isinstance(cfg.method.statements[o].value, NewExpr)
        }
        assert classes == {"com.lib.A", "com.lib.B"}

    def test_call_result_is_origin(self):
        def fn(b):
            c = b.new("com.lib.Client", "c")
            b.call(c, "newCall", ret="call", cls="com.lib.Client")
            b.call(Local("call"), "execute", cls="com.lib.Call")
            b.ret()

        cfg = _cfg(fn)
        call_idx = [i for i, _ in cfg.method.invoke_sites()][-1]
        origins = trace_origins(cfg, call_idx, "call")
        assert len(origins) == 1
        origin = next(iter(origins))
        assert cfg.method.statements[origin].invoke().sig.name == "newCall"
