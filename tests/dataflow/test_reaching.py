"""Reaching-definitions and def-use chain tests."""

from repro.cfg import CFG
from repro.dataflow import DefUseChains, ReachingDefinitions
from repro.ir import Local, MethodBuilder


def _cfg(fn):
    b = MethodBuilder("com.t.C", "m", params=[("int", "p")])
    fn(b)
    return CFG(b.build())


class TestReachingDefinitions:
    def test_straight_line_def_reaches_use(self):
        cfg = _cfg(lambda b: (b.assign("x", 1), b.assign("y", Local("x")), b.ret()))
        rd = ReachingDefinitions(cfg)
        assert rd.reaching(1, "x") == {0}

    def test_redefinition_kills(self):
        def fn(b):
            b.assign("x", 1)
            b.assign("x", 2)
            b.assign("y", Local("x"))
            b.ret()

        rd = ReachingDefinitions(_cfg(fn))
        assert rd.reaching(2, "x") == {1}

    def test_branch_merges_definitions(self):
        def fn(b):
            b.assign("x", 1)
            with b.if_then("==", Local("p"), 0):
                b.assign("x", 2)
            b.assign("y", Local("x"))
            b.ret()

        cfg = _cfg(fn)
        rd = ReachingDefinitions(cfg)
        use = next(
            i for i, s in enumerate(cfg.method.statements)
            if any(d.name == "y" for d in s.defs())
        )
        assert rd.reaching(use, "x") == {0, 2}

    def test_parameter_definition_is_minus_one(self):
        cfg = _cfg(lambda b: (b.assign("y", Local("p")), b.ret()))
        rd = ReachingDefinitions(cfg)
        assert rd.reaching(0, "p") == {-1}

    def test_this_defined_at_entry_for_instance_methods(self):
        cfg = _cfg(lambda b: (b.assign("y", Local("this")), b.ret()))
        rd = ReachingDefinitions(cfg)
        assert rd.reaching(0, "this") == {-1}

    def test_loop_carried_definition(self):
        def fn(b):
            b.assign("x", 0)
            with b.while_loop("<", Local("x"), 3):
                b.assign("x", 1)
            b.assign("y", Local("x"))
            b.ret()

        cfg = _cfg(fn)
        rd = ReachingDefinitions(cfg)
        use = next(
            i for i, s in enumerate(cfg.method.statements)
            if any(d.name == "y" for d in s.defs())
        )
        assert rd.reaching(use, "x") == {0, 2}


class TestDefUseChains:
    def test_use_sites_of_def(self):
        def fn(b):
            b.assign("x", 1)
            b.assign("a", Local("x"))
            b.assign("b", Local("x"))
            b.ret()

        cfg = _cfg(fn)
        chains = DefUseChains(cfg)
        assert chains.use_sites(0) == {1, 2}

    def test_definition_sites_of_use(self):
        cfg = _cfg(lambda b: (b.assign("x", 1), b.assign("y", Local("x")), b.ret()))
        chains = DefUseChains(cfg)
        assert chains.definition_sites(1, "x") == {0}

    def test_fallback_for_non_syntactic_use(self):
        """Asking about a live local not used at the site still answers."""
        cfg = _cfg(lambda b: (b.assign("x", 1), b.assign("y", 2), b.ret()))
        chains = DefUseChains(cfg)
        assert chains.definition_sites(1, "x") == {0}
