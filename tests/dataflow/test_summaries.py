"""Unit tests for the interprocedural summary engine (`dataflow.summaries`)."""

from repro.core import NChecker
from repro.core.defects import DefectKind
from repro.core.requests import AnalysisContext
from repro.corpus.appbuilder import AppBuilder
from repro.dataflow.summaries import (
    CONFIG_TOP,
    RECEIVER,
    SummaryEngine,
    apk_fingerprint,
)
from repro.ir import Local
from repro.libmodels import default_registry

CLIENT = "com.turbomanage.httpclient.BasicHttpClient"


def build_engine(apk):
    registry = default_registry()
    ctx = AnalysisContext.build(apk, registry)
    return SummaryEngine(ctx.callgraph, registry, ctx.cache)


def _deep_chain_app(configure_at_top: bool = True):
    """onClick allocates (and optionally configures) the client, then passes
    it down three frames to the request: the shape one-hop analysis loses."""
    app = AppBuilder("com.deep.chain")
    activity = app.activity("MainActivity")

    entry = activity.method("onClick", params=[("android.view.View", "v")])
    client = entry.new(CLIENT, "c")
    if configure_at_top:
        entry.call(client, "setReadWriteTimeout", 7000)
        entry.call(client, "setMaxRetries", 2)
    entry.call(Local("this"), "level1", client, cls=activity.name)
    entry.ret()
    activity.add(entry)

    l1 = activity.method("level1", params=[(CLIENT, "c1")])
    l1.call(Local("this"), "level2", Local("c1"), cls=activity.name)
    l1.ret()
    activity.add(l1)

    l2 = activity.method("level2", params=[(CLIENT, "c2")])
    l2.call(Local("c2"), "get", "http://x", cls=CLIENT, ret="r")
    l2.ret()
    activity.add(l2)
    return app.build()


class TestSCCOrdering:
    def test_engine_sccs_are_callee_first(self):
        apk = _deep_chain_app()
        engine = build_engine(apk)
        pos = engine.scc_position
        entry = ("com.deep.chain.MainActivity", "onClick", 1)
        l1 = ("com.deep.chain.MainActivity", "level1", 1)
        l2 = ("com.deep.chain.MainActivity", "level2", 1)
        assert pos[l2] < pos[l1] < pos[entry]

    def test_mutual_recursion_shares_an_scc(self):
        app = AppBuilder("com.rec")
        activity = app.activity("MainActivity")
        a = activity.method("pingA", params=[("java.lang.Object", "x")])
        a.call(Local("this"), "pingB", Local("x"), cls=activity.name)
        a.ret()
        activity.add(a)
        b = activity.method("pingB", params=[("java.lang.Object", "x")])
        b.call(Local("this"), "pingA", Local("x"), cls=activity.name)
        b.ret()
        activity.add(b)
        engine = build_engine(app.build())
        key_a = ("com.rec.MainActivity", "pingA", 1)
        key_b = ("com.rec.MainActivity", "pingB", 1)
        assert engine.scc_position[key_a] == engine.scc_position[key_b]


class TestParamsToReturn:
    def _app(self):
        app = AppBuilder("com.ptr")
        activity = app.activity("MainActivity")
        ident = activity.method(
            "ident", params=[("java.lang.Object", "x")],
            return_type="java.lang.Object",
        )
        ident.ret(Local("x"))
        activity.add(ident)

        wrap = activity.method(
            "wrap", params=[("java.lang.Object", "y")],
            return_type="java.lang.Object",
        )
        wrap.call(Local("this"), "ident", Local("y"), cls=activity.name, ret="z")
        wrap.ret(Local("z"))
        activity.add(wrap)

        fresh = activity.method(
            "fresh", params=[("java.lang.Object", "x")],
            return_type="java.lang.Object",
        )
        obj = fresh.new("java.lang.Object", "o")
        fresh.ret(obj)
        activity.add(fresh)

        echo = activity.method(
            "echo", params=[("java.lang.Object", "x")],
            return_type="java.lang.Object",
        )
        echo.call(Local("this"), "echo", Local("x"), cls=activity.name, ret="y")
        echo.ret(Local("y"))
        activity.add(echo)
        return app.build()

    def test_direct_return_of_param(self):
        engine = build_engine(self._app())
        assert engine.params_to_return(("com.ptr.MainActivity", "ident", 1)) == {0}

    def test_transfer_composes_through_callee(self):
        engine = build_engine(self._app())
        assert 0 in engine.params_to_return(("com.ptr.MainActivity", "wrap", 1))

    def test_allocation_is_a_fresh_value(self):
        engine = build_engine(self._app())
        assert engine.params_to_return(("com.ptr.MainActivity", "fresh", 1)) == set()

    def test_recursion_widens_to_top(self):
        engine = build_engine(self._app())
        result = engine.params_to_return(("com.ptr.MainActivity", "echo", 1))
        # ⊤: every operand of the cyclic call flows through, so the
        # parameter (and the receiver) must be in the transfer set.
        assert 0 in result
        assert RECEIVER in result
        assert engine.stats.widenings >= 1

    def test_memoized(self):
        engine = build_engine(self._app())
        key = ("com.ptr.MainActivity", "wrap", 1)
        engine.params_to_return(key)
        computed = engine.stats.params_to_return_computed
        engine.params_to_return(key)
        assert engine.stats.params_to_return_computed == computed
        assert engine.stats.params_to_return_hits >= 1


class TestConfigEffects:
    def _app(self):
        app = AppBuilder("com.fx")
        activity = app.activity("MainActivity")
        cfg = activity.method("configure", params=[(CLIENT, "c")])
        cfg.call(Local("c"), "setReadWriteTimeout", 5000, cls=CLIENT)
        cfg.ret()
        activity.add(cfg)

        outer = activity.method("prepare", params=[(CLIENT, "c")])
        outer.call(Local("this"), "configure", Local("c"), cls=activity.name)
        outer.ret()
        activity.add(outer)

        rec_a = activity.method("cfgA", params=[(CLIENT, "c")])
        rec_a.call(Local("this"), "cfgB", Local("c"), cls=activity.name)
        rec_a.ret()
        activity.add(rec_a)
        rec_b = activity.method("cfgB", params=[(CLIENT, "c")])
        rec_b.call(Local("this"), "cfgA", Local("c"), cls=activity.name)
        rec_b.ret()
        activity.add(rec_b)
        return app.build()

    def test_effect_recorded_with_resolved_value(self):
        engine = build_engine(self._app())
        effects = engine.config_effects(("com.fx.MainActivity", "configure", 1), 0)
        assert effects is not CONFIG_TOP
        assert len(effects) == 1
        assert effects[0].lib_key == "basichttp"
        assert effects[0].timeout_ms == 5000

    def test_effects_transitive_through_callee(self):
        engine = build_engine(self._app())
        effects = engine.config_effects(("com.fx.MainActivity", "prepare", 1), 0)
        assert effects is not CONFIG_TOP
        assert [e.timeout_ms for e in effects] == [5000]

    def test_recursive_cycle_returns_top(self):
        engine = build_engine(self._app())
        effects = engine.config_effects(("com.fx.MainActivity", "cfgA", 1), 0)
        assert effects is CONFIG_TOP

    def test_unrelated_position_is_empty(self):
        engine = build_engine(self._app())
        assert engine.config_effects(("com.fx.MainActivity", "configure", 1), 5) == ()


class TestBooleanFacts:
    def _app(self):
        app = AppBuilder("com.conn")
        activity = app.activity("MainActivity")
        check = activity.method("isOnline", return_type="boolean")
        cm = check.new("android.net.ConnectivityManager", "cm")
        check.call(cm, "getActiveNetworkInfo", ret="ni")
        check.ret(1)
        activity.add(check)

        mid = activity.method("guard")
        mid.call(Local("this"), "isOnline", cls=activity.name, ret="ok")
        mid.ret()
        activity.add(mid)

        top = activity.method("refresh")
        top.call(Local("this"), "guard", cls=activity.name)
        top.ret()
        activity.add(top)

        plain = activity.method("unrelated")
        plain.ret()
        activity.add(plain)
        return app.build()

    def test_connectivity_fact_is_transitive(self):
        engine = build_engine(self._app())
        assert engine.performs_connectivity_check(
            ("com.conn.MainActivity", "isOnline", 0)
        )
        assert engine.performs_connectivity_check(
            ("com.conn.MainActivity", "refresh", 0)
        )
        assert not engine.performs_connectivity_check(
            ("com.conn.MainActivity", "unrelated", 0)
        )

    def test_connectivity_methods_view(self):
        engine = build_engine(self._app())
        methods = engine.connectivity_methods()
        assert ("com.conn.MainActivity", "guard", 0) in methods
        assert ("com.conn.MainActivity", "unrelated", 0) not in methods

    def test_fact_map_computed_once(self):
        engine = build_engine(self._app())
        for _ in range(3):
            engine.performs_connectivity_check(("com.conn.MainActivity", "guard", 0))
            engine.notifies_ui(("com.conn.MainActivity", "guard", 0))
        assert engine.stats.bool_fact_passes == 2  # connectivity + ui


class TestEngineCache:
    def test_repeat_scan_reuses_engine(self):
        apk = _deep_chain_app()
        checker = NChecker()
        checker.scan(apk)
        assert checker.summary_cache.misses == 1
        checker.scan(apk)
        assert checker.summary_cache.hits == 1
        assert checker.summary_cache.misses == 1

    def test_structural_change_invalidates(self):
        apk = _deep_chain_app()
        checker = NChecker()
        checker.scan(apk)
        # Simulate the patcher: insert a statement somewhere.
        from repro.ir.statements import NopStmt
        from repro.ir.transform import insert_statements

        method = next(iter(next(iter(apk.classes())).methods()))
        insert_statements(method, 0, [NopStmt()])
        checker.scan(apk)
        assert checker.summary_cache.misses == 2

    def test_fingerprint_stable_for_unchanged_app(self):
        apk = _deep_chain_app()
        assert apk_fingerprint(apk) == apk_fingerprint(apk)


class TestEndToEnd:
    def test_deep_config_chain_suppresses_false_alarms(self):
        """The config object is configured three frames above the request:
        summary mode resolves it, the one-hop ablation baseline cannot."""
        from repro.core.checker import NCheckerOptions

        apk = _deep_chain_app(configure_at_top=True)
        summary = NChecker().scan(apk)
        legacy = NChecker(options=NCheckerOptions(summary_based=False)).scan(apk)

        assert summary.count_of(DefectKind.MISSED_TIMEOUT) == 0
        assert summary.count_of(DefectKind.MISSED_RETRY) == 0
        assert legacy.count_of(DefectKind.MISSED_TIMEOUT) == 1
        assert legacy.count_of(DefectKind.MISSED_RETRY) == 1

        info = summary.config_of(summary.requests[0])
        assert info.timeout_ms == 7000
        assert info.retries == 2
        assert not info.retries_from_default

    def test_unconfigured_deep_chain_still_warns(self):
        """Summary mode keeps the true positive when nothing configures the
        client anywhere on the chain."""
        apk = _deep_chain_app(configure_at_top=False)
        result = NChecker().scan(apk)
        assert result.count_of(DefectKind.MISSED_TIMEOUT) == 1
        assert result.count_of(DefectKind.MISSED_RETRY) == 1


class TestSupersetOfLegacy:
    """Summary mode must dominate the one-hop baseline: at least as many
    correct warnings per Table 9 group, on every corpus app."""

    def test_corpus_slice(self, small_corpus):
        from repro.core.checker import NCheckerOptions
        from repro.corpus.groundtruth import TABLE9_ROWS, confusion_for_app

        summary_checker = NChecker()
        legacy_checker = NChecker(options=NCheckerOptions(summary_based=False))
        for apk, truth in small_corpus[:12]:
            with_summaries = summary_checker.scan(apk)
            one_hop = legacy_checker.scan(apk)
            for label, kinds in TABLE9_ROWS:
                correct = confusion_for_app(truth, with_summaries, kinds).correct
                baseline = confusion_for_app(truth, one_hop, kinds).correct
                assert correct >= baseline, (apk.package, label)

    def test_example_apps_agree(self):
        """The shipped examples are shallow enough that both modes must
        report the identical finding set."""
        from pathlib import Path

        from repro.app.loader import load_apk
        from repro.core.checker import NCheckerOptions

        examples = Path(__file__).resolve().parents[2] / "examples" / "apps"
        summary_checker = NChecker()
        legacy_checker = NChecker(options=NCheckerOptions(summary_based=False))
        for path in sorted(examples.glob("*.apkt")):
            apk = load_apk(path)
            with_summaries = {
                (f.method_key, f.stmt_index, f.kind)
                for f in summary_checker.scan(apk).findings
            }
            one_hop = {
                (f.method_key, f.stmt_index, f.kind)
                for f in legacy_checker.scan(apk).findings
            }
            assert with_summaries == one_hop, path.name
