"""Constant-propagation tests (the §4.4.2 parameter-recovery machinery)."""

from repro.cfg import CFG
from repro.dataflow import ConstantPropagation, TOP
from repro.ir import BinaryExpr, Const, Local, MethodBuilder


def _cfg(fn, params=()):
    b = MethodBuilder("com.t.C", "m", params=list(params))
    fn(b)
    return CFG(b.build())


class TestConstantPropagation:
    def test_direct_constant(self):
        cfg = _cfg(lambda b: (b.assign("x", 5), b.assign("y", Local("x")), b.ret()))
        cp = ConstantPropagation(cfg)
        assert cp.value_before(1, "x") == 5

    def test_copy_chain(self):
        def fn(b):
            b.assign("a", 7)
            b.assign("b", Local("a"))
            b.assign("c", Local("b"))
            b.ret()

        cp = ConstantPropagation(_cfg(fn))
        assert cp.value_before(2, "b") == 7

    def test_arithmetic_folding(self):
        def fn(b):
            b.assign("a", 4)
            b.assign("b", BinaryExpr("*", Local("a"), Const(3)))
            b.assign("c", Local("b"))
            b.ret()

        cp = ConstantPropagation(_cfg(fn))
        assert cp.value_before(2, "b") == 12

    def test_conflicting_branches_are_top(self):
        def fn(b):
            b.assign("p", 0)
            with b.if_else("==", Local("p"), 0) as orelse:
                b.assign("x", 1)
                orelse.start()
                b.assign("x", 2)
            b.assign("y", Local("x"))
            b.ret()

        cfg = _cfg(fn)
        cp = ConstantPropagation(cfg)
        use = next(
            i for i, s in enumerate(cfg.method.statements)
            if any(d.name == "y" for d in s.defs())
        )
        assert cp.value_before(use, "x") is TOP

    def test_agreeing_branches_stay_constant(self):
        def fn(b):
            b.assign("p", 0)
            with b.if_else("==", Local("p"), 0) as orelse:
                b.assign("x", 9)
                orelse.start()
                b.assign("x", 9)
            b.assign("y", Local("x"))
            b.ret()

        cfg = _cfg(fn)
        cp = ConstantPropagation(cfg)
        use = next(
            i for i, s in enumerate(cfg.method.statements)
            if any(d.name == "y" for d in s.defs())
        )
        assert cp.value_before(use, "x") == 9

    def test_constant_survives_loop_when_not_redefined(self):
        """The BOTTOM-aware join: a pre-loop constant is visible inside."""

        def fn(b):
            b.assign("retries", 5)
            b.assign("i", 0)
            with b.while_loop("<", Local("i"), 3):
                b.assign("use", Local("retries"))
                b.assign("i", BinaryExpr("+", Local("i"), Const(1)))
            b.ret()

        cfg = _cfg(fn)
        cp = ConstantPropagation(cfg)
        use = next(
            i for i, s in enumerate(cfg.method.statements)
            if any(d.name == "use" for d in s.defs())
        )
        assert cp.value_before(use, "retries") == 5

    def test_loop_modified_variable_is_top(self):
        def fn(b):
            b.assign("i", 0)
            with b.while_loop("<", Local("i"), 3):
                b.assign("i", BinaryExpr("+", Local("i"), Const(1)))
            b.assign("y", Local("i"))
            b.ret()

        cfg = _cfg(fn)
        cp = ConstantPropagation(cfg)
        use = next(
            i for i, s in enumerate(cfg.method.statements)
            if any(d.name == "y" for d in s.defs())
        )
        assert cp.value_before(use, "i") is TOP

    def test_parameter_is_unknown(self):
        cfg = _cfg(
            lambda b: (b.assign("y", Local("p")), b.ret()),
            params=[("int", "p")],
        )
        cp = ConstantPropagation(cfg)
        assert cp.value_before(0, "p") is None

    def test_call_result_is_top(self):
        def fn(b):
            b.call(Local("c"), "size", ret="n", cls="com.C")
            b.assign("y", Local("n"))
            b.ret()

        cp = ConstantPropagation(_cfg(fn))
        assert cp.value_before(1, "n") is TOP

    def test_constant_argument_resolution(self):
        def fn(b):
            b.assign("t", 2500)
            b.call(Local("c"), "setTimeout", Local("t"), cls="com.C")
            b.ret()

        cfg = _cfg(fn)
        cp = ConstantPropagation(cfg)
        invoke_idx, invoke = next(cfg.method.invoke_sites())
        assert cp.constant_argument(invoke_idx, invoke.args[0]) == 2500

    def test_constant_argument_literal(self):
        def fn(b):
            b.call(Local("c"), "setTimeout", 9000, cls="com.C")
            b.ret()

        cfg = _cfg(fn)
        cp = ConstantPropagation(cfg)
        invoke_idx, invoke = next(cfg.method.invoke_sites())
        assert cp.constant_argument(invoke_idx, invoke.args[0]) == 9000

    def test_division_by_zero_is_top(self):
        def fn(b):
            b.assign("z", 0)
            b.assign("x", BinaryExpr("/", Const(1), Local("z")))
            b.assign("y", Local("x"))
            b.ret()

        cp = ConstantPropagation(_cfg(fn))
        assert cp.value_before(2, "x") is TOP
