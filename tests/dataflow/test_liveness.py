"""Live-variable analysis tests."""

from repro.cfg import CFG
from repro.dataflow import Liveness
from repro.ir import Local, MethodBuilder


def _cfg(fn):
    b = MethodBuilder("com.t.C", "m")
    fn(b)
    return CFG(b.build())


class TestLiveness:
    def test_used_local_is_live_before_use(self):
        cfg = _cfg(lambda b: (b.assign("x", 1), b.assign("y", Local("x")), b.ret()))
        live = Liveness(cfg)
        assert "x" in live.live_before(1)

    def test_dead_after_last_use(self):
        cfg = _cfg(lambda b: (b.assign("x", 1), b.assign("y", Local("x")), b.ret()))
        live = Liveness(cfg)
        assert "x" not in live.live_after(1)

    def test_redefined_local_not_live_across_def(self):
        def fn(b):
            b.assign("x", 1)
            b.assign("x", 2)
            b.assign("y", Local("x"))
            b.ret()

        live = Liveness(_cfg(fn))
        assert "x" not in live.live_before(1)  # first def is dead

    def test_branch_keeps_local_live_on_either_path(self):
        def fn(b):
            b.assign("x", 1)
            b.assign("c", 0)
            with b.if_then("==", Local("c"), 0):
                b.assign("y", Local("x"))
            b.ret()

        live = Liveness(_cfg(fn))
        assert "x" in live.live_before(2)

    def test_loop_keeps_condition_live(self):
        def fn(b):
            b.assign("go", True)
            with b.while_loop("==", Local("go"), True):
                b.nop()
            b.ret()

        cfg = _cfg(fn)
        live = Liveness(cfg)
        # At the loop-body nop, `go` is live (the back edge re-tests it).
        from repro.ir import IfStmt

        branch = next(
            i for i, s in enumerate(cfg.method.statements) if isinstance(s, IfStmt)
        )
        assert "go" in live.live_before(branch + 1)

    def test_return_value_live(self):
        b = MethodBuilder("com.t.C", "m")
        b.assign("r", 5)
        b.ret(Local("r"))
        cfg = CFG(b.build())
        live = Liveness(cfg)
        assert "r" in live.live_before(1)
