"""Backward-slicing tests (the §4.5 dependence machinery)."""

from repro.cfg import CFG
from repro.dataflow import Slicer
from repro.ir import BinaryExpr, Const, IfStmt, Local, MethodBuilder


def _cfg(fn):
    b = MethodBuilder("com.t.C", "m")
    fn(b)
    return CFG(b.build())


def _find(cfg, predicate):
    return next(i for i, s in enumerate(cfg.method.statements) if predicate(s))


class TestBackwardSlice:
    def test_data_dependence_chain(self):
        def fn(b):
            b.assign("a", 1)
            b.assign("b", Local("a"))
            b.assign("c", Local("b"))
            b.ret()

        cfg = _cfg(fn)
        slicer = Slicer(cfg)
        slice_ = slicer.backward_slice(2)
        assert {0, 1, 2} <= slice_

    def test_unrelated_statements_excluded(self):
        def fn(b):
            b.assign("a", 1)
            b.assign("unrelated", 99)
            b.assign("c", Local("a"))
            b.ret()

        slicer = Slicer(_cfg(fn))
        assert 1 not in slicer.backward_slice(2)

    def test_control_dependence_included(self):
        def fn(b):
            b.assign("p", 0)
            with b.if_then("==", Local("p"), 0):
                b.assign("x", 1)
            b.ret()

        cfg = _cfg(fn)
        slicer = Slicer(cfg)
        x_def = _find(cfg, lambda s: any(d.name == "x" for d in s.defs()))
        branch = _find(cfg, lambda s: isinstance(s, IfStmt))
        slice_ = slicer.backward_slice(x_def)
        assert branch in slice_
        assert 0 in slice_  # the branch condition's data dependence

    def test_control_dependence_can_be_disabled(self):
        def fn(b):
            b.assign("p", 0)
            with b.if_then("==", Local("p"), 0):
                b.assign("x", 1)
            b.ret()

        cfg = _cfg(fn)
        slicer = Slicer(cfg)
        x_def = _find(cfg, lambda s: any(d.name == "x" for d in s.defs()))
        branch = _find(cfg, lambda s: isinstance(s, IfStmt))
        slice_ = slicer.backward_slice(x_def, include_control=False)
        assert branch not in slice_

    def test_fig6c_exit_condition_depends_on_catch(self):
        """The paper's Fig 6(c): the exit variable is assigned in the catch
        block, so the slice of the loop test must include the handler."""

        def fn(b):
            b.assign("retry", True)
            b.label("head")
            b.if_goto("==", Local("retry"), False, "out")
            region = b.begin_try()
            b.call(Local("client"), "send", ret="r", cls="com.lib.C")
            b.assign("retry", False)
            b.begin_catch(region, "java.io.IOException")
            b.call(Local("policy"), "shouldRetry", ret="sr", cls="com.lib.P")
            b.assign("retry", Local("sr"))
            b.end_try(region)
            b.goto("head")
            b.label("out")
            b.ret()

        cfg = _cfg(fn)
        slicer = Slicer(cfg)
        test_idx = _find(cfg, lambda s: isinstance(s, IfStmt))
        catch_assign = _find(
            cfg,
            lambda s: s.invoke() is not None and s.invoke().sig.name == "shouldRetry",
        )
        slice_ = slicer.backward_slice(test_idx)
        assert catch_assign in slice_

    def test_depends_on_helper(self):
        def fn(b):
            b.assign("a", 1)
            b.assign("b", Local("a"))
            b.ret()

        slicer = Slicer(_cfg(fn))
        assert slicer.depends_on(1, {0})
        assert not slicer.depends_on(1, {5})

    def test_loop_carried_dependence(self):
        def fn(b):
            b.assign("x", 0)
            with b.while_loop("<", Local("x"), 10):
                b.assign("x", BinaryExpr("+", Local("x"), Const(1)))
            b.assign("y", Local("x"))
            b.ret()

        cfg = _cfg(fn)
        slicer = Slicer(cfg)
        y_def = _find(cfg, lambda s: any(d.name == "y" for d in s.defs()))
        increment = _find(
            cfg,
            lambda s: any(d.name == "x" for d in s.defs())
            and isinstance(getattr(s, "value", None), BinaryExpr),
        )
        assert increment in slicer.backward_slice(y_def)
