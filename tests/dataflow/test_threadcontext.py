"""Thread-context analysis (`repro.dataflow.threadcontext`).

Two layers: hypothesis properties over the lattice (`join`/`transfer`
are monotone, so the SCC propagation terminates at the least fixpoint)
and unit tests of the propagation itself over corpus-shaped apps —
seeds, direct-edge flow, async dispatch, widening, and the telemetry.
"""

from hypothesis import given, strategies as st

from repro.callgraph.cha import (
    EDGE_ASYNC_TASK,
    EDGE_DIRECT,
    EDGE_LIB_CALLBACK,
    EDGE_RUNNABLE,
    CallGraph,
)
from repro.corpus.appbuilder import AppBuilder
from repro.corpus.lifecycle import build_lifecycle_corpus
from repro.dataflow.threadcontext import (
    BACKGROUND,
    EITHER,
    MAIN,
    UNKNOWN,
    ThreadContextAnalysis,
    join,
    transfer,
)
from repro.ir.values import Local
from repro.libmodels import default_registry
from repro.obs import use_metrics

CONTEXTS = st.sampled_from([UNKNOWN, MAIN, BACKGROUND, EITHER])
ASYNC_EDGE_KINDS = st.sampled_from(
    [EDGE_ASYNC_TASK, EDGE_RUNNABLE, EDGE_LIB_CALLBACK]
)
EDGE_KINDS = st.sampled_from(
    [EDGE_DIRECT, EDGE_ASYNC_TASK, EDGE_RUNNABLE, EDGE_LIB_CALLBACK]
)
CALLEE_NAMES = st.sampled_from(
    ["doInBackground", "onPostExecute", "run", "onResponse"]
)
MAIN_FLAGS = st.sampled_from([None, True, False])


def leq(a, b) -> bool:
    """The lattice order: a ⊑ b iff join(a, b) == b (subset here)."""
    return join(a, b) == b


class TestLatticeLaws:
    @given(a=CONTEXTS, b=CONTEXTS)
    def test_join_commutative(self, a, b):
        assert join(a, b) == join(b, a)

    @given(a=CONTEXTS, b=CONTEXTS, c=CONTEXTS)
    def test_join_associative(self, a, b, c):
        assert join(join(a, b), c) == join(a, join(b, c))

    @given(a=CONTEXTS)
    def test_join_idempotent_with_bottom_and_top(self, a):
        assert join(a, a) == a
        assert join(a, UNKNOWN) == a
        assert join(a, EITHER) == EITHER

    @given(
        a=CONTEXTS,
        b=CONTEXTS,
        kind=EDGE_KINDS,
        callee=CALLEE_NAMES,
        dispatch_main=st.booleans(),
        callbacks_on_main=MAIN_FLAGS,
    )
    def test_transfer_monotone(
        self, a, b, kind, callee, dispatch_main, callbacks_on_main
    ):
        """a ⊑ b ⇒ transfer(a) ⊑ transfer(b), for every edge shape —
        the property that makes the fixpoint well-defined."""
        lower, upper = a & b, join(a, b)

        def step(ctx):
            return transfer(
                kind,
                ctx,
                callee_name=callee,
                dispatch_main=dispatch_main,
                callbacks_on_main=callbacks_on_main,
            )

        assert leq(step(lower), step(upper))

    @given(a=CONTEXTS)
    def test_direct_transfer_is_identity(self, a):
        assert transfer(EDGE_DIRECT, a) == a

    @given(
        a=CONTEXTS,
        b=CONTEXTS,
        kind=ASYNC_EDGE_KINDS,
        callee=CALLEE_NAMES,
        dispatch_main=st.booleans(),
        callbacks_on_main=MAIN_FLAGS,
    )
    def test_async_transfers_ignore_caller_context(
        self, a, b, kind, callee, dispatch_main, callbacks_on_main
    ):
        """Non-direct edges transfer constants — the fact that makes the
        one-step SCC widening exact."""

        def step(ctx):
            return transfer(
                kind,
                ctx,
                callee_name=callee,
                dispatch_main=dispatch_main,
                callbacks_on_main=callbacks_on_main,
            )

        assert step(a) == step(b)

    def test_transfer_constants(self):
        assert transfer(EDGE_ASYNC_TASK, MAIN, callee_name="doInBackground") == BACKGROUND
        assert transfer(EDGE_ASYNC_TASK, MAIN, callee_name="onPostExecute") == MAIN
        assert transfer(EDGE_RUNNABLE, MAIN, dispatch_main=True) == MAIN
        assert transfer(EDGE_RUNNABLE, MAIN, dispatch_main=False) == BACKGROUND
        assert transfer(EDGE_LIB_CALLBACK, MAIN, callbacks_on_main=None) == EITHER
        assert transfer(EDGE_LIB_CALLBACK, MAIN, callbacks_on_main=False) == BACKGROUND


def analyse(apk) -> ThreadContextAnalysis:
    registry = default_registry()
    return ThreadContextAnalysis(CallGraph(apk, registry), registry)


def corpus_app(package: str):
    for apk, _truth in build_lifecycle_corpus():
        if apk.package == package:
            return apk
    raise AssertionError(f"no lifecycle-corpus app {package}")


class TestPropagation:
    def test_ui_callback_runs_on_main(self):
        analysis = analyse(corpus_app("org.lifecycle.uidirect"))
        key = ("org.lifecycle.uidirect.MainActivity", "onClick", 1)
        assert analysis.context_of(key) == MAIN
        assert analysis.describe(key) == "main"
        assert analysis.may_run_on_main(key)
        assert not analysis.may_run_in_background(key)

    def test_main_context_flows_over_direct_edges(self):
        analysis = analyse(corpus_app("org.lifecycle.uihelper"))
        helper = ("org.lifecycle.uihelper.SplashActivity", "fetchData", 0)
        assert analysis.context_of(helper) == MAIN

    def test_do_in_background_runs_off_main(self):
        analysis = analyse(corpus_app("org.lifecycle.uitask"))
        work = ("org.lifecycle.uitask.FetchTask", "doInBackground", 1)
        click = ("org.lifecycle.uitask.MainActivity", "onClick", 1)
        assert analysis.context_of(work) == BACKGROUND
        assert analysis.context_of(click) == MAIN

    def test_service_entry_runs_in_background(self):
        analysis = analyse(corpus_app("org.lifecycle.offlineguarded"))
        entry = ("org.lifecycle.offlineguarded.SyncService", "onStartCommand", 2)
        assert analysis.context_of(entry) == BACKGROUND
        assert analysis.describe(entry) == "background"

    def test_unreachable_method_stays_bottom(self):
        app = AppBuilder("org.tc.orphan")
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        body.ret()
        activity.add(body)
        dead = activity.method("neverCalled")
        dead.ret()
        activity.add(dead)
        analysis = analyse(app.build())
        key = ("org.tc.orphan.MainActivity", "neverCalled", 0)
        assert analysis.context_of(key) == UNKNOWN
        assert analysis.describe(key) == "unknown"
        assert not analysis.may_run_on_main(key)

    def recursive_app(self):
        app = AppBuilder("org.tc.recursive")
        activity = app.activity("MainActivity")
        cls = f"{app.package}.MainActivity"
        helper = activity.method("poll")
        helper.call(Local("this"), "poll", cls=cls)
        helper.ret()
        activity.add(helper)
        body = activity.method("onClick", params=[("android.view.View", "v")])
        body.call(Local("this"), "poll", cls=cls)
        body.ret()
        activity.add(body)
        return app.build()

    def test_self_recursion_widens_and_stays_sound(self):
        with use_metrics() as registry:
            analysis = analyse(self.recursive_app())
            assert registry.counter_value("threadcontext.widenings") >= 1
        key = ("org.tc.recursive.MainActivity", "poll", 0)
        # Widening may only go up from the true context — and here the
        # constant transfers make it exact: still just the main thread.
        assert analysis.context_of(key) == MAIN

    def test_metrics_account_every_solved_method(self):
        with use_metrics() as registry:
            analysis = analyse(corpus_app("org.lifecycle.uihelper"))
            assert registry.counter_value("threadcontext.methods") == len(
                analysis.contexts
            )
            assert registry.counter_value("threadcontext.edges_propagated") > 0
