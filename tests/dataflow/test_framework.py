"""Generic dataflow-solver tests (including the must-analysis mode)."""

import pytest

from repro.cfg import CFG
from repro.dataflow.framework import SetAnalysis
from repro.ir import Local, MethodBuilder


def _diamond_cfg():
    b = MethodBuilder("com.f.C", "m")
    b.assign("p", 0)
    with b.if_else("==", Local("p"), 0) as orelse:
        b.assign("a", 1)
        orelse.start()
        b.assign("b", 2)
    b.assign("join", 3)
    b.ret()
    return CFG(b.build())


class DefinedLocals(SetAnalysis):
    """Must-analysis: locals defined on *every* path."""

    direction = "forward"
    must = True

    def __init__(self, cfg):
        super().__init__(cfg)
        self._universe = frozenset(
            d.name for s in cfg.method.statements for d in s.defs()
        )
        self.solve()

    def universe(self):
        return self._universe

    def gen(self, node):
        stmt = self.cfg.stmt(node)
        if stmt is None:
            return frozenset()
        return frozenset(d.name for d in stmt.defs())


class MaybeDefined(SetAnalysis):
    """May-analysis: locals defined on *some* path."""

    direction = "forward"
    must = False

    def __init__(self, cfg):
        super().__init__(cfg)
        self.solve()

    def gen(self, node):
        stmt = self.cfg.stmt(node)
        if stmt is None:
            return frozenset()
        return frozenset(d.name for d in stmt.defs())


class TestMustVsMay:
    def test_must_intersects_branches(self):
        cfg = _diamond_cfg()
        analysis = DefinedLocals(cfg)
        at_exit = analysis.state_after(cfg.exit)
        # p and join are defined on every path; a and b only on one each.
        assert "p" in at_exit and "join" in at_exit
        assert "a" not in at_exit and "b" not in at_exit

    def test_may_unions_branches(self):
        cfg = _diamond_cfg()
        analysis = MaybeDefined(cfg)
        at_exit = analysis.state_after(cfg.exit)
        assert {"p", "a", "b", "join"} <= at_exit

    def test_must_analysis_requires_universe(self):
        class Broken(SetAnalysis):
            must = True

        cfg = _diamond_cfg()
        with pytest.raises(NotImplementedError):
            Broken(cfg).solve()

    def test_solver_reaches_fixed_point(self):
        """Solving twice changes nothing."""
        cfg = _diamond_cfg()
        analysis = MaybeDefined(cfg)
        before = dict(analysis.out_states)
        analysis.solve()
        assert analysis.out_states == before
