"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.app import APK, Manifest
from repro.corpus.appbuilder import AppBuilder
from repro.corpus.snippets import RequestSpec, inject_request
from repro.core import NChecker
from repro.ir import ClassBuilder, MethodBuilder


@pytest.fixture(autouse=True)
def _hermetic_disk_cache(tmp_path, monkeypatch):
    """CLI commands default the persistent artifact cache to
    ``$NCHECKER_CACHE_DIR``; point it at a per-test directory so tests
    are cold, deterministic, and never touch the user's real cache."""
    monkeypatch.setenv("NCHECKER_CACHE_DIR", str(tmp_path / "artifact-cache"))


def make_method(build) -> "repro.ir.IRMethod":
    """Run ``build(b)`` against a fresh MethodBuilder and return the method."""
    b = MethodBuilder("com.test.C", "m")
    build(b)
    return b.build()


def single_request_app(spec: RequestSpec, package: str = "com.test.app",
                       in_service: bool = False):
    """An app with exactly one injected request; returns (apk, record)."""
    app = AppBuilder(package)
    if in_service:
        service = app.service("SyncService")
        body = service.method(
            "onStartCommand",
            params=[("android.content.Intent", "intent"), ("int", "flags")],
            return_type="int",
        )
        record = inject_request(app, body, spec, user_initiated=False, background=True)
        body.ret(0)
        service.add(body)
    else:
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        record = inject_request(app, body, spec, user_initiated=True)
        body.ret()
        activity.add(body)
    return app.build(), record


@pytest.fixture(scope="session")
def checker() -> NChecker:
    return NChecker()


@pytest.fixture(scope="session")
def small_corpus():
    """A 30-app corpus with ground truth (session-cached: scans are fast
    but generation still adds up across tests)."""
    from repro.corpus.generator import CorpusGenerator
    from repro.corpus.profiles import PAPER_PROFILE

    return CorpusGenerator(PAPER_PROFILE.scaled(30)).generate()


@pytest.fixture(scope="session")
def opensource_corpus():
    from repro.corpus.opensource import build_opensource_corpus

    return build_opensource_corpus()
