"""Pass-pipeline tests: artifact store, scheduling, batch, incremental."""
