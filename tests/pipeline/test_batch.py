"""Batch scanner determinism: --jobs N output is byte-identical to
--jobs 1, findings stay input-order stable, errors match serial scans."""

import json

import pytest

from repro.cli import main
from repro.core import NCheckerOptions
from repro.pipeline.batch import BatchScanner, scan_corpus


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("apps")
    assert main(["corpus", str(out), "--apps", "4", "--no-ledger"]) == 0
    paths = sorted(out.glob("*.apkt"))
    assert len(paths) == 4
    return paths


class TestPayloadParity:
    def test_parallel_payloads_equal_serial(self, corpus_dir):
        paths = [str(p) for p in corpus_dir]
        serial = BatchScanner(jobs=1).scan_paths(paths, want_json=True)
        parallel = BatchScanner(jobs=4).scan_paths(paths, want_json=True)
        assert serial == parallel

    def test_payload_order_follows_input_order(self, corpus_dir):
        paths = [str(p) for p in reversed(corpus_dir)]
        payloads = BatchScanner(jobs=4).scan_paths(paths)
        assert [p.path for p in payloads] == paths

    def test_error_payload_matches_serial_message(self, tmp_path):
        missing = str(tmp_path / "gone.apkt")
        (payload,) = BatchScanner(jobs=1).scan_paths([missing])
        assert not payload.ok
        assert payload.error == f"error: no such file: {missing}"

    def test_options_reach_the_workers(self, corpus_dir):
        conn_only = NCheckerOptions(enabled_checks=frozenset({"connectivity"}))
        payloads = BatchScanner(options=conn_only, jobs=2).scan_paths(
            [str(p) for p in corpus_dir], want_json=True
        )
        kinds = {
            f["kind"] for p in payloads for f in p.json_dict["findings"]
        }
        assert kinds <= {"missed-connectivity-check"}


class TestCliByteIdentity:
    def run_cli(self, args, capsys):
        code = main(args)
        captured = capsys.readouterr()
        return code, captured.out

    def test_json_output_identical_across_jobs(self, corpus_dir, capsys):
        paths = [str(p) for p in corpus_dir]
        code1, out1 = self.run_cli(["scan", "--json", *paths], capsys)
        code4, out4 = self.run_cli(["scan", "--json", "--jobs", "4", *paths], capsys)
        assert code1 == code4
        assert out1 == out4
        json.loads(out1)  # stdout stays pure JSON

    def test_report_output_identical_across_jobs(self, corpus_dir, capsys):
        paths = [str(p) for p in corpus_dir]
        _, out1 = self.run_cli(["scan", *paths], capsys)
        _, out3 = self.run_cli(["scan", "--jobs", "3", *paths], capsys)
        assert out1 == out3

    def test_sarif_file_identical_across_jobs(self, corpus_dir, tmp_path, capsys):
        paths = [str(p) for p in corpus_dir]
        s1, s4 = tmp_path / "a.sarif", tmp_path / "b.sarif"
        self.run_cli(["scan", "--sarif", str(s1), *paths], capsys)
        self.run_cli(["scan", "--sarif", str(s4), "--jobs", "4", *paths], capsys)
        assert s1.read_bytes() == s4.read_bytes()
        log = json.loads(s1.read_text())
        assert log["runs"][0]["results"]

    def test_missing_file_exits_2_in_parallel_mode(self, corpus_dir, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["scan", "--jobs", "2", str(corpus_dir[0]), "/no/such.apkt"])
        assert exc.value.code == 2
        assert "error: no such file" in capsys.readouterr().err


class TestCorpusFanout:
    def test_parallel_corpus_scan_matches_serial(self):
        from repro.corpus.profiles import PAPER_PROFILE

        serial = scan_corpus(PAPER_PROFILE, 6, jobs=1)
        parallel = scan_corpus(PAPER_PROFILE, 6, jobs=2)
        assert [r.package for r in serial] == [r.package for r in parallel]
        assert [
            [(f.kind, f.method_key, f.stmt_index) for f in r.findings]
            for r in serial
        ] == [
            [(f.kind, f.method_key, f.stmt_index) for f in r.findings]
            for r in parallel
        ]
