"""Persistent cross-run artifact cache over the default local backend
(`repro.pipeline.cachestore`, via the `repro.pipeline.diskcache` facade).

The contract under test: a warm re-scan of an unchanged app performs
zero app-scoped artifact builds, scan output is byte-identical with the
cache cold, warm, or disabled (including ``--jobs``), corrupted entries
degrade to rebuilds, and a patched app rebuilds only the invalidation
cone.  The backend seam itself (protocol conformance, memory/tiered
backends, ``--cache-backend``) is covered in ``test_cachestore.py``.
"""

import json
import struct

import pytest

from repro.app import save_apk
from repro.app.loader import dumps_apk, loads_apk
from repro.callgraph.entrypoints import method_key
from repro.cli import main
from repro.core import NChecker
from repro.core.checker import DEFAULT_CHECKS, EXTENDED_CHECKS, NCheckerOptions
from repro.core.patcher import Patcher
from repro.corpus.snippets import Connectivity, Notification, RequestSpec
from repro.ir.statements import NopStmt
from repro.pipeline.cachestore import fingerprints
from repro.pipeline.diskcache import (
    CACHE_FORMAT_VERSION,
    DiskCache,
    app_content_fingerprint,
    format_size,
    parse_size,
    registry_fingerprint,
)

from tests.conftest import single_request_app

#: The five app-scoped artifact kinds the cache persists.
APP_KINDS = ("callgraph", "summaries", "requests", "retry-loops", "icc-model")


def fresh_apk():
    apk, _ = single_request_app(RequestSpec())
    return apk


def finding_sigs(result) -> list[tuple]:
    """A stable projection of the findings, comparable across distinct
    APK instances (Finding embeds live IRMethod objects via the request,
    which compare by identity)."""
    return [
        (f.kind, f.method_key, f.stmt_index, f.message)
        for f in result.findings
    ]


def app_builds(session) -> dict[str, int]:
    """The session's app-scoped build counts (method-scoped kinds are
    rebuilt per process by design and excluded here)."""
    return {
        kind: session.store.counters.builds_of(kind) for kind in APP_KINDS
    }


def scan_once(cache_dir, apk=None):
    """One fresh-process-equivalent scan: new checker, new session."""
    options = NCheckerOptions(cache_dir=str(cache_dir) if cache_dir else None)
    checker = NChecker(options=options)
    session = checker.open_session(apk if apk is not None else fresh_apk())
    result = session.scan()
    return result, session


class TestFingerprints:
    def test_stable_across_serialization(self):
        apk = fresh_apk()
        clone = loads_apk(dumps_apk(apk))
        assert app_content_fingerprint(apk) == app_content_fingerprint(clone)

    def test_statement_change_changes_fingerprint(self):
        apk = fresh_apk()
        before = app_content_fingerprint(apk)
        method = next(iter(apk.methods()))
        method.statements.insert(0, NopStmt())
        assert app_content_fingerprint(apk) != before

    def test_registry_fingerprint_folds_model_version(self, monkeypatch):
        from repro.libmodels import default_registry

        registry = default_registry()
        before = registry_fingerprint(registry)
        monkeypatch.setattr(fingerprints, "LIBMODELS_VERSION", 9999)
        assert registry_fingerprint(registry) != before


class TestSizes:
    @pytest.mark.parametrize(
        "text,expected",
        [("4096", 4096), ("1K", 1024), ("1.5M", 1536 * 1024),
         ("2G", 2 << 30), (" 512m ", 512 << 20), ("0", 0),
         ("1.5G", 3 << 29), ("512m", 512 << 20), ("0.5k", 512),
         ("2.5t", int(2.5 * (1 << 40))), ("100B", 100), ("3.25", 3)],
    )
    def test_parse_size(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("bad", ["", "garbage", "-1", "1X5", "-2G",
                                     "G", "1.2.3M"])
    def test_parse_size_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)

    def test_format_size(self):
        assert format_size(512) == "512B"
        assert format_size(2048) == "2.0K"
        assert format_size(3 << 20) == "3.0M"

    @pytest.mark.parametrize(
        "n", [0, 1, 512, 1024, 1536, 2048, 1 << 20, 3 << 29, 5 << 30]
    )
    def test_format_size_round_trips_exactly(self, n):
        """Any byte count whose rendering carries no rounding loss comes
        back exactly through parse_size."""
        assert parse_size(format_size(n)) == n

    @pytest.mark.parametrize("n", [999, 1025, 1536 * 1024 + 7, (1 << 30) + 123])
    def test_format_size_round_trips_within_rendered_precision(self, n):
        """The general guarantee: rendering keeps one decimal, so the
        round-trip lands within half a rendered decimal of the input."""
        text = format_size(n)
        unit = {"B": 1, "K": 1 << 10, "M": 1 << 20, "G": 1 << 30}[text[-1]]
        assert abs(parse_size(text) - n) <= unit * 0.05 + 1


class TestWarmScan:
    def test_cold_builds_then_warm_adopts(self, tmp_path):
        cache_dir = tmp_path / "cache"
        r1, s1 = scan_once(cache_dir)
        cold = app_builds(s1)
        assert cold["callgraph"] == 1 and cold["requests"] == 1

        r2, s2 = scan_once(cache_dir)
        assert app_builds(s2) == dict.fromkeys(APP_KINDS, 0)
        for kind in ("callgraph", "summaries", "requests", "retry-loops"):
            assert s2.store.metrics.counter_value(f"cache.local.{kind}.hits") == 1
        assert finding_sigs(r2) == finding_sigs(r1)
        assert [req.location() for req in r2.requests] == [
            req.location() for req in r1.requests
        ]

    def test_disabled_cache_writes_nothing(self, tmp_path):
        cache_dir = tmp_path / "cache"
        _r, _s = scan_once(None)
        assert not cache_dir.exists()
        assert DiskCache(cache_dir)._entry_files() == []

    def test_repeat_scan_rewrites_nothing(self, tmp_path):
        cache_dir = tmp_path / "cache"
        _r, session = scan_once(cache_dir)
        entries = {p: p.stat().st_mtime_ns for p in DiskCache(cache_dir)._entry_files()}
        assert entries
        session.scan()  # same session, same fingerprint: already synced
        after = {p: p.stat().st_mtime_ns for p in DiskCache(cache_dir)._entry_files()}
        assert after == entries

    def test_format_version_bump_is_cold(self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "cache"
        scan_once(cache_dir)
        monkeypatch.setattr(
            fingerprints, "CACHE_FORMAT_VERSION", CACHE_FORMAT_VERSION + 1
        )
        _r, session = scan_once(cache_dir)
        assert app_builds(session)["callgraph"] == 1  # old entries unusable

    def test_library_model_bump_is_cold(self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "cache"
        scan_once(cache_dir)
        monkeypatch.setattr(fingerprints, "LIBMODELS_VERSION", 9999)
        _r, session = scan_once(cache_dir)
        assert app_builds(session)["callgraph"] == 1


class TestCorruption:
    def entry(self, cache_dir, kind) -> "list":
        return [p for p in DiskCache(cache_dir)._entry_files()
                if p.name.startswith(f"{kind}-")]

    def corrupt_and_rescan(self, tmp_path, mutate, kind="summaries"):
        cache_dir = tmp_path / "cache"
        r1, _ = scan_once(cache_dir)
        (path,) = self.entry(cache_dir, kind)
        mutate(path)
        r2, session = scan_once(cache_dir)
        assert finding_sigs(r2) == finding_sigs(r1)
        return session, path

    def test_truncated_entry_is_a_miss_and_rebuilds(self, tmp_path):
        def truncate(path):
            path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])

        session, path = self.corrupt_and_rescan(tmp_path, truncate)
        m = session.store.metrics
        # One miss for the unreadable entry, one for the write-back of
        # the rebuilt artifact (every write counts as a miss).
        assert m.counter_value("cache.local.summaries.misses") == 2
        assert m.counter_value("cache.local.errors") == 1
        assert app_builds(session)["summaries"] == 1
        assert app_builds(session)["callgraph"] == 0  # others still warm
        # The rebuilt artifact overwrote the bad entry: next scan is clean.
        _r3, s3 = scan_once(tmp_path / "cache")
        assert app_builds(s3) == dict.fromkeys(APP_KINDS, 0)
        assert s3.store.metrics.counter_value("cache.local.errors") == 0

    def test_truncated_below_header_is_a_miss(self, tmp_path):
        session, _ = self.corrupt_and_rescan(
            tmp_path, lambda p: p.write_bytes(b"NC")
        )
        assert session.store.metrics.counter_value("cache.local.errors") == 1

    def test_bad_magic_is_a_miss(self, tmp_path):
        def stamp(path):
            data = bytearray(path.read_bytes())
            data[:4] = b"XXXX"
            path.write_bytes(bytes(data))

        session, _ = self.corrupt_and_rescan(tmp_path, stamp)
        assert session.store.metrics.counter_value("cache.local.errors") == 1

    def test_header_version_mismatch_is_a_miss(self, tmp_path):
        def bump_version(path):
            data = bytearray(path.read_bytes())
            struct.pack_into(">I", data, 4, CACHE_FORMAT_VERSION + 7)
            path.write_bytes(bytes(data))

        session, _ = self.corrupt_and_rescan(tmp_path, bump_version)
        assert session.store.metrics.counter_value("cache.local.errors") == 1

    def test_flipped_payload_byte_is_a_miss(self, tmp_path):
        def flip(path):
            data = bytearray(path.read_bytes())
            data[-1] ^= 0xFF
            path.write_bytes(bytes(data))

        session, _ = self.corrupt_and_rescan(tmp_path, flip)
        assert session.store.metrics.counter_value("cache.local.errors") == 1


class TestPatchWarmStart:
    def test_patch_rebuilds_only_the_dirty_cone(self, tmp_path):
        cache_dir = tmp_path / "cache"
        apk = fresh_apk()
        scan_once(cache_dir, apk)  # populate the cache

        _r, session = scan_once(cache_dir, loads_apk(dumps_apk(apk)))
        assert app_builds(session) == dict.fromkeys(APP_KINDS, 0)

        method = next(iter(session.apk.methods()))
        method.statements.insert(0, NopStmt())
        method.validate()
        session.invalidate_methods({method_key(method)})
        session.scan()
        builds = app_builds(session)
        # Call graph and summary engine stay warm in the store; only the
        # whole-app extraction artifacts rebuild (statement indices shift).
        assert builds["callgraph"] == 0
        assert builds["summaries"] == 0
        assert builds["requests"] == 1
        assert builds["retry-loops"] == 1

    def test_patch_until_clean_matches_without_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        apk = fresh_apk()
        scan_once(cache_dir, apk)  # warm the cache first

        cached = NChecker(options=NCheckerOptions(cache_dir=str(cache_dir)))
        plain = NChecker()
        fixed_cached, applied_cached = Patcher().patch_until_clean(
            loads_apk(dumps_apk(apk)), cached
        )
        fixed_plain, applied_plain = Patcher().patch_until_clean(
            loads_apk(dumps_apk(apk)), plain
        )
        assert dumps_apk(fixed_cached) == dumps_apk(fixed_plain)
        assert len(applied_cached) == len(applied_plain)


class TestManagement:
    def populated(self, tmp_path):
        cache_dir = tmp_path / "cache"
        scan_once(cache_dir)
        return DiskCache(cache_dir)

    def test_stats(self, tmp_path):
        cache = self.populated(tmp_path)
        stats = cache.stats()
        assert stats.apps == 1
        assert stats.entries == len(cache._entry_files()) > 0
        assert stats.total_bytes == sum(
            p.stat().st_size for p in cache._entry_files()
        )
        assert set(stats.by_kind) <= set(APP_KINDS)
        assert str(stats.entries) in stats.render()

    def test_gc_drops_oldest_until_under_budget(self, tmp_path):
        cache = self.populated(tmp_path)
        total = cache.stats().total_bytes
        keep = max(p.stat().st_size for p in cache._entry_files())
        removed, freed = cache.gc(keep, grace_seconds=0)
        assert removed > 0 and freed > 0
        assert cache.stats().total_bytes <= keep
        assert freed == total - cache.stats().total_bytes

    def test_gc_noop_when_under_budget(self, tmp_path):
        cache = self.populated(tmp_path)
        assert cache.gc(1 << 30, grace_seconds=0) == (0, 0)

    def test_gc_spares_entries_inside_the_grace_window(self, tmp_path):
        """A freshly written entry survives gc regardless of the budget:
        a collection racing a concurrent scanner must not drop an
        in-flight entry (default 60s mtime grace)."""
        import os
        import time

        cache = self.populated(tmp_path)
        files = cache._entry_files()
        assert files
        # Age every entry but one out of the grace window.
        old = time.time() - 3600
        fresh = files[0]
        for path in files[1:]:
            os.utime(path, (old, old))
        removed, _freed = cache.gc(0)  # default grace window
        assert removed == len(files) - 1
        assert cache._entry_files() == [fresh]
        # Once it ages out, the same budget takes it too.
        os.utime(fresh, (old, old))
        assert cache.gc(0)[0] == 1
        assert cache._entry_files() == []

    def test_clear_empties_everything(self, tmp_path):
        cache = self.populated(tmp_path)
        removed = cache.clear()
        assert removed > 0
        assert cache._entry_files() == []
        assert cache.stats().entries == 0

    def test_stats_on_missing_root(self, tmp_path):
        cache = DiskCache(tmp_path / "never-created")
        assert cache.stats().entries == 0
        assert cache.gc(0) == (0, 0)
        assert cache.clear() == 0


class TestCLIByteIdentity:
    """Scan output must be byte-identical with the cache disabled, cold,
    and warm — the driver-facing acceptance criterion."""

    @pytest.fixture()
    def app_files(self, tmp_path):
        buggy, _ = single_request_app(RequestSpec())
        clean, _ = single_request_app(
            RequestSpec(
                connectivity=Connectivity.GUARDED,
                with_timeout=True,
                with_retry=True,
                retry_value=2,
                with_notification=Notification.TOAST,
                with_response_check=True,
            ),
            package="com.test.clean",
        )
        paths = [tmp_path / "buggy.apkt", tmp_path / "clean.apkt"]
        save_apk(buggy, paths[0])
        save_apk(clean, paths[1])
        return [str(p) for p in paths]

    def run(self, argv, capsys):
        code = main(argv)
        out = capsys.readouterr().out
        return code, out

    def test_report_mode(self, app_files, capsys):
        disabled = self.run(["scan", "--no-disk-cache", *app_files], capsys)
        cold = self.run(["scan", *app_files], capsys)
        warm = self.run(["scan", *app_files], capsys)
        warm_jobs = self.run(["scan", "--jobs", "2", *app_files], capsys)
        assert disabled == cold == warm == warm_jobs

    def test_json_mode(self, app_files, capsys):
        disabled = self.run(["scan", "--json", "--no-disk-cache", *app_files], capsys)
        cold = self.run(["scan", "--json", *app_files], capsys)
        warm = self.run(["scan", "--json", *app_files], capsys)
        assert disabled == cold == warm

    def test_sarif_output(self, app_files, tmp_path, capsys):
        logs = []
        for name, extra in (
            ("disabled", ["--no-disk-cache"]), ("cold", []), ("warm", []),
            ("jobs", ["--jobs", "2"]),
        ):
            path = tmp_path / f"{name}.sarif"
            main(["scan", "--sarif", str(path), *extra, *app_files])
            capsys.readouterr()
            logs.append(path.read_bytes())
        assert len(set(logs)) == 1

    def test_warm_run_has_zero_app_builds(self, app_files, tmp_path, capsys):
        cold_metrics = tmp_path / "cold.json"
        warm_metrics = tmp_path / "warm.json"
        main(["scan", "--metrics", str(cold_metrics), *app_files])
        main(["scan", "--metrics", str(warm_metrics), *app_files])
        capsys.readouterr()
        cold = json.loads(cold_metrics.read_text())["counters"]
        warm = json.loads(warm_metrics.read_text())["counters"]
        assert cold.get("artifact.callgraph.builds", 0) == 2  # two apps
        for kind in APP_KINDS:
            assert warm.get(f"artifact.{kind}.builds", 0) == 0
        for kind in ("callgraph", "summaries", "requests", "retry-loops"):
            assert warm.get(f"cache.local.{kind}.hits", 0) == 2

    def test_warm_jobs_run_has_zero_app_builds(self, app_files, tmp_path, capsys):
        warm_metrics = tmp_path / "warm-jobs.json"
        main(["scan", *app_files])  # cold, populate
        main(["scan", "--jobs", "2", "--metrics", str(warm_metrics), *app_files])
        capsys.readouterr()
        warm = json.loads(warm_metrics.read_text())["counters"]
        for kind in APP_KINDS:
            assert warm.get(f"artifact.{kind}.builds", 0) == 0

    def test_no_disk_cache_flag_leaves_cache_untouched(
        self, app_files, tmp_path, capsys, monkeypatch
    ):
        cache_dir = tmp_path / "explicit-cache"
        main(["scan", "--no-disk-cache", "--cache-dir", str(cache_dir), *app_files])
        capsys.readouterr()
        assert not cache_dir.exists()


class TestExtendedChecksCache:
    """The threadcontext artifact (built only for the extended checks)
    rides the same persistent cache: one cold build per app, zero on any
    warm re-scan, and byte-identical `--extended-checks` output."""

    def scan_extended(self, cache_dir, apk=None):
        options = NCheckerOptions(
            cache_dir=str(cache_dir),
            enabled_checks=DEFAULT_CHECKS | EXTENDED_CHECKS,
        )
        checker = NChecker(options=options)
        session = checker.open_session(apk if apk is not None else fresh_apk())
        return session.scan(), session

    def test_warm_rescan_builds_zero_threadcontexts(self, tmp_path):
        cache_dir = tmp_path / "cache"
        r1, s1 = self.scan_extended(cache_dir)
        assert s1.store.counters.builds_of("threadcontext") == 1

        r2, s2 = self.scan_extended(cache_dir)
        assert s2.store.counters.builds_of("threadcontext") == 0
        assert (
            s2.store.metrics.counter_value("cache.local.threadcontext.hits") == 1
        )
        assert app_builds(s2) == dict.fromkeys(APP_KINDS, 0)
        assert finding_sigs(r2) == finding_sigs(r1)

    def test_default_scan_never_persists_threadcontext(self, tmp_path):
        cache_dir = tmp_path / "cache"
        scan_once(cache_dir)
        entries = DiskCache(cache_dir)._entry_files()
        assert entries
        assert not [p for p in entries if p.name.startswith("threadcontext-")]

    @pytest.fixture()
    def lifecycle_files(self, tmp_path):
        from repro.corpus.lifecycle import build_lifecycle_corpus

        paths = []
        for apk, _truth in build_lifecycle_corpus()[:4]:
            path = tmp_path / f"{apk.package}.apkt"
            save_apk(apk, path)
            paths.append(str(path))
        return paths

    def test_cli_byte_identity(self, lifecycle_files, capsys):
        def run(extra):
            code = main(["scan", "--extended-checks", *extra, *lifecycle_files])
            return code, capsys.readouterr().out

        disabled = run(["--no-disk-cache"])
        cold = run([])
        warm = run([])
        warm_jobs = run(["--jobs", "2"])
        assert disabled == cold == warm == warm_jobs
        assert "main (UI) thread" in disabled[1]

    def test_cli_warm_run_has_zero_threadcontext_builds(
        self, lifecycle_files, tmp_path, capsys
    ):
        warm_metrics = tmp_path / "warm.json"
        main(["scan", "--extended-checks", *lifecycle_files])
        main(
            [
                "scan",
                "--extended-checks",
                "--metrics",
                str(warm_metrics),
                *lifecycle_files,
            ]
        )
        capsys.readouterr()
        warm = json.loads(warm_metrics.read_text())["counters"]
        assert warm.get("artifact.threadcontext.builds", 0) == 0
        assert warm.get("cache.local.threadcontext.hits", 0) == len(
            lifecycle_files
        )


class TestCacheSubcommand:
    def run(self, argv, capsys):
        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def populate(self, tmp_path, capsys):
        apk, _ = single_request_app(RequestSpec())
        path = tmp_path / "app.apkt"
        save_apk(apk, path)
        main(["scan", str(path)])
        capsys.readouterr()

    def test_stats_and_clear(self, tmp_path, capsys):
        self.populate(tmp_path, capsys)
        code, out, _ = self.run(["cache", "stats"], capsys)
        assert code == 0 and "entries for 1 app(s)" in out
        # Per-kind breakdown: every persisted kind gets its own row with
        # an entry count and a size, so cache growth is attributable.
        for kind in ("callgraph", "summaries", "requests", "retry-loops"):
            assert any(
                line.split()[0] == kind and len(line.split()) == 3
                for line in out.splitlines()
            ), f"no per-kind row for {kind}:\n{out}"
        code, out, _ = self.run(["cache", "clear"], capsys)
        assert code == 0 and out.startswith("removed ")
        code, out, _ = self.run(["cache", "stats"], capsys)
        assert "0 entries" in out

    def test_gc_spares_fresh_entries_by_default(self, tmp_path, capsys):
        self.populate(tmp_path, capsys)
        code, out, _ = self.run(["cache", "gc", "--max-size", "0"], capsys)
        assert code == 0 and out.startswith("removed 0 ")
        _code, out, _ = self.run(["cache", "stats"], capsys)
        assert "0 entries" not in out  # just-written entries survive

    def test_gc_min_age_zero_collects_everything(self, tmp_path, capsys):
        self.populate(tmp_path, capsys)
        code, out, _ = self.run(
            ["cache", "gc", "--max-size", "0", "--min-age", "0"], capsys
        )
        assert code == 0 and "freed" in out
        _code, out, _ = self.run(["cache", "stats"], capsys)
        assert "0 entries" in out

    def test_gc_rejects_bad_size(self, capsys):
        code, _out, err = self.run(["cache", "gc", "--max-size", "lots"], capsys)
        assert code == 2 and "unparsable size" in err

    def test_explicit_cache_dir_flag(self, tmp_path, capsys):
        other = tmp_path / "elsewhere"
        code, out, _ = self.run(["cache", "stats", "--cache-dir", str(other)], capsys)
        assert code == 0 and str(other) in out
