"""Incremental re-scan: session reuse, dirty-region invalidation, and
patcher parity with the full-rescan loop."""

from repro.app.loader import dumps_apk, loads_apk
from repro.core import NChecker
from repro.core.patcher import Patcher
from repro.corpus.generator import CorpusGenerator
from repro.corpus.profiles import PAPER_PROFILE
from repro.corpus.snippets import RequestSpec

from tests.conftest import single_request_app


class TestSessionCache:
    def test_repeat_scan_hits_the_session(self):
        apk, _ = single_request_app(RequestSpec())
        checker = NChecker()
        checker.scan(apk)
        assert (checker.sessions.misses, checker.sessions.hits) == (1, 0)
        checker.scan(apk)
        assert (checker.sessions.misses, checker.sessions.hits) == (1, 1)

    def test_structural_change_misses(self):
        apk, _ = single_request_app(RequestSpec())
        checker = NChecker()
        checker.scan(apk)
        mutated = loads_apk(dumps_apk(apk))
        method = next(iter(mutated.methods()))
        from repro.ir.statements import NopStmt

        method.statements.insert(0, NopStmt())
        method.validate()
        checker.scan(mutated)
        assert checker.sessions.misses == 2

    def test_lru_bound(self):
        checker = NChecker()
        checker.sessions.max_entries = 2
        for i in range(4):
            apk, _ = single_request_app(RequestSpec(), package=f"com.lru.a{i}")
            checker.scan(apk)
        assert len(checker.sessions._sessions) == 2


class TestIncrementalPatching:
    def apps(self, n=8):
        return [apk for apk, _ in CorpusGenerator(PAPER_PROFILE.scaled(n)).iter_apps()]

    def test_incremental_matches_full_rescan(self):
        patcher = Patcher()
        for apk in self.apps():
            fixed_inc, applied_inc = patcher.patch_until_clean(apk, NChecker())
            fixed_full, applied_full = patcher.patch_until_clean(
                apk, NChecker(), incremental=False
            )
            assert dumps_apk(fixed_inc) == dumps_apk(fixed_full)
            assert len(applied_inc) == len(applied_full)

    def test_incremental_leaves_input_untouched(self):
        apk = self.apps(1)[0]
        before = dumps_apk(apk)
        Patcher().patch_until_clean(apk, NChecker())
        assert dumps_apk(apk) == before

    def test_patch_reports_touched_methods(self):
        apk, _ = single_request_app(RequestSpec(library="basichttp"))
        checker = NChecker()
        result = checker.scan(apk)
        patcher = Patcher()
        clone = loads_apk(dumps_apk(apk))
        outcome = patcher.patch_in_place(clone, checker.scan(clone))
        assert outcome.applied
        assert outcome.touched
        assert {f.method_key for f in result.findings} & outcome.touched

    def test_dirty_region_rebuild_is_partial(self):
        apk = self.apps(4)[3]
        checker = NChecker()
        session = checker.open_session(apk)
        result = session.scan()
        assert result.findings
        cfgs_after_first = session.store.counters.builds_of("cfg")
        total_methods = len(list(apk.methods()))
        outcome = Patcher().patch_in_place(apk, result)
        session.invalidate_methods(outcome.touched)
        session.scan()
        rebuilt = session.store.counters.builds_of("cfg") - cfgs_after_first
        # Only the dirty region rebuilds, not every method's CFG.
        assert 0 < rebuilt < total_methods
        assert session.store.counters.invalidated_methods == len(outcome.touched)
