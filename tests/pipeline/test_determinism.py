"""Output determinism across execution strategies.

The pipeline promises that *how* a scan is executed never changes *what*
it emits: process parallelism (``--jobs``), intra-app SCC parallelism
(``--intra-jobs``), eager vs demand-driven summary evaluation
(``--eager-summaries``), and the persistent disk cache (cold or warm)
are all execution details.  Every test here runs the same corpus through
the real CLI under one varied knob and asserts byte-identity against the
serial, lazy, cache-less reference — for the human report, ``--json``,
and ``--sarif`` alike — plus equality of the profile span-tree shape and
the deterministic counters where the knob promises it.
"""

from __future__ import annotations

import json

import pytest

from repro.app import save_apk
from repro.cli import main
from repro.corpus import CorpusGenerator, PAPER_PROFILE

#: CLI argument bundles that must not change any scan output.
VARIANTS = {
    "intra-parallel": ["--intra-jobs", "4"],
    "eager-summaries": ["--eager-summaries"],
    "process-parallel": ["--jobs", "2"],
    "everything-at-once": ["--intra-jobs", "4", "--eager-summaries",
                           "--jobs", "2"],
}


@pytest.fixture(scope="module")
def app_files(tmp_path_factory):
    root = tmp_path_factory.mktemp("determinism-corpus")
    paths = []
    for apk, _truth in CorpusGenerator(PAPER_PROFILE.scaled(6)).generate():
        path = root / f"{apk.package}.apkt"
        save_apk(apk, path)
        paths.append(str(path))
    return paths


def _scan(app_files, capsys, extra, mode_args):
    code = main(["scan", "--no-disk-cache", *extra, *mode_args, *app_files])
    return code, capsys.readouterr().out


class TestByteIdentity:
    """stdout / --json / --sarif bytes are invariant under every knob."""

    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_report_stdout(self, app_files, capsys, variant):
        ref_code, ref_out = _scan(app_files, capsys, [], [])
        got_code, got_out = _scan(app_files, capsys, VARIANTS[variant], [])
        assert got_code == ref_code
        assert got_out == ref_out

    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_json(self, app_files, capsys, variant):
        _, ref_out = _scan(app_files, capsys, [], ["--json"])
        _, got_out = _scan(app_files, capsys, VARIANTS[variant], ["--json"])
        assert got_out == ref_out
        assert json.loads(ref_out)  # sanity: it really is the JSON mode

    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_sarif(self, app_files, capsys, tmp_path, variant):
        ref_file = tmp_path / "ref.sarif"
        got_file = tmp_path / "got.sarif"
        _scan(app_files, capsys, [], ["--sarif", str(ref_file)])
        _scan(app_files, capsys, VARIANTS[variant], ["--sarif", str(got_file)])
        assert got_file.read_bytes() == ref_file.read_bytes()
        assert json.loads(ref_file.read_text())["runs"]


class TestDiskCacheIdentity:
    """A cold cache fill and a warm cache hit both match the reference."""

    def test_cold_then_warm(self, app_files, capsys, tmp_path):
        _, ref_out = _scan(app_files, capsys, [], ["--json"])
        cache = ["--cache-backend", f"local:{tmp_path / 'cache'}"]
        code_cold = main(["scan", *cache, "--json", *app_files])
        cold_out = capsys.readouterr().out
        code_warm = main(["scan", *cache, "--json", *app_files])
        warm_out = capsys.readouterr().out
        assert code_cold == code_warm
        assert cold_out == ref_out
        assert warm_out == ref_out


def _profile_shape(tree: dict) -> list:
    """The span tree reduced to its deterministic shape: names, call
    counts, and child shapes (timings vary run to run)."""
    return sorted(
        (name, node["count"], _profile_shape(node.get("children", {})))
        for name, node in tree.items()
    )


def _count_nodes(tree: dict) -> int:
    return sum(1 + _count_nodes(node.get("children", {})) for node in tree.values())


class TestProfileAndCounters:
    """--intra-jobs N keeps the whole telemetry surface identical: the
    profile span tree has the same shape and the counters the same
    values as a serial run."""

    def _snapshot(self, app_files, capsys, tmp_path, label, extra):
        out = tmp_path / f"{label}.json"
        main(["scan", "--no-disk-cache", "--metrics", str(out),
              *extra, *app_files])
        capsys.readouterr()
        return json.loads(out.read_text())

    def test_intra_parallel_matches_serial(self, app_files, capsys, tmp_path):
        serial = self._snapshot(app_files, capsys, tmp_path, "serial", [])
        parallel = self._snapshot(
            app_files, capsys, tmp_path, "parallel", ["--intra-jobs", "4"]
        )
        assert _count_nodes(parallel["profile"]) == _count_nodes(
            serial["profile"]
        )
        assert _profile_shape(parallel["profile"]) == _profile_shape(
            serial["profile"]
        )
        assert parallel["counters"] == serial["counters"]
        # The demand-driven engine really ran (and was exercised above).
        assert serial["counters"]["dataflow.bool_fact_sccs"] > 0

    def test_eager_does_strictly_more_scc_work(self, app_files, capsys, tmp_path):
        lazy = self._snapshot(app_files, capsys, tmp_path, "lazy", [])
        eager = self._snapshot(
            app_files, capsys, tmp_path, "eager", ["--eager-summaries"]
        )
        assert (
            eager["counters"]["dataflow.bool_fact_sccs"]
            > lazy["counters"]["dataflow.bool_fact_sccs"]
        )
