"""Pass scheduling: declared reads, topological order, artifact skipping."""

import pytest

from repro.core import NChecker, NCheckerOptions
from repro.corpus.snippets import RequestSpec
from repro.pipeline import build_plan, order_passes, resolve_reads
from repro.pipeline.passes import ScheduledPass

from tests.conftest import single_request_app


class FakeCheck:
    def __init__(self, name, after=()):
        self.name = name
        self.after = tuple(after)

    def reads(self, options):
        return ("requests",)

    def run(self, ctx, requests):
        return []


def sched(name, after=()):
    return ScheduledPass(FakeCheck(name, after), reads=())


class TestOrdering:
    def test_after_constraint_respected(self):
        passes = [sched("b", after=("a",)), sched("a")]
        assert [p.name for p in order_passes(passes)] == ["a", "b"]

    def test_stable_without_constraints(self):
        passes = [sched("c"), sched("a"), sched("b")]
        assert [p.name for p in order_passes(passes)] == ["c", "a", "b"]

    def test_absent_dependency_ignored(self):
        passes = [sched("b", after=("not-registered",)), sched("a")]
        assert [p.name for p in order_passes(passes)] == ["b", "a"]

    def test_cycle_raises(self):
        passes = [sched("a", after=("b",)), sched("b", after=("a",))]
        with pytest.raises(ValueError):
            order_passes(passes)

    def test_unknown_artifact_name_raises(self):
        with pytest.raises(KeyError):
            resolve_reads(("no-such-artifact",))


class TestPlanning:
    def plan(self, **kwargs):
        apk, _ = single_request_app(RequestSpec())
        checker = NChecker(options=NCheckerOptions(**kwargs))
        return checker.plan_for(apk)

    def test_default_plan_skips_icc_model_only(self):
        plan = self.plan()
        assert plan.passes == (
            "config-apis",
            "connectivity",
            "retry-parameters",
            "failure-notification",
            "invalid-response",
        )
        assert plan.skipped == ("icc-model", "threadcontext")

    def test_retry_parameters_scheduled_after_config_apis(self):
        plan = self.plan()
        assert plan.passes.index("retry-parameters") > plan.passes.index(
            "config-apis"
        )

    def test_connectivity_only_plan_skips_retry_loops(self):
        plan = self.plan(enabled_checks=frozenset({"connectivity"}))
        assert plan.passes == ("connectivity",)
        assert "retry-loops" in plan.skipped
        assert "icc-model" in plan.skipped

    def test_no_retry_loop_detection_skips_the_artifact(self):
        plan = self.plan(detect_retry_loops=False)
        assert "retry-loops" in plan.skipped

    def test_inter_component_needs_icc_model(self):
        plan = self.plan(inter_component=True)
        assert "icc-model" in plan.artifacts

    def test_no_summaries_skips_the_engine(self):
        plan = self.plan(summary_based=False)
        assert "summaries" in plan.skipped


class TestSkippedArtifactsNotBuilt:
    def scan_counters(self, **kwargs):
        apk, _ = single_request_app(RequestSpec(library="basichttp"))
        checker = NChecker(options=NCheckerOptions(**kwargs))
        session = checker.session_for(apk)
        session.scan()
        return session.store.counters

    def test_default_scan_builds_retry_loops(self):
        counters = self.scan_counters()
        assert counters.builds_of("retry-loops") == 1
        assert counters.builds_of("icc-model") == 0

    def test_disabling_checks_skips_artifacts_only_they_need(self):
        counters = self.scan_counters(enabled_checks=frozenset({"connectivity"}))
        assert counters.builds_of("retry-loops") == 0
        assert counters.builds_of("icc-model") == 0
        # Shared artifacts are still built exactly once.
        assert counters.builds_of("requests") == 1
        assert counters.builds_of("callgraph") == 1

    def test_summary_ablation_never_builds_the_engine(self):
        counters = self.scan_counters(summary_based=False)
        assert counters.builds_of("summaries") == 0

    def test_scan_results_unchanged_by_pipeline_for_enabled_kinds(self):
        apk, _ = single_request_app(RequestSpec(library="basichttp"))
        full = NChecker().scan(apk)
        conn_only = NChecker(
            options=NCheckerOptions(enabled_checks=frozenset({"connectivity"}))
        ).scan(apk)
        full_conn = [
            (f.method_key, f.stmt_index)
            for f in full.findings
            if f.kind.value == "missed-connectivity-check"
        ]
        got = [
            (f.method_key, f.stmt_index)
            for f in conn_only.findings
            if f.kind.value == "missed-connectivity-check"
        ]
        assert got == full_conn
