"""Artifact store: build-on-demand, hit counting, dependency-aware
invalidation."""

from repro.core import NChecker, NCheckerOptions
from repro.corpus.snippets import RequestSpec
from repro.callgraph.entrypoints import method_key
from repro.libmodels import default_registry
from repro.pipeline import (
    ARTIFACTS,
    CALLGRAPH,
    ICC_MODEL,
    REQUESTS,
    RETRY_LOOPS,
    SUMMARIES,
    ArtifactStore,
)

from tests.conftest import single_request_app


def make_store(spec=None):
    apk, _ = single_request_app(spec or RequestSpec())
    return apk, ArtifactStore(apk, default_registry())


class TestBuildOnDemand:
    def test_nothing_built_up_front(self):
        _, store = make_store()
        assert store.peek(CALLGRAPH) is None
        assert store.counters.builds == {}

    def test_get_builds_dependencies_first(self):
        _, store = make_store()
        store.get(REQUESTS)
        assert store.counters.builds_of("callgraph") == 1
        assert store.counters.builds_of("requests") == 1

    def test_repeat_get_is_a_hit(self):
        _, store = make_store()
        first = store.get(CALLGRAPH)
        second = store.get(CALLGRAPH)
        assert first is second
        assert store.counters.builds_of("callgraph") == 1
        assert store.counters.hits_of("callgraph") == 1

    def test_retry_loops_pull_requests(self):
        _, store = make_store(RequestSpec(library="basichttp"))
        store.get(RETRY_LOOPS)
        assert store.counters.builds_of("requests") == 1

    def test_all_artifact_keys_registered(self):
        for key in (CALLGRAPH, REQUESTS, SUMMARIES, RETRY_LOOPS, ICC_MODEL):
            assert ARTIFACTS[key.name] is key
            for dep in key.deps:
                assert dep in ARTIFACTS

    def test_method_artifacts_counted(self):
        apk, store = make_store()
        method = next(iter(apk.methods()))
        store.cfg(method)
        store.cfg(method)
        store.defuse(method)  # def-use pulls the CFG: another hit
        assert store.counters.builds_of("cfg") == 1
        assert store.counters.hits_of("cfg") == 2
        assert store.counters.builds_of("defuse") == 1


class TestInvalidation:
    def test_touched_method_cfg_dropped_others_kept(self):
        apk, store = make_store()
        methods = list(apk.methods())
        for m in methods:
            store.cfg(m)
        built = store.counters.builds_of("cfg")
        touched = method_key(methods[0])
        store.invalidate_methods({touched})
        # Only the touched method's CFG rebuilds on next access.
        for m in methods:
            store.cfg(m)
        assert store.counters.builds_of("cfg") == built + 1
        assert store.counters.invalidated_methods == 1

    def test_app_artifacts_dropped(self):
        apk, store = make_store()
        store.get(RETRY_LOOPS)
        assert store.peek(REQUESTS) is not None
        any_method = method_key(next(iter(apk.methods())))
        store.invalidate_methods({any_method})
        assert store.peek(REQUESTS) is None
        assert store.peek(RETRY_LOOPS) is None
        # The call graph survives (it refreshes in place).
        assert store.peek(CALLGRAPH) is not None

    def test_empty_invalidation_is_a_noop(self):
        _, store = make_store()
        store.get(REQUESTS)
        store.invalidate_methods(set())
        assert store.peek(REQUESTS) is not None
        assert store.counters.invalidated_methods == 0

    def test_rescan_after_invalidation_matches_fresh_scan(self):
        spec = RequestSpec(library="basichttp")
        apk, _ = single_request_app(spec)
        checker = NChecker(options=NCheckerOptions())
        session = checker.open_session(apk)
        before = session.scan()
        session.invalidate_methods({f.method_key for f in before.findings})
        after = session.scan()
        fresh = NChecker().scan(apk)
        key = lambda r: [(f.kind, f.method_key, f.stmt_index) for f in r.findings]
        assert key(after) == key(before) == key(fresh)
