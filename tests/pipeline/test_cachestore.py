"""Conformance suite for the cache-store backends.

One shared battery of tests runs against every :class:`CacheBackend`
implementation — ``local``, ``memory``, a ``memory+local`` tier chain,
and ``remote`` (a live ``nchecker serve`` daemon per test, spoken to
over a real socket) — so the protocol semantics documented in
:mod:`repro.pipeline.cachestore.backend` (best-effort never raising,
atomic publication, corruption-is-a-miss, gc grace) are enforced, not
aspirational.  On top of the protocol battery:

* scan-level tests proving a warm re-scan does **zero** app-scoped
  builds on every backend, with hits attributed to the serving tier;
* tiered promotion / write-through semantics;
* format compatibility: ``LocalDirBackend`` reads a cache laid out by
  the pre-split ``DiskCache`` formula, and the entry header is pinned
  byte-for-byte;
* CLI byte-identity across ``--cache-backend`` specs (disabled / cold /
  warm, with and without ``--jobs``).
"""

import hashlib
import json
import struct

import pytest

from repro.app import save_apk
from repro.app.loader import dumps_apk, loads_apk
from repro.cli import main
from repro.core import NChecker
from repro.core.checker import NCheckerOptions
from repro.corpus.snippets import Connectivity, Notification, RequestSpec
from repro.pipeline.cachestore import (
    CACHE_FORMAT_VERSION,
    CacheBackend,
    CacheStore,
    EntryKey,
    LocalDirBackend,
    MemoryBackend,
    RemoteBackend,
    TieredBackend,
    app_content_fingerprint,
    backend_from_spec,
    entry_digest,
    shared_memory_backend,
)
from repro.pipeline.diskcache import DiskCache
from repro.service import ServiceConfig, start_in_thread
from tests.conftest import single_request_app

APP_KINDS = ("callgraph", "summaries", "requests", "retry-loops", "icc-model")
PERSISTED_KINDS = ("callgraph", "summaries", "requests", "retry-loops")
BACKEND_PARAMS = ("local", "memory", "tiered", "remote")
#: The tier a warm hit is attributed to, per parametrized backend (the
#: tiered composition serves from its fastest tier after write-through).
SERVING_TIER = {
    "local": "local", "memory": "memory", "tiered": "memory",
    "remote": "remote",
}


def make_backend(kind: str, tmp_path, request=None) -> CacheBackend:
    if kind == "local":
        return LocalDirBackend(tmp_path / "cache")
    if kind == "memory":
        return MemoryBackend()
    if kind == "remote":
        # A real daemon per test: the conformance battery talks to its
        # /v1/cache blueprint over an actual socket.
        handle = start_in_thread(
            ServiceConfig(port=0, cache_dir=str(tmp_path / "served"))
        )
        assert request is not None, "remote backend needs fixture teardown"
        request.addfinalizer(handle.stop)
        return RemoteBackend(handle.base_url)
    return TieredBackend([MemoryBackend(), LocalDirBackend(tmp_path / "cache")])


@pytest.fixture(params=BACKEND_PARAMS)
def backend(request, tmp_path) -> CacheBackend:
    return make_backend(request.param, tmp_path, request)


def key(kind="summaries", app_fp="a" * 40, digest="0123456789abcdef") -> EntryKey:
    return EntryKey(app_fp, kind, digest)


def unique_keys(backend) -> set[EntryKey]:
    return {info.key for info in backend.list_entries()}


def fresh_apk():
    apk, _ = single_request_app(RequestSpec())
    return apk


def finding_sigs(result) -> list[tuple]:
    return [
        (f.kind, f.method_key, f.stmt_index, f.message) for f in result.findings
    ]


def scan_with(backend, apk=None):
    """One fresh-process-equivalent scan against a live backend object."""
    options = NCheckerOptions(cache_backend=backend)
    checker = NChecker(options=options)
    session = checker.open_session(apk if apk is not None else fresh_apk())
    return session.scan(), session


def app_builds(session) -> dict[str, int]:
    return {kind: session.store.counters.builds_of(kind) for kind in APP_KINDS}


def counter(session, name: str) -> int:
    return session.store.metrics.counter_value(name)


# ---------------------------------------------------------------------------
# The shared protocol battery — every backend must pass every test.
# ---------------------------------------------------------------------------


class TestBackendConformance:
    def test_satisfies_the_protocol(self, backend):
        assert isinstance(backend, CacheBackend)
        assert backend.name

    def test_get_absent_is_none(self, backend):
        assert backend.get(key()) is None

    def test_put_get_round_trip(self, backend):
        k = key()
        written = backend.put(k, b"payload")
        assert written  # at least one tier took the write
        result = backend.get(k)
        assert result is not None
        assert result.blob == b"payload"
        assert result.tier in written

    def test_overwrite_replaces(self, backend):
        k = key()
        backend.put(k, b"old")
        backend.put(k, b"new-and-longer")
        assert backend.get(k).blob == b"new-and-longer"
        assert unique_keys(backend) == {k}
        assert all(
            info.size == len(b"new-and-longer") for info in backend.list_entries()
        )

    def test_delete_drops_every_copy(self, backend):
        k = key()
        copies = len(backend.put(k, b"x"))
        assert backend.delete(k) == copies
        assert backend.get(k) is None
        assert backend.delete(k) == 0  # idempotent, best-effort

    def test_distinct_digests_coexist(self, backend):
        """Two entries differing only in digest (same app, same kind —
        e.g. two options profiles) must never collide."""
        k1 = key(digest="1111111111111111")
        k2 = key(digest="2222222222222222")
        backend.put(k1, b"one")
        backend.put(k2, b"two")
        assert backend.get(k1).blob == b"one"
        assert backend.get(k2).blob == b"two"

    def test_list_entries_and_stats_agree(self, backend):
        keys = [
            key(kind="summaries", digest="d1" * 8),
            key(kind="callgraph", digest="d2" * 8),
            key(kind="callgraph", app_fp="b" * 40, digest="d3" * 8),
        ]
        for k in keys:
            backend.put(k, b"abcdef")
        entries = backend.list_entries()
        assert unique_keys(backend) == set(keys)
        stats = backend.stats()
        assert stats.entries == len(entries)
        assert stats.total_bytes == sum(info.size for info in entries)
        assert stats.apps == 2
        assert set(stats.by_kind) == {"summaries", "callgraph"}
        rendered = stats.render()
        assert "summaries" in rendered and "callgraph" in rendered

    def test_gc_spares_entries_inside_the_grace_window(self, backend):
        backend.put(key(), b"fresh")
        removed, freed = backend.gc(0)  # default grace: just-written survives
        assert (removed, freed) == (0, 0)
        assert backend.get(key()) is not None

    def test_gc_without_grace_enforces_the_budget(self, backend):
        copies = 0
        for i in range(3):
            copies += len(backend.put(key(digest=f"{i:016d}"), b"x" * 10))
        removed, freed = backend.gc(0, grace_seconds=0)
        assert removed == copies
        assert freed == copies * 10
        assert backend.list_entries() == []

    def test_gc_noop_when_under_budget(self, backend):
        backend.put(key(), b"small")
        assert backend.gc(1 << 30, grace_seconds=0) == (0, 0)
        assert backend.get(key()) is not None

    def test_clear_empties_everything(self, backend):
        copies = 0
        for i in range(3):
            copies += len(backend.put(key(digest=f"{i:016d}"), b"x"))
        assert backend.clear() == copies
        assert backend.list_entries() == []
        assert backend.stats().entries == 0

    def test_clear_on_empty_backend(self, backend):
        assert backend.clear() == 0


# ---------------------------------------------------------------------------
# Local-backend specifics: atomic publication and I/O-failure behaviour.
# ---------------------------------------------------------------------------


class TestLocalBackendEdgeCases:
    def test_put_leaves_no_temp_files(self, tmp_path):
        backend = LocalDirBackend(tmp_path / "cache")
        for i in range(5):
            backend.put(key(digest=f"{i:016d}"), b"payload")
        leftovers = [
            p for p in (tmp_path / "cache").rglob("*") if p.name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_put_failure_is_a_skipped_write_not_an_exception(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("in the way")
        backend = LocalDirBackend(blocker)  # root is a file: every mkdir fails
        assert backend.put(key(), b"x") == ()
        assert backend.get(key()) is None

    def test_unreadable_entry_is_a_miss(self, tmp_path):
        backend = LocalDirBackend(tmp_path / "cache")
        k = key()
        # A directory squatting on the entry path: read_bytes -> OSError.
        backend.entry_path(k).mkdir(parents=True)
        assert backend.get(k) is None

    def test_stats_on_missing_root(self, tmp_path):
        backend = LocalDirBackend(tmp_path / "never-created")
        assert backend.stats().entries == 0
        assert backend.gc(0, grace_seconds=0) == (0, 0)
        assert backend.clear() == 0


# ---------------------------------------------------------------------------
# Tiered semantics: write-through, read-through promotion.
# ---------------------------------------------------------------------------


class TestTieredSemantics:
    def test_put_writes_through_every_tier(self, tmp_path):
        fast = MemoryBackend()
        slow = LocalDirBackend(tmp_path / "slow")
        tiered = TieredBackend([fast, slow])
        assert tiered.name == "memory+local"
        assert tiered.put(key(), b"blob") == ("memory", "local")
        assert fast.get(key()).blob == b"blob"
        assert slow.get(key()).blob == b"blob"

    def test_get_promotes_into_faster_tiers(self, tmp_path):
        fast = MemoryBackend()
        slow = LocalDirBackend(tmp_path / "slow")
        tiered = TieredBackend([fast, slow])
        slow.put(key(), b"blob")  # only the slow tier holds it

        first = tiered.get(key())
        assert first.tier == "local"
        assert first.promoted == ("memory",)
        assert fast.get(key()).blob == b"blob"  # promoted copy landed

        second = tiered.get(key())
        assert second.tier == "memory"  # now served closer
        assert second.promoted == ()

    def test_delete_reaches_promoted_copies(self, tmp_path):
        fast = MemoryBackend()
        slow = LocalDirBackend(tmp_path / "slow")
        tiered = TieredBackend([fast, slow])
        slow.put(key(), b"blob")
        tiered.get(key())  # promote
        assert tiered.delete(key()) == 2
        assert fast.get(key()) is None and slow.get(key()) is None

    def test_rejects_duplicate_tier_names(self):
        with pytest.raises(ValueError, match="distinct"):
            TieredBackend([MemoryBackend(), MemoryBackend()])

    def test_rejects_empty_tier_list(self):
        with pytest.raises(ValueError):
            TieredBackend([])

    def test_stats_carries_per_tier_sections(self, tmp_path):
        tiered = TieredBackend(
            [MemoryBackend(), LocalDirBackend(tmp_path / "slow")]
        )
        tiered.put(key(), b"blob")
        stats = tiered.stats()
        assert [s.label.split()[0] for s in stats.tiers] == ["memory", "local"]
        assert stats.entries == 2  # one copy per tier
        rendered = stats.render()
        assert "tier memory" in rendered and "tier local" in rendered


# ---------------------------------------------------------------------------
# Scan-level behaviour: every backend gives build-free warm re-scans with
# correctly attributed telemetry, and corruption degrades to a rebuild.
# ---------------------------------------------------------------------------


class TestWarmScanEveryBackend:
    @pytest.fixture(params=BACKEND_PARAMS)
    def setup(self, request, tmp_path):
        backend = make_backend(request.param, tmp_path, request)
        return backend, SERVING_TIER[request.param]

    def test_warm_rescan_is_build_free(self, setup):
        backend, serving = setup
        apk = fresh_apk()
        cold_result, cold_session = scan_with(backend, apk)
        assert cold_session.store.counters.builds_of("callgraph") == 1

        warm_result, warm_session = scan_with(backend, loads_apk(dumps_apk(apk)))
        assert app_builds(warm_session) == dict.fromkeys(APP_KINDS, 0)
        for kind in PERSISTED_KINDS:
            assert counter(warm_session, f"cache.{serving}.{kind}.hits") == 1
        assert finding_sigs(warm_result) == finding_sigs(cold_result)

    def test_output_matches_uncached_scan(self, setup):
        backend, _serving = setup
        apk = fresh_apk()
        baseline, _ = scan_with(None, loads_apk(dumps_apk(apk)))
        cold, _ = scan_with(backend, apk)
        warm, _ = scan_with(backend, loads_apk(dumps_apk(apk)))
        assert (
            finding_sigs(baseline) == finding_sigs(cold) == finding_sigs(warm)
        )

    def test_cold_scan_counts_one_miss_per_tier_written(self, setup):
        backend, _serving = setup
        _result, session = scan_with(backend)
        tiers = (
            [t.name for t in backend.tiers]
            if isinstance(backend, TieredBackend)
            else [backend.name]
        )
        for tier in tiers:
            assert counter(session, f"cache.{tier}.callgraph.misses") == 1
            assert counter(session, f"cache.{tier}.callgraph.hits") == 0


class TestCorruptionEveryBackend:
    @pytest.fixture(params=BACKEND_PARAMS)
    def setup(self, request, tmp_path):
        backend = make_backend(request.param, tmp_path, request)
        return backend, SERVING_TIER[request.param]

    def summaries_key(self, backend) -> EntryKey:
        [k] = {i.key for i in backend.list_entries() if i.key.kind == "summaries"}
        return k

    def test_garbage_blob_is_a_miss_and_gets_repaired(self, setup):
        backend, serving = setup
        apk = fresh_apk()
        cold_result, _ = scan_with(backend, apk)
        k = self.summaries_key(backend)
        backend.put(k, b"complete garbage, not even a header")

        result, session = scan_with(backend, loads_apk(dumps_apk(apk)))
        assert finding_sigs(result) == finding_sigs(cold_result)
        assert session.store.counters.builds_of("summaries") == 1
        assert counter(session, f"cache.{serving}.summaries.misses") >= 1
        assert counter(session, f"cache.{serving}.errors") == 1
        # The bad entry was dropped from every tier and the rebuilt
        # artifact re-published — the next reader gets a valid blob.
        repaired = backend.get(k)
        assert repaired is not None and repaired.blob[:4] == b"NCKC"

    def test_header_version_mismatch_is_a_miss(self, setup):
        backend, _serving = setup
        apk = fresh_apk()
        cold_result, _ = scan_with(backend, apk)
        k = self.summaries_key(backend)
        stale = bytearray(backend.get(k).blob)
        struct.pack_into(">I", stale, 4, CACHE_FORMAT_VERSION + 1)
        backend.put(k, bytes(stale))

        result, session = scan_with(backend, loads_apk(dumps_apk(apk)))
        assert finding_sigs(result) == finding_sigs(cold_result)
        assert session.store.counters.builds_of("summaries") == 1

    def test_flipped_payload_byte_is_a_miss(self, setup):
        backend, _serving = setup
        apk = fresh_apk()
        cold_result, _ = scan_with(backend, apk)
        k = self.summaries_key(backend)
        flipped = bytearray(backend.get(k).blob)
        flipped[-1] ^= 0xFF
        backend.put(k, bytes(flipped))

        result, session = scan_with(backend, loads_apk(dumps_apk(apk)))
        assert finding_sigs(result) == finding_sigs(cold_result)
        assert session.store.counters.builds_of("summaries") == 1


class TestTieredScanTelemetry:
    def test_local_hits_promote_then_memory_serves(self, tmp_path):
        """Cold-populate the local tier alone, then scan through
        memory+local: the first warm scan hits local and promotes, the
        second is served entirely from memory."""
        root = tmp_path / "cache"
        apk = fresh_apk()
        scan_with(LocalDirBackend(root), apk)

        memory = MemoryBackend()
        tiered = TieredBackend([memory, LocalDirBackend(root)])
        _r, promoted_session = scan_with(tiered, loads_apk(dumps_apk(apk)))
        assert app_builds(promoted_session) == dict.fromkeys(APP_KINDS, 0)
        for kind in PERSISTED_KINDS:
            assert counter(promoted_session, f"cache.local.{kind}.hits") == 1
            assert (
                counter(promoted_session, f"cache.memory.{kind}.promotions") == 1
            )

        _r, memory_session = scan_with(tiered, loads_apk(dumps_apk(apk)))
        assert app_builds(memory_session) == dict.fromkeys(APP_KINDS, 0)
        for kind in PERSISTED_KINDS:
            assert counter(memory_session, f"cache.memory.{kind}.hits") == 1
            assert counter(memory_session, f"cache.local.{kind}.hits") == 0


# ---------------------------------------------------------------------------
# Format compatibility: the local backend and the pre-split DiskCache
# speak the same on-disk dialect.
# ---------------------------------------------------------------------------


class TestPreSplitFormatCompat:
    def test_entry_layout_is_pinned_to_the_pre_split_formula(self, tmp_path):
        """Entries land at <root>/v<FMT>/<fp[:2]>/<fp>/<kind>-<digest>.bin —
        literally the path the pre-refactor ``DiskCache`` computed — so
        existing caches keep working across the split."""
        cache_dir = tmp_path / "cache"
        apk = fresh_apk()
        options = NCheckerOptions(cache_dir=str(cache_dir))
        session = NChecker(options=options).open_session(apk)
        session.scan()

        fp = app_content_fingerprint(apk)
        for kind in PERSISTED_KINDS:
            digest = entry_digest(kind, fp, session.registry, options)
            expected = (
                cache_dir
                / f"v{CACHE_FORMAT_VERSION}"
                / fp[:2]
                / fp
                / f"{kind}-{digest}.bin"
            )
            assert expected.is_file(), f"{kind} entry not at the legacy path"

    def test_entry_header_is_pinned_byte_for_byte(self, tmp_path):
        """Magic ``NCKC``, big-endian format version, blake2b-128 payload
        checksum — asserted against raw bytes, not the codec's own
        constants, so a silent format change fails loudly here."""
        backend = LocalDirBackend(tmp_path / "cache")
        scan_with(backend)
        blob = backend.get(next(iter(unique_keys(backend)))).blob
        assert blob[:4] == b"NCKC"
        (version,) = struct.unpack(">I", blob[4:8])
        assert version == CACHE_FORMAT_VERSION
        assert blob[8:24] == hashlib.blake2b(blob[24:], digest_size=16).digest()

    def test_local_backend_reads_a_transplanted_legacy_cache(self, tmp_path):
        """Simulate inheriting a cache directory written before the split:
        entry files placed by hand at the legacy path formula (bypassing
        ``LocalDirBackend.put``) must give a build-free warm scan."""
        apk = fresh_apk()
        options = NCheckerOptions(cache_dir=str(tmp_path / "writer"))
        writer = NChecker(options=options).open_session(apk)
        cold_result = writer.scan()

        fp = app_content_fingerprint(apk)
        legacy_root = tmp_path / "legacy"
        for kind in PERSISTED_KINDS:
            name = f"{kind}-{entry_digest(kind, fp, writer.registry, options)}.bin"
            src = (
                tmp_path / "writer" / f"v{CACHE_FORMAT_VERSION}" / fp[:2] / fp / name
            )
            dst = legacy_root / f"v{CACHE_FORMAT_VERSION}" / fp[:2] / fp / name
            dst.parent.mkdir(parents=True, exist_ok=True)
            dst.write_bytes(src.read_bytes())

        result, session = scan_with(
            LocalDirBackend(legacy_root), loads_apk(dumps_apk(apk))
        )
        assert app_builds(session) == dict.fromkeys(APP_KINDS, 0)
        assert finding_sigs(result) == finding_sigs(cold_result)

    def test_diskcache_facade_keeps_the_legacy_api(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        assert isinstance(cache, CacheStore)
        assert isinstance(cache.backend, LocalDirBackend)
        assert cache.root == cache.backend.root
        scan_with(cache.backend)
        assert cache.stats().entries == len(cache._entry_files())
        assert cache.gc(1 << 30) == (0, 0)
        assert cache.clear() == len(PERSISTED_KINDS)


# ---------------------------------------------------------------------------
# Spec parsing and options resolution.
# ---------------------------------------------------------------------------


class TestBackendSpecs:
    def test_local_with_root(self, tmp_path):
        backend = backend_from_spec("local", local_root=str(tmp_path))
        assert isinstance(backend, LocalDirBackend)
        assert backend.root == tmp_path

    def test_local_with_inline_dir(self, tmp_path):
        backend = backend_from_spec(f"local:{tmp_path}")
        assert isinstance(backend, LocalDirBackend)
        assert backend.root == tmp_path

    def test_memory_resolves_to_the_shared_instance(self):
        assert backend_from_spec("memory") is shared_memory_backend()

    def test_tier_chain(self, tmp_path):
        backend = backend_from_spec(f"memory+local:{tmp_path}")
        assert isinstance(backend, TieredBackend)
        assert backend.name == "memory+local"
        assert backend.tiers[0] is shared_memory_backend()

    def test_whitespace_around_tiers_is_tolerated(self, tmp_path):
        backend = backend_from_spec(f" memory + local:{tmp_path} ")
        assert backend.name == "memory+local"

    def test_remote_with_url(self):
        backend = backend_from_spec("remote:http://cache.internal:8321")
        assert isinstance(backend, RemoteBackend)
        assert backend.base_url == "http://cache.internal:8321/v1/cache"

    def test_remote_url_keeps_an_explicit_api_path(self):
        backend = backend_from_spec("remote:https://host/v1/cache")
        assert backend.base_url == "https://host/v1/cache"

    def test_remote_chain_with_memory(self, tmp_path):
        backend = backend_from_spec(
            f"memory+local:{tmp_path}+remote:http://host:1"
        )
        assert isinstance(backend, TieredBackend)
        assert backend.name == "memory+local+remote"
        assert isinstance(backend.tiers[2], RemoteBackend)

    def test_remote_without_url_rejected(self):
        with pytest.raises(ValueError, match="needs a server URL"):
            backend_from_spec("remote")

    def test_remote_with_non_http_url_rejected(self):
        with pytest.raises(ValueError, match="needs a server URL"):
            backend_from_spec("remote:ftp://host/cache")

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown cache backend tier"):
            backend_from_spec("redis")

    def test_memory_with_argument_rejected(self):
        with pytest.raises(ValueError, match="memory takes no argument"):
            backend_from_spec("memory:/tmp/x")

    def test_pathless_local_without_root_rejected(self):
        with pytest.raises(ValueError, match="needs a directory"):
            backend_from_spec("local")

    def test_duplicate_tiers_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            backend_from_spec("memory+memory")


class TestRemoteBackendDegradation:
    """A dead or lying cache server must degrade to a miss, never an
    exception — a scan with the fleet cache down finishes exactly like
    an uncached one."""

    @pytest.fixture()
    def dead(self, tmp_path):
        # Bind a port, then close it: connections are refused after.
        handle = start_in_thread(ServiceConfig(port=0, cache_dir=str(tmp_path)))
        url = handle.base_url
        handle.stop()
        return RemoteBackend(url, timeout=1.0)

    def test_every_operation_degrades_quietly(self, dead):
        assert dead.get(key()) is None
        assert dead.put(key(), b"payload") == ()
        assert dead.delete(key()) == 0
        assert dead.list_entries() == []
        assert dead.stats().entries == 0
        assert dead.gc(0, grace_seconds=0) == (0, 0)
        assert dead.clear() == 0

    def test_scan_through_a_dead_server_matches_uncached(self, dead):
        apk = fresh_apk()
        baseline, _ = scan_with(None, loads_apk(dumps_apk(apk)))
        result, session = scan_with(dead, apk)
        assert finding_sigs(result) == finding_sigs(baseline)
        # Every artifact was built locally; nothing was served.
        assert session.store.counters.builds_of("callgraph") == 1
        assert counter(session, "cache.remote.callgraph.hits") == 0

    def test_non_blob_response_is_a_miss(self, tmp_path):
        # A daemon with no cache root answers /v1/cache with 503: the
        # client treats any non-200 as absent.
        handle = start_in_thread(ServiceConfig(port=0))
        try:
            backend = RemoteBackend(handle.base_url)
            assert backend.get(key()) is None
            assert backend.put(key(), b"x") == ()
            assert backend.list_entries() == []
        finally:
            handle.stop()


class TestFromOptions:
    def test_disabled_without_backend_or_dir(self):
        assert CacheStore.from_options(NCheckerOptions()) is None

    def test_cache_dir_shorthand(self, tmp_path):
        store = CacheStore.from_options(NCheckerOptions(cache_dir=str(tmp_path)))
        assert isinstance(store.backend, LocalDirBackend)
        assert store.backend.root == tmp_path

    def test_spec_string_takes_local_root_from_cache_dir(self, tmp_path):
        store = CacheStore.from_options(
            NCheckerOptions(cache_dir=str(tmp_path), cache_backend="memory+local")
        )
        assert isinstance(store.backend, TieredBackend)
        assert store.backend.tiers[1].root == tmp_path

    def test_live_backend_instance_wins_over_cache_dir(self, tmp_path):
        backend = MemoryBackend()
        store = CacheStore.from_options(
            NCheckerOptions(cache_dir=str(tmp_path), cache_backend=backend)
        )
        assert store.backend is backend

    def test_spec_without_usable_root_raises(self):
        with pytest.raises(ValueError, match="needs a directory"):
            CacheStore.from_options(NCheckerOptions(cache_backend="local"))


# ---------------------------------------------------------------------------
# CLI: --cache-backend byte-identity and warm-run behaviour per spec.
# ---------------------------------------------------------------------------


CLI_SPECS = ("local", "memory", "memory+local")


class TestCLIBackends:
    @pytest.fixture(autouse=True)
    def fresh_shared_memory(self):
        """The ``memory`` spec tier is process-global by design; keep
        tests hermetic by draining it on both sides."""
        shared_memory_backend().clear()
        yield
        shared_memory_backend().clear()

    @pytest.fixture()
    def app_files(self, tmp_path):
        buggy, _ = single_request_app(RequestSpec())
        clean, _ = single_request_app(
            RequestSpec(
                connectivity=Connectivity.GUARDED,
                with_timeout=True,
                with_retry=True,
                retry_value=2,
                with_notification=Notification.TOAST,
                with_response_check=True,
            ),
            package="com.test.clean",
        )
        paths = [tmp_path / "buggy.apkt", tmp_path / "clean.apkt"]
        save_apk(buggy, paths[0])
        save_apk(clean, paths[1])
        return [str(p) for p in paths]

    def run(self, argv, capsys):
        code = main(argv)
        return code, capsys.readouterr().out

    def test_report_mode_byte_identical_across_specs(self, app_files, capsys):
        baseline = self.run(["scan", "--no-disk-cache", *app_files], capsys)
        for spec in CLI_SPECS:
            shared_memory_backend().clear()
            cold = self.run(["scan", "--cache-backend", spec, *app_files], capsys)
            warm = self.run(["scan", "--cache-backend", spec, *app_files], capsys)
            warm_jobs = self.run(
                ["scan", "--cache-backend", spec, "--jobs", "2", *app_files],
                capsys,
            )
            assert baseline == cold == warm == warm_jobs, spec

    def test_json_mode_byte_identical_on_a_tier_chain(self, app_files, capsys):
        baseline = self.run(
            ["scan", "--json", "--no-disk-cache", *app_files], capsys
        )
        cold = self.run(
            ["scan", "--json", "--cache-backend", "memory+local", *app_files],
            capsys,
        )
        warm = self.run(
            ["scan", "--json", "--cache-backend", "memory+local", *app_files],
            capsys,
        )
        assert baseline == cold == warm

    def test_sarif_byte_identical_on_a_tier_chain(
        self, app_files, tmp_path, capsys
    ):
        logs = []
        for name, extra in (
            ("disabled", ["--no-disk-cache"]),
            ("cold", ["--cache-backend", "memory+local"]),
            ("warm", ["--cache-backend", "memory+local"]),
        ):
            path = tmp_path / f"{name}.sarif"
            main(["scan", "--sarif", str(path), *extra, *app_files])
            capsys.readouterr()
            logs.append(path.read_bytes())
        assert len(set(logs)) == 1

    @pytest.mark.parametrize("spec", CLI_SPECS)
    def test_warm_run_is_build_free_on_every_spec(
        self, spec, app_files, tmp_path, capsys
    ):
        serving = "local" if spec == "local" else "memory"
        warm_metrics = tmp_path / "warm.json"
        main(["scan", "--cache-backend", spec, *app_files])
        main(
            [
                "scan", "--cache-backend", spec,
                "--metrics", str(warm_metrics), *app_files,
            ]
        )
        capsys.readouterr()
        warm = json.loads(warm_metrics.read_text())["counters"]
        for kind in APP_KINDS:
            assert warm.get(f"artifact.{kind}.builds", 0) == 0, spec
        for kind in PERSISTED_KINDS:
            assert warm.get(f"cache.{serving}.{kind}.hits", 0) == 2, spec

    def test_extended_checks_identical_on_a_tier_chain(self, tmp_path, capsys):
        from repro.corpus.lifecycle import build_lifecycle_corpus

        files = []
        for apk, _truth in build_lifecycle_corpus()[:2]:
            path = tmp_path / f"{apk.package}.apkt"
            save_apk(apk, path)
            files.append(str(path))

        def run(extra):
            code = main(["scan", "--extended-checks", *extra, *files])
            return code, capsys.readouterr().out

        disabled = run(["--no-disk-cache"])
        cold = run(["--cache-backend", "memory+local"])
        warm = run(["--cache-backend", "memory+local"])
        assert disabled == cold == warm

    def test_bad_spec_dies_before_scanning(self, app_files, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["scan", "--cache-backend", "redis", *app_files])
        assert exc.value.code == 2
        assert "unknown cache backend tier" in capsys.readouterr().err

    def test_no_disk_cache_wins_over_backend_spec(
        self, app_files, tmp_path, capsys
    ):
        cache_dir = tmp_path / "never-written"
        main(
            [
                "scan", "--no-disk-cache", "--cache-backend", "memory+local",
                "--cache-dir", str(cache_dir), *app_files,
            ]
        )
        capsys.readouterr()
        assert not cache_dir.exists()
        assert shared_memory_backend().list_entries() == []

    def test_cache_stats_renders_tier_sections(self, app_files, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        main(
            [
                "scan", "--cache-backend", "memory+local",
                "--cache-dir", str(cache_dir), *app_files,
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "cache", "stats", "--cache-backend", "memory+local",
                "--cache-dir", str(cache_dir),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cache memory+local" in out
        assert "tier memory" in out and "tier local" in out

    def test_cache_clear_drains_every_tier(self, app_files, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        main(
            [
                "scan", "--cache-backend", "memory+local",
                "--cache-dir", str(cache_dir), *app_files,
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "cache", "clear", "--cache-backend", "memory+local",
                "--cache-dir", str(cache_dir),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0 and out.startswith("removed ")
        assert shared_memory_backend().list_entries() == []
        assert LocalDirBackend(cache_dir).list_entries() == []
