"""Robustness: legal-but-weird apps must scan (and run) without crashing
the toolchain."""

import pytest

from repro.core import NChecker
from repro.corpus.appbuilder import AppBuilder
from repro.ir import Local
from repro.netsim import Runtime, THREE_G


class TestRecursion:
    def test_direct_recursion_with_request(self):
        app = AppBuilder("com.rob.rec")
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        client = body.new("com.turbomanage.httpclient.BasicHttpClient", "c")
        body.call(client, "get", "http://x", ret="r")
        body.call(Local("this"), "onClick", Local("v"), cls=activity.name)
        body.ret()
        activity.add(body)
        result = NChecker().scan(app.build())
        assert result.requests  # analysis terminated and found the request

    def test_mutual_recursion(self):
        app = AppBuilder("com.rob.mut")
        activity = app.activity("MainActivity")
        a = activity.method("onClick", params=[("android.view.View", "v")])
        a.call(Local("this"), "ping", cls=activity.name)
        a.ret()
        activity.add(a)
        ping = activity.method("ping")
        client = ping.new("com.turbomanage.httpclient.BasicHttpClient", "c")
        ping.call(client, "get", "http://x", ret="r")
        ping.call(Local("this"), "pong", cls=activity.name)
        ping.ret()
        activity.add(ping)
        pong = activity.method("pong")
        pong.call(Local("this"), "ping", cls=activity.name)
        pong.ret()
        activity.add(pong)
        result = NChecker().scan(app.build())
        assert len(result.requests) == 1
        assert result.requests[0].reachable

    def test_recursive_runtime_overflows_like_java(self):
        app = AppBuilder("com.rob.deep")
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        body.call(Local("this"), "onClick", Local("v"), cls=activity.name)
        body.ret()
        activity.add(body)
        runtime = Runtime(app.build(), THREE_G, statement_budget=5_000)
        report = runtime.run_entry("com.rob.deep.MainActivity", "onClick")
        assert report.crashed
        assert report.crash_type == "java.lang.StackOverflowError"


class TestDegenerateApps:
    def test_empty_manifest_components(self):
        app = AppBuilder("com.rob.empty")
        helper = app.new_class("Util")
        body = helper.method("noop")
        body.ret()
        helper.add(body)
        result = NChecker().scan(app.build())
        assert not result.is_buggy

    def test_request_in_static_method(self):
        app = AppBuilder("com.rob.static")
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        body.static_call(f"{app.package}.MainActivity", "fetch", ret=None)
        body.ret()
        activity.add(body)
        fetch = activity.method("fetch", is_static=True)
        client = fetch.new("com.turbomanage.httpclient.BasicHttpClient", "c")
        fetch.call(client, "get", "http://x", ret="r")
        fetch.ret()
        activity.add(fetch)
        result = NChecker().scan(app.build())
        assert len(result.requests) == 1
        assert result.requests[0].user_initiated

    def test_two_requests_same_library_same_method_both_found(self):
        app = AppBuilder("com.rob.double")
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        c1 = body.new("com.turbomanage.httpclient.BasicHttpClient", "a")
        body.call(c1, "get", "http://one", ret="r1")
        c2 = body.new("com.turbomanage.httpclient.BasicHttpClient", "b")
        body.call(c2, "get", "http://two", ret="r2")
        body.ret()
        activity.add(body)
        result = NChecker().scan(app.build())
        assert len(result.requests) == 2

    def test_unreached_request_still_scanned(self):
        """Dead code with a request: context unknown, config checks run."""
        app = AppBuilder("com.rob.dead")
        activity = app.activity("MainActivity")
        alive = activity.method("onClick", params=[("android.view.View", "v")])
        alive.ret()
        activity.add(alive)
        dead = activity.method("neverCalled")
        client = dead.new("com.turbomanage.httpclient.BasicHttpClient", "c")
        dead.call(client, "get", "http://x", ret="r")
        dead.ret()
        activity.add(dead)
        result = NChecker().scan(app.build())
        assert len(result.requests) == 1
        request = result.requests[0]
        assert not request.reachable
        from repro.core import DefectKind

        assert result.count_of(DefectKind.MISSED_TIMEOUT) == 1

    def test_very_long_method(self):
        app = AppBuilder("com.rob.long")
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        for i in range(800):
            body.assign(f"x{i % 40}", i)
        client = body.new("com.turbomanage.httpclient.BasicHttpClient", "c")
        body.call(client, "get", "http://x", ret="r")
        body.ret()
        activity.add(body)
        result = NChecker().scan(app.build())
        assert len(result.requests) == 1
