"""SARIF 2.1.0 export (`eval.sarif` and `nchecker scan --sarif`)."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core import NChecker
from repro.core.defects import Impact, defect_info
from repro.eval.sarif import SARIF_VERSION, dumps_sarif, sarif_log
from repro.corpus.snippets import RequestSpec

from tests.conftest import single_request_app

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "apps"


@pytest.fixture(scope="module")
def scan_result():
    apk, _ = single_request_app(RequestSpec())
    return NChecker().scan(apk)


class TestSarifLog:
    def test_required_top_level_fields(self, scan_result):
        log = sarif_log([scan_result])
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert log["$schema"].endswith("sarif-schema-2.1.0.json")
        assert len(log["runs"]) == 1
        assert log["runs"][0]["tool"]["driver"]["name"] == "nchecker"

    def test_one_result_per_finding(self, scan_result):
        log = sarif_log([scan_result])
        results = log["runs"][0]["results"]
        assert len(results) == len(scan_result.findings)
        assert results, "the unconfigured request app must produce findings"

    def test_every_result_references_a_declared_rule(self, scan_result):
        log = sarif_log([scan_result])
        rule_ids = {r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]}
        for result in log["runs"][0]["results"]:
            assert result["ruleId"] in rule_ids

    def test_rule_shape(self, scan_result):
        log = sarif_log([scan_result])
        for rule in log["runs"][0]["tool"]["driver"]["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["fullDescription"]["text"]
            assert rule["help"]["text"]
            assert rule["defaultConfiguration"]["level"] in {
                "error", "warning", "note"
            }

    def test_result_shape(self, scan_result):
        log = sarif_log([scan_result], ["apps/buggy.apkt"])
        for result in log["runs"][0]["results"]:
            assert result["message"]["text"]
            assert result["level"] in {"error", "warning", "note"}
            location = result["locations"][0]
            physical = location["physicalLocation"]
            assert physical["region"]["startLine"] >= 1
            assert physical["artifactLocation"]["uri"] == "apps/buggy.apkt"
            logical = location["logicalLocations"][0]
            assert logical["kind"] == "function"
            assert "." in logical["fullyQualifiedName"]

    def test_crash_capable_kinds_are_errors(self, scan_result):
        log = sarif_log([scan_result])
        for result in log["runs"][0]["results"]:
            kind = next(
                f.kind for f in scan_result.findings
                if f.kind.value == result["ruleId"]
            )
            expected = (
                "error"
                if defect_info(kind).impact is Impact.CRASH_FREEZE
                else "warning"
            )
            assert result["level"] == expected

    def test_no_artifact_uri_omits_artifact_location(self, scan_result):
        log = sarif_log([scan_result])
        physical = log["runs"][0]["results"][0]["locations"][0]["physicalLocation"]
        assert "artifactLocation" not in physical

    def test_dumps_is_valid_json(self, scan_result):
        parsed = json.loads(dumps_sarif([scan_result]))
        assert parsed["version"] == "2.1.0"


class TestCliSarif:
    def test_scan_writes_sarif_file(self, tmp_path, capsys):
        out = tmp_path / "findings.sarif"
        app = EXAMPLES / "newsreader.apkt"
        code = main(["scan", "--sarif", str(out), str(app)])
        assert code == 1  # the example app is buggy
        log = json.loads(out.read_text())
        assert log["version"] == "2.1.0"
        results = log["runs"][0]["results"]
        assert results
        uri = results[0]["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
        assert uri.endswith("newsreader.apkt")
        # The human-readable report is suppressed in SARIF mode, and the
        # write notice is a diagnostic: stderr, never stdout.
        captured = capsys.readouterr()
        assert "NPD Information" not in captured.out
        assert "wrote SARIF log" not in captured.out
        assert "wrote SARIF log" in captured.err

    def test_scan_multiple_apps_share_one_run(self, tmp_path, capsys):
        out = tmp_path / "multi.sarif"
        apps = [str(EXAMPLES / "newsreader.apkt"), str(EXAMPLES / "uploader.apkt")]
        main(["scan", "--sarif", str(out), *apps])
        log = json.loads(out.read_text())
        assert len(log["runs"]) == 1
        uris = {
            r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
            for r in log["runs"][0]["results"]
        }
        assert len(uris) == 2
