"""Experiment-registry smoke tests (full runs live in benchmarks/)."""

import pytest

from repro.eval.experiments import (
    EXPERIMENTS,
    corpus_scan,
    run_fig3,
    run_fig8,
    run_fig10,
    run_study_tables,
    run_table4,
    run_table6,
    run_table9,
    run_table11,
)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(EXPERIMENTS) == {
            "fig3",
            "study",
            "table4",
            "table6",
            "table6x",
            "table7",
            "table8",
            "fig8",
            "fig9",
            "table9",
            "fig10",
            "table11",
            "manifest",
            "table2x",
        }


class TestCorpusCache:
    def test_scan_cached(self):
        first = corpus_scan(10)
        second = corpus_scan(10)
        assert first is second


class TestRunners:
    def test_fig3_series_shape(self):
        report = run_fig3(trials=30)
        series = report.data["series"]
        assert set(series) == {"3G", "3G+loss10%"}
        assert len(series["3G"]) == 11

    def test_study_tables_data(self):
        report = run_study_tables()
        assert report.data["total"] == 90
        assert "Chrome" in report.text

    def test_table4_counts(self):
        report = run_table4()
        assert report.data["counts"]["config_apis"] == 77

    def test_table6_small(self):
        report = run_table6(n_apps=20)
        assert report.data["n_apps"] == 20
        assert report.data["total_npds"] > 0

    def test_fig8_small(self):
        report = run_fig8(n_apps=20)
        assert "conn_cdf" in report.data

    def test_table9_accuracy(self):
        report = run_table9()
        assert report.data["totals"] == [130, 9, 5]
        assert 0.93 <= report.data["accuracy"] < 0.95

    def test_fig10(self):
        report = run_fig10()
        assert report.data["overall_mean"] == pytest.approx(1.7, abs=0.35)

    def test_table11_guidelines(self):
        report = run_table11(n_apps=20)
        assert len(report.data["guidelines"]) == 7

    def test_report_str_has_header(self):
        report = run_table4()
        assert str(report).startswith("=== table4")
