"""Text-rendering helper tests."""

from repro.eval.tables import percent, render_cdf, render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table([["h1", "h2"], ["aaa", "b"], ["c", "dddd"]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("h1")
        # Columns align: the second column starts at the same offset.
        assert lines[2].index("b") == lines[3].index("dddd")

    def test_title(self):
        text = render_table([["a"]], title="Table X")
        assert text.splitlines()[0] == "Table X"

    def test_empty(self):
        assert render_table([], title="t") == "t"

    def test_non_string_cells(self):
        text = render_table([["n"], [42]])
        assert "42" in text


class TestRenderCdf:
    def test_empty(self):
        assert render_cdf([]) == "(empty)"

    def test_all_below_half(self):
        text = render_cdf([0.1, 0.2, 0.3])
        assert "1.00" in text  # CDF saturates

    def test_bins(self):
        text = render_cdf([0.5] * 10, n_bins=4)
        assert len(text.splitlines()) == 4


class TestPercent:
    def test_rounding(self):
        assert percent(1, 3) == "33%"

    def test_zero_denominator(self):
        assert percent(5, 0) == "n/a"
