"""Table 11 guideline-derivation tests."""

import pytest

from repro.core import NChecker
from repro.eval.guidelines import derive_guidelines


@pytest.fixture(scope="module")
def guidelines(small_corpus):
    checker = NChecker()
    results = [checker.scan(apk) for apk, _ in small_corpus]
    return derive_guidelines(results)


class TestTable11:
    def test_seven_guidelines(self, guidelines):
        assert len(guidelines) == 7

    def test_guideline_texts_match_paper(self, guidelines):
        texts = [g.guideline for g in guidelines]
        assert texts == [
            "Automatically check connectivity before each network request",
            "Automatically retry on transient network error",
            "Set default retries considering the request context",
            "Pre-define error message on network failure",
            "Automatically put invalid response into error callbacks",
            "Explicitly separate success and error network callbacks",
            "Expose important error types in addition to error callbacks",
        ]

    def test_observations_carry_measured_numbers(self, guidelines):
        for guideline in guidelines:
            assert "%" in guideline.observation

    def test_connectivity_observation_in_plausible_range(self, guidelines):
        import re

        match = re.match(r"(\d+)%", guidelines[0].observation)
        assert match is not None
        assert 0 <= int(match.group(1)) <= 100
