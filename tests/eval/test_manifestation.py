"""Defect-manifestation study tests."""

import pytest

from repro.core import DefectKind, NChecker
from repro.eval.manifestation import (
    AppObservation,
    ManifestationRow,
    manifestation_study,
    observe_app,
    render_manifestation,
)
from repro.corpus.snippets import Connectivity, Notification, RequestSpec

from tests.conftest import single_request_app


@pytest.fixture(scope="module")
def study(small_corpus):
    return manifestation_study(small_corpus[:20], seed=3)


class TestObserveApp:
    def test_buggy_basichttp_app_crashes(self):
        apk, _ = single_request_app(RequestSpec(library="basichttp"))
        checker = NChecker()
        observation = observe_app(apk, checker.scan(apk), seed=3)
        assert DefectKind.MISSED_RESPONSE_CHECK in observation.findings
        assert observation.crashed

    def test_clean_app_shows_nothing(self):
        spec = RequestSpec(
            library="basichttp",
            connectivity=Connectivity.GUARDED,
            with_timeout=True,
            with_retry=True,
            retry_value=2,
            with_notification=Notification.TOAST,
            with_response_check=True,
        )
        apk, _ = single_request_app(spec)
        observation = observe_app(apk, NChecker().scan(apk), seed=3)
        assert not observation.crashed
        assert not observation.battery_drain

    def test_energy_recorded_for_networked_apps(self):
        apk, _ = single_request_app(RequestSpec(library="basichttp"))
        observation = observe_app(apk, NChecker().scan(apk), seed=3)
        assert observation.energy_mj_per_hour > 0


class TestStudy:
    def test_rows_cover_four_symptoms(self, study):
        assert [row.symptom for row in study] == [
            "crash",
            "silent failure",
            "battery drain",
            "long hang",
        ]

    def test_flagged_apps_more_symptomatic(self, study):
        """The detector's findings predict the symptoms: wherever both
        cells have enough apps to be meaningful, flagged apps exhibit the
        symptom at least as often as clean apps."""
        for row in study:
            if row.flagged_apps >= 3 and row.clean_apps >= 3:
                assert row.flagged_rate >= row.clean_rate, row.kind

    def test_crash_separation_is_sharp(self, study):
        crash = next(r for r in study if r.symptom == "crash")
        if crash.flagged_apps:
            assert crash.flagged_rate >= 0.5
        assert crash.clean_rate <= 0.1

    def test_render(self, study):
        text = render_manifestation(study)
        assert "Defect manifestation" in text
        assert "crash" in text
