"""Experiment-export tests (CSV/JSON artifacts)."""

import csv
import json

import pytest

from repro.eval.experiments import run_fig3, run_fig10, run_table4, run_table9
from repro.eval.export import export_report


class TestExport:
    def test_fig3_csv_series(self, tmp_path):
        report = run_fig3(trials=20)
        written = export_report(report, tmp_path)
        csv_path = next(p for p in written if p.suffix == ".csv")
        with csv_path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["size_bytes", "3G", "3G+loss10%"]
        assert len(rows) == 12  # header + 11 sizes
        assert int(rows[1][0]) == 2048

    def test_json_always_written(self, tmp_path):
        report = run_table4()
        written = export_report(report, tmp_path)
        json_path = next(p for p in written if p.suffix == ".json")
        payload = json.loads(json_path.read_text())
        assert payload["id"] == "table4"
        assert payload["data"]["counts"]["config_apis"] == 77

    def test_text_always_written(self, tmp_path):
        report = run_table4()
        written = export_report(report, tmp_path)
        text_path = next(p for p in written if p.suffix == ".txt")
        assert "Table 4" in text_path.read_text()

    def test_table_reports_have_no_csv(self, tmp_path):
        report = run_table4()
        written = export_report(report, tmp_path)
        assert not any(p.suffix == ".csv" for p in written)

    def test_fig10_csv(self, tmp_path):
        report = run_fig10()
        written = export_report(report, tmp_path)
        csv_path = next(p for p in written if p.suffix == ".csv")
        with csv_path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["task", "mean_minutes", "ci95_minutes"]
        assert rows[-1][0] == "Overall"

    def test_enum_keys_jsonable(self, tmp_path):
        """Table 9's data contains dataclasses and enum-ish keys."""
        report = run_table9()
        written = export_report(report, tmp_path)
        json_path = next(p for p in written if p.suffix == ".json")
        payload = json.loads(json_path.read_text())
        assert payload["data"]["totals"] == [130, 9, 5]
