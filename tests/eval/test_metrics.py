"""Evaluation-metric tests over a small scanned corpus."""

import pytest

from repro.core import NChecker
from repro.corpus.snippets import Connectivity, Notification, RequestSpec
from repro.eval.metrics import (
    app_flags,
    cdf,
    fig8_conn_ratios,
    fraction_above,
    notification_split,
    table6,
    table7,
    table8,
)

from tests.conftest import single_request_app


@pytest.fixture(scope="module")
def scanned(small_corpus):
    checker = NChecker()
    return [checker.scan(apk) for apk, _ in small_corpus]


class TestAppFlags:
    def test_never_checks_connectivity(self):
        apk, _ = single_request_app(RequestSpec(connectivity=Connectivity.NONE))
        flags = app_flags(NChecker().scan(apk))
        assert flags.never_checks_connectivity
        assert flags.conn_miss_ratio == 1.0

    def test_guarded_app_not_never(self):
        apk, _ = single_request_app(RequestSpec(connectivity=Connectivity.GUARDED))
        flags = app_flags(NChecker().scan(apk))
        assert not flags.never_checks_connectivity
        assert flags.conn_miss_ratio == 0.0

    def test_retry_config_counts_api_usage(self):
        apk, _ = single_request_app(
            RequestSpec(library="basichttp", with_retry=True, retry_value=2)
        )
        flags = app_flags(NChecker().scan(apk))
        assert flags.retry_lib_requests == 1
        assert flags.missing_retry_config == 0

    def test_user_notification_tracking(self):
        apk, _ = single_request_app(
            RequestSpec(with_notification=Notification.NONE)
        )
        flags = app_flags(NChecker().scan(apk))
        assert flags.user_requests == 1
        assert flags.user_missing_notification == 1
        assert flags.never_notifies


class TestTables:
    def test_table6_rows_complete(self, scanned):
        rows = table6(scanned)
        assert [r.cause for r in rows] == [
            "Missed conn. checks",
            "Missed timeout APIs",
            "Missed retry APIs",
            "Over retries",
            "Missed failure notifications",
            "Missed response checks",
        ]
        for row in rows:
            assert 0 <= row.buggy <= row.evaluated
            assert 0 <= row.percent <= 100

    def test_table7_counts_bounded(self, scanned):
        counts = table7(scanned)
        assert set(counts) == {
            "Native", "Volley", "Android Async Http", "Basic Http", "OkHttp"
        }
        assert counts["Native"] <= len(scanned)

    def test_table8_percentages_valid(self, scanned):
        for row in table8(scanned):
            assert 0 <= row.apps_percent <= 100
            assert 0 <= row.default_caused_percent <= 100


class TestCDF:
    def test_cdf_monotone(self, scanned):
        ratios = fig8_conn_ratios(scanned)
        points = cdf(ratios)
        values = [v for _p, v in points]
        assert values == sorted(values)
        assert values[-1] == 1.0 or not ratios

    def test_cdf_empty(self):
        assert all(v == 0.0 for _p, v in cdf([]))

    def test_fraction_above(self):
        assert fraction_above([0.2, 0.6, 0.9], 0.5) == pytest.approx(2 / 3)
        assert fraction_above([], 0.5) == 0.0

    def test_partial_apps_only(self, scanned):
        """Fig 8 excludes never-checking and always-checking apps."""
        for ratio in fig8_conn_ratios(scanned):
            assert 0.0 < ratio < 1.0


class TestNotificationSplit:
    def test_rates_bounded(self, scanned):
        split = notification_split(scanned)
        assert 0.0 <= split.explicit_rate <= 1.0
        assert 0.0 <= split.implicit_rate <= 1.0

    def test_volley_app_counted(self):
        apk, _ = single_request_app(
            RequestSpec(library="volley", with_notification=Notification.TOAST)
        )
        split = notification_split([NChecker().scan(apk)])
        assert split.apps_with_volley == 1
        assert split.explicit_requests == 1
        assert split.explicit_notified == 1
