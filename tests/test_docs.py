"""Documentation consistency: the code blocks the docs promise must work."""

import re
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.app import loads_apk
from repro.ir import ParseError
from repro.ir.parser import parse_classes

ROOT = Path(__file__).resolve().parent.parent


class TestFormatDoc:
    def test_minimal_example_parses_and_scans(self):
        text = (ROOT / "docs" / "FORMAT.md").read_text()
        blocks = re.findall(r"```\n(apk .*?)```", text, flags=re.DOTALL)
        assert blocks, "FORMAT.md must contain a runnable example"
        for block in blocks:
            if "..." in block:
                continue  # the layout skeleton, not a real app
            apk = loads_apk(block)
            apk.validate()
            from repro.core import NChecker

            result = NChecker().scan(apk)
            assert result.requests  # the example issues a request

    def test_statement_table_forms_parse(self):
        from repro.ir import parse_stmt

        for line in (
            "x = null",
            "invoke virtual c:com.C#get('u') -> com.R",
            "if a <= b goto L",
            "putstatic com.C.f = v",
            "x = newarray int n",
            "x = cast int v",
            "x = catch java.io.IOException",
        ):
            parse_stmt(line)


class TestReadmeClaims:
    def test_quickstart_snippet_runs(self):
        """The README's programmatic example, executed verbatim-ish."""
        from repro.core import NChecker
        from repro.corpus.appbuilder import AppBuilder
        from repro.corpus.snippets import RequestSpec, inject_request
        from repro.netsim import OFFLINE, Runtime

        app = AppBuilder("com.example.demo")
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        inject_request(
            app, body, RequestSpec(library="basichttp"), user_initiated=True
        )
        body.ret()
        activity.add(body)
        apk = app.build()

        summary = NChecker().scan(apk).summary()
        assert summary
        report = Runtime(apk, OFFLINE).run_entry(
            "com.example.demo.MainActivity", "onClick"
        )
        assert report.statements_executed > 0

    def test_no_runtime_dependencies(self):
        """README: 'The library itself has no runtime dependencies' — a
        fresh interpreter importing repro must pull in no third-party
        modules (checked in a subprocess to avoid touching this one)."""
        import subprocess
        import sys

        probe = (
            "import repro, repro.core, repro.netsim, repro.corpus, sys; "
            "bad = {m.split('.')[0] for m in sys.modules} & "
            "{'numpy', 'scipy', 'networkx', 'pytest', 'hypothesis'}; "
            "assert not bad, bad"
        )
        subprocess.run([sys.executable, "-c", probe], check=True)


class TestParserRobustness:
    """The parser may reject input only with ParseError — never crash."""

    @given(st.text(max_size=400))
    @settings(max_examples=150, deadline=None)
    def test_random_text_never_crashes(self, text):
        try:
            parse_classes(text)
        except ParseError:
            pass

    @given(
        st.text(
            alphabet=sorted(set("apk clsmethod{}()#:=.\n'x0")), max_size=300
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_format_shaped_noise_never_crashes(self, text):
        try:
            loads_apk(text)
        except (ParseError, ValueError):
            pass
