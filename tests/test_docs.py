"""Documentation consistency: the code blocks the docs promise must work."""

import re
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.app import loads_apk
from repro.ir import ParseError
from repro.ir.parser import parse_classes

ROOT = Path(__file__).resolve().parent.parent


class TestFormatDoc:
    def test_minimal_example_parses_and_scans(self):
        text = (ROOT / "docs" / "FORMAT.md").read_text()
        blocks = re.findall(r"```\n(apk .*?)```", text, flags=re.DOTALL)
        assert blocks, "FORMAT.md must contain a runnable example"
        for block in blocks:
            if "..." in block:
                continue  # the layout skeleton, not a real app
            apk = loads_apk(block)
            apk.validate()
            from repro.core import NChecker

            result = NChecker().scan(apk)
            assert result.requests  # the example issues a request

    def test_statement_table_forms_parse(self):
        from repro.ir import parse_stmt

        for line in (
            "x = null",
            "invoke virtual c:com.C#get('u') -> com.R",
            "if a <= b goto L",
            "putstatic com.C.f = v",
            "x = newarray int n",
            "x = cast int v",
            "x = catch java.io.IOException",
        ):
            parse_stmt(line)


class TestReadmeClaims:
    def test_quickstart_snippet_runs(self):
        """The README's programmatic example, executed verbatim-ish."""
        from repro.core import NChecker
        from repro.corpus.appbuilder import AppBuilder
        from repro.corpus.snippets import RequestSpec, inject_request
        from repro.netsim import OFFLINE, Runtime

        app = AppBuilder("com.example.demo")
        activity = app.activity("MainActivity")
        body = activity.method("onClick", params=[("android.view.View", "v")])
        inject_request(
            app, body, RequestSpec(library="basichttp"), user_initiated=True
        )
        body.ret()
        activity.add(body)
        apk = app.build()

        summary = NChecker().scan(apk).summary()
        assert summary
        report = Runtime(apk, OFFLINE).run_entry(
            "com.example.demo.MainActivity", "onClick"
        )
        assert report.statements_executed > 0

    def test_no_runtime_dependencies(self):
        """README: 'The library itself has no runtime dependencies' — a
        fresh interpreter importing repro must pull in no third-party
        modules (checked in a subprocess to avoid touching this one)."""
        import subprocess
        import sys

        probe = (
            "import repro, repro.core, repro.netsim, repro.corpus, sys; "
            "bad = {m.split('.')[0] for m in sys.modules} & "
            "{'numpy', 'scipy', 'networkx', 'pytest', 'hypothesis'}; "
            "assert not bad, bad"
        )
        subprocess.run([sys.executable, "-c", probe], check=True)


class TestCliDoc:
    """docs/CLI.md stays exhaustive: every subcommand and flag the
    argparse tree defines must appear there."""

    def cli_surface(self):
        """(path, flags) per parser in the subcommand tree."""
        import argparse

        from repro.cli import build_parser

        surface = []

        def walk(parser, path):
            flags = set()
            for action in parser._actions:
                if isinstance(action, argparse._SubParsersAction):
                    for name, sub in action.choices.items():
                        walk(sub, path + [name])
                elif action.option_strings:
                    flags.update(
                        s for s in action.option_strings if s.startswith("--")
                    )
            surface.append((path, flags))

        walk(build_parser(), [])
        return surface

    def test_every_flag_and_subcommand_is_documented(self):
        doc = (ROOT / "docs" / "CLI.md").read_text()
        missing = []
        for path, flags in self.cli_surface():
            if path and f"`nchecker {' '.join(path[:2])}`" not in doc:
                missing.append(" ".join(path))
            for flag in flags:
                if flag == "--help":
                    continue  # argparse boilerplate
                if f"`{flag}" not in doc and f"{flag} " not in doc:
                    missing.append(f"{'/'.join(path)}: {flag}")
        assert not missing, f"undocumented CLI surface: {missing}"

    def test_readme_points_at_the_new_docs(self):
        readme = (ROOT / "README.md").read_text()
        for page in ("docs/CLI.md", "docs/CACHING.md", "docs/INDEX.md"):
            assert page in readme

    def test_index_links_every_doc_page(self):
        index = (ROOT / "docs" / "INDEX.md").read_text()
        for page in (ROOT / "docs").glob("*.md"):
            if page.name == "INDEX.md":
                continue
            assert f"({page.name})" in index, f"INDEX.md misses {page.name}"


class TestParserRobustness:
    """The parser may reject input only with ParseError — never crash."""

    @given(st.text(max_size=400))
    @settings(max_examples=150, deadline=None)
    def test_random_text_never_crashes(self, text):
        try:
            parse_classes(text)
        except ParseError:
            pass

    @given(
        st.text(
            alphabet=sorted(set("apk clsmethod{}()#:=.\n'x0")), max_size=300
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_format_shaped_noise_never_crashes(self, text):
        try:
            loads_apk(text)
        except (ParseError, ValueError):
            pass
