"""The hand-written sample apps in examples/apps/ must parse, scan, and
show exactly the defects their comments promise."""

from pathlib import Path

import pytest

from repro import NChecker, load_apk
from repro.core import DefectKind, NCheckerOptions
from repro.libmodels import extended_registry

APPS_DIR = Path(__file__).resolve().parent.parent / "examples" / "apps"


@pytest.fixture(scope="module")
def newsreader():
    return load_apk(APPS_DIR / "newsreader.apkt")


@pytest.fixture(scope="module")
def uploader():
    return load_apk(APPS_DIR / "uploader.apkt")


@pytest.fixture(scope="module")
def chatsecure():
    return load_apk(APPS_DIR / "chatsecure_fig1.apkt")


class TestAllParse:
    def test_every_sample_parses(self):
        files = sorted(APPS_DIR.glob("*.apkt"))
        assert len(files) >= 3
        for path in files:
            apk = load_apk(path)
            apk.validate()

    def test_round_trip(self, newsreader):
        from repro.app import dumps_apk, loads_apk

        again = loads_apk(dumps_apk(newsreader))
        assert dumps_apk(again) == dumps_apk(newsreader)


class TestNewsreader:
    def test_refresh_request_is_buggy(self, newsreader):
        result = NChecker().scan(newsreader)
        refresh = [
            f for f in result.findings if f.method_key[1] == "onRefresh"
        ]
        kinds = {f.kind for f in refresh}
        assert DefectKind.MISSED_CONNECTIVITY_CHECK in kinds
        assert DefectKind.MISSED_NOTIFICATION in kinds
        assert DefectKind.MISSED_ERROR_TYPE_CHECK in kinds
        assert DefectKind.MISSED_RETRY in kinds

    def test_search_request_is_clean(self, newsreader):
        result = NChecker().scan(newsreader)
        search = [
            f
            for f in result.findings
            if f.method_key[1] == "onQueryTextSubmit"
        ]
        assert search == []

    def test_both_requests_user_initiated(self, newsreader):
        result = NChecker().scan(newsreader)
        assert len(result.requests) == 2
        assert all(r.user_initiated for r in result.requests)


class TestUploader:
    def test_post_over_retry_via_default(self, uploader):
        result = NChecker().scan(uploader)
        post = result.findings_of(DefectKind.OVER_RETRY_POST)
        assert len(post) == 1
        assert post[0].default_caused

    def test_service_over_retry(self, uploader):
        result = NChecker().scan(uploader)
        assert result.count_of(DefectKind.OVER_RETRY_SERVICE) == 1

    def test_service_misses_connectivity_and_response_check(self, uploader):
        result = NChecker().scan(uploader)
        service_findings = {
            f.kind for f in result.findings if "SyncService" in f.method_key[0]
        }
        assert DefectKind.MISSED_CONNECTIVITY_CHECK in service_findings
        assert DefectKind.MISSED_RESPONSE_CHECK in service_findings

    def test_upload_notification_ok(self, uploader):
        result = NChecker().scan(uploader)
        upload_findings = {
            f.kind
            for f in result.findings
            if f.method_key[0].endswith("UploadActivity")
        }
        assert DefectKind.MISSED_NOTIFICATION not in upload_findings
        assert DefectKind.MISSED_CONNECTIVITY_CHECK not in upload_findings


class TestMusicPlayer:
    """Hand-written Fig 6(c) retry loop with the Telegram delay."""

    @pytest.fixture(scope="class")
    def musicplayer(self):
        return load_apk(APPS_DIR / "musicplayer.apkt")

    def test_aggressive_loop_detected(self, musicplayer):
        result = NChecker().scan(musicplayer)
        assert result.count_of(DefectKind.AGGRESSIVE_RETRY_LOOP) == 1
        assert result.retry_loops[0].kind == "catch-dependent"
        assert result.retry_loops[0].aggressive

    def test_drains_battery_offline(self, musicplayer):
        from repro.netsim import OFFLINE, Runtime

        report = Runtime(musicplayer, OFFLINE, seed=7).run_entry(
            "com.sample.musicplayer.PlayerActivity", "onClick"
        )
        assert report.battery_drain

    def test_patches_clean(self, musicplayer):
        from repro.core import Patcher
        from repro.netsim import OFFLINE, Runtime

        checker = NChecker()
        fixed, applied = Patcher().patch_until_clean(musicplayer, checker)
        assert applied
        assert not checker.scan(fixed).findings
        report = Runtime(fixed, OFFLINE, seed=7).run_entry(
            "com.sample.musicplayer.PlayerActivity", "onClick"
        )
        assert not report.battery_drain


class TestChatSecureFig1:
    def _scan(self, apk):
        options = NCheckerOptions(check_network_switch=True)
        return NChecker(registry=extended_registry(), options=options).scan(apk)

    def test_fig1_patch_is_still_buggy(self, chatsecure):
        """The isConnected() guard does not make the login safe."""
        result = self._scan(chatsecure)
        kinds = {f.kind for f in result.findings}
        assert DefectKind.NO_RECONNECT_ON_SWITCH in kinds
        assert DefectKind.MISSED_CONNECTIVITY_CHECK in kinds  # no CM check
        assert DefectKind.MISSED_NOTIFICATION in kinds  # login fails silently

    def test_fig1_crashes_on_poor_network_at_runtime(self, chatsecure):
        """The paper's caption: "Still fail when network is available but
        very poor"."""
        from repro.netsim import LinkProfile, Runtime

        poor = LinkProfile("poor", bandwidth_kbps=780, rtt_ms=100, loss_rate=0.995)
        report = Runtime(
            chatsecure, poor, registry=extended_registry(), seed=11
        ).run_entry("com.sample.chatsecure.LoginActivity", "onClick")
        assert report.crashed
        assert report.crash_type == "java.io.IOException"

    def test_fig1_survives_good_network(self, chatsecure):
        from repro.netsim import Runtime, WIFI

        report = Runtime(
            chatsecure, WIFI, registry=extended_registry(), seed=11
        ).run_entry("com.sample.chatsecure.LoginActivity", "onClick")
        assert not report.crashed
