"""Dominator / post-dominator / control-dependence tests."""

from repro.cfg import CFG, DominatorTree, control_dependence
from repro.ir import Local, MethodBuilder


def diamond():
    """0: x=1; 1: if -> 3; 2: then; 3(join via label): y; 4: return."""
    b = MethodBuilder("com.t.C", "m")
    b.assign("x", 1)
    with b.if_then("==", Local("x"), 0):
        b.assign("t", 2)
    b.assign("y", 3)
    b.ret()
    return b.build()


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = CFG(diamond())
        dom = DominatorTree(cfg)
        for node in cfg.reachable_from(cfg.entry):
            assert dom.dominates(cfg.entry, node)

    def test_branch_dominates_join(self):
        cfg = CFG(diamond())
        dom = DominatorTree(cfg)
        # Statement 1 is the if; the join (nop) is dominated by it.
        assert dom.dominates(1, 3)

    def test_then_branch_does_not_dominate_join(self):
        cfg = CFG(diamond())
        dom = DominatorTree(cfg)
        assert not dom.dominates(2, 4)

    def test_dominators_of_is_chain(self):
        cfg = CFG(diamond())
        dom = DominatorTree(cfg)
        doms = dom.dominators_of(4)
        assert cfg.entry in doms and 4 in doms

    def test_reflexive(self):
        cfg = CFG(diamond())
        dom = DominatorTree(cfg)
        assert dom.dominates(2, 2)


class TestPostDominators:
    def test_exit_postdominates_everything(self):
        cfg = CFG(diamond())
        pdom = DominatorTree(cfg, reverse=True)
        for node in cfg.reachable_from(cfg.entry):
            assert pdom.dominates(cfg.exit, node)

    def test_join_postdominates_branch(self):
        cfg = CFG(diamond())
        pdom = DominatorTree(cfg, reverse=True)
        assert pdom.dominates(3, 1)

    def test_then_branch_does_not_postdominate_branch(self):
        cfg = CFG(diamond())
        pdom = DominatorTree(cfg, reverse=True)
        assert not pdom.dominates(2, 1)


class TestControlDependence:
    def test_then_branch_depends_on_if(self):
        cfg = CFG(diamond())
        deps = control_dependence(cfg)
        assert 1 in deps[2]

    def test_join_does_not_depend_on_if(self):
        cfg = CFG(diamond())
        deps = control_dependence(cfg)
        assert 1 not in deps[3]

    def test_loop_body_depends_on_loop_condition(self):
        b = MethodBuilder("com.t.C", "m")
        b.assign("go", True)
        with b.while_loop("==", Local("go"), True):
            b.assign("x", 1)
        b.ret()
        method = b.build()
        cfg = CFG(method)
        deps = control_dependence(cfg)
        # Find the loop's conditional branch and a body statement.
        from repro.ir import IfStmt

        branch = next(
            i for i, s in enumerate(method.statements) if isinstance(s, IfStmt)
        )
        body = branch + 1
        assert branch in deps[body]
