"""CFG construction tests."""

import pytest

from repro.cfg import CFG, may_throw
from repro.ir import Local, MethodBuilder


def build(fn):
    b = MethodBuilder("com.t.C", "m")
    fn(b)
    return b.build()


class TestStraightLine:
    def test_linear_edges(self):
        method = build(lambda b: (b.assign("x", 1), b.assign("y", 2), b.ret()))
        cfg = CFG(method)
        assert cfg.succs[0] == [1]
        assert cfg.succs[1] == [2]
        assert cfg.succs[2] == [cfg.exit]

    def test_preds_mirror_succs(self):
        method = build(lambda b: (b.assign("x", 1), b.ret()))
        cfg = CFG(method)
        for node in cfg.nodes():
            for succ in cfg.succs[node]:
                assert node in cfg.preds[succ]


class TestBranches:
    def test_if_has_two_successors(self):
        def fn(b):
            b.assign("x", 1)
            b.if_goto("==", Local("x"), 0, "end")
            b.assign("y", 2)
            b.label("end")
            b.ret()

        cfg = CFG(build(fn))
        assert sorted(cfg.succs[1]) == [2, 3]

    def test_goto_single_successor(self):
        def fn(b):
            b.goto("end")
            b.label("end")
            b.ret()

        cfg = CFG(build(fn))
        assert cfg.succs[0] == [1]

    def test_loop_back_edge(self):
        def fn(b):
            b.assign("go", True)
            with b.while_loop("==", Local("go"), True):
                b.assign("go", False)
            b.ret()

        cfg = CFG(build(fn))
        # Some node has an edge back to an earlier node.
        assert any(s < n for n in cfg.nodes() for s in cfg.succs[n])


class TestExceptionalEdges:
    def _trapped(self):
        def fn(b):
            region = b.begin_try()
            b.call(Local("c"), "send", cls="com.lib.C")
            b.begin_catch(region, "java.io.IOException")
            b.assign("failed", True)
            b.end_try(region)
            b.ret()

        return build(fn)

    def test_invoke_has_edge_to_handler(self):
        method = self._trapped()
        cfg = CFG(method)
        call_idx = next(i for i, _ in method.invoke_sites())
        handler_idx = method.label_index(method.traps[0].handler)
        assert handler_idx in cfg.succs[call_idx]
        assert (call_idx, handler_idx) in cfg.exceptional_edges

    def test_non_throwing_stmt_has_no_handler_edge(self):
        method = self._trapped()
        cfg = CFG(method)
        handler_idx = method.label_index(method.traps[0].handler)
        # The handler body statement itself must not loop into the handler.
        assert handler_idx + 1 not in cfg.exceptional_edges

    def test_uncaught_throw_goes_to_exit(self):
        def fn(b):
            e = b.new("java.io.IOException", "e")
            b.throw(e)

        method = build(fn)
        cfg = CFG(method)
        throw_idx = len(method.statements) - 1
        assert cfg.succs[throw_idx] == [cfg.exit]


class TestQueries:
    def test_reachability(self):
        def fn(b):
            b.goto("end")
            b.assign("dead", 1)  # unreachable
            b.label("end")
            b.ret()

        cfg = CFG(build(fn))
        reachable = cfg.reachable_from(cfg.entry)
        assert 1 not in reachable
        assert cfg.exit in reachable

    def test_reverse_postorder_starts_at_entry(self):
        method = build(lambda b: (b.assign("x", 1), b.ret()))
        cfg = CFG(method)
        order = cfg.reverse_postorder()
        assert order[0] == cfg.entry
        assert set(order) == cfg.reachable_from(cfg.entry)

    def test_may_throw(self):
        method = build(lambda b: (b.call(Local("c"), "m", cls="com.C"), b.ret()))
        assert may_throw(method.statements[0])
        assert not may_throw(method.statements[1])
