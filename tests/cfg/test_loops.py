"""Natural-loop detection tests."""

from repro.cfg import CFG, loops_containing, natural_loops
from repro.ir import Local, MethodBuilder


def _while_method():
    b = MethodBuilder("com.t.C", "m")
    b.assign("go", True)
    with b.while_loop("==", Local("go"), True):
        b.assign("go", False)
    b.ret()
    return b.build()


class TestNaturalLoops:
    def test_straight_line_has_no_loops(self):
        b = MethodBuilder("com.t.C", "m")
        b.assign("x", 1)
        b.ret()
        assert natural_loops(CFG(b.build())) == []

    def test_while_loop_found(self):
        cfg = CFG(_while_method())
        loops = natural_loops(cfg)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header in loop.body
        assert loop.exits  # the while-test exit edge

    def test_loop_exits_leave_body(self):
        cfg = CFG(_while_method())
        loop = natural_loops(cfg)[0]
        for src, dst in loop.exits:
            assert src in loop.body and dst not in loop.body

    def test_back_edge_target_is_header(self):
        cfg = CFG(_while_method())
        loop = natural_loops(cfg)[0]
        for _src, dst in loop.back_edges:
            assert dst == loop.header

    def test_nested_loops(self):
        b = MethodBuilder("com.t.C", "m")
        b.assign("i", 0)
        with b.while_loop("<", Local("i"), 3):
            b.assign("j", 0)
            with b.while_loop("<", Local("j"), 3):
                b.assign("j", 1)
            b.assign("i", 1)
        b.ret()
        cfg = CFG(b.build())
        loops = natural_loops(cfg)
        assert len(loops) == 2
        inner, outer = sorted(loops, key=len)
        assert inner.body < outer.body

    def test_loops_containing_sorted_innermost_first(self):
        b = MethodBuilder("com.t.C", "m")
        b.assign("i", 0)
        with b.while_loop("<", Local("i"), 3):
            with b.while_loop("<", Local("j"), 3):
                b.assign("mark", 1)
            b.assign("i", 1)
        b.ret()
        method = b.build()
        cfg = CFG(method)
        loops = natural_loops(cfg)
        mark = next(
            i for i, s in enumerate(method.statements)
            if "mark" in [d.name for d in s.defs()]
        )
        containing = loops_containing(loops, mark)
        assert len(containing) == 2
        assert len(containing[0]) < len(containing[1])

    def test_infinite_loop_with_return_exit(self):
        b = MethodBuilder("com.t.C", "m")
        with b.loop():
            b.assign("x", 1)
            with b.if_then("==", Local("x"), 1):
                b.ret()
        b.ret()
        cfg = CFG(b.build())
        loops = natural_loops(cfg)
        assert len(loops) == 1
