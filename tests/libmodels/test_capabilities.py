"""Table 4 capability-matrix tests."""

import pytest

from repro.libmodels import (
    ALL_LIBRARIES,
    CAPABILITY_MATRIX,
    LIBRARY_COLUMNS,
    NPD_CAUSE_ROWS,
    Tolerance,
    render_table4,
    tolerance,
    tolerates_automatically,
)
from repro.libmodels import VOLLEY


class TestMatrixShape:
    def test_all_rows_present(self):
        assert set(CAPABILITY_MATRIX) == set(NPD_CAUSE_ROWS)

    def test_all_rows_have_six_columns(self):
        for cause, row in CAPABILITY_MATRIX.items():
            assert len(row) == len(LIBRARY_COLUMNS), cause

    def test_render_has_header_plus_rows(self):
        rows = render_table4()
        assert len(rows) == 1 + len(NPD_CAUSE_ROWS)
        assert rows[0][0] == "NPD Causes"


class TestPaperValues:
    def test_no_library_auto_checks_connectivity(self):
        assert all(
            t is Tolerance.MANUAL
            for t in CAPABILITY_MATRIX["No connectivity check"]
        )

    def test_volley_auto_timeout(self):
        assert tolerance("volley", "No timeout") is Tolerance.AUTO

    def test_okhttp_manual_timeout(self):
        """Paper §3: OkHttp has no default timeout — developers must set it."""
        assert tolerance("okhttp", "No timeout") is Tolerance.MANUAL

    def test_volley_auto_response_check(self):
        assert tolerance("volley", "No invalid response check") is Tolerance.AUTO

    def test_nobody_handles_network_switch(self):
        for row in ("No reconnetion on net switch", "No reconnection on net switch"):
            if row in CAPABILITY_MATRIX:
                assert all(t is Tolerance.MANUAL for t in CAPABILITY_MATRIX[row])

    def test_unknown_library_raises(self):
        with pytest.raises(KeyError):
            tolerance("retrofit", "No timeout")


class TestConsistencyWithDefaults:
    """The ⋆/© matrix must agree with the modelled LibraryDefaults."""

    def test_auto_timeout_implies_default_timeout(self):
        for lib in ALL_LIBRARIES:
            if tolerates_automatically(lib, "No timeout"):
                assert lib.defaults.timeout_ms is not None, lib.key

    def test_manual_timeout_implies_no_default(self):
        for lib in ALL_LIBRARIES:
            if tolerance(lib.key, "No timeout") is Tolerance.MANUAL:
                assert lib.defaults.timeout_ms is None, lib.key

    def test_auto_retry_implies_default_retries(self):
        for lib in ALL_LIBRARIES:
            if tolerates_automatically(lib, "No retry on transient error"):
                assert lib.defaults.retries > 0, lib.key

    def test_auto_response_check_only_volley(self):
        for lib in ALL_LIBRARIES:
            auto = tolerates_automatically(lib, "No invalid response check")
            assert auto == lib.defaults.auto_response_check, lib.key
