"""Library model and registry tests — including the paper's §4.3 counts."""

import pytest

from repro.ir import InvokeExpr, KIND_STATIC, KIND_VIRTUAL, Local, MethodSig
from repro.libmodels import (
    ALL_LIBRARIES,
    ConfigKind,
    LibraryModel,
    LibraryRegistry,
    VOLLEY,
    default_registry,
)


def _invoke(cls, name, base="c"):
    return InvokeExpr(KIND_VIRTUAL, Local(base), MethodSig(cls, name))


class TestPaperCounts:
    def test_annotation_counts_match_section_4_3(self):
        counts = default_registry().counts()
        assert counts["target_apis"] == 14
        assert counts["config_apis"] == 77
        assert counts["response_check_apis"] == 2
        assert counts["libraries"] == 6

    def test_six_studied_libraries(self):
        keys = {lib.key for lib in ALL_LIBRARIES}
        assert keys == {
            "httpurlconnection",
            "apache",
            "volley",
            "okhttp",
            "asynchttp",
            "basichttp",
        }


class TestLookups:
    def test_exact_target_lookup(self):
        registry = default_registry()
        found = registry.find_target(
            _invoke("com.turbomanage.httpclient.BasicHttpClient", "get")
        )
        assert found is not None
        lib, target = found
        assert lib.key == "basichttp"

    def test_qualified_mismatch_returns_none(self):
        """An app class's `execute` must not match Apache's execute."""
        registry = default_registry()
        assert registry.find_target(_invoke("com.myapp.Task", "execute")) is None

    def test_unqualified_falls_back_by_name(self):
        registry = default_registry()
        found = registry.find_target(_invoke("?", "get"))
        assert found is not None

    def test_config_lookup(self):
        registry = default_registry()
        found = registry.find_config(
            _invoke("com.loopj.android.http.AsyncHttpClient", "setMaxRetriesAndTimeout")
        )
        assert found is not None
        assert found[1].kind is ConfigKind.RETRY

    def test_static_config_lookup(self):
        registry = default_registry()
        invoke = InvokeExpr(
            KIND_STATIC,
            None,
            MethodSig("org.apache.http.params.HttpConnectionParams", "setConnectionTimeout"),
        )
        found = registry.find_config(invoke)
        assert found is not None and found[1].kind is ConfigKind.TIMEOUT

    def test_response_check_lookup(self):
        registry = default_registry()
        found = registry.find_response_check(
            _invoke("com.squareup.okhttp.Response", "isSuccessful")
        )
        assert found is not None and found[0].key == "okhttp"

    def test_callback_spec_lookup(self):
        registry = default_registry()
        found = registry.find_callback_spec(
            "com.android.volley.Response$ErrorListener", "onErrorResponse"
        )
        assert found is not None
        assert found[1].error_param_index == 0

    def test_duplicate_library_rejected(self):
        registry = LibraryRegistry([VOLLEY])
        with pytest.raises(ValueError):
            registry.register(VOLLEY)


class TestLibraryProperties:
    def test_every_library_has_timeout_api(self):
        """Table 6 evaluates 'Missed timeout APIs' over all 285 apps —
        every studied library exposes a timeout knob."""
        for lib in ALL_LIBRARIES:
            assert lib.has_timeout_api, lib.key

    def test_retry_api_presence(self):
        retry = {lib.key for lib in ALL_LIBRARIES if lib.has_retry_api}
        assert retry == {"apache", "volley", "okhttp", "asynchttp", "basichttp"}

    def test_volley_is_the_only_error_type_exposer(self):
        exposers = [lib.key for lib in ALL_LIBRARIES if lib.exposes_error_types]
        assert exposers == ["volley"]

    def test_volley_auto_checks_responses(self):
        assert VOLLEY.defaults.auto_response_check

    def test_volley_default_policy_matches_fig3(self):
        assert VOLLEY.defaults.timeout_ms == 2500
        assert VOLLEY.defaults.retries == 1
        assert VOLLEY.defaults.backoff_multiplier == 1.0

    def test_asynchttp_default_retries_5(self):
        from repro.libmodels import ASYNC_HTTP

        assert ASYNC_HTTP.defaults.retries == 5
        assert ASYNC_HTTP.defaults.retries_apply_to_post

    def test_setretrypolicy_satisfies_timeout_too(self):
        policy_api = next(
            c for c in VOLLEY.config_apis if c.method == "setRetryPolicy"
        )
        assert ConfigKind.TIMEOUT in policy_api.satisfies
        assert ConfigKind.RETRY in policy_api.satisfies

    def test_error_callbacks_present_for_async_libraries(self):
        from repro.libmodels import ASYNC_HTTP, BASIC_HTTP, OKHTTP

        for lib in (VOLLEY, ASYNC_HTTP, OKHTTP, BASIC_HTTP):
            assert lib.error_callbacks, lib.key

    def test_generator_retry_table_consistent(self):
        """The corpus generator's local retry map must match the models."""
        from repro.corpus.generator import _LIB_HAS_RETRY

        for lib in ALL_LIBRARIES:
            assert _LIB_HAS_RETRY[lib.key] == lib.has_retry_api
