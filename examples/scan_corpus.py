#!/usr/bin/env python3
"""Corpus scan: generate a slice of the synthetic evaluation corpus as
``.apkt`` files on disk, load them back through the public API, scan each,
and print a Table-6-style summary — the §5.2 workflow end to end.

Run:  python examples/scan_corpus.py [n_apps]
"""

import sys
import tempfile
from pathlib import Path

from repro import NChecker, load_apk
from repro.app import save_apk
from repro.corpus import CorpusGenerator, PAPER_PROFILE
from repro.eval import render_table, table6


def main(n_apps: int = 40) -> None:
    workdir = Path(tempfile.mkdtemp(prefix="nchecker-corpus-"))
    print(f"Generating {n_apps} synthetic apps into {workdir} ...")
    generator = CorpusGenerator(PAPER_PROFILE.scaled(n_apps))
    for apk, _truth in generator.iter_apps():
        save_apk(apk, workdir / f"{apk.package}.apkt")

    print("Scanning from disk ...")
    checker = NChecker()
    results = []
    total_findings = 0
    for path in sorted(workdir.glob("*.apkt")):
        result = checker.scan(load_apk(path))
        results.append(result)
        total_findings += len(result.findings)

    buggy = sum(1 for r in results if r.is_buggy)
    print(f"\n{total_findings} NPDs across {buggy}/{len(results)} buggy apps\n")

    rows = [["NPD cause", "# Eval. apps", "# Buggy apps (%)"]]
    for row in table6(results):
        rows.append([row.cause, row.evaluated, f"{row.buggy} ({row.percent}%)"])
    print(render_table(rows, "Per-cause breakdown (compare paper Table 6):"))

    worst = max(results, key=lambda r: len(r.findings))
    print(f"\nWorst offender: {worst.package} with {len(worst.findings)} NPDs")
    print("First report:\n")
    print(worst.reports()[0].render())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 40)
