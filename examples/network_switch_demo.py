#!/usr/bin/env python3
"""Network-switch lab: the paper's Cause 4 (30 % of studied NPDs, which
the original tool could not check), made concrete.

A ChatSecure-style XMPP app connects on WiFi and sends a message after
the device hops to cellular.  Without reconnection handling the send hits
a stale socket (the GTalkSMS bug); the experimental network-switch check
flags it statically, and enabling the reconnection manager fixes both.

Run:  python examples/network_switch_demo.py
"""

from repro.core import NChecker, NCheckerOptions
from repro.corpus.appbuilder import AppBuilder
from repro.ir import Local
from repro.libmodels import extended_registry
from repro.netsim import Runtime
from repro.netsim.link import LinkSchedule, THREE_G, WIFI
from repro.netsim.scenarios import SCENARIOS

XMPP = "org.jivesoftware.smack.XMPPConnection"
HANDOVER = LinkSchedule(((0.0, WIFI), (5_000.0, THREE_G)))


def build_chat_app(reconnection: bool):
    app = AppBuilder("demo.chat")
    activity = app.activity("ChatActivity")
    body = activity.method("onClick", params=[("android.view.View", "v")])
    conn = body.new(XMPP, "conn")
    if reconnection:
        body.call(conn, "setReconnectionAllowed", True)
    region = body.begin_try()
    body.call(conn, "connect")
    body.call(conn, "login")
    # ... user types for a while; the device hops WiFi -> 3G meanwhile ...
    body.static_call("java.lang.Thread", "sleep", 10_000, ret=None)
    body.call(conn, "sendPacket", "hello")
    body.begin_catch(region, "java.io.IOException")
    toast = body.static_call(
        "android.widget.Toast", "makeText", "ctx",
        "Message could not be sent", 0, ret="t",
        return_type="android.widget.Toast",
    )
    body.call(toast, "show", cls="android.widget.Toast")
    body.end_try(region)
    body.ret()
    activity.add(body)
    return app.build()


def main() -> None:
    checker = NChecker(
        registry=extended_registry(),
        options=NCheckerOptions(check_network_switch=True),
    )

    for label, reconnection in (("without reconnection", False),
                                ("with setReconnectionAllowed(true)", True)):
        apk = build_chat_app(reconnection)
        result = checker.scan(apk)
        switch_flags = [
            f for f in result.findings if "reconnection" in f.kind.value
        ]
        report = Runtime(
            apk, HANDOVER, registry=extended_registry(), seed=3
        ).run_entry("demo.chat.ChatActivity", "onClick")
        outcome = (
            "message delivered"
            if report.requests_succeeded >= 3  # connect + login + send
            else "message LOST (stale connection)"
            if not report.crashed
            else f"crash ({report.crash_type})"
        )
        print(f"{label}:")
        print(f"  static : {switch_flags[0].message if switch_flags else 'clean'}")
        print(f"  runtime: {outcome} "
              f"({report.requests_succeeded} ops succeeded, "
              f"{report.notifications} notification(s))")
        print()

    print("Scenario library:", ", ".join(sorted(SCENARIOS)))


if __name__ == "__main__":
    main()
