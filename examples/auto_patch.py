#!/usr/bin/env python3
"""Automated patching: scan an app, let the patcher apply every fix
suggestion at the IR level, and verify — statically and at runtime — that
the defects are gone.

This extends the paper's §5.4 story (humans fix NPDs in ~2 minutes from
the reports) to its logical end: the reports are concrete enough to apply
mechanically.

Run:  python examples/auto_patch.py
"""

from repro import NChecker
from repro.core import Patcher
from repro.corpus.appbuilder import AppBuilder
from repro.corpus.snippets import Backoff, RequestSpec, RetryLoopShape, inject_request
from repro.ir import print_method
from repro.netsim import LinkProfile, OFFLINE, Runtime

PKG = "com.example.autopatch"
POOR = LinkProfile("poor-3G", bandwidth_kbps=780, rtt_ms=100, loss_rate=0.6)


def build_buggy_app():
    """Two NPD-ridden requests: a plain one and a Telegram-style loop."""
    app = AppBuilder(PKG)
    activity = app.activity("MainActivity")

    body = activity.method("onClick", params=[("android.view.View", "v")])
    inject_request(app, body, RequestSpec(library="basichttp"), user_initiated=True)
    body.ret()
    activity.add(body)

    body = activity.method("onRefresh")
    inject_request(
        app, body,
        RequestSpec(
            library="basichttp",
            retry_loop=RetryLoopShape.UNCONDITIONAL_EXIT,
            backoff=Backoff.NONE,
        ),
        user_initiated=True,
    )
    body.ret()
    activity.add(body)
    return app.build()


def symptoms(apk, entry, link, seed=7):
    report = Runtime(apk, link, seed=seed).run_entry(f"{PKG}.MainActivity", entry)
    out = []
    if report.crashed:
        out.append(f"crash:{report.crash_type.rsplit('.', 1)[-1]}")
    if report.battery_drain:
        out.append(f"drain:{report.attempts_per_minute:.0f}/min")
    if report.silent_failure:
        out.append("silent-failure")
    return ", ".join(out) or "ok"


def main() -> None:
    apk = build_buggy_app()
    checker = NChecker()
    patcher = Patcher()

    result = checker.scan(apk)
    print(f"Before patching: {len(result.findings)} NPDs")
    print(f"  onClick on poor-3G : {symptoms(apk, 'onClick', POOR)}")
    print(f"  onRefresh offline  : {symptoms(apk, 'onRefresh', OFFLINE)}\n")

    fixed, applied = patcher.patch_until_clean(apk, checker)
    print(f"Applied {len(applied)} patches:")
    for patch in applied:
        print(f"  {patch}")

    after = checker.scan(fixed)
    print(f"\nAfter patching: {len(after.findings)} NPDs")
    print(f"  onClick on poor-3G : {symptoms(fixed, 'onClick', POOR)}")
    print(f"  onRefresh offline  : {symptoms(fixed, 'onRefresh', OFFLINE)}")

    print("\nPatched onClick body (inserted code uses $npd_ locals):\n")
    method = fixed.get_class(f"{PKG}.MainActivity").get_method("onClick", 1)
    print(print_method(method))


if __name__ == "__main__":
    main()
