#!/usr/bin/env python3
"""Quickstart: build a small (buggy) Android-style app in the IR, scan it
with NChecker, and read the warning reports.

The app reproduces the paper's Fig 5 shape: a click handler starts an
AsyncTask whose ``doInBackground`` issues a Basic-HTTP request — without a
connectivity check, without a timeout, reading the response unchecked,
and staying silent on failure.

Run:  python examples/quickstart.py
"""

from repro import NChecker
from repro.app import APK, Manifest
from repro.ir import ClassBuilder

PKG = "com.example.quickstart"


def build_app() -> APK:
    manifest = Manifest(
        PKG,
        activities=[f"{PKG}.MainActivity"],
        permissions=["android.permission.INTERNET"],
    )

    # The Activity: a click handler that fires the task.
    activity = ClassBuilder(f"{PKG}.MainActivity", "android.app.Activity")
    on_click = activity.method("onClick", params=[("android.view.View", "v")])
    task = on_click.new(f"{PKG}.FetchTask", "task")
    on_click.call(task, "execute")
    on_click.ret()
    activity.add(on_click)

    # The AsyncTask: the blocking request lives in doInBackground.
    fetch = ClassBuilder(f"{PKG}.FetchTask", "android.os.AsyncTask")
    bg = fetch.method("doInBackground")
    client = bg.new("com.turbomanage.httpclient.BasicHttpClient", "client")
    client_cls = "com.turbomanage.httpclient.BasicHttpClient"
    response = bg.call(
        client, "get", "http://api.example.com/feed", ret="response",
        cls=client_cls, return_type="com.turbomanage.httpclient.HttpResponse",
    )
    bg.call(
        response, "getBodyAsString", ret="body",
        cls="com.turbomanage.httpclient.HttpResponse",
    )  # no null/status check: crashes under disruption
    bg.ret()
    fetch.add(bg)
    post = fetch.method("onPostExecute", params=[("java.lang.String", "r")])
    post.ret()  # silent: the user never learns the request failed
    fetch.add(post)

    apk = APK(manifest, [activity.build(), fetch.build()])
    apk.validate()
    return apk


def main() -> None:
    apk = build_app()
    result = NChecker().scan(apk)

    print(f"Scanned {apk.package}: {len(result.requests)} network request(s), "
          f"{len(result.findings)} NPD(s)\n")
    for report in result.reports():
        print(report.render())
        print("-" * 72)


if __name__ == "__main__":
    main()
