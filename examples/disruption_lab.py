#!/usr/bin/env python3
"""Disruption lab: run the same app against different simulated mobile
networks and watch the NPD symptoms appear — crash, silent failure,
battery drain — exactly the UX impacts of the paper's Fig 4.

The second half reproduces Fig 3: the success rate of downloads using
Volley's *default* timeout/retry under clean vs lossy 3G.

Run:  python examples/disruption_lab.py
"""

from repro.corpus.appbuilder import AppBuilder
from repro.corpus.snippets import (
    Backoff,
    Notification,
    RequestSpec,
    RetryLoopShape,
    inject_request,
)
from repro.netsim import (
    LinkProfile,
    OFFLINE,
    RequestPolicy,
    Runtime,
    THREE_G,
    THREE_G_LOSSY,
    download_success_rate,
)

POOR = LinkProfile("poor-3G", bandwidth_kbps=780, rtt_ms=100, loss_rate=0.6)


def build(spec: RequestSpec):
    app = AppBuilder("com.example.lab")
    activity = app.activity("MainActivity")
    body = activity.method("onClick", params=[("android.view.View", "v")])
    inject_request(app, body, spec, user_initiated=True)
    body.ret()
    activity.add(body)
    return app.build()


def run(label: str, spec: RequestSpec, link) -> None:
    apk = build(spec)
    report = Runtime(apk, link, seed=7).run_entry(
        "com.example.lab.MainActivity", "onClick"
    )
    symptoms = []
    if report.crashed:
        symptoms.append(f"CRASH ({report.crash_type})")
    if report.silent_failure:
        symptoms.append("SILENT FAILURE (user sees nothing)")
    if report.battery_drain:
        symptoms.append(
            f"BATTERY DRAIN ({report.attempts_per_minute:.0f} attempts/min)"
        )
    if not symptoms:
        symptoms.append("ok")
    print(f"  {label:46s} on {link.name:12s} -> {', '.join(symptoms)}")


def main() -> None:
    print("== Symptom manifestation (compare paper Fig 4 categories) ==")
    unchecked = RequestSpec(library="basichttp")
    run("unchecked response (Cause 3.3)", unchecked, THREE_G)
    run("unchecked response (Cause 3.3)", unchecked, POOR)

    silent = RequestSpec(library="okhttp")
    run("no failure notification (Cause 3.2)", silent, OFFLINE)
    run(
        "  ...fixed with a Toast",
        RequestSpec(library="okhttp", with_notification=Notification.TOAST),
        OFFLINE,
    )

    telegram = RequestSpec(
        library="basichttp",
        retry_loop=RetryLoopShape.UNCONDITIONAL_EXIT,
        backoff=Backoff.NONE,
    )
    run("Telegram-style reconnect loop (Fig 2)", telegram, OFFLINE)
    run(
        "  ...fixed with exponential backoff",
        RequestSpec(
            library="basichttp",
            retry_loop=RetryLoopShape.UNCONDITIONAL_EXIT,
            backoff=Backoff.EXPONENTIAL,
        ),
        OFFLINE,
    )

    print("\n== Fig 3: Volley defaults (2500 ms timeout, 1 retry) ==")
    sizes = [2 * 1024 * (2 ** i) for i in range(11)]
    labels = ["2K", "4K", "8K", "16K", "32K", "64K", "128K", "256K", "512K", "1M", "2M"]
    policy = RequestPolicy.volley_default()
    print(f"  {'size':>6s}  {'3G clean':>9s}  {'3G +10% loss':>12s}")
    for size, label in zip(sizes, labels):
        clean = download_success_rate(THREE_G, size, policy, trials=150)
        lossy = download_success_rate(THREE_G_LOSSY, size, policy, trials=150)
        bar = "#" * round(lossy * 20)
        print(f"  {label:>6s}  {clean:9.2f}  {lossy:12.2f}  {bar}")


if __name__ == "__main__":
    main()
