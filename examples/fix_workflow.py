#!/usr/bin/env python3
"""Fix workflow: the §5.4 developer loop, automated.

1. Scan a buggy app and read NChecker's reports;
2. apply each report's fix suggestion (rebuild the request with the
   missing API / check / notification in place);
3. rescan to confirm the warnings are gone;
4. run both versions against a disrupted network to show the *user-visible*
   difference the fixes make.

Run:  python examples/fix_workflow.py
"""

import dataclasses

from repro import NChecker
from repro.core import DefectKind
from repro.corpus.appbuilder import AppBuilder
from repro.corpus.snippets import Connectivity, Notification, RequestSpec, inject_request
from repro.netsim import LinkProfile, Runtime

PKG = "com.example.fixit"
POOR = LinkProfile("poor-3G", bandwidth_kbps=780, rtt_ms=100, loss_rate=0.6)

#: How each NChecker finding maps onto a spec change — the programmatic
#: equivalent of the fixes the user-study volunteers wrote (Table 10).
FIXES = {
    DefectKind.MISSED_CONNECTIVITY_CHECK: {"connectivity": Connectivity.GUARDED},
    DefectKind.MISSED_TIMEOUT: {"with_timeout": True, "timeout_ms": 10_000},
    DefectKind.MISSED_RETRY: {"with_retry": True, "retry_value": 2},
    DefectKind.NO_RETRY_TIME_SENSITIVE: {"with_retry": True, "retry_value": 2},
    DefectKind.MISSED_NOTIFICATION: {"with_notification": Notification.TOAST},
    DefectKind.MISSED_RESPONSE_CHECK: {"with_response_check": True},
}


def build(spec: RequestSpec):
    app = AppBuilder(PKG)
    activity = app.activity("MainActivity")
    body = activity.method("onClick", params=[("android.view.View", "v")])
    inject_request(app, body, spec, user_initiated=True)
    body.ret()
    activity.add(body)
    return app.build()


def run_user_session(apk) -> str:
    report = Runtime(apk, POOR, seed=7).run_entry(f"{PKG}.MainActivity", "onClick")
    if report.crashed:
        return f"app CRASHED ({report.crash_type})"
    if report.silent_failure:
        return "request failed silently — the user saw nothing"
    if report.user_notified_of_failure:
        return "request failed but the user saw an error message"
    return "request succeeded"


def main() -> None:
    spec = RequestSpec(library="basichttp")  # everything wrong
    apk = build(spec)
    checker = NChecker()

    result = checker.scan(apk)
    print(f"Before: {len(result.findings)} NPD(s)")
    for finding in result.findings:
        print(f"  - {finding}")
    print(f"Under a poor network: {run_user_session(apk)}\n")

    # Apply each report's suggestion.
    changes = {}
    for finding in result.findings:
        changes.update(FIXES.get(finding.kind, {}))
    fixed_spec = dataclasses.replace(spec, **changes)
    print("Applying fixes:", ", ".join(sorted(changes)))

    fixed_apk = build(fixed_spec)
    fixed_result = checker.scan(fixed_apk)
    print(f"\nAfter: {len(fixed_result.findings)} NPD(s)")
    for finding in fixed_result.findings:
        print(f"  - {finding}")
    print(f"Under the same poor network: {run_user_session(fixed_apk)}")

    # The ChatSecure lesson (paper Fig 1): patches are easily
    # incomprehensive.  The Toast sits in the IOException handler, but on a
    # *poor* (not dead) network Basic HTTP surfaces failure as an invalid
    # response, not an exception — so the crash is fixed, yet the user may
    # still see nothing.  Against a fully dead network the exception path
    # fires and the notification shows:
    from repro.netsim import OFFLINE

    offline_report = Runtime(fixed_apk, OFFLINE, seed=7).run_entry(
        f"{PKG}.MainActivity", "onClick"
    )
    outcome = (
        "user saw an error message"
        if offline_report.user_notified_of_failure
        else "no request attempted (connectivity guard)"
        if offline_report.network_attempts == 0
        else "still silent"
    )
    print(f"Under a dead network: {outcome}")


if __name__ == "__main__":
    main()
