"""Model of Google's Volley library.

Asynchronous API: requests are constructed with success and error
listeners and submitted via ``RequestQueue.add``.  Volley's
``DefaultRetryPolicy`` gives every request a 2500 ms timeout and one
retry (backoff ×1) — the defaults Figure 3 of the paper measures — and it
is the only studied library that routes invalid responses into the error
callback automatically and exposes typed errors (``NoConnectionError``,
``TimeoutError``, ``ServerError``...) to it.
"""

from __future__ import annotations

from .annotations import (
    CallbackRole,
    CallbackSpec,
    ConfigAPI,
    ConfigKind,
    HttpMethod,
    LibraryDefaults,
    LibraryModel,
    TargetAPI,
)

_QUEUE = "com.android.volley.RequestQueue"
_REQUEST = "com.android.volley.Request"
_POLICY = "com.android.volley.DefaultRetryPolicy"
_ERROR_LISTENER = "com.android.volley.Response$ErrorListener"
_LISTENER = "com.android.volley.Response$Listener"

#: Volley request classes whose constructor's first argument selects the
#: HTTP method (Request.Method.GET = 0, POST = 1, PUT = 2, DELETE = 3).
VOLLEY_METHOD_CODES = {0: HttpMethod.GET, 1: HttpMethod.POST, 2: HttpMethod.PUT, 3: HttpMethod.DELETE}
VOLLEY_REQUEST_CLASSES = frozenset(
    {
        "com.android.volley.toolbox.StringRequest",
        "com.android.volley.toolbox.JsonObjectRequest",
        "com.android.volley.toolbox.JsonArrayRequest",
        "com.android.volley.toolbox.ImageRequest",
    }
)

VOLLEY = LibraryModel(
    key="volley",
    name="Volley Library",
    client_classes=frozenset({_QUEUE, _REQUEST}) | VOLLEY_REQUEST_CLASSES,
    target_apis=(
        TargetAPI(
            _QUEUE,
            "add",
            HttpMethod.ANY,
            is_async=True,
            callback_param_indices=(0,),
            config_object_param=0,
        ),
    ),
    config_apis=(
        ConfigAPI(
            _REQUEST,
            "setRetryPolicy",
            ConfigKind.RETRY,
            also_satisfies=(ConfigKind.TIMEOUT,),
        ),
        ConfigAPI(_POLICY, "<init>", ConfigKind.TIMEOUT, param_index=0),
        ConfigAPI(_REQUEST, "setShouldCache", ConfigKind.OTHER),
        ConfigAPI(_REQUEST, "setTag", ConfigKind.OTHER),
        ConfigAPI(_REQUEST, "setPriority", ConfigKind.OTHER),
        ConfigAPI(_REQUEST, "setSequence", ConfigKind.OTHER),
        ConfigAPI(_REQUEST, "setRequestQueue", ConfigKind.OTHER),
        ConfigAPI(_QUEUE, "start", ConfigKind.OTHER),
        ConfigAPI(_QUEUE, "stop", ConfigKind.OTHER),
        ConfigAPI(_QUEUE, "cancelAll", ConfigKind.OTHER),
    ),
    callbacks=(
        CallbackSpec(_ERROR_LISTENER, "onErrorResponse", CallbackRole.ERROR, 0),
        CallbackSpec(_LISTENER, "onResponse", CallbackRole.SUCCESS),
    ),
    defaults=LibraryDefaults(
        timeout_ms=2500,
        retries=1,
        retries_apply_to_post=True,  # DefaultRetryPolicy is method-agnostic
        auto_response_check=True,
        backoff_multiplier=1.0,
    ),
    exposes_error_types=True,
)

#: Volley error classes exposed to onErrorResponse (paper §4.2, pattern 3).
VOLLEY_ERROR_TYPES = frozenset(
    {
        "com.android.volley.NoConnectionError",
        "com.android.volley.TimeoutError",
        "com.android.volley.NetworkError",
        "com.android.volley.ServerError",
        "com.android.volley.AuthFailureError",
        "com.android.volley.ClientError",
        "com.android.volley.ParseError",
    }
)
