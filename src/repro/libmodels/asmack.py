"""Model of the aSmack XMPP library (the ChatSecure/Yaxim stack).

The paper's motivating example (Fig 1) is ChatSecure's
``XMPPConnection.connect()``/``login()`` pair, and its Cause 4 —
mishandling network switches — concerns exactly this class of long-lived
connection: when the device hops from WiFi to cellular, the old TCP
connection is dead and the app must notice (a connectivity
BroadcastReceiver) and re-establish it, or enable Smack's reconnection
manager.

NChecker proper did not check Cause 4 ("there is no library APIs related
to them" — §4.2); this model plus the experimental network-switch check
is the repository's implementation of that future work.  It is therefore
**not** part of :func:`repro.libmodels.default_registry` (whose 14/77/2
annotation counts match the paper's §4.3); use
:func:`repro.libmodels.extended_registry` to include it.
"""

from __future__ import annotations

from .annotations import (
    CallbackRole,
    CallbackSpec,
    ConfigAPI,
    ConfigKind,
    HttpMethod,
    LibraryDefaults,
    LibraryModel,
    TargetAPI,
)

_CONN = "org.jivesoftware.smack.XMPPConnection"
_CONFIG = "org.jivesoftware.smack.ConnectionConfiguration"
_LISTENER = "org.jivesoftware.smack.ConnectionListener"

ASMACK = LibraryModel(
    key="asmack",
    name="aSmack (XMPP)",
    client_classes=frozenset({_CONN, _CONFIG}),
    target_apis=(
        TargetAPI(_CONN, "connect", HttpMethod.ANY),
        TargetAPI(_CONN, "login", HttpMethod.ANY),
        TargetAPI(_CONN, "sendPacket", HttpMethod.ANY),
    ),
    config_apis=(
        ConfigAPI(_CONFIG, "setConnectTimeout", ConfigKind.TIMEOUT),
        ConfigAPI(
            "org.jivesoftware.smack.SmackConfiguration",
            "setPacketReplyTimeout",
            ConfigKind.TIMEOUT,
        ),
        ConfigAPI(_CONFIG, "setReconnectionAllowed", ConfigKind.RETRY),
        # Historically also exposed on the connection itself (via its
        # configuration); both spellings occur in the studied apps.
        ConfigAPI(_CONN, "setReconnectionAllowed", ConfigKind.RETRY),
        ConfigAPI(_CONFIG, "setSecurityMode", ConfigKind.OTHER),
        ConfigAPI(_CONFIG, "setCompressionEnabled", ConfigKind.OTHER),
        ConfigAPI(_CONFIG, "setSendPresence", ConfigKind.OTHER),
    ),
    callbacks=(
        CallbackSpec(_LISTENER, "connectionClosedOnError", CallbackRole.ERROR, 0),
        CallbackSpec(_LISTENER, "reconnectionSuccessful", CallbackRole.SUCCESS),
    ),
    defaults=LibraryDefaults(
        timeout_ms=None,  # blocking connect, TCP-level give-up
        retries=0,  # no automatic reconnection unless enabled
        retries_apply_to_post=False,
    ),
)

#: The connection class the network-switch check treats as long-lived.
LONG_LIVED_CONNECTION_CLASSES = frozenset({_CONN})

#: APIs whose presence means the app watches connectivity transitions.
CONNECTIVITY_MONITOR_APIS = frozenset(
    {
        ("android.content.Context", "registerReceiver"),
        ("android.net.ConnectivityManager", "registerNetworkCallback"),
        ("android.net.ConnectivityManager", "registerDefaultNetworkCallback"),
    }
)
_MONITOR_METHOD_NAMES = frozenset(m for _c, m in CONNECTIVITY_MONITOR_APIS)


def is_connectivity_monitor(invoke) -> bool:
    key = (invoke.sig.class_name, invoke.sig.name)
    if key in CONNECTIVITY_MONITOR_APIS:
        return True
    return invoke.sig.class_name == "?" and invoke.sig.name in _MONITOR_METHOD_NAMES
