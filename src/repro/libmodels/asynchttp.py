"""Model of the Android Asynchronous HTTP client (loopj).

Fully asynchronous: ``get``/``post``/``put``/``delete`` take a response
handler whose ``onSuccess``/``onFailure`` run on the UI thread.  By
default it retries **5 times for every request type** (paper §4.2,
Pattern 2: "Android Async HTTP library retries 5 times for all kinds of
requests by default, causing energy waste"), which is the dominant source
of the over-retry defaults in Table 8.  The exotic
``allowRetryExceptionClass`` config API — never called by any evaluated
app (§5.2.1) — is annotated here too.
"""

from __future__ import annotations

from .annotations import (
    CallbackRole,
    CallbackSpec,
    ConfigAPI,
    ConfigKind,
    HttpMethod,
    LibraryDefaults,
    LibraryModel,
    TargetAPI,
)

_CLIENT = "com.loopj.android.http.AsyncHttpClient"
_HANDLER = "com.loopj.android.http.AsyncHttpResponseHandler"

ASYNC_HTTP = LibraryModel(
    key="asynchttp",
    name="Android Async HTTP",
    client_classes=frozenset({_CLIENT}),
    target_apis=(
        TargetAPI(_CLIENT, "get", HttpMethod.GET, is_async=True, callback_param_indices=(1, 2)),
        TargetAPI(_CLIENT, "post", HttpMethod.POST, is_async=True, callback_param_indices=(1, 2)),
        TargetAPI(_CLIENT, "put", HttpMethod.PUT, is_async=True, callback_param_indices=(1, 2)),
        TargetAPI(_CLIENT, "delete", HttpMethod.DELETE, is_async=True, callback_param_indices=(1, 2)),
    ),
    config_apis=(
        ConfigAPI(_CLIENT, "setTimeout", ConfigKind.TIMEOUT),
        ConfigAPI(_CLIENT, "setConnectTimeout", ConfigKind.TIMEOUT),
        ConfigAPI(_CLIENT, "setResponseTimeout", ConfigKind.TIMEOUT),
        ConfigAPI(_CLIENT, "setMaxRetriesAndTimeout", ConfigKind.RETRY, param_index=0),
        ConfigAPI(_CLIENT, "allowRetryExceptionClass", ConfigKind.RETRY_EXCEPTION),
        ConfigAPI(_CLIENT, "blockRetryExceptionClass", ConfigKind.RETRY_EXCEPTION),
        ConfigAPI(_CLIENT, "setMaxConnections", ConfigKind.OTHER),
        ConfigAPI(_CLIENT, "setUserAgent", ConfigKind.OTHER),
        ConfigAPI(_CLIENT, "setEnableRedirects", ConfigKind.OTHER),
        ConfigAPI(_CLIENT, "setAuthenticationPreemptive", ConfigKind.OTHER),
        ConfigAPI(_CLIENT, "addHeader", ConfigKind.OTHER, param_index=1),
        ConfigAPI(_CLIENT, "setCookieStore", ConfigKind.OTHER),
        ConfigAPI(_CLIENT, "setThreadPool", ConfigKind.OTHER),
        ConfigAPI(_CLIENT, "setURLEncodingEnabled", ConfigKind.OTHER),
    ),
    callbacks=(
        CallbackSpec(_HANDLER, "onFailure", CallbackRole.ERROR, 3),
        CallbackSpec(_HANDLER, "onSuccess", CallbackRole.SUCCESS),
    ),
    defaults=LibraryDefaults(
        timeout_ms=10_000,
        retries=5,
        retries_apply_to_post=True,
    ),
)
