"""Model of the Basic HTTP client (turbomanage ``android-http``).

The library of the paper's running example (Fig 5): a thin blocking
client with ``get``/``post``/``put``/``delete`` target APIs and explicit
``setMaxRetries``/timeout config.  Per Table 4 it auto-retries transient
errors (⋆) and applies a default read/write timeout, but leaves
connectivity checks, notifications and response checks to the app.
"""

from __future__ import annotations

from .annotations import (
    CallbackRole,
    CallbackSpec,
    ConfigAPI,
    ConfigKind,
    HttpMethod,
    LibraryDefaults,
    LibraryModel,
    ResponseCheckAPI,
    TargetAPI,
)

_CLIENT = "com.turbomanage.httpclient.BasicHttpClient"
_RESPONSE = "com.turbomanage.httpclient.HttpResponse"
_ASYNC_CB = "com.turbomanage.httpclient.AsyncCallback"

BASIC_HTTP = LibraryModel(
    key="basichttp",
    name="Basic Http Client",
    client_classes=frozenset({_CLIENT}),
    target_apis=(
        TargetAPI(_CLIENT, "get", HttpMethod.GET),
        TargetAPI(_CLIENT, "post", HttpMethod.POST),
        TargetAPI(_CLIENT, "put", HttpMethod.PUT),
        TargetAPI(_CLIENT, "delete", HttpMethod.DELETE),
    ),
    config_apis=(
        ConfigAPI(_CLIENT, "setConnectionTimeout", ConfigKind.TIMEOUT),
        ConfigAPI(_CLIENT, "setReadWriteTimeout", ConfigKind.TIMEOUT),
        ConfigAPI(_CLIENT, "setMaxRetries", ConfigKind.RETRY),
        ConfigAPI(_CLIENT, "addHeader", ConfigKind.OTHER, param_index=1),
        ConfigAPI(_CLIENT, "setBaseUrl", ConfigKind.OTHER),
        ConfigAPI(_CLIENT, "setRequestLogger", ConfigKind.OTHER),
        ConfigAPI(_CLIENT, "setRequestHandler", ConfigKind.OTHER),
        ConfigAPI(_CLIENT, "setAsync", ConfigKind.OTHER),
        ConfigAPI(_CLIENT, "setErrorHandler", ConfigKind.OTHER),
        ConfigAPI(_CLIENT, "setCookieStore", ConfigKind.OTHER),
        ConfigAPI(_CLIENT, "setUserAgent", ConfigKind.OTHER),
        ConfigAPI(_CLIENT, "setFollowRedirects", ConfigKind.OTHER),
    ),
    response_check_apis=(ResponseCheckAPI(_RESPONSE, "getStatus"),),
    callbacks=(
        CallbackSpec(_ASYNC_CB, "onError", CallbackRole.ERROR, 0),
        CallbackSpec(_ASYNC_CB, "onComplete", CallbackRole.SUCCESS, response_param_index=0),
    ),
    defaults=LibraryDefaults(
        timeout_ms=2_000,
        retries=1,
        retries_apply_to_post=True,
    ),
)
