"""Android framework APIs NChecker matches outside the HTTP libraries:
connectivity checks, UI notification surfaces, and logging.

Paper references: §4.4.1 (connectivity APIs guarding requests), §4.4.3
(the five UI classes used to show alert messages, plus ``Handler`` for
background→UI communication), and Table 5's examples
(``getNetworkInfo``/``getActiveNetworkInfo``, ``Toast.show``).
"""

from __future__ import annotations

from ..ir.values import InvokeExpr

#: (class, method) pairs whose invocation constitutes a connectivity check.
CONNECTIVITY_CHECK_APIS: frozenset[tuple[str, str]] = frozenset(
    {
        ("android.net.ConnectivityManager", "getActiveNetworkInfo"),
        ("android.net.ConnectivityManager", "getNetworkInfo"),
        ("android.net.ConnectivityManager", "getAllNetworkInfo"),
        ("android.net.NetworkInfo", "isConnected"),
        ("android.net.NetworkInfo", "isConnectedOrConnecting"),
        ("android.net.NetworkInfo", "isAvailable"),
        ("android.net.wifi.WifiManager", "isWifiEnabled"),
    }
)

_CONNECTIVITY_METHOD_NAMES = frozenset(m for _, m in CONNECTIVITY_CHECK_APIS)

#: The five classes Android apps predominantly use to surface messages
#: (paper §4.4.3), plus dialog-ish builders.
UI_NOTIFICATION_CLASSES: frozenset[str] = frozenset(
    {
        "android.app.AlertDialog",
        "android.app.AlertDialog$Builder",
        "android.app.DialogFragment",
        "android.widget.Toast",
        "android.widget.TextView",
        "android.widget.ImageView",
        "android.app.ProgressDialog",
        "android.support.design.widget.Snackbar",
    }
)

#: Handler lets a background thread hand UI actions to the UI thread; a
#: message sent through it *may* notify the user (the implicit-callback
#: path the paper finds developers use far less often).
HANDLER_CLASSES: frozenset[str] = frozenset({"android.os.Handler"})
HANDLER_NOTIFY_METHODS: frozenset[str] = frozenset(
    {"sendMessage", "sendEmptyMessage", "obtainMessage", "post", "postDelayed"}
)

#: Logging is NOT user notification (a Log.d of the failure leaves the
#: user staring at a silent screen — Table 2(iii)).
LOG_CLASSES: frozenset[str] = frozenset({"android.util.Log"})


#: Connectivity-callback registration APIs: each maps to the set of
#: unregistration method names that release it (the callback-lifecycle
#: typestate pairing — register in ``onResume`` ⇒ an unregistration must
#: be reachable from a lifecycle exit method).
CALLBACK_REGISTRATION_APIS: frozenset[tuple[str, str]] = frozenset(
    {
        ("android.content.Context", "registerReceiver"),
        ("android.net.ConnectivityManager", "registerNetworkCallback"),
        ("android.net.ConnectivityManager", "registerDefaultNetworkCallback"),
    }
)

CALLBACK_UNREGISTRATION_APIS: frozenset[tuple[str, str]] = frozenset(
    {
        ("android.content.Context", "unregisterReceiver"),
        ("android.net.ConnectivityManager", "unregisterNetworkCallback"),
    }
)

#: Registration method name → the unregistration names that pair with it.
UNREGISTER_FOR: dict[str, frozenset[str]] = {
    "registerReceiver": frozenset({"unregisterReceiver"}),
    "registerNetworkCallback": frozenset({"unregisterNetworkCallback"}),
    "registerDefaultNetworkCallback": frozenset({"unregisterNetworkCallback"}),
}

_REGISTRATION_METHOD_NAMES = frozenset(m for _, m in CALLBACK_REGISTRATION_APIS)
_UNREGISTRATION_METHOD_NAMES = frozenset(
    m for _, m in CALLBACK_UNREGISTRATION_APIS
)

#: Local response-cache APIs the offline-cache check accepts as a
#: fallback data source: writing a fetched response into (or reading a
#: stale copy out of) an in-memory/preference cache.
CACHE_WRITE_APIS: frozenset[tuple[str, str]] = frozenset(
    {
        ("android.util.LruCache", "put"),
        ("android.content.SharedPreferences$Editor", "putString"),
        ("android.content.SharedPreferences$Editor", "apply"),
        ("android.content.SharedPreferences$Editor", "commit"),
    }
)

CACHE_READ_APIS: frozenset[tuple[str, str]] = frozenset(
    {
        ("android.util.LruCache", "get"),
        ("android.content.SharedPreferences", "getString"),
    }
)

def registration_name(invoke: InvokeExpr) -> "str | None":
    """The registration method name if this call site registers a
    connectivity callback/receiver, else ``None``."""
    key = (invoke.sig.class_name, invoke.sig.name)
    if key in CALLBACK_REGISTRATION_APIS:
        return invoke.sig.name
    if (
        invoke.sig.class_name == "?"
        and invoke.sig.name in _REGISTRATION_METHOD_NAMES
    ):
        return invoke.sig.name
    return None


def unregistration_name(invoke: InvokeExpr) -> "str | None":
    """The unregistration method name if this call site releases a
    connectivity callback/receiver, else ``None``."""
    key = (invoke.sig.class_name, invoke.sig.name)
    if key in CALLBACK_UNREGISTRATION_APIS:
        return invoke.sig.name
    if (
        invoke.sig.class_name == "?"
        and invoke.sig.name in _UNREGISTRATION_METHOD_NAMES
    ):
        return invoke.sig.name
    return None


def is_cache_write(invoke: InvokeExpr) -> bool:
    return (invoke.sig.class_name, invoke.sig.name) in CACHE_WRITE_APIS


def is_cache_read(invoke: InvokeExpr) -> bool:
    return (invoke.sig.class_name, invoke.sig.name) in CACHE_READ_APIS


def is_cache_api(invoke: InvokeExpr) -> bool:
    """Whether a call site touches a local response cache (read or
    write) — the fallback the offline-cache check looks for."""
    return is_cache_write(invoke) or is_cache_read(invoke)


def is_connectivity_check(invoke: InvokeExpr) -> bool:
    """Whether a call site performs a network-connectivity check."""
    key = (invoke.sig.class_name, invoke.sig.name)
    if key in CONNECTIVITY_CHECK_APIS:
        return True
    # Unqualified call sites ("?") match by method name; the connectivity
    # method names are distinctive enough that this mirrors the paper's
    # annotation matching after devirtualisation.
    return (
        invoke.sig.class_name == "?" and invoke.sig.name in _CONNECTIVITY_METHOD_NAMES
    )


def is_ui_notification(invoke: InvokeExpr) -> bool:
    """Whether a call site touches one of the UI notification classes."""
    cls = invoke.sig.class_name
    if cls in UI_NOTIFICATION_CLASSES:
        return True
    # Static factory idiom: Toast.makeText(...).show() — the makeText is
    # matched above; a bare `.show()` on an unknown receiver is not enough.
    return False


def is_handler_notification(invoke: InvokeExpr) -> bool:
    return (
        invoke.sig.class_name in HANDLER_CLASSES
        and invoke.sig.name in HANDLER_NOTIFY_METHODS
    )


def is_logging(invoke: InvokeExpr) -> bool:
    return invoke.sig.class_name in LOG_CLASSES
