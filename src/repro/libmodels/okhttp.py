"""Model of Square's OkHttp library.

Supports blocking (``Call.execute``) and async (``Call.enqueue``) use.
No default request timeout (paper §3: "OkHttp does not set request
timeouts by default, but it provides setTimeout()..."); connection
failures are retried automatically (``retryOnConnectionFailure`` defaults
to true).  Responses must be validity-checked by the caller via
``Response.isSuccessful`` — one of the two annotated response-check APIs.
"""

from __future__ import annotations

from .annotations import (
    CallbackRole,
    CallbackSpec,
    ConfigAPI,
    ConfigKind,
    HttpMethod,
    LibraryDefaults,
    LibraryModel,
    ResponseCheckAPI,
    TargetAPI,
)

_CLIENT = "com.squareup.okhttp.OkHttpClient"
_CALL = "com.squareup.okhttp.Call"
_RESPONSE = "com.squareup.okhttp.Response"
_CALLBACK = "com.squareup.okhttp.Callback"

OKHTTP = LibraryModel(
    key="okhttp",
    name="OkHttp Library",
    client_classes=frozenset({_CLIENT, _CALL}),
    target_apis=(
        TargetAPI(_CALL, "execute", HttpMethod.ANY),
        TargetAPI(_CALL, "enqueue", HttpMethod.ANY, is_async=True, callback_param_indices=(0,)),
    ),
    config_apis=(
        ConfigAPI(_CLIENT, "setConnectTimeout", ConfigKind.TIMEOUT),
        ConfigAPI(_CLIENT, "setReadTimeout", ConfigKind.TIMEOUT),
        ConfigAPI(_CLIENT, "setWriteTimeout", ConfigKind.TIMEOUT),
        ConfigAPI(_CLIENT, "setRetryOnConnectionFailure", ConfigKind.RETRY),
        ConfigAPI(_CLIENT, "setFollowRedirects", ConfigKind.OTHER),
        ConfigAPI(_CLIENT, "setFollowSslRedirects", ConfigKind.OTHER),
        ConfigAPI(_CLIENT, "setCache", ConfigKind.OTHER),
        ConfigAPI(_CLIENT, "setConnectionPool", ConfigKind.OTHER),
        ConfigAPI(_CLIENT, "setProtocols", ConfigKind.OTHER),
        ConfigAPI(_CLIENT, "setProxy", ConfigKind.OTHER),
        ConfigAPI(_CLIENT, "setSocketFactory", ConfigKind.OTHER),
        ConfigAPI(_CLIENT, "setAuthenticator", ConfigKind.OTHER),
        ConfigAPI(_CLIENT, "setDispatcher", ConfigKind.OTHER),
        ConfigAPI(_CLIENT, "setInterceptors", ConfigKind.OTHER),
    ),
    response_check_apis=(ResponseCheckAPI(_RESPONSE, "isSuccessful"),),
    callbacks=(
        CallbackSpec(_CALLBACK, "onFailure", CallbackRole.ERROR, 1),
        CallbackSpec(_CALLBACK, "onResponse", CallbackRole.SUCCESS, response_param_index=0),
    ),
    defaults=LibraryDefaults(
        timeout_ms=None,
        retries=1,  # retryOnConnectionFailure=true
        retries_apply_to_post=False,
    ),
    # OkHttp invokes Callback on a dispatcher worker thread, not the UI
    # thread (the app must hop back itself to touch views).
    callbacks_on_main_thread=False,
)
