"""API annotations for mobile network libraries (paper §4.3).

NChecker is driven by three kinds of annotated APIs:

* **Target APIs** submit a network request (14 across the six libraries);
* **Config APIs** configure a request/client — timeouts, retry policies,
  and other knobs (77 annotated);
* **Response-checking APIs** test the validity of a response (2).

Each library also declares its *defaults* (what happens when the app
never calls the config APIs) and its callback shapes, which the failure
notification check needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional

from ..ir.values import InvokeExpr


class ConfigKind(Enum):
    TIMEOUT = "timeout"
    RETRY = "retry"
    RETRY_EXCEPTION = "retry_exception"
    OTHER = "other"


class HttpMethod(Enum):
    GET = "GET"
    POST = "POST"
    PUT = "PUT"
    DELETE = "DELETE"
    ANY = "ANY"  # determined by a parameter or unknown


@dataclass(frozen=True)
class TargetAPI:
    """An API that submits a network request."""

    class_name: str
    method: str
    http_method: HttpMethod = HttpMethod.ANY
    #: Argument index holding the HTTP method (Volley's Request ctor style),
    #: or None when `http_method` is fixed by the API name.
    method_param_index: Optional[int] = None
    #: True when the call returns immediately and delivers the response via
    #: callbacks; False for blocking calls.
    is_async: bool = False
    #: Argument indices that may carry listener/callback objects.
    callback_param_indices: tuple[int, ...] = ()
    #: Which object carries the request configuration: None = the call
    #: receiver (the HTTP client); an int = that argument (Volley's
    #: ``queue.add(request)`` configures the *request*, argument 0).
    config_object_param: Optional[int] = None

    @property
    def qualified(self) -> str:
        return f"{self.class_name}.{self.method}"


@dataclass(frozen=True)
class ConfigAPI:
    """An API that configures a client/request object."""

    class_name: str
    method: str
    kind: ConfigKind = ConfigKind.OTHER
    #: Index of the interesting parameter (timeout value, retry count).
    param_index: int = 0
    #: Config kinds this call satisfies beyond its own (Volley's
    #: ``setRetryPolicy`` installs a policy that carries both the timeout
    #: and the retry count).
    also_satisfies: tuple[ConfigKind, ...] = ()

    @property
    def satisfies(self) -> tuple[ConfigKind, ...]:
        return (self.kind, *self.also_satisfies)

    @property
    def qualified(self) -> str:
        return f"{self.class_name}.{self.method}"


@dataclass(frozen=True)
class ResponseCheckAPI:
    """An API that checks response validity before the body is used."""

    class_name: str
    method: str

    @property
    def qualified(self) -> str:
        return f"{self.class_name}.{self.method}"


class CallbackRole(Enum):
    SUCCESS = "success"
    ERROR = "error"
    COMBINED = "combined"  # one callback carries both outcomes


@dataclass(frozen=True)
class CallbackSpec:
    """A library callback interface method (e.g. Volley's
    ``Response.ErrorListener.onErrorResponse``)."""

    interface: str
    method: str
    role: CallbackRole
    #: Parameter index of the error object passed in (for the error-type
    #: usage check), or None.
    error_param_index: Optional[int] = None
    #: Parameter index of the response object passed to success callbacks
    #: (for the invalid-response check on async APIs), or None.
    response_param_index: Optional[int] = None


@dataclass(frozen=True)
class LibraryDefaults:
    """Behaviour when the app never calls the config APIs."""

    #: Default request timeout in milliseconds; None = no timeout
    #: (blocking until TCP gives up — the paper's Cause 3.1).
    timeout_ms: Optional[int] = None
    #: Default automatic retry count applied to every request.
    retries: int = 0
    #: Whether the default retries also apply to POST (non-idempotent)
    #: requests — the paper's Cause 2.2(b).
    retries_apply_to_post: bool = True
    #: Whether the library automatically routes invalid responses into the
    #: error callback (Volley's behaviour — ⋆ in Table 4).
    auto_response_check: bool = False
    #: Default retry backoff multiplier (1.0 = constant interval).
    backoff_multiplier: float = 1.0


@dataclass
class LibraryModel:
    """Everything NChecker knows about one network library."""

    key: str  # short identifier, e.g. "volley"
    name: str  # display name, e.g. "Volley Library"
    client_classes: frozenset[str] = frozenset()
    target_apis: tuple[TargetAPI, ...] = ()
    config_apis: tuple[ConfigAPI, ...] = ()
    response_check_apis: tuple[ResponseCheckAPI, ...] = ()
    callbacks: tuple[CallbackSpec, ...] = ()
    defaults: LibraryDefaults = field(default_factory=LibraryDefaults)
    #: Whether the library exposes error *types* to its error callbacks
    #: (only Volley in the studied set — paper §4.4.3).
    exposes_error_types: bool = False
    #: Which thread the library delivers its callbacks on: ``True`` for
    #: main-thread delivery (Volley, loopj post to the UI thread),
    #: ``False`` for a library worker thread (OkHttp's dispatcher) — the
    #: seed the thread-context analysis uses for ``lib_callback`` edges.
    callbacks_on_main_thread: bool = True

    @property
    def has_timeout_api(self) -> bool:
        return any(c.kind is ConfigKind.TIMEOUT for c in self.config_apis)

    @property
    def has_retry_api(self) -> bool:
        return any(
            c.kind in (ConfigKind.RETRY, ConfigKind.RETRY_EXCEPTION)
            for c in self.config_apis
        )

    @property
    def has_response_check_api(self) -> bool:
        return bool(self.response_check_apis)

    @property
    def error_callbacks(self) -> tuple[CallbackSpec, ...]:
        return tuple(
            c for c in self.callbacks if c.role in (CallbackRole.ERROR, CallbackRole.COMBINED)
        )

    def config_apis_of_kind(self, kind: ConfigKind) -> tuple[ConfigAPI, ...]:
        return tuple(c for c in self.config_apis if c.kind is kind)


class LibraryRegistry:
    """Index of all annotated APIs across the registered libraries.

    Lookup is by ``(class_name, method_name)``; when a call site's declared
    class is unknown (``?``), fallback matching by method name alone is
    used for names that are unambiguous across the registry — this mirrors
    how the original tool resolved call sites against annotations after
    CHA devirtualisation.
    """

    def __init__(self, libraries: Iterable[LibraryModel] = ()) -> None:
        self.libraries: dict[str, LibraryModel] = {}
        self._targets: dict[tuple[str, str], tuple[LibraryModel, TargetAPI]] = {}
        self._configs: dict[tuple[str, str], tuple[LibraryModel, ConfigAPI]] = {}
        self._resp_checks: dict[tuple[str, str], tuple[LibraryModel, ResponseCheckAPI]] = {}
        self._targets_by_name: dict[str, list[tuple[LibraryModel, TargetAPI]]] = {}
        self._configs_by_name: dict[str, list[tuple[LibraryModel, ConfigAPI]]] = {}
        self._resp_by_name: dict[str, list[tuple[LibraryModel, ResponseCheckAPI]]] = {}
        self._callback_methods: dict[tuple[str, str], tuple[LibraryModel, CallbackSpec]] = {}
        for lib in libraries:
            self.register(lib)

    def register(self, lib: LibraryModel) -> None:
        if lib.key in self.libraries:
            raise ValueError(f"duplicate library key {lib.key!r}")
        self.libraries[lib.key] = lib
        for target in lib.target_apis:
            self._targets[(target.class_name, target.method)] = (lib, target)
            self._targets_by_name.setdefault(target.method, []).append((lib, target))
        for config in lib.config_apis:
            self._configs[(config.class_name, config.method)] = (lib, config)
            self._configs_by_name.setdefault(config.method, []).append((lib, config))
        for check in lib.response_check_apis:
            self._resp_checks[(check.class_name, check.method)] = (lib, check)
            self._resp_by_name.setdefault(check.method, []).append((lib, check))
        for callback in lib.callbacks:
            self._callback_methods[(callback.interface, callback.method)] = (lib, callback)

    # -- lookups -------------------------------------------------------------

    def _lookup(self, exact: dict, by_name: dict, invoke: InvokeExpr):
        found = exact.get((invoke.sig.class_name, invoke.sig.name))
        if found is not None:
            return found
        if invoke.sig.class_name != "?":
            # A qualified call site that did not match exactly is some other
            # class's method (e.g. AsyncTask.execute vs HttpClient.execute).
            return None
        candidates = by_name.get(invoke.sig.name, ())
        if len(candidates) >= 1:
            # Unqualified call sites resolve by method name; ambiguity across
            # libraries is tolerated by returning the first registrant (the
            # checks only need *a* consistent library attribution).
            return candidates[0]
        return None

    def find_target(self, invoke: InvokeExpr) -> Optional[tuple[LibraryModel, TargetAPI]]:
        return self._lookup(self._targets, self._targets_by_name, invoke)

    def find_config(self, invoke: InvokeExpr) -> Optional[tuple[LibraryModel, ConfigAPI]]:
        return self._lookup(self._configs, self._configs_by_name, invoke)

    def find_response_check(
        self, invoke: InvokeExpr
    ) -> Optional[tuple[LibraryModel, ResponseCheckAPI]]:
        return self._lookup(self._resp_checks, self._resp_by_name, invoke)

    def find_callback_spec(
        self, interface: str, method: str
    ) -> Optional[tuple[LibraryModel, CallbackSpec]]:
        return self._callback_methods.get((interface, method))

    def callback_interfaces(self) -> set[str]:
        return {iface for iface, _ in self._callback_methods}

    # -- aggregate stats (sanity-checked against the paper's §4.3 counts) ----

    def counts(self) -> dict[str, int]:
        return {
            "target_apis": sum(len(l.target_apis) for l in self.libraries.values()),
            "config_apis": sum(len(l.config_apis) for l in self.libraries.values()),
            "response_check_apis": sum(
                len(l.response_check_apis) for l in self.libraries.values()
            ),
            "libraries": len(self.libraries),
        }
