"""Model of the Apache ``HttpClient`` (the second Android-native stack).

Blocking API.  Retry behaviour is pluggable via
``setHttpRequestRetryHandler`` (the ``DefaultHttpRequestRetryHandler``
retries 3 times, POST included, when installed); timeouts are set through
``HttpConnectionParams``.
"""

from __future__ import annotations

from .annotations import (
    ConfigAPI,
    ConfigKind,
    HttpMethod,
    LibraryDefaults,
    LibraryModel,
    TargetAPI,
)

_CLIENT = "org.apache.http.impl.client.DefaultHttpClient"
_CONN_PARAMS = "org.apache.http.params.HttpConnectionParams"
_CLIENT_PARAMS = "org.apache.http.client.params.HttpClientParams"
_PROTO_PARAMS = "org.apache.http.params.HttpProtocolParams"

APACHE_HTTPCLIENT = LibraryModel(
    key="apache",
    name="Apache HttpClient",
    client_classes=frozenset({_CLIENT}),
    target_apis=(
        TargetAPI(_CLIENT, "execute", HttpMethod.ANY, method_param_index=0),
    ),
    config_apis=(
        ConfigAPI(_CONN_PARAMS, "setConnectionTimeout", ConfigKind.TIMEOUT, param_index=1),
        ConfigAPI(_CONN_PARAMS, "setSoTimeout", ConfigKind.TIMEOUT, param_index=1),
        ConfigAPI(_CONN_PARAMS, "setSocketBufferSize", ConfigKind.OTHER, param_index=1),
        ConfigAPI(_CONN_PARAMS, "setLinger", ConfigKind.OTHER, param_index=1),
        ConfigAPI(_CONN_PARAMS, "setStaleCheckingEnabled", ConfigKind.OTHER, param_index=1),
        ConfigAPI(_CONN_PARAMS, "setTcpNoDelay", ConfigKind.OTHER, param_index=1),
        ConfigAPI(_CLIENT_PARAMS, "setRedirecting", ConfigKind.OTHER, param_index=1),
        ConfigAPI(_CLIENT_PARAMS, "setAuthenticating", ConfigKind.OTHER, param_index=1),
        ConfigAPI(_CLIENT_PARAMS, "setConnectionManagerTimeout", ConfigKind.TIMEOUT, param_index=1),
        ConfigAPI(_CLIENT, "setHttpRequestRetryHandler", ConfigKind.RETRY),
        ConfigAPI(_CLIENT, "setRedirectHandler", ConfigKind.OTHER),
        ConfigAPI(_CLIENT, "setParams", ConfigKind.OTHER),
        ConfigAPI(_PROTO_PARAMS, "setUserAgent", ConfigKind.OTHER, param_index=1),
        ConfigAPI(_PROTO_PARAMS, "setContentCharset", ConfigKind.OTHER, param_index=1),
        ConfigAPI(_PROTO_PARAMS, "setUseExpectContinue", ConfigKind.OTHER, param_index=1),
    ),
    defaults=LibraryDefaults(
        timeout_ms=None,
        retries=3,  # DefaultHttpRequestRetryHandler
        retries_apply_to_post=True,
    ),
)
