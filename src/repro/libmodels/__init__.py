"""Network library models: the annotated API knowledge NChecker runs on.

``default_registry()`` assembles the six libraries studied in the paper
(§3, Table 4) into a :class:`LibraryRegistry`; §4.3's counts — 14 target
APIs, 77 config APIs, 2 response-checking APIs — hold for this registry
and are asserted in the test suite.
"""

from .android import (
    CACHE_READ_APIS,
    CACHE_WRITE_APIS,
    CALLBACK_REGISTRATION_APIS,
    CALLBACK_UNREGISTRATION_APIS,
    CONNECTIVITY_CHECK_APIS,
    HANDLER_CLASSES,
    HANDLER_NOTIFY_METHODS,
    LOG_CLASSES,
    UI_NOTIFICATION_CLASSES,
    UNREGISTER_FOR,
    is_cache_api,
    is_cache_read,
    is_cache_write,
    is_connectivity_check,
    is_handler_notification,
    is_logging,
    is_ui_notification,
    registration_name,
    unregistration_name,
)
from .annotations import (
    CallbackRole,
    CallbackSpec,
    ConfigAPI,
    ConfigKind,
    HttpMethod,
    LibraryDefaults,
    LibraryModel,
    LibraryRegistry,
    ResponseCheckAPI,
    TargetAPI,
)
from .apache import APACHE_HTTPCLIENT
from .asmack import ASMACK, LONG_LIVED_CONNECTION_CLASSES, is_connectivity_monitor
from .asynchttp import ASYNC_HTTP
from .basichttp import BASIC_HTTP
from .capabilities import (
    CAPABILITY_MATRIX,
    EXTENDED_CAPABILITY_MATRIX,
    EXTENDED_CAUSE_ROWS,
    LIBRARY_COLUMNS,
    NPD_CAUSE_ROWS,
    Tolerance,
    render_table4,
    tolerance,
    tolerates_automatically,
)
from .httpurlconnection import HTTPURLCONNECTION
from .okhttp import OKHTTP
from .volley import VOLLEY, VOLLEY_ERROR_TYPES, VOLLEY_METHOD_CODES, VOLLEY_REQUEST_CLASSES

ALL_LIBRARIES = (
    HTTPURLCONNECTION,
    APACHE_HTTPCLIENT,
    VOLLEY,
    OKHTTP,
    ASYNC_HTTP,
    BASIC_HTTP,
)

#: The two Android-native stacks (Table 7 groups them as "Native").
NATIVE_LIBRARY_KEYS = frozenset({"httpurlconnection", "apache"})

#: Version of the library annotation models.  Bump whenever any model's
#: annotations change (target/config/response APIs, callbacks, defaults):
#: the persistent artifact cache (`repro.pipeline.cachestore`) folds this
#: into every cache key, so stale artifacts derived under older
#: annotations are invalidated instead of silently reused.
LIBMODELS_VERSION = 2  # v2: callbacks_on_main_thread on LibraryModel


def default_registry() -> LibraryRegistry:
    """The registry of all six studied libraries."""
    return LibraryRegistry(ALL_LIBRARIES)


def extended_registry() -> LibraryRegistry:
    """The studied libraries plus the aSmack XMPP model (enables the
    experimental network-switch analysis; changes the §4.3 annotation
    counts, so it is opt-in)."""
    return LibraryRegistry((*ALL_LIBRARIES, ASMACK))


__all__ = [
    "ALL_LIBRARIES",
    "APACHE_HTTPCLIENT",
    "ASMACK",
    "LONG_LIVED_CONNECTION_CLASSES",
    "ASYNC_HTTP",
    "BASIC_HTTP",
    "CACHE_READ_APIS",
    "CACHE_WRITE_APIS",
    "CALLBACK_REGISTRATION_APIS",
    "CALLBACK_UNREGISTRATION_APIS",
    "CAPABILITY_MATRIX",
    "CONNECTIVITY_CHECK_APIS",
    "EXTENDED_CAPABILITY_MATRIX",
    "EXTENDED_CAUSE_ROWS",
    "CallbackRole",
    "CallbackSpec",
    "ConfigAPI",
    "ConfigKind",
    "HANDLER_CLASSES",
    "HANDLER_NOTIFY_METHODS",
    "HTTPURLCONNECTION",
    "HttpMethod",
    "LIBMODELS_VERSION",
    "LIBRARY_COLUMNS",
    "LOG_CLASSES",
    "LibraryDefaults",
    "LibraryModel",
    "LibraryRegistry",
    "NATIVE_LIBRARY_KEYS",
    "NPD_CAUSE_ROWS",
    "OKHTTP",
    "ResponseCheckAPI",
    "TargetAPI",
    "Tolerance",
    "UI_NOTIFICATION_CLASSES",
    "UNREGISTER_FOR",
    "VOLLEY",
    "VOLLEY_ERROR_TYPES",
    "VOLLEY_METHOD_CODES",
    "VOLLEY_REQUEST_CLASSES",
    "default_registry",
    "extended_registry",
    "is_cache_api",
    "is_cache_read",
    "is_cache_write",
    "is_connectivity_monitor",
    "is_connectivity_check",
    "is_handler_notification",
    "is_logging",
    "is_ui_notification",
    "registration_name",
    "render_table4",
    "tolerance",
    "tolerates_automatically",
    "unregistration_name",
]
