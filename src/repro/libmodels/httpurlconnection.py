"""Model of the Android-native ``HttpURLConnection`` client.

Blocking API: requests run where they are called (typically inside an
``AsyncTask.doInBackground``).  There is no retry API; since Android 4.4
the implementation sits on OkHttp and transparently retries alternate
addresses on connection failure, which is why Table 4 marks it ⋆ for
transient-error retry.  There is no default timeout — a dead connection
blocks until TCP gives up (paper Cause 3.1).
"""

from __future__ import annotations

from .annotations import (
    ConfigAPI,
    ConfigKind,
    HttpMethod,
    LibraryDefaults,
    LibraryModel,
    TargetAPI,
)

_CLS = "java.net.HttpURLConnection"
_URL = "java.net.URL"

HTTPURLCONNECTION = LibraryModel(
    key="httpurlconnection",
    name="HttpURLConnection",
    client_classes=frozenset({_CLS, _URL}),
    target_apis=(
        TargetAPI(_CLS, "connect", HttpMethod.ANY),
        TargetAPI(_CLS, "getInputStream", HttpMethod.ANY),
    ),
    config_apis=(
        ConfigAPI(_CLS, "setConnectTimeout", ConfigKind.TIMEOUT),
        ConfigAPI(_CLS, "setReadTimeout", ConfigKind.TIMEOUT),
        ConfigAPI(_CLS, "setRequestMethod", ConfigKind.OTHER),
        ConfigAPI(_CLS, "setDoOutput", ConfigKind.OTHER),
        ConfigAPI(_CLS, "setDoInput", ConfigKind.OTHER),
        ConfigAPI(_CLS, "setUseCaches", ConfigKind.OTHER),
        ConfigAPI(_CLS, "setRequestProperty", ConfigKind.OTHER, param_index=1),
        ConfigAPI(_CLS, "setInstanceFollowRedirects", ConfigKind.OTHER),
        ConfigAPI(_CLS, "setChunkedStreamingMode", ConfigKind.OTHER),
        ConfigAPI(_CLS, "setFixedLengthStreamingMode", ConfigKind.OTHER),
        ConfigAPI(_CLS, "setIfModifiedSince", ConfigKind.OTHER),
        ConfigAPI(_CLS, "setAllowUserInteraction", ConfigKind.OTHER),
    ),
    defaults=LibraryDefaults(
        timeout_ms=None,  # blocking connect: minutes until TCP timeout
        retries=1,  # alternate-address retry on connect failure (KK+)
        retries_apply_to_post=False,
    ),
)
