"""Table 4 of the paper: per-library NPD-tolerance capabilities.

``AUTO`` (⋆ in the paper) means the library tolerates the NPD cause
automatically; ``MANUAL`` (©) means it offers APIs but the developer must
invoke/configure them explicitly.  The matrix is encoded exactly as the
paper prints it and is cross-checked in tests against the per-library
``LibraryDefaults``.
"""

from __future__ import annotations

from enum import Enum

from .annotations import LibraryModel


class Tolerance(Enum):
    AUTO = "*"  # ⋆ — tolerated automatically
    MANUAL = "o"  # © — APIs provided, explicit setup required

    def __str__(self) -> str:
        return self.value


#: Row labels in paper order (Table 4, column 1).
NPD_CAUSE_ROWS: tuple[str, ...] = (
    "No connectivity check",
    "No retry on transient error",
    "Over retry",
    "No timeout",
    "No/Misleading failure notification",
    "No invalid response check",
    "No reconnection on net switch",
    "No auto failure recovery",
)

#: Column keys in paper order (Table 4, columns 2-7).
LIBRARY_COLUMNS: tuple[str, ...] = (
    "httpurlconnection",
    "apache",
    "volley",
    "okhttp",
    "asynchttp",
    "basichttp",
)

_A = Tolerance.AUTO
_M = Tolerance.MANUAL

#: The matrix as printed in the paper (rows × columns above).
CAPABILITY_MATRIX: dict[str, tuple[Tolerance, ...]] = {
    "No connectivity check": (_M, _M, _M, _M, _M, _M),
    "No retry on transient error": (_A, _M, _A, _A, _M, _A),
    "Over retry": (_M, _M, _M, _M, _M, _M),
    "No timeout": (_M, _M, _A, _M, _A, _A),
    "No/Misleading failure notification": (_M, _M, _M, _M, _M, _M),
    "No invalid response check": (_M, _M, _A, _M, _M, _M),
    "No reconnection on net switch": (_M, _M, _M, _M, _M, _M),
    "No auto failure recovery": (_M, _M, _M, _M, _M, _M),
}


#: Extended NPD causes (beyond the paper's Table 4): the taxonomy-driven
#: classes added by the thread-context and callback-lifecycle analyses.
#: Kept in separate structures so the paper matrix above stays exactly as
#: printed (and test-asserted).
EXTENDED_CAUSE_ROWS: tuple[str, ...] = (
    "Network call on UI thread",
    "Connectivity callback leak",
    "No offline cache fallback",
)

#: Extended matrix (rows above × LIBRARY_COLUMNS).  Volley and loopj run
#: the request off-thread automatically (⋆ for UI-thread calls); Volley's
#: request queue caches responses by default (⋆ for offline fallback);
#: everything else offers APIs the developer must wire up (©).
EXTENDED_CAPABILITY_MATRIX: dict[str, tuple[Tolerance, ...]] = {
    "Network call on UI thread": (_M, _M, _A, _M, _A, _M),
    "Connectivity callback leak": (_M, _M, _M, _M, _M, _M),
    "No offline cache fallback": (_M, _M, _A, _M, _M, _M),
}


def tolerance(lib_key: str, cause_row: str) -> Tolerance:
    try:
        column = LIBRARY_COLUMNS.index(lib_key)
    except ValueError:
        raise KeyError(f"unknown library {lib_key!r}") from None
    if cause_row in EXTENDED_CAPABILITY_MATRIX:
        return EXTENDED_CAPABILITY_MATRIX[cause_row][column]
    return CAPABILITY_MATRIX[cause_row][column]


def tolerates_automatically(lib: LibraryModel, cause_row: str) -> bool:
    return tolerance(lib.key, cause_row) is Tolerance.AUTO


def render_table4() -> list[list[str]]:
    """Rows of Table 4 ready for text rendering (header first)."""
    header = ["NPD Causes", *LIBRARY_COLUMNS]
    rows = [header]
    for cause in NPD_CAUSE_ROWS:
        rows.append([cause, *[str(t) for t in CAPABILITY_MATRIX[cause]]])
    return rows
