"""Render a merged metrics snapshot as the ``--stats`` telemetry table.

The table answers "where does a scan spend its time" from the snapshot
alone: one row per pass (wall time distribution, findings, methods
visited), one row per artifact kind (builds/hits, build-time total), and
a trailing list of the engine counters (dataflow worklist iterations,
invalidation cone sizes, patcher rounds, ...).
"""

from __future__ import annotations


def _fmt_ms(value: float) -> str:
    return f"{value:.1f}"


def _fmt_pctl(hist: dict, key: str) -> str:
    """A percentile cell; a trailing ``~`` marks it approximate (the
    reservoir decimated, so p50/p95/p99 are estimates — count/total/max
    stay exact)."""
    text = _fmt_ms(hist.get(key, 0.0))
    if hist.get("decimation", 1) > 1:
        text += "~"
    return text


def _rows_to_table(header: list[str], rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip()]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return lines


def render_telemetry(snapshot: dict) -> str:
    """The per-pass / per-artifact table for one (merged) snapshot."""
    counters: dict = snapshot.get("counters", {})
    histograms: dict = snapshot.get("histograms", {})
    gauges: dict = snapshot.get("gauges", {})
    lines: list[str] = ["== telemetry =="]

    pass_names = sorted(
        {name.split(".")[1] for name in counters if name.startswith("pass.")}
    )
    if pass_names:
        rows = []
        for name in pass_names:
            hist = histograms.get(f"pass.{name}.wall_ms", {})
            rows.append([
                name,
                str(counters.get(f"pass.{name}.runs", 0)),
                str(counters.get(f"pass.{name}.findings", 0)),
                str(counters.get(f"pass.{name}.methods_visited", 0)),
                _fmt_pctl(hist, "p50"),
                _fmt_pctl(hist, "p95"),
                _fmt_pctl(hist, "p99"),
                _fmt_ms(hist.get("max", 0.0)),
                _fmt_ms(hist.get("total", 0.0)),
            ])
        lines.append("-- passes --")
        lines.extend(_rows_to_table(
            ["pass", "runs", "findings", "methods", "p50ms", "p95ms",
             "p99ms", "maxms", "totalms"],
            rows,
        ))

    artifact_names = sorted(
        {
            name.split(".")[1]
            for name in counters
            if name.startswith("artifact.") and name.count(".") == 2
        }
    )
    if artifact_names:
        rows = []
        for name in artifact_names:
            hist = histograms.get(f"artifact.{name}.build_ms", {})
            rows.append([
                name,
                str(counters.get(f"artifact.{name}.builds", 0)),
                str(counters.get(f"artifact.{name}.hits", 0)),
                _fmt_ms(hist.get("total", 0.0)),
            ])
        lines.append("-- artifacts --")
        lines.extend(_rows_to_table(
            ["artifact", "builds", "hits", "build-ms"], rows
        ))

    other = {
        name: value
        for name, value in counters.items()
        if not name.startswith(("pass.", "artifact."))
    }
    engine_hists = {
        name: hist
        for name, hist in histograms.items()
        if not name.startswith(("pass.", "artifact."))
    }
    if other or engine_hists or gauges:
        lines.append("-- engine --")
        for name, value in sorted(other.items()):
            lines.append(f"{name}: {value}")
        for name, value in sorted(gauges.items()):
            lines.append(f"{name}: {value:g}")
        for name, hist in sorted(engine_hists.items()):
            lines.append(
                f"{name}: n={hist.get('count', 0)} "
                f"p50={_fmt_pctl(hist, 'p50')} "
                f"p95={_fmt_pctl(hist, 'p95')} "
                f"p99={_fmt_pctl(hist, 'p99')} "
                f"max={_fmt_ms(hist.get('max', 0.0))}"
            )
    return "\n".join(lines)
