"""The run ledger: an append-only JSONL log of performance runs.

``BENCH_pipeline.json`` is a single overwritten snapshot; the ledger is
its history.  One line per recorded run, each a self-contained JSON
record carrying everything a later ``nchecker bench compare`` needs:

* ``schema_version`` — :data:`LEDGER_SCHEMA_VERSION`, so readers can
  evolve;
* ``kind`` — ``"scan"`` (a ``nchecker scan`` run that collected
  telemetry) or ``"bench"`` (``nchecker bench record`` / the pipeline
  benchmarks);
* ``options_fingerprint`` — one digest over every analysis-shaping
  :class:`NCheckerOptions <repro.core.checker.NCheckerOptions>` field
  (:func:`repro.pipeline.cachestore.fingerprints.
  scan_options_fingerprint`), so runs under different flags never
  compare silently;
* ``app_set`` — ``{"count", "digest"}`` over the scanned app files'
  names and contents (:func:`app_set_digest`);
* ``counters`` / ``gauges`` / ``timings`` — the merged metrics snapshot
  (timings summarized: count/total/p50/p95/p99/max/decimation, raw
  reservoirs dropped so ledger lines stay small);
* ``profile`` — the aggregated span tree (:mod:`repro.obs.profile`);
* ``git_sha`` — ``HEAD`` if the working directory is a git checkout;
* ``run_id`` — a digest of the *deterministic* identity fields only
  (schema, kind, options fingerprint, app set, counters).  Wall-clock
  quantities never enter the identity, so re-running the same code on
  the same apps yields the same ``run_id`` — which is exactly what makes
  an unexpected ``run_id`` change meaningful.

The ledger directory resolves ``$NCHECKER_LEDGER_DIR``, then
``$XDG_STATE_HOME/nchecker``, then ``~/.local/state/nchecker``
(:func:`resolve_ledger_dir`); the file is ``ledger.jsonl``.  Appends are
single ``write()`` calls of one line, so concurrent recorders interleave
whole records; readers skip lines that do not parse instead of dying on
a torn tail.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:
    from ..core.checker import NCheckerOptions

#: Bump on any change to the ledger record layout older readers cannot
#: handle; readers check it before comparing.
LEDGER_SCHEMA_VERSION = 1

#: Schema of the derived exports (``BENCH_pipeline.json``, ``bench
#: record --out/--baseline``): version 1 was the schemaless pre-ledger
#: snapshot, version 2 adds ``schema_version`` + ``provenance``.
BENCH_SCHEMA_VERSION = 2

LEDGER_FILENAME = "ledger.jsonl"


def resolve_ledger_dir(explicit: Optional[str] = None) -> str:
    """The ledger root: ``explicit`` arg, then ``$NCHECKER_LEDGER_DIR``,
    then ``$XDG_STATE_HOME/nchecker`` (``~/.local/state/nchecker``)."""
    if explicit:
        return str(explicit)
    env = os.environ.get("NCHECKER_LEDGER_DIR")
    if env:
        return env
    base = os.environ.get("XDG_STATE_HOME") or os.path.join(
        os.path.expanduser("~"), ".local", "state"
    )
    return os.path.join(base, "nchecker")


def git_head_sha(cwd: Optional[str] = None) -> Optional[str]:
    """``HEAD``'s sha if the working directory is a git checkout with a
    usable ``git``; ``None`` otherwise (never raises)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5, cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and len(sha) == 40 else None


def app_set_digest(paths: Iterable) -> dict:
    """``{"count", "digest"}`` over the app files: basenames plus content
    hashes, order-independent, so the same app set digests identically
    from any directory layout (an unreadable file degrades to its name)."""
    entries = []
    for path in sorted(str(p) for p in paths):
        h = hashlib.blake2b(digest_size=12)
        try:
            h.update(Path(path).read_bytes())
            digest = h.hexdigest()
        except OSError:
            digest = "unreadable"
        entries.append((os.path.basename(path), digest))
    h = hashlib.blake2b(digest_size=16)
    for name, digest in sorted(entries):
        h.update(f"\0{name}={digest}".encode())
    return {"count": len(entries), "digest": h.hexdigest()}


def timing_summary(snapshot: dict) -> dict:
    """Histogram summaries of a metrics snapshot, reservoirs stripped —
    what a ledger record stores under ``timings``."""
    out = {}
    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        out[name] = {
            "count": hist.get("count", 0),
            "total": hist.get("total", 0.0),
            "p50": hist.get("p50", 0.0),
            "p95": hist.get("p95", 0.0),
            "p99": hist.get("p99", 0.0),
            "max": hist.get("max", 0.0),
            "decimation": hist.get("decimation", 1),
        }
    return out


def run_identity(record: dict) -> str:
    """The deterministic identity digest: schema, kind, options
    fingerprint, app set, and counters — **never** wall-clock fields."""
    identity = {
        "schema_version": record.get("schema_version"),
        "kind": record.get("kind"),
        "options_fingerprint": record.get("options_fingerprint"),
        "app_set": record.get("app_set"),
        "counters": record.get("counters"),
    }
    blob = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(blob.encode(), digest_size=12).hexdigest()


_AUTO = object()


def run_record(
    kind: str,
    *,
    options: "NCheckerOptions",
    app_set: dict,
    snapshot: dict,
    label: Optional[str] = None,
    wall_s: Optional[float] = None,
    git_sha=_AUTO,
) -> dict:
    """Build one ledger record from a merged metrics snapshot."""
    from ..pipeline.cachestore.fingerprints import scan_options_fingerprint

    record = {
        "schema_version": LEDGER_SCHEMA_VERSION,
        "kind": kind,
        "label": label,
        "options_fingerprint": scan_options_fingerprint(options),
        "app_set": dict(app_set),
        "git_sha": git_head_sha() if git_sha is _AUTO else git_sha,
        "wall_s": wall_s,
        "counters": dict(snapshot.get("counters", {})),
        "gauges": dict(snapshot.get("gauges", {})),
        "timings": timing_summary(snapshot),
        "profile": snapshot.get("profile"),
    }
    record["run_id"] = run_identity(record)
    return record


def provenance(record: dict) -> dict:
    """The provenance block a derived export (``BENCH_pipeline.json``,
    baseline files) carries alongside its measurements."""
    return {
        key: record.get(key)
        for key in (
            "schema_version", "run_id", "kind", "label",
            "options_fingerprint", "app_set", "git_sha",
        )
    }


class RunLedger:
    """One ledger directory: append records, read them back."""

    def __init__(self, directory: str) -> None:
        self.directory = Path(directory)

    @property
    def path(self) -> Path:
        return self.directory / LEDGER_FILENAME

    def append(self, record: dict) -> dict:
        """Append one record (stamping ``schema_version``/``run_id`` if
        the caller built the dict by hand) as a single JSONL line."""
        record = dict(record)
        record.setdefault("schema_version", LEDGER_SCHEMA_VERSION)
        record.setdefault("run_id", run_identity(record))
        self.directory.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with open(self.path, "a") as fh:
            fh.write(line + "\n")
        return record

    def entries(self) -> list[dict]:
        """Every parseable record, in append order; torn or foreign lines
        are skipped (the append contract makes them rare, not impossible)."""
        if not self.path.exists():
            return []
        out = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                out.append(record)
        return out

    def last(self, kind: Optional[str] = None) -> Optional[dict]:
        """The most recent record (of ``kind``, when given)."""
        for record in reversed(self.entries()):
            if kind is None or record.get("kind") == kind:
                return record
        return None
