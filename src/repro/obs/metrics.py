"""Metrics registry: counters, gauges, timing histograms, snapshot/merge.

Instrumented code records into the *active* registry (module-level
:func:`metrics`, swappable with :func:`set_metrics` / :func:`use_metrics`)
under dotted names — ``pass.connectivity.wall_ms``,
``artifact.callgraph.builds``, ``dataflow.worklist_iterations`` — so one
flat namespace covers every layer of the pipeline.

The registry is process-local by design.  Parallelism is handled by the
**snapshot/merge protocol**: a :meth:`MetricsRegistry.snapshot` is a
JSON-safe dict (picklable, dumpable with ``--metrics``), and
:func:`merge_snapshots` combines any number of them — counters sum,
gauges keep the maximum, histograms pool their samples — which is how
``nchecker scan --jobs N`` workers ship telemetry back over the process
pool and the parent reports one merged view.  Merging is associative and
commutative over the deterministic fields (counts, totals), so a merged
``--jobs N`` run equals a ``--jobs 1`` run wherever the underlying
quantity is deterministic.

Histograms keep their raw samples for p50/p95 (nearest-rank), capped at
:data:`Histogram.CAP` samples by deterministic decimation — counts,
totals and maxima stay exact; percentiles degrade gracefully.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (last write wins; merge keeps the max)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A sample distribution with exact count/total/max and approximate
    (nearest-rank over a decimated reservoir) percentiles."""

    #: Reservoir bound; beyond it every other sample is dropped.
    CAP = 2048

    __slots__ = ("count", "total", "max", "values", "decimation")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.values: list[float] = []
        #: How many observed samples one reservoir slot stands for: ``1``
        #: means percentiles are exact, each halving doubles it.  Exposed
        #: in the snapshot so consumers know when p50/p95/p99 are
        #: approximate.
        self.decimation = 1

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        self.values.append(value)
        if len(self.values) > self.CAP:
            # Deterministic decimation: halve the reservoir, keep the tail
            # arriving at full rate until the next overflow.
            self.values = self.values[::2]
            self.decimation *= 2

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the reservoir (0 when empty)."""
        return percentile(self.values, p)


def percentile(values: list[float], p: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * p // 100))  # ceil(len * p / 100)
    return ordered[int(rank) - 1]


class MetricsRegistry:
    """One process's metrics, keyed by dotted name."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- instrument handles (create on first use) ---------------------------

    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            with self._lock:
                found = self._counters.setdefault(name, Counter())
        return found

    def gauge(self, name: str) -> Gauge:
        found = self._gauges.get(name)
        if found is None:
            with self._lock:
                found = self._gauges.setdefault(name, Gauge())
        return found

    def histogram(self, name: str) -> Histogram:
        found = self._histograms.get(name)
        if found is None:
            with self._lock:
                found = self._histograms.setdefault(name, Histogram())
        return found

    # -- convenience --------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    @contextmanager
    def timer(self, name: str):
        """Time a block into the ``name`` histogram, in milliseconds."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, (time.perf_counter() - start) * 1000.0)

    # -- reads --------------------------------------------------------------

    def counter_value(self, name: str) -> int:
        found = self._counters.get(name)
        return found.value if found is not None else 0

    def gauge_value(self, name: str) -> float:
        found = self._gauges.get(name)
        return found.value if found is not None else 0.0

    # -- snapshot / merge protocol ------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-safe, picklable view of every metric in this registry."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "total": h.total,
                    "max": h.max,
                    "p50": h.percentile(50),
                    "p95": h.percentile(95),
                    "p99": h.percentile(99),
                    "decimation": h.decimation,
                    "values": list(h.values),
                }
                for name, h in sorted(self._histograms.items())
            },
        }


def empty_snapshot() -> dict:
    return {"counters": {}, "gauges": {}, "histograms": {}}


def merge_snapshots(snapshots) -> dict:
    """Merge worker snapshots: counters sum, gauges keep the max,
    histograms pool samples (count/total/max exact, percentiles
    recomputed over the pooled — possibly decimated — reservoirs, the
    merged decimation factor tracking every halving), and profile trees
    (when present — ``scan --profile``) pool node-for-node."""
    from .profile import merge_profiles

    merged = empty_snapshot()
    profiles = []
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            merged["gauges"][name] = max(merged["gauges"].get(name, value), value)
        for name, hist in snap.get("histograms", {}).items():
            into = merged["histograms"].setdefault(
                name,
                {"count": 0, "total": 0.0, "max": 0.0, "values": [],
                 "decimation": 1},
            )
            into["count"] += hist.get("count", 0)
            into["total"] += hist.get("total", 0.0)
            into["max"] = max(into["max"], hist.get("max", 0.0))
            into["decimation"] = max(
                into["decimation"], hist.get("decimation", 1)
            )
            into["values"].extend(hist.get("values", ()))
            while len(into["values"]) > Histogram.CAP:
                into["values"] = into["values"][::2]
                into["decimation"] *= 2
        if snap.get("profile"):
            profiles.append(snap["profile"])
    for hist in merged["histograms"].values():
        hist["p50"] = percentile(hist["values"], 50)
        hist["p95"] = percentile(hist["values"], 95)
        hist["p99"] = percentile(hist["values"], 99)
    merged["counters"] = dict(sorted(merged["counters"].items()))
    merged["gauges"] = dict(sorted(merged["gauges"].items()))
    merged["histograms"] = dict(sorted(merged["histograms"].items()))
    if profiles:
        merged["profile"] = merge_profiles(profiles)
    return merged


#: The active registry.  Always present — recording is cheap enough to
#: leave on — so library callers can read telemetry without opting in.
_ACTIVE = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The currently active registry."""
    return _ACTIVE


def set_metrics(new: MetricsRegistry) -> MetricsRegistry:
    """Install ``new`` as the active registry; returns the previous one."""
    global _ACTIVE
    old = _ACTIVE
    _ACTIVE = new
    return old


@contextmanager
def use_metrics(new: MetricsRegistry | None = None):
    """Scoped :func:`set_metrics` — yields the (fresh by default)
    registry and restores the previous one on exit."""
    new = new if new is not None else MetricsRegistry()
    old = set_metrics(new)
    try:
        yield new
    finally:
        set_metrics(old)
