"""Observability: structured tracing, metrics, profiles, and the ledger.

The telemetry subsystem behind ``nchecker scan --trace/--metrics/--stats
/--profile/--progress`` and ``nchecker bench`` (see
``docs/OBSERVABILITY.md`` and ``docs/BENCHMARKS.md``):

* :mod:`repro.obs.trace` — span-based tracer (context-manager API,
  near-zero overhead when disabled) with Chrome trace-event export;
* :mod:`repro.obs.metrics` — counters / gauges / timing histograms with
  a serializable snapshot/merge protocol for process-pool workers;
* :mod:`repro.obs.profile` — folds the span stream into an aggregated
  self/cumulative wall-time tree (``scan --profile``);
* :mod:`repro.obs.events` — the append-only JSONL run ledger
  (``nchecker bench record``);
* :mod:`repro.obs.compare` — baseline/current regression comparison
  (``nchecker bench compare|gate``);
* :mod:`repro.obs.log` — the ``nchecker`` diagnostic logger tree
  (stderr-only, so machine-readable stdout stays clean);
* :mod:`repro.obs.render` — the ``--stats`` telemetry table.

Instrumented code uses the two module-level accessors::

    from ..obs import metrics, span

    with span("pass:connectivity"):
        with metrics().timer("pass.connectivity.wall_ms"):
            ...
"""

from .compare import (
    DEFAULT_TIMING_MIN_MS,
    DEFAULT_TIMING_THRESHOLD,
    CompareResult,
    compare_runs,
    load_run,
)
from .events import (
    BENCH_SCHEMA_VERSION,
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    app_set_digest,
    git_head_sha,
    provenance,
    resolve_ledger_dir,
    run_record,
)
from .log import configure_logging, get_logger
from .metrics import (
    MetricsRegistry,
    empty_snapshot,
    merge_snapshots,
    metrics,
    set_metrics,
    use_metrics,
)
from .profile import (
    flatten_profile,
    merge_profiles,
    profile_from_events,
    profile_total_ms,
    render_profile,
)
from .render import render_telemetry
from .trace import (
    NULL_SPAN,
    Tracer,
    chrome_trace,
    set_tracer,
    span,
    tracer,
    use_tracer,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "CompareResult",
    "DEFAULT_TIMING_MIN_MS",
    "DEFAULT_TIMING_THRESHOLD",
    "LEDGER_SCHEMA_VERSION",
    "MetricsRegistry",
    "NULL_SPAN",
    "RunLedger",
    "Tracer",
    "app_set_digest",
    "chrome_trace",
    "compare_runs",
    "configure_logging",
    "empty_snapshot",
    "flatten_profile",
    "get_logger",
    "git_head_sha",
    "load_run",
    "merge_profiles",
    "merge_snapshots",
    "metrics",
    "profile_from_events",
    "profile_total_ms",
    "provenance",
    "render_profile",
    "render_telemetry",
    "resolve_ledger_dir",
    "run_record",
    "set_metrics",
    "set_tracer",
    "span",
    "tracer",
    "use_metrics",
    "use_tracer",
]
