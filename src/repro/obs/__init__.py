"""Observability: structured tracing, metrics, and diagnostic logging.

The telemetry subsystem behind ``nchecker scan --trace/--metrics/--stats
/--progress`` (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.trace` — span-based tracer (context-manager API,
  near-zero overhead when disabled) with Chrome trace-event export;
* :mod:`repro.obs.metrics` — counters / gauges / timing histograms with
  a serializable snapshot/merge protocol for process-pool workers;
* :mod:`repro.obs.log` — the ``nchecker`` diagnostic logger tree
  (stderr-only, so machine-readable stdout stays clean);
* :mod:`repro.obs.render` — the ``--stats`` telemetry table.

Instrumented code uses the two module-level accessors::

    from ..obs import metrics, span

    with span("pass:connectivity"):
        with metrics().timer("pass.connectivity.wall_ms"):
            ...
"""

from .log import configure_logging, get_logger
from .metrics import (
    MetricsRegistry,
    empty_snapshot,
    merge_snapshots,
    metrics,
    set_metrics,
    use_metrics,
)
from .render import render_telemetry
from .trace import (
    NULL_SPAN,
    Tracer,
    chrome_trace,
    set_tracer,
    span,
    tracer,
    use_tracer,
)

__all__ = [
    "MetricsRegistry",
    "NULL_SPAN",
    "Tracer",
    "chrome_trace",
    "configure_logging",
    "empty_snapshot",
    "get_logger",
    "merge_snapshots",
    "metrics",
    "render_telemetry",
    "set_metrics",
    "set_tracer",
    "span",
    "tracer",
    "use_metrics",
    "use_tracer",
]
