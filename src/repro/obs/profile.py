"""Span-tree profile attribution: where a scan's wall time actually goes.

The tracer (:mod:`repro.obs.trace`) emits a flat Chrome-trace event
stream (``B``/``E`` pairs per ``(pid, tid)`` track).  This module folds
that stream into an **aggregated call tree**: one node per span *name*
per tree position, carrying

* ``count`` — how many spans closed at this position,
* ``cum_ms`` — wall time inside the span, children included,
* ``self_ms`` — wall time attributed to the span itself (``cum`` minus
  the time spent in its direct children).

Sibling spans with the same name pool into one node, so the tree answers
"where does the time go" by layer (``scan`` → ``pass:connectivity`` →
``artifact:callgraph`` → ...) rather than listing thousands of
individual spans the way the raw trace does.

A profile is a plain JSON-safe forest — ``{name: node}`` with
``node = {"count", "cum_ms", "self_ms", "children": {...}}`` — and
:func:`merge_profiles` pools any number of them (counts and times sum,
children merge recursively by name).  Merging is associative and
commutative, which is how per-app worker profiles survive the
``--jobs N`` snapshot/merge protocol: the parent's merged tree equals a
``--jobs 1`` run node-for-node on names and counts (times are wall
clock, so they agree only statistically).

``scan --profile`` renders the merged tree as a top-down table
(:func:`render_profile`, stderr) and embeds it in the ``--metrics`` JSON
under a ``profile`` key; ``nchecker bench`` records and diffs it
(:mod:`repro.obs.compare`).
"""

from __future__ import annotations

from typing import Iterable, Mapping


def _new_node() -> dict:
    return {"count": 0, "cum_ms": 0.0, "self_ms": 0.0, "children": {}}


def profile_from_events(events: Iterable[Mapping]) -> dict:
    """Fold a Chrome-trace event stream into an aggregated profile forest.

    Nesting is reconstructed per ``(pid, tid)`` track — the same contract
    Chrome applies to ``B``/``E`` pairs — and same-named spans at the
    same tree position aggregate into one node.  Malformed streams are
    tolerated rather than rejected: an ``E`` with no open ``B`` on its
    track is skipped, and a ``B`` that never closes contributes no time
    (its node is pruned unless a closed descendant needs the path).
    """
    forest: dict = {}
    # One stack per (pid, tid) track; frame = [node, start_ts, child_ms].
    stacks: dict[tuple, list] = {}
    for event in events:
        ph = event.get("ph")
        if ph not in ("B", "E"):
            continue
        stack = stacks.setdefault((event.get("pid"), event.get("tid")), [])
        if ph == "B":
            siblings = stack[-1][0]["children"] if stack else forest
            node = siblings.get(event["name"])
            if node is None:
                node = siblings[event["name"]] = _new_node()
            stack.append([node, event["ts"], 0.0])
        else:
            if not stack:
                continue  # E without B: tolerate, attribute nothing
            node, start_ts, child_ms = stack.pop()
            dur_ms = max(0.0, (event["ts"] - start_ts) / 1000.0)
            node["count"] += 1
            node["cum_ms"] += dur_ms
            node["self_ms"] += max(0.0, dur_ms - child_ms)
            if stack:
                stack[-1][2] += dur_ms
    return _normalize(forest)


def _normalize(forest: dict) -> dict:
    """Prune never-closed empty nodes and sort children by name, so two
    profiles with the same content serialize identically."""
    out = {}
    for name in sorted(forest):
        node = forest[name]
        children = _normalize(node["children"])
        if node["count"] == 0 and not children:
            continue
        out[name] = {
            "count": node["count"],
            "cum_ms": node["cum_ms"],
            "self_ms": node["self_ms"],
            "children": children,
        }
    return out


def merge_profiles(profiles: Iterable[Mapping]) -> dict:
    """Pool profile forests: counts and times sum, children merge by
    name.  Associative and commutative (up to float addition order), so
    worker trees merge into the same forest regardless of arrival
    order — the property the ``--jobs`` protocol relies on."""
    merged: dict = {}
    for forest in profiles:
        if not forest:
            continue
        _merge_into(merged, forest)
    return _normalize(merged)


def _merge_into(dst: dict, src: Mapping) -> None:
    for name, node in src.items():
        into = dst.get(name)
        if into is None:
            into = dst[name] = _new_node()
        into["count"] += node.get("count", 0)
        into["cum_ms"] += node.get("cum_ms", 0.0)
        into["self_ms"] += node.get("self_ms", 0.0)
        _merge_into(into["children"], node.get("children", {}))


def profile_total_ms(profile: Mapping) -> float:
    """Total attributed wall time: the sum of the root spans' cum_ms."""
    return sum(node.get("cum_ms", 0.0) for node in profile.values())


def flatten_profile(profile: Mapping, _prefix: tuple = ()) -> dict:
    """``{"a/b/c": {count, cum_ms, self_ms}}`` per tree position — the
    node-for-node view :mod:`repro.obs.compare` diffs."""
    flat = {}
    for name, node in profile.items():
        path = _prefix + (name,)
        flat["/".join(path)] = {
            "count": node.get("count", 0),
            "cum_ms": node.get("cum_ms", 0.0),
            "self_ms": node.get("self_ms", 0.0),
        }
        flat.update(flatten_profile(node.get("children", {}), path))
    return flat


def render_profile(profile: Mapping) -> str:
    """The ``scan --stats --profile`` table: top-down, siblings sorted by
    cumulative time, with per-node self/cum and share of the total."""
    total = profile_total_ms(profile)
    rows: list[list[str]] = []

    def walk(forest: Mapping, depth: int) -> None:
        ordered = sorted(
            forest.items(), key=lambda kv: (-kv[1].get("cum_ms", 0.0), kv[0])
        )
        for name, node in ordered:
            share = 100.0 * node["cum_ms"] / total if total else 0.0
            rows.append([
                "  " * depth + name,
                str(node["count"]),
                f"{node['self_ms']:.1f}",
                f"{node['cum_ms']:.1f}",
                f"{share:.1f}",
            ])
            walk(node.get("children", {}), depth + 1)

    walk(profile, 0)
    header = ["span", "count", "self-ms", "cum-ms", "cum%"]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = ["== profile =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip())
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    if not rows:
        lines.append("(no spans recorded)")
    return "\n".join(lines)
