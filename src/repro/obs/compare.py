"""Regression comparison between two recorded runs.

``nchecker bench compare A B`` and ``nchecker bench gate`` both reduce
to :func:`compare_runs` over two run records (ledger entries, ledger
files, derived exports, or raw ``--metrics`` snapshots — see
:func:`load_run`):

* **Counters** exact-match where deterministic.  The analysis pipeline
  is deterministic over (apps, options) — the scan-scaling benchmark
  asserts ``--jobs N`` counters equal serial ones, and counters are
  hash-seed-stable — so any drift in a deterministic counter is a
  behaviour change, not noise.  Counters under
  :data:`NONDETERMINISTIC_COUNTER_PREFIXES` (cache hit/miss counts,
  which depend on what previous runs left behind) are reported but never
  gate.
* **Timings** compare with a configurable relative threshold (default
  ±20%, :data:`DEFAULT_TIMING_THRESHOLD`): a histogram's ``total``
  exceeding ``baseline * (1 + threshold)`` is a regression, dropping
  below ``baseline * (1 - threshold)`` is reported as an improvement.
  Timings whose totals sit under an absolute noise floor
  (:data:`DEFAULT_TIMING_MIN_MS`) never gate: a relative threshold on a
  0.04 ms total measures scheduler jitter, not the code.
* **Profile trees** compare node-for-node on the deterministic axis:
  a span path whose *count* changed is a regression (the tree's shape is
  a function of the code, like a counter); per-node times ride the same
  relative threshold but only *inform* — the pass/artifact timing
  histograms already gate wall time, and double-charging the same clock
  noise would double the flake rate.

An options-fingerprint mismatch is itself a regression: comparing a
``--extended-checks`` run against a default baseline would otherwise
"fail" every counter in a perfectly healthy build.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from .profile import flatten_profile

#: Relative wall-time threshold: 0.20 means a timing may grow 20% before
#: it gates.
DEFAULT_TIMING_THRESHOLD = 0.20

#: Absolute noise floor: a timing gates only when baseline or current
#: total reaches this many milliseconds.
DEFAULT_TIMING_MIN_MS = 5.0

#: Counter prefixes whose values depend on state outside the run (what a
#: previous scan left in the persistent cache) — compared for display,
#: never gated.
NONDETERMINISTIC_COUNTER_PREFIXES = ("cache.",)


def load_run(path) -> dict:
    """Load a run record from any of the shapes the tooling writes:

    * a ledger ``.jsonl`` file (takes the **last** parseable record),
    * a single ledger-entry / baseline / ``bench record --out`` JSON
      object (``provenance`` block lifted to the top level if present),
    * a raw ``scan --metrics`` snapshot (wrapped as an anonymous record).
    """
    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        data = None
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                candidate = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(candidate, dict):
                data = candidate
        if data is None:
            raise ValueError(f"{path}: no parseable run record")
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object, got {type(data).__name__}")
    record = dict(data)
    prov = record.pop("provenance", None)
    if isinstance(prov, dict):
        for key, value in prov.items():
            record.setdefault(key, value)
    if "counters" not in record:
        raise ValueError(f"{path}: record carries no counters section")
    # A raw --metrics snapshot stores full histograms; summarize them
    # into the timings shape ledger records use.
    if "timings" not in record and "histograms" in record:
        from .events import timing_summary

        record["timings"] = timing_summary(record)
    record.setdefault("timings", {})
    return record


def _is_deterministic(counter: str) -> bool:
    return not counter.startswith(NONDETERMINISTIC_COUNTER_PREFIXES)


@dataclass
class CompareResult:
    """The outcome of one baseline/current diff."""

    baseline: dict
    current: dict
    threshold: float
    #: ``[name, base, cur, note]`` per differing counter.
    counter_rows: list = field(default_factory=list)
    #: ``[name, base_ms, cur_ms, delta_pct, note]`` per reported timing.
    timing_rows: list = field(default_factory=list)
    #: ``[path, base_count, cur_count, base_ms, cur_ms, note]``.
    profile_rows: list = field(default_factory=list)
    #: Human-readable regression sentences; empty means the gate passes.
    regressions: list = field(default_factory=list)
    counters_compared: int = 0
    timings_compared: int = 0

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        pct = self.threshold * 100.0
        lines = ["== bench compare =="]
        for role, rec in (("baseline", self.baseline), ("current", self.current)):
            bits = [str(rec.get("run_id", "?"))]
            if rec.get("label"):
                bits.append(str(rec["label"]))
            if rec.get("git_sha"):
                bits.append(str(rec["git_sha"])[:10])
            apps = (rec.get("app_set") or {}).get("count")
            if apps is not None:
                bits.append(f"{apps} app(s)")
            lines.append(f"{role}: {', '.join(bits)}")
        lines.append(
            f"-- counters: {self.counters_compared} compared, "
            f"{len(self.counter_rows)} differ --"
        )
        for name, base, cur, note in self.counter_rows:
            lines.append(f"{name}: {base} -> {cur}  [{note}]")
        lines.append(
            f"-- timings: {self.timings_compared} compared, "
            f"threshold ±{pct:.0f}% --"
        )
        for name, base, cur, delta, note in self.timing_rows:
            arrow = f"{base:.1f} -> {cur:.1f} ms"
            delta_s = f"{delta:+.0f}%" if delta is not None else "n/a"
            lines.append(f"{name}: {arrow} ({delta_s})  [{note}]")
        if self.profile_rows:
            lines.append("-- profile --")
            for path, bc, cc, bms, cms, note in self.profile_rows:
                lines.append(
                    f"{path}: count {bc} -> {cc}, "
                    f"cum {bms:.1f} -> {cms:.1f} ms  [{note}]"
                )
        if self.regressions:
            lines.append(f"-- verdict: {len(self.regressions)} regression(s) --")
            lines.extend(f"REGRESSION: {r}" for r in self.regressions)
        else:
            lines.append("-- verdict: OK --")
        return "\n".join(lines)


def compare_runs(
    baseline: dict,
    current: dict,
    threshold: float = DEFAULT_TIMING_THRESHOLD,
    min_total_ms: float = DEFAULT_TIMING_MIN_MS,
) -> CompareResult:
    """Diff two run records; see the module docstring for the rules."""
    result = CompareResult(baseline, current, threshold)

    base_fp = baseline.get("options_fingerprint")
    cur_fp = current.get("options_fingerprint")
    if base_fp and cur_fp and base_fp != cur_fp:
        result.regressions.append(
            f"options fingerprint differs ({base_fp} vs {cur_fp}) — "
            "these runs measured different configurations"
        )
    base_apps = baseline.get("app_set") or {}
    cur_apps = current.get("app_set") or {}
    if base_apps.get("digest") and cur_apps.get("digest") and (
        base_apps["digest"] != cur_apps["digest"]
    ):
        result.regressions.append(
            "app set differs — these runs scanned different inputs"
        )

    base_counters = baseline.get("counters", {})
    cur_counters = current.get("counters", {})
    names = sorted(set(base_counters) | set(cur_counters))
    result.counters_compared = len(names)
    for name in names:
        base = base_counters.get(name, 0)
        cur = cur_counters.get(name, 0)
        if base == cur:
            continue
        if _is_deterministic(name):
            result.counter_rows.append([name, base, cur, "MISMATCH"])
            result.regressions.append(
                f"deterministic counter {name} changed: {base} -> {cur}"
            )
        else:
            result.counter_rows.append([name, base, cur, "state-dependent"])

    base_timings = baseline.get("timings", {})
    cur_timings = current.get("timings", {})
    shared = sorted(set(base_timings) & set(cur_timings))
    result.timings_compared = len(shared)
    for name in shared:
        base = base_timings[name].get("total", 0.0)
        cur = cur_timings[name].get("total", 0.0)
        if base <= 0.0:
            continue  # nothing to take a ratio against
        if max(base, cur) < min_total_ms:
            continue  # under the noise floor: jitter, not behaviour
        delta = (cur - base) / base
        if delta > threshold:
            result.timing_rows.append(
                [name, base, cur, delta * 100.0, "REGRESSION"]
            )
            result.regressions.append(
                f"timing {name} regressed {delta * 100.0:+.0f}% "
                f"({base:.1f} -> {cur:.1f} ms, threshold "
                f"±{threshold * 100.0:.0f}%)"
            )
        elif delta < -threshold:
            result.timing_rows.append(
                [name, base, cur, delta * 100.0, "improved"]
            )
        elif abs(delta) >= threshold / 2.0:
            result.timing_rows.append([name, base, cur, delta * 100.0, "ok"])
    for name in sorted(set(base_timings) - set(cur_timings)):
        result.timing_rows.append(
            [name, base_timings[name].get("total", 0.0), 0.0, None, "gone"]
        )
    for name in sorted(set(cur_timings) - set(base_timings)):
        result.timing_rows.append(
            [name, 0.0, cur_timings[name].get("total", 0.0), None, "new"]
        )

    base_profile = flatten_profile(baseline.get("profile") or {})
    cur_profile = flatten_profile(current.get("profile") or {})
    if base_profile and cur_profile:
        for path in sorted(set(base_profile) | set(cur_profile)):
            b = base_profile.get(path, {"count": 0, "cum_ms": 0.0})
            c = cur_profile.get(path, {"count": 0, "cum_ms": 0.0})
            if b["count"] != c["count"]:
                result.profile_rows.append(
                    [path, b["count"], c["count"],
                     b["cum_ms"], c["cum_ms"], "MISMATCH"]
                )
                result.regressions.append(
                    f"profile node {path} count changed: "
                    f"{b['count']} -> {c['count']}"
                )
            elif b["cum_ms"] > 0.0 and (
                max(b["cum_ms"], c["cum_ms"]) >= min_total_ms
            ) and (
                abs(c["cum_ms"] - b["cum_ms"]) / b["cum_ms"] > threshold
            ):
                result.profile_rows.append(
                    [path, b["count"], c["count"],
                     b["cum_ms"], c["cum_ms"], "time shifted"]
                )
    return result


def gate(
    baseline: dict,
    current: dict,
    threshold: float = DEFAULT_TIMING_THRESHOLD,
    min_total_ms: float = DEFAULT_TIMING_MIN_MS,
) -> tuple[int, CompareResult]:
    """The ``bench gate`` core: ``(exit_code, result)`` — nonzero on any
    regression."""
    result = compare_runs(baseline, current, threshold, min_total_ms)
    return (0 if result.ok else 1), result
