"""Span-based tracer with Chrome trace-event export.

One global :class:`Tracer` is active at a time (swap it with
:func:`set_tracer` / :func:`use_tracer`); instrumented code opens spans
through the module-level :func:`span` helper::

    with span("pass:connectivity", package="com.app"):
        ...

Design constraints, in order:

* **Near-zero overhead when disabled.**  The default tracer is disabled;
  ``span()`` then returns one shared :data:`NULL_SPAN` singleton — no
  object allocation, no timestamp read, no lock.  The overhead-guard
  test pins this down by counting :class:`_Span` allocations during an
  untraced scan.
* **Thread-safe.**  Spans stamp the opening thread's id and append begin
  /end events under a lock, so concurrent threads interleave without
  corrupting the buffer; nesting is reconstructed per ``tid``, which is
  exactly the Chrome trace-event contract for ``B``/``E`` pairs.
* **Process-safe by export/merge.**  A tracer never crosses a process
  boundary: each :mod:`repro.pipeline.batch` worker installs its own
  enabled tracer, exports the event list (plain dicts, picklable), and
  the parent concatenates the lists.  Events carry the worker's real
  ``pid``, so Perfetto shows one track group per worker process.

The export format is the Chrome trace-event JSON array format wrapped in
the standard object envelope (``{"traceEvents": [...]}``), loadable in
``chrome://tracing`` and https://ui.perfetto.dev.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager


class _NullSpan:
    """The do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: Shared no-op span — identity-comparable, never allocated per call.
NULL_SPAN = _NullSpan()


class _Span:
    """A live span: emits a ``B`` event on enter, an ``E`` on exit."""

    __slots__ = ("_tracer", "name", "args")

    def __init__(self, tracer: "Tracer", name: str, args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        self._tracer._emit("B", self.name, self.args)
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._emit("E", self.name, None)
        return False


class Tracer:
    """Collects trace events for one process."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        #: Spans opened since creation/clear — the overhead guard reads
        #: this to prove a disabled scan opened none.
        self.spans_opened = 0
        self._events: list[dict] = []
        self._lock = threading.Lock()
        self._pid = os.getpid()

    def span(self, name: str, **args):
        """A context manager tracing ``name``; :data:`NULL_SPAN` (no
        allocation) while the tracer is disabled."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, args)

    def _emit(self, ph: str, name: str, args) -> None:
        event = {
            "name": name,
            "cat": "nchecker",
            "ph": ph,
            "ts": time.time_ns() // 1_000,  # microseconds, wall clock
            "pid": self._pid,
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = dict(args)
        with self._lock:
            if ph == "B":
                self.spans_opened += 1
            self._events.append(event)

    def export(self) -> list[dict]:
        """The collected events (copies the list; events are plain dicts
        and picklable, ready to ship across a process pool)."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.spans_opened = 0


#: The active tracer; disabled by default so library users pay nothing.
_ACTIVE = Tracer(enabled=False)


def tracer() -> Tracer:
    """The currently active tracer."""
    return _ACTIVE


def set_tracer(new: Tracer) -> Tracer:
    """Install ``new`` as the active tracer; returns the previous one."""
    global _ACTIVE
    old = _ACTIVE
    _ACTIVE = new
    return old


@contextmanager
def use_tracer(new: Tracer):
    """Scoped :func:`set_tracer` (restores the previous tracer)."""
    old = set_tracer(new)
    try:
        yield new
    finally:
        set_tracer(old)


def span(name: str, **args):
    """Open a span on the active tracer (no-op singleton when disabled)."""
    active = _ACTIVE
    if not active.enabled:
        return NULL_SPAN
    return _Span(active, name, args)


def chrome_trace(events: list[dict]) -> dict:
    """Wrap merged event lists in the Chrome trace-event JSON envelope."""
    return {"traceEvents": list(events), "displayTimeUnit": "ms"}
