"""Diagnostic logging under one ``nchecker`` logger tree.

Everything that is *about* a run rather than *output of* a run — "wrote
SARIF log to ...", per-app progress heartbeats, debug chatter — goes
through :func:`get_logger` so machine-readable stdout (``--json`` /
``--sarif`` / report text) is never polluted: the handler writes to
whatever ``sys.stderr`` is at emit time (so pytest capture and stream
redirection both work), and ``--quiet`` / ``--verbose`` move one level
knob instead of hunting down prints.

Verbosity mapping (:func:`configure_logging`): ``-1`` or lower → errors
only, ``0`` (default) → info, ``1`` or higher → debug.
"""

from __future__ import annotations

import logging
import sys

ROOT_LOGGER = "nchecker"


class _DynamicStderrHandler(logging.Handler):
    """Writes to the *current* ``sys.stderr`` (looked up per record, not
    captured at handler creation — test harnesses swap the stream)."""

    def emit(self, record: logging.LogRecord) -> None:
        try:
            sys.stderr.write(self.format(record) + "\n")
        except Exception:  # pragma: no cover - never raise out of logging
            self.handleError(record)


def get_logger(name: str = "") -> logging.Logger:
    """The ``nchecker`` logger, or a child (``get_logger("cli")``)."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}" if name else ROOT_LOGGER)


def configure_logging(verbosity: int = 0) -> logging.Logger:
    """Attach the stderr handler (idempotent) and set the level from the
    CLI's ``--quiet``/``--verbose`` count."""
    logger = get_logger()
    if not any(isinstance(h, _DynamicStderrHandler) for h in logger.handlers):
        handler = _DynamicStderrHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
    logger.propagate = False
    if verbosity < 0:
        logger.setLevel(logging.ERROR)
    elif verbosity == 0:
        logger.setLevel(logging.INFO)
    else:
        logger.setLevel(logging.DEBUG)
    return logger
