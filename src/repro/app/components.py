"""Android component kinds, lifecycle methods, and UI callbacks.

NChecker classifies a network request by which component the call chain
starts in (paper §4.4.2): requests reached from an **Activity** entry
point are user-initiated and time-sensitive; requests reached from a
**Service** entry point are background and should not be retried
aggressively.  This module centralises the framework knowledge needed for
that classification.
"""

from __future__ import annotations

from enum import Enum


class ComponentKind(Enum):
    ACTIVITY = "activity"
    SERVICE = "service"
    RECEIVER = "receiver"
    PROVIDER = "provider"


#: Framework base classes per component kind.
COMPONENT_BASE_CLASSES: dict[ComponentKind, tuple[str, ...]] = {
    ComponentKind.ACTIVITY: (
        "android.app.Activity",
        "android.support.v7.app.AppCompatActivity",
        "android.app.ListActivity",
        "android.app.FragmentActivity",
    ),
    ComponentKind.SERVICE: (
        "android.app.Service",
        "android.app.IntentService",
        "android.app.job.JobService",
    ),
    ComponentKind.RECEIVER: ("android.content.BroadcastReceiver",),
    ComponentKind.PROVIDER: ("android.content.ContentProvider",),
}

#: Lifecycle entry points per component kind (called by the framework).
LIFECYCLE_METHODS: dict[ComponentKind, tuple[str, ...]] = {
    ComponentKind.ACTIVITY: (
        "onCreate",
        "onStart",
        "onResume",
        "onPause",
        "onStop",
        "onDestroy",
        "onRestart",
    ),
    ComponentKind.SERVICE: (
        "onCreate",
        "onStartCommand",
        "onHandleIntent",
        "onBind",
        "onDestroy",
    ),
    ComponentKind.RECEIVER: ("onReceive",),
    ComponentKind.PROVIDER: ("onCreate", "query", "insert", "update", "delete"),
}

#: UI-event callbacks: entry points triggered by direct user interaction.
#: A request reachable from one of these is *user-initiated* even when the
#: declaring class is a listener object rather than the Activity itself.
UI_CALLBACK_METHODS: frozenset[str] = frozenset(
    {
        "onClick",
        "onLongClick",
        "onItemClick",
        "onItemSelected",
        "onMenuItemClick",
        "onOptionsItemSelected",
        "onEditorAction",
        "onRefresh",
        "onQueryTextSubmit",
        "onTouch",
        "onKey",
    }
)

#: Framework superclass edges registered into every app's class hierarchy
#: so `is_subtype` works across the application/framework boundary.
FRAMEWORK_HIERARCHY: tuple[tuple[str, str], ...] = (
    ("android.app.Activity", "android.content.Context"),
    ("android.app.Service", "android.content.Context"),
    ("android.app.IntentService", "android.app.Service"),
    ("android.app.job.JobService", "android.app.Service"),
    ("android.app.ListActivity", "android.app.Activity"),
    ("android.app.FragmentActivity", "android.app.Activity"),
    ("android.support.v7.app.AppCompatActivity", "android.app.Activity"),
    ("android.os.AsyncTask", "java.lang.Object"),
)

#: AsyncTask pseudo-lifecycle: `execute()` leads the framework to call
#: these on the task object (doInBackground off the UI thread, the rest on
#: the UI thread).
ASYNC_TASK_CLASS = "android.os.AsyncTask"
ASYNC_TASK_EXECUTE_METHODS = ("execute", "executeOnExecutor")
ASYNC_TASK_CALLBACKS = (
    "onPreExecute",
    "doInBackground",
    "onProgressUpdate",
    "onPostExecute",
    "onCancelled",
)

#: Runnable/Thread dispatch.
RUNNABLE_INTERFACE = "java.lang.Runnable"
THREAD_CLASS = "java.lang.Thread"
HANDLER_CLASS = "android.os.Handler"
HANDLER_POST_METHODS = ("post", "postDelayed", "postAtTime")
THREAD_START_METHODS = ("start",)
EXECUTOR_SUBMIT_METHODS = ("execute", "submit", "scheduleTask", "schedule")
