"""The APK container: manifest + class hierarchy, the unit NChecker scans."""

from __future__ import annotations

from typing import Iterator, Optional

from ..ir.classes import ClassHierarchy, IRClass
from ..ir.method import IRMethod
from .components import COMPONENT_BASE_CLASSES, FRAMEWORK_HIERARCHY, ComponentKind
from .manifest import Manifest


class APK:
    """An analysable app binary: a manifest plus its classes.

    Construction wires the modelled Android framework hierarchy into the
    app's :class:`ClassHierarchy`, so subtype queries spanning the
    framework boundary (``MyActivity <: android.content.Context``) work.
    """

    def __init__(self, manifest: Manifest, classes: Optional[list[IRClass]] = None) -> None:
        self.manifest = manifest
        self.hierarchy = ClassHierarchy()
        for sub, sup in FRAMEWORK_HIERARCHY:
            self.hierarchy.add_external_edge(sub, sup)
        for cls in classes or []:
            self.add_class(cls)

    @property
    def package(self) -> str:
        return self.manifest.package

    def add_class(self, cls: IRClass) -> None:
        self.hierarchy.add_class(cls)

    def classes(self) -> Iterator[IRClass]:
        yield from self.hierarchy

    def methods(self) -> Iterator[IRMethod]:
        for cls in self.hierarchy:
            yield from cls.methods()

    def get_class(self, name: str) -> Optional[IRClass]:
        return self.hierarchy.get(name)

    def component_kind_of(self, class_name: str) -> Optional[ComponentKind]:
        """The component kind of ``class_name``, from the manifest first and
        falling back to the framework base-class hierarchy (inner classes
        and helpers are not declared in the manifest)."""
        declared = self.manifest.component_kind(class_name)
        if declared is not None:
            return declared
        for kind, bases in COMPONENT_BASE_CLASSES.items():
            for base in bases:
                if self.hierarchy.is_subtype(class_name, base):
                    return kind
        return None

    def validate(self) -> None:
        """Check manifest/class consistency and every method body."""
        for _, name in self.manifest.components():
            if name not in self.hierarchy:
                raise ValueError(
                    f"{self.package}: manifest declares missing class {name}"
                )
        for method in self.methods():
            if not method._validated:
                method.validate()

    def stats(self) -> dict[str, int]:
        n_methods = 0
        n_stmts = 0
        for method in self.methods():
            n_methods += 1
            n_stmts += len(method.statements)
        return {
            "classes": len(self.hierarchy),
            "methods": n_methods,
            "statements": n_stmts,
        }

    def __repr__(self) -> str:
        return f"<APK {self.package} ({len(self.hierarchy)} classes)>"
