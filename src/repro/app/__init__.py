"""Android application model: manifests, components, APK containers."""

from .apk import APK
from .components import (
    ASYNC_TASK_CALLBACKS,
    ASYNC_TASK_CLASS,
    ASYNC_TASK_EXECUTE_METHODS,
    COMPONENT_BASE_CLASSES,
    ComponentKind,
    FRAMEWORK_HIERARCHY,
    LIFECYCLE_METHODS,
    UI_CALLBACK_METHODS,
)
from .loader import dumps_apk, load_apk, loads_apk, save_apk
from .manifest import Manifest

__all__ = [
    "APK",
    "ASYNC_TASK_CALLBACKS",
    "ASYNC_TASK_CLASS",
    "ASYNC_TASK_EXECUTE_METHODS",
    "COMPONENT_BASE_CLASSES",
    "ComponentKind",
    "FRAMEWORK_HIERARCHY",
    "LIFECYCLE_METHODS",
    "Manifest",
    "UI_CALLBACK_METHODS",
    "dumps_apk",
    "load_apk",
    "loads_apk",
    "save_apk",
]
