"""The AndroidManifest model: declared components and permissions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .components import ComponentKind


@dataclass
class Manifest:
    """Declared components of an app, as AndroidManifest.xml would list.

    NChecker reads the manifest to decide whether an entry point belongs
    to an Activity (user-initiated requests) or a Service (background
    requests) — paper §4.4.2.
    """

    package: str
    activities: list[str] = field(default_factory=list)
    services: list[str] = field(default_factory=list)
    receivers: list[str] = field(default_factory=list)
    providers: list[str] = field(default_factory=list)
    permissions: list[str] = field(default_factory=list)

    def component_kind(self, class_name: str) -> Optional[ComponentKind]:
        if class_name in self.activities:
            return ComponentKind.ACTIVITY
        if class_name in self.services:
            return ComponentKind.SERVICE
        if class_name in self.receivers:
            return ComponentKind.RECEIVER
        if class_name in self.providers:
            return ComponentKind.PROVIDER
        return None

    def components(self) -> Iterator[tuple[ComponentKind, str]]:
        for name in self.activities:
            yield ComponentKind.ACTIVITY, name
        for name in self.services:
            yield ComponentKind.SERVICE, name
        for name in self.receivers:
            yield ComponentKind.RECEIVER, name
        for name in self.providers:
            yield ComponentKind.PROVIDER, name

    def declare(self, kind: ComponentKind, class_name: str) -> None:
        bucket = {
            ComponentKind.ACTIVITY: self.activities,
            ComponentKind.SERVICE: self.services,
            ComponentKind.RECEIVER: self.receivers,
            ComponentKind.PROVIDER: self.providers,
        }[kind]
        if class_name not in bucket:
            bucket.append(class_name)

    @property
    def has_internet_permission(self) -> bool:
        return "android.permission.INTERNET" in self.permissions
