"""Loading and saving whole apps in the ``.apkt`` text format.

Layout of an ``.apkt`` file::

    apk com.example.app

    manifest {
      permission android.permission.INTERNET
      activity com.example.MainActivity
      service com.example.SyncService
    }

    class com.example.MainActivity extends android.app.Activity {
      ...
    }

The class bodies use the format of :mod:`repro.ir.parser`.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Union

from ..ir.parser import ParseError, _strip_comment, parse_classes
from ..ir.printer import class_lines
from .apk import APK
from .components import ComponentKind
from .manifest import Manifest

_APK_RE = re.compile(r"^apk\s+([\w$.]+)\s*$")
_MANIFEST_ENTRY_RE = re.compile(r"^(activity|service|receiver|provider|permission)\s+([\w$.]+)$")


def loads_apk(text: str) -> APK:
    """Parse an ``.apkt`` document into an :class:`APK`."""
    lines = text.splitlines()
    package: str | None = None
    manifest: Manifest | None = None
    class_text_start: int | None = None
    i = 0
    while i < len(lines):
        line = _strip_comment(lines[i])
        i += 1
        if not line:
            continue
        apk_match = _APK_RE.match(line)
        if apk_match is not None:
            if package is not None:
                raise ParseError("duplicate apk header", i)
            package = apk_match.group(1)
            continue
        if line == "manifest {":
            if package is None:
                raise ParseError("manifest before apk header", i)
            manifest = Manifest(package)
            while i < len(lines):
                entry = lines[i].split("#", 1)[0].strip()
                i += 1
                if not entry:
                    continue
                if entry == "}":
                    break
                entry_match = _MANIFEST_ENTRY_RE.match(entry)
                if entry_match is None:
                    raise ParseError("malformed manifest entry", i, entry)
                kind, name = entry_match.groups()
                if kind == "permission":
                    manifest.permissions.append(name)
                else:
                    manifest.declare(ComponentKind(kind), name)
            continue
        # First class header: the rest of the document is class definitions.
        class_text_start = i - 1
        break
    if package is None:
        raise ParseError("missing apk header", 1)
    if manifest is None:
        manifest = Manifest(package)
    classes = []
    if class_text_start is not None:
        classes = parse_classes("\n".join(lines[class_text_start:]))
    apk = APK(manifest, classes)
    apk.validate()
    return apk


def dumps_apk(apk: APK) -> str:
    """Serialise an :class:`APK` to ``.apkt`` text (round-trips)."""
    out: list[str] = [f"apk {apk.package}", ""]
    out.append("manifest {")
    for permission in apk.manifest.permissions:
        out.append(f"  permission {permission}")
    for kind, name in apk.manifest.components():
        out.append(f"  {kind.value} {name}")
    out.append("}")
    out.append("")
    for cls in apk.classes():
        out.extend(class_lines(cls))
        out.append("")
    return "\n".join(out)


def load_apk(path: Union[str, Path]) -> APK:
    return loads_apk(Path(path).read_text())


def save_apk(apk: APK, path: Union[str, Path]) -> None:
    Path(path).write_text(dumps_apk(apk))
