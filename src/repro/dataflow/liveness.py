"""Live-variable analysis (backward may)."""

from __future__ import annotations

from ..cfg.graph import CFG
from .framework import SetAnalysis


class Liveness(SetAnalysis):
    """A local is live at a point if some path to a use avoids redefinition."""

    direction = "backward"
    must = False

    def __init__(self, cfg: CFG) -> None:
        super().__init__(cfg)
        self._gen: dict[int, frozenset[str]] = {}
        self._kill: dict[int, frozenset[str]] = {}
        for idx, stmt in enumerate(cfg.method.statements):
            self._gen[idx] = frozenset(u.name for u in stmt.uses())
            self._kill[idx] = frozenset(d.name for d in stmt.defs())
        self.solve()

    def gen(self, node: int) -> frozenset:
        return self._gen.get(node, frozenset())

    def kill(self, node: int, state: frozenset) -> frozenset:
        killed = self._kill.get(node, frozenset())
        return frozenset(name for name in state if name in killed)

    def live_before(self, node: int) -> frozenset[str]:
        """Locals live immediately before statement ``node`` executes."""
        return self.state_after(node)

    def live_after(self, node: int) -> frozenset[str]:
        return self.state_before(node)
