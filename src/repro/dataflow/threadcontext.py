"""Interprocedural thread-context analysis.

Android callbacks run on a fixed thread discipline: component lifecycle
methods and UI callbacks execute on the **main (UI) thread**; Service
entry points, ``AsyncTask.doInBackground``, and ``Runnable.run`` bodies
dispatched through ``Thread.start``/executors execute on **background**
threads; ``Handler.post`` and the AsyncTask UI-side callbacks hop work
back onto the main thread; network-library callbacks land wherever the
library delivers them (Volley/loopj: main thread; OkHttp: a dispatcher
thread — see :attr:`~repro.libmodels.annotations.LibraryModel.
callbacks_on_main_thread`).

This module propagates those seeds over the call graph to compute, per
method, the set of threads it **may** execute on — the fact behind the
``ui-thread-network`` check (a blocking request reachable on the main
thread freezes the UI and crashes with ``NetworkOnMainThreadException``
on modern Android).

Lattice
-------
Values are frozen subsets of ``{"main", "background"}``:

* ``UNKNOWN`` (``{}``, ⊥) — never observed to run (unreachable code);
* ``MAIN`` / ``BACKGROUND`` — runs only on that side;
* ``EITHER`` (⊤) — may run on both.

``join`` is set union; :func:`transfer` maps a caller's context across
one call edge.  Both are monotone (asserted by a hypothesis property in
the test suite), so the SCC-ordered propagation below terminates at the
least fixpoint.  Components of the call graph that are cyclic (mutual or
self recursion) are **widened**: every member receives the join over the
whole component in one step instead of a per-member solution
(``threadcontext.widenings`` counts these), which is exact here because
non-``direct`` edges transfer constants.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..app.components import HANDLER_POST_METHODS
from ..callgraph.cha import (
    EDGE_ASYNC_TASK,
    EDGE_DIRECT,
    EDGE_LIB_CALLBACK,
    EDGE_RUNNABLE,
)
from ..callgraph.entrypoints import MethodKey
from ..callgraph.scc import condensation_order
from ..obs import metrics

if TYPE_CHECKING:
    from ..callgraph.cha import CallEdge, CallGraph
    from ..libmodels.annotations import LibraryRegistry

#: The lattice: frozen subsets of the two thread classes.
ThreadContext = frozenset

UNKNOWN: ThreadContext = frozenset()
MAIN: ThreadContext = frozenset({"main"})
BACKGROUND: ThreadContext = frozenset({"background"})
EITHER: ThreadContext = frozenset({"main", "background"})

#: The AsyncTask callback that runs off the UI thread; its siblings
#: (onPreExecute/onPostExecute/onProgressUpdate/onCancelled) run on it.
_ASYNC_TASK_BACKGROUND_CALLBACK = "doInBackground"


def join(a: ThreadContext, b: ThreadContext) -> ThreadContext:
    """Least upper bound — set union (monotone, commutative, idempotent)."""
    return a | b


def transfer(
    edge_kind: str,
    caller_ctx: ThreadContext,
    *,
    callee_name: str = "",
    dispatch_main: bool = False,
    callbacks_on_main: Optional[bool] = None,
) -> ThreadContext:
    """The callee-side context contributed by one call edge.

    Only ``direct`` edges depend on the caller's context (a plain call
    stays on the caller's thread); every asynchronous edge kind transfers
    a constant determined by the dispatch construct, which keeps the
    function trivially monotone in ``caller_ctx``:

    * ``async_task`` — ``doInBackground`` runs on a pool thread, the
      other AsyncTask callbacks on the main thread;
    * ``runnable`` — ``Handler.post``-family dispatch lands on the main
      thread (``dispatch_main``), ``Thread.start``/executor submission on
      a background thread;
    * ``lib_callback`` — per the library model's
      ``callbacks_on_main_thread`` (``None`` = unknown library, ⊤).
    """
    if edge_kind == EDGE_DIRECT:
        return caller_ctx
    if edge_kind == EDGE_ASYNC_TASK:
        if callee_name == _ASYNC_TASK_BACKGROUND_CALLBACK:
            return BACKGROUND
        return MAIN
    if edge_kind == EDGE_RUNNABLE:
        return MAIN if dispatch_main else BACKGROUND
    if edge_kind == EDGE_LIB_CALLBACK:
        if callbacks_on_main is None:
            return EITHER
        return MAIN if callbacks_on_main else BACKGROUND
    return EITHER


class ThreadContextAnalysis:
    """Per-method may-run-on thread contexts over one app's call graph.

    Seeded from the framework entry points (Service entries run in
    background-capable contexts, everything else — Activity/Receiver/
    Provider lifecycle and UI callbacks — on the main thread) and
    propagated caller-first over the condensation of the call graph.
    Methods unreachable from any entry point stay :data:`UNKNOWN` and are
    never flagged by the checks built on this analysis.

    The object is an app-scoped artifact: it holds only the call graph,
    the registry, and a plain ``MethodKey → frozenset`` map, so the
    disk-cache pickler persists it by reference to both.
    """

    def __init__(self, graph: "CallGraph", registry: "LibraryRegistry") -> None:
        self.graph = graph
        self.registry = registry
        self.contexts: dict[MethodKey, ThreadContext] = {}
        self._compute()

    # -- queries -------------------------------------------------------------

    def context_of(self, key: MethodKey) -> ThreadContext:
        """The threads ``key`` may execute on (⊥ for unreachable code)."""
        return self.contexts.get(key, UNKNOWN)

    def may_run_on_main(self, key: MethodKey) -> bool:
        return "main" in self.context_of(key)

    def may_run_in_background(self, key: MethodKey) -> bool:
        return "background" in self.context_of(key)

    def describe(self, key: MethodKey) -> str:
        """Stable human-readable rendering ("main", "background",
        "either", or "unknown") for reports and finding details."""
        ctx = self.context_of(key)
        if ctx == EITHER:
            return "either"
        if ctx == MAIN:
            return "main"
        if ctx == BACKGROUND:
            return "background"
        return "unknown"

    # -- propagation ---------------------------------------------------------

    def _seeds(self) -> dict[MethodKey, ThreadContext]:
        seeds: dict[MethodKey, ThreadContext] = {}
        for entry in self.graph.entry_points:
            if entry.key not in self.graph.methods:
                continue
            seed = BACKGROUND if entry.background else MAIN
            seeds[entry.key] = join(seeds.get(entry.key, UNKNOWN), seed)
        return seeds

    def _compute(self) -> None:
        graph = self.graph
        registry = metrics()
        seeds = self._seeds()
        sccs, _position = condensation_order(
            list(graph.methods),
            lambda key: [e.callee for e in graph.callees(key)],
        )
        edges_propagated = 0
        widenings = 0
        # condensation_order is callee-first; thread contexts flow from
        # callers to callees, so process caller-first (reversed): every
        # external caller of a component is final when it is reached.
        for scc in reversed(sccs):
            members = set(scc)
            cyclic = len(scc) > 1 or any(
                e.callee == scc[0] for e in graph.callees(scc[0])
            )
            value = UNKNOWN
            for member in scc:
                value = join(value, seeds.get(member, UNKNOWN))
                for edge in graph.callers(member):
                    internal = edge.caller in members
                    if internal and edge.kind == EDGE_DIRECT:
                        # Identity transfer inside the component — the
                        # smear below already covers it.
                        continue
                    edges_propagated += 1
                    value = join(value, self._edge_transfer(edge, internal))
            if cyclic:
                # ⊤-style widening: one joined value for the whole
                # recursive component (exact here — see module docstring).
                widenings += 1
            for member in scc:
                if value:
                    self.contexts[member] = value
        registry.inc("threadcontext.edges_propagated", edges_propagated)
        registry.inc("threadcontext.widenings", widenings)
        registry.inc("threadcontext.methods", len(self.contexts))

    def _edge_transfer(self, edge: "CallEdge", internal: bool) -> ThreadContext:
        """Evaluate :func:`transfer` for one concrete call-graph edge."""
        if edge.kind == EDGE_DIRECT:
            # External direct edge: the caller's context is final.
            return self.contexts.get(edge.caller, UNKNOWN)
        if edge.kind == EDGE_ASYNC_TASK:
            return transfer(edge.kind, UNKNOWN, callee_name=edge.callee[1])
        if edge.kind == EDGE_RUNNABLE:
            return transfer(
                edge.kind, UNKNOWN, dispatch_main=self._dispatches_to_main(edge)
            )
        if edge.kind == EDGE_LIB_CALLBACK:
            return transfer(
                edge.kind,
                UNKNOWN,
                callbacks_on_main=self._callback_thread(edge.callee),
            )
        return EITHER

    def _dispatches_to_main(self, edge: "CallEdge") -> bool:
        """Whether a runnable edge's dispatch site is a ``Handler.post``
        (main-thread hop) rather than ``Thread.start``/executor work."""
        method = self.graph.methods.get(edge.caller)
        if method is None or edge.stmt_index >= len(method.statements):
            return False
        invoke = method.statements[edge.stmt_index].invoke()
        return invoke is not None and invoke.sig.name in HANDLER_POST_METHODS

    def _callback_thread(self, callee: MethodKey) -> Optional[bool]:
        """Which thread the library delivering ``callee`` runs it on
        (``None`` when no registered library model claims the callback)."""
        hierarchy = self.graph.apk.hierarchy
        cls_name, method_name, _arity = callee
        cls = hierarchy.get(cls_name)
        if cls is None:
            return None
        supers = hierarchy.supertypes(cls_name) | set(cls.interfaces)
        for iface in supers & self.registry.callback_interfaces():
            found = self.registry.find_callback_spec(iface, method_name)
            if found is not None:
                lib, _spec = found
                return lib.callbacks_on_main_thread
        return None
