"""Backward program slicing (data + control dependence).

Paper §4.5 identifies customized retry loops by checking whether a loop
exit condition is (transitively) data- or control-dependent on statements
inside a catch block; backward slicing computes exactly that dependence
closure (Horwitz–Reps–Binkley style, intraprocedural).
"""

from __future__ import annotations

from typing import Optional

from ..cfg.dominators import control_dependence
from ..cfg.graph import CFG
from .reaching import DefUseChains


class Slicer:
    """Computes backward slices of a single method."""

    def __init__(self, cfg: CFG, defuse: Optional[DefUseChains] = None) -> None:
        self.cfg = cfg
        self.defuse = defuse or DefUseChains(cfg)
        self.control_deps = control_dependence(cfg)

    def backward_slice(
        self,
        criterion: int,
        locals_of_interest: Optional[set[str]] = None,
        include_control: bool = True,
    ) -> set[int]:
        """Statement indices the criterion (transitively) depends on.

        The criterion statement itself is included.  When
        ``locals_of_interest`` is None, all locals used by the criterion
        seed the slice.
        """
        stmt = self.cfg.method.statements[criterion]
        if locals_of_interest is None:
            locals_of_interest = {u.name for u in stmt.uses()}
        in_slice: set[int] = {criterion}
        worklist: list[tuple[int, str]] = [
            (criterion, name) for name in locals_of_interest
        ]
        seen: set[tuple[int, str]] = set(worklist)

        def enqueue_node(node: int) -> None:
            if node in in_slice or node < 0:
                return
            in_slice.add(node)
            node_stmt = self.cfg.method.statements[node]
            for used in node_stmt.uses():
                key = (node, used.name)
                if key not in seen:
                    seen.add(key)
                    worklist.append(key)
            if include_control:
                enqueue_control(node)

        def enqueue_control(node: int) -> None:
            for branch in self.control_deps.get(node, ()):
                if branch != self.cfg.exit:
                    enqueue_node(branch)

        if include_control:
            enqueue_control(criterion)

        while worklist:
            node, name = worklist.pop()
            for def_site in self.defuse.definition_sites(node, name):
                enqueue_node(def_site)
        return in_slice

    def depends_on(
        self, criterion: int, candidates: set[int], locals_of_interest: Optional[set[str]] = None
    ) -> bool:
        """Whether the criterion's slice intersects ``candidates``."""
        return bool(self.backward_slice(criterion, locals_of_interest) & candidates)
