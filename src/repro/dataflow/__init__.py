"""Dataflow framework: worklist solver plus the concrete analyses
NChecker needs (reaching definitions, def-use, liveness, constants,
taint, slicing)."""

from .constants import BOTTOM, ConstantPropagation, TOP
from .framework import DataflowAnalysis, SetAnalysis
from .liveness import Liveness
from .reaching import DefUseChains, ReachingDefinitions
from .slicing import Slicer
from .taint import ForwardTaint, TaintPolicy, trace_origins

# Imported last: the summary engine sits on top of the call graph, whose
# modules import the analyses above.
from .configvalues import ConfigCallValues, config_call_values
from .summaries import (
    CONFIG_TOP,
    ConfigEffect,
    MethodSummary,
    RECEIVER,
    SummaryCache,
    SummaryEngine,
    SummaryStats,
    apk_fingerprint,
)

__all__ = [
    "BOTTOM",
    "CONFIG_TOP",
    "ConfigCallValues",
    "ConfigEffect",
    "ConstantPropagation",
    "DataflowAnalysis",
    "DefUseChains",
    "ForwardTaint",
    "Liveness",
    "MethodSummary",
    "RECEIVER",
    "ReachingDefinitions",
    "SetAnalysis",
    "Slicer",
    "SummaryCache",
    "SummaryEngine",
    "SummaryStats",
    "TOP",
    "TaintPolicy",
    "apk_fingerprint",
    "config_call_values",
    "trace_origins",
]
