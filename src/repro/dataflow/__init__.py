"""Dataflow framework: worklist solver plus the concrete analyses
NChecker needs (reaching definitions, def-use, liveness, constants,
taint, slicing)."""

from .constants import BOTTOM, ConstantPropagation, TOP
from .framework import DataflowAnalysis, SetAnalysis
from .liveness import Liveness
from .reaching import DefUseChains, ReachingDefinitions
from .slicing import Slicer
from .taint import ForwardTaint, TaintPolicy, trace_origins

__all__ = [
    "BOTTOM",
    "ConstantPropagation",
    "DataflowAnalysis",
    "DefUseChains",
    "ForwardTaint",
    "Liveness",
    "ReachingDefinitions",
    "SetAnalysis",
    "Slicer",
    "TOP",
    "TaintPolicy",
    "trace_origins",
]
