"""Resolving the *values* passed to retry/timeout config APIs.

Shared by the config-API check (`core/checks/config_apis.py`) and the
interprocedural summary engine (`dataflow/summaries.py`): both observe
config calls — the check in the request's own frames, the engine inside
callees the config object is passed to — and both must turn the call
into effective retry counts and timeouts via constant propagation
(paper §4.4.2), including the policy/handler-object indirection Volley
and Apache use (``setRetryPolicy(new DefaultRetryPolicy(t, r, b))``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cfg.graph import CFG
from ..ir.method import IRMethod
from ..ir.statements import AssignStmt
from ..ir.values import InvokeExpr, Local, NewExpr
from ..libmodels.annotations import ConfigAPI, ConfigKind
from .constants import ConstantPropagation
from .reaching import DefUseChains
from .taint import trace_origins


@dataclass(frozen=True)
class ConfigCallValues:
    """Constants a single config call pins down (None = not resolvable)."""

    retries: Optional[int] = None
    timeout_ms: Optional[int] = None

    @property
    def empty(self) -> bool:
        return self.retries is None and self.timeout_ms is None


def config_call_values(
    method: IRMethod,
    idx: int,
    invoke: InvokeExpr,
    config: ConfigAPI,
    cfg: CFG,
    defuse: DefUseChains,
    constants: ConstantPropagation,
) -> ConfigCallValues:
    """Resolve the retry count / timeout a config call establishes."""
    retries: Optional[int] = None
    timeout_ms: Optional[int] = None
    if ConfigKind.RETRY in config.satisfies:
        retries, policy_timeout = _retry_value(
            method, idx, invoke, cfg, defuse, constants
        )
        if policy_timeout is not None:
            timeout_ms = policy_timeout
    if (
        ConfigKind.TIMEOUT in config.satisfies
        and config.kind is ConfigKind.TIMEOUT
        and config.param_index < len(invoke.args)
    ):
        value = constants.constant_argument(idx, invoke.args[config.param_index])
        if isinstance(value, int):
            timeout_ms = value
    return ConfigCallValues(retries, timeout_ms)


def _retry_value(
    method: IRMethod,
    idx: int,
    invoke: InvokeExpr,
    cfg: CFG,
    defuse: DefUseChains,
    constants: ConstantPropagation,
) -> tuple[Optional[int], Optional[int]]:
    """(retries, timeout) established by a retry-kind config call."""
    name = invoke.sig.name
    if name in ("setMaxRetries", "setMaxRetriesAndTimeout"):
        if invoke.args:
            value = constants.constant_argument(idx, invoke.args[0])
            if isinstance(value, int):
                return value, None
        return None, None
    if name == "setRetryOnConnectionFailure":
        if invoke.args:
            value = constants.constant_argument(idx, invoke.args[0])
            if isinstance(value, bool):
                return (1 if value else 0), None
        return None, None
    if name == "setRetryPolicy":
        # Volley: setRetryPolicy(new DefaultRetryPolicy(timeout, retries,
        # backoff)) — the ctor's argument 0 is the timeout, 1 the retries.
        timeout = ctor_constant(method, idx, invoke, cfg, defuse, constants, 0)
        retries = ctor_constant(method, idx, invoke, cfg, defuse, constants, 1)
        return retries, timeout
    if name == "setHttpRequestRetryHandler":
        handler = ctor_constant(method, idx, invoke, cfg, defuse, constants, 0)
        # Apache's DefaultHttpRequestRetryHandler() retries 3 times when
        # installed without an explicit count.
        return (handler if handler is not None else 3), None
    return None, None


def ctor_constant(
    method: IRMethod,
    idx: int,
    invoke: InvokeExpr,
    cfg: CFG,
    defuse: DefUseChains,
    constants: ConstantPropagation,
    ctor_arg_index: int,
) -> Optional[int]:
    """Argument ``ctor_arg_index`` of the constructor of the object passed
    as the config call's first argument (the policy/handler-object
    indirection)."""
    if not invoke.args or not isinstance(invoke.args[0], Local):
        return None
    for origin in trace_origins(cfg, idx, invoke.args[0].name, defuse):
        if origin < 0:
            continue
        stmt = method.statements[origin]
        if not (isinstance(stmt, AssignStmt) and isinstance(stmt.value, NewExpr)):
            continue
        for ctor_idx in range(origin + 1, len(method.statements)):
            ctor = method.statements[ctor_idx].invoke()
            if ctor is not None and ctor.is_constructor and ctor.base == stmt.target:
                if len(ctor.args) > ctor_arg_index:
                    value = constants.constant_argument(
                        ctor_idx, ctor.args[ctor_arg_index]
                    )
                    if isinstance(value, int):
                        return value
                break
    return None
