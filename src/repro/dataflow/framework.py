"""A generic iterative (worklist) dataflow solver.

All the concrete analyses in this package — reaching definitions,
liveness, constant propagation, taint — instantiate this solver with a
direction, a join, and a transfer function.  States are treated as opaque
values compared with ``==``; concrete analyses use frozensets or dicts.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, TypeVar

from ..cfg.graph import CFG

State = TypeVar("State")


class DataflowAnalysis(Generic[State]):
    """Solve a monotone dataflow problem to a fixed point.

    Subclasses (or callers via the functional constructor
    :func:`solve_dataflow`) provide:

    * ``direction`` — ``"forward"`` or ``"backward"``;
    * ``initial(node)`` — the state at node boundaries before iteration;
    * ``boundary()`` — the state at the entry (exit for backward);
    * ``join(states)`` — the confluence operator;
    * ``transfer(node, state)`` — the node transfer function.

    After :meth:`solve`, ``in_states[n]`` / ``out_states[n]`` hold the
    fixed point (for backward problems, "in" is still the state *before*
    the node in program order, i.e. what the analysis computes leaving the
    node against the flow).
    """

    direction = "forward"

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.in_states: dict[int, State] = {}
        self.out_states: dict[int, State] = {}

    # -- to be provided by concrete analyses --------------------------------

    def initial(self, node: int) -> State:
        raise NotImplementedError

    def boundary(self) -> State:
        raise NotImplementedError

    def join(self, states: list[State]) -> State:
        raise NotImplementedError

    def transfer(self, node: int, state: State) -> State:
        raise NotImplementedError

    # -- solver --------------------------------------------------------------

    def solve(self) -> "DataflowAnalysis[State]":
        cfg = self.cfg
        forward = self.direction == "forward"
        if forward:
            start, inputs, outputs = cfg.entry, cfg.preds, cfg.succs
        else:
            start, inputs, outputs = cfg.exit, cfg.succs, cfg.preds

        # Acyclic CFGs (the common case — most methods are loop-free) reach
        # the fixed point in a single pass over the nodes in topological
        # order: every edge advances the statement index, so ascending
        # order (descending for backward problems) visits each node after
        # all of its inputs.  No worklist, no re-visits.
        if cfg.acyclic:
            # Ill-configured analyses (a must-analysis without a universe)
            # must still fail at solve() even if no node ends up needing an
            # initial state on this pass.
            self.initial(start)
            in_states, out_states = self.in_states, self.out_states
            order = cfg.nodes()
            for node in (order if forward else reversed(order)):
                if node == start:
                    state = self.boundary()
                else:
                    ins = inputs[node]
                    if not ins:
                        state = self.initial(node)
                    elif len(ins) == 1:
                        # join of one input is the input itself for every
                        # lattice; skip the list and the join call.
                        state = out_states[ins[0]]
                    else:
                        state = self.join([out_states[p] for p in ins])
                in_states[node] = state
                out_states[node] = self.transfer(node, state)
            return self

        for node in cfg.nodes():
            self.in_states[node] = self.initial(node)
            self.out_states[node] = self.initial(node)

        # Seed in flow order (reverse for backward problems) so most nodes
        # see their inputs' final states on the first visit.
        worklist: deque[int] = deque(
            cfg.nodes() if forward else reversed(cfg.nodes())
        )
        queued = set(worklist)
        self.in_states[start] = self.boundary()
        self.out_states[start] = self.transfer(start, self.in_states[start])

        while worklist:
            node = worklist.popleft()
            queued.discard(node)
            if node != start:
                incoming = [self.out_states[p] for p in inputs[node]]
                self.in_states[node] = (
                    self.join(incoming) if incoming else self.initial(node)
                )
            new_out = self.transfer(node, self.in_states[node])
            if new_out != self.out_states[node] or node == start:
                self.out_states[node] = new_out
                for nxt in outputs[node]:
                    if nxt not in queued:
                        queued.add(nxt)
                        worklist.append(nxt)
        return self

    # -- conveniences ---------------------------------------------------------

    def state_before(self, node: int) -> State:
        """The fixed-point state entering ``node`` along the flow direction."""
        return self.in_states[node]

    def state_after(self, node: int) -> State:
        return self.out_states[node]


class SetAnalysis(DataflowAnalysis[frozenset]):
    """Convenience base for gen/kill-style set analyses.

    ``may`` (union join) is the default; set ``must = True`` for
    intersection join with a configurable universe.
    """

    must = False

    def universe(self) -> frozenset:
        """The full set, used as ⊤ for must-analyses."""
        raise NotImplementedError("must-analyses need a universe")

    def initial(self, node: int) -> frozenset:
        return self.universe() if self.must else frozenset()

    def boundary(self) -> frozenset:
        return frozenset()

    def join(self, states: list[frozenset]) -> frozenset:
        if not states:
            return self.initial(-1)
        result = states[0]
        for state in states[1:]:
            result = (result & state) if self.must else (result | state)
        return result

    def gen(self, node: int) -> frozenset:
        return frozenset()

    def kill(self, node: int, state: frozenset) -> frozenset:
        return frozenset()

    def transfer(self, node: int, state: frozenset) -> frozenset:
        return (state - self.kill(node, state)) | self.gen(node)
