"""Reaching definitions and def-use chains."""

from __future__ import annotations

from collections import defaultdict

from ..cfg.graph import CFG
from .framework import SetAnalysis

#: A definition is ``(local_name, statement_index)``.
Definition = tuple[str, int]


class ReachingDefinitions(SetAnalysis):
    """Classic may-reaching-definitions over locals."""

    direction = "forward"
    must = False

    def __init__(self, cfg: CFG) -> None:
        super().__init__(cfg)
        self._defs_at: dict[int, frozenset[Definition]] = {}
        self._kills_at: dict[int, frozenset[str]] = {}
        for idx, stmt in enumerate(cfg.method.statements):
            defined = stmt.defs()
            self._defs_at[idx] = frozenset((d.name, idx) for d in defined)
            self._kills_at[idx] = frozenset(d.name for d in defined)
        self.solve()

    def boundary(self) -> frozenset:
        # Parameters (and `this`) are defined at a pseudo-index -1.
        params = [p.name for p in self.cfg.method.params]
        if not self.cfg.method.is_static:
            params.append("this")
        return frozenset((name, -1) for name in params)

    def gen(self, node: int) -> frozenset:
        return self._defs_at.get(node, frozenset())

    def kill(self, node: int, state: frozenset) -> frozenset:
        killed = self._kills_at.get(node, frozenset())
        return frozenset(d for d in state if d[0] in killed)

    def reaching(self, node: int, local_name: str) -> frozenset[int]:
        """Indices of definitions of ``local_name`` reaching ``node``
        (``-1`` denotes the parameter definition)."""
        return frozenset(
            idx for name, idx in self.state_before(node) if name == local_name
        )


class DefUseChains:
    """Def→use and use→def maps derived from reaching definitions."""

    def __init__(self, cfg: CFG, reaching: ReachingDefinitions | None = None) -> None:
        self.cfg = cfg
        self.reaching = reaching or ReachingDefinitions(cfg)
        #: def site -> set of use sites
        self.uses_of_def: dict[int, set[int]] = defaultdict(set)
        #: (use site, local) -> set of def sites
        self.defs_of_use: dict[tuple[int, str], set[int]] = defaultdict(set)
        for idx, stmt in enumerate(cfg.method.statements):
            for local in set(stmt.uses()):
                def_sites = self.reaching.reaching(idx, local.name)
                self.defs_of_use[(idx, local.name)] = set(def_sites)
                for site in def_sites:
                    self.uses_of_def[site].add(idx)

    def definition_sites(self, use_index: int, local_name: str) -> set[int]:
        """Definitions of ``local_name`` reaching ``use_index``.  Falls back
        to the reaching-definitions state for locals not syntactically used
        at the site (callers may ask about any live local)."""
        found = self.defs_of_use.get((use_index, local_name))
        if found is not None:
            return found
        return set(self.reaching.reaching(use_index, local_name))

    def use_sites(self, def_index: int) -> set[int]:
        return self.uses_of_def.get(def_index, set())
