"""Reaching definitions and def-use chains."""

from __future__ import annotations

from collections import defaultdict, deque

from ..cfg.graph import CFG

#: A definition is ``(local_name, statement_index)``.
Definition = tuple[str, int]


class ReachingDefinitions:
    """Classic may-reaching-definitions over locals.

    States are integer bitsets over the method's enumerated definitions
    (the parameter pseudo-defs at index ``-1`` included): join is ``|``,
    kill is ``& ~mask``, both single C-level int operations — this
    analysis is built for every method the checks touch, making it the
    hottest dataflow fixpoint of a scan.  The solver is specialised here
    rather than using :class:`~repro.dataflow.framework.SetAnalysis`:
    acyclic CFGs (every edge advances the statement index) are solved in
    one ascending pass, cyclic ones with a worklist.
    """

    direction = "forward"
    must = False

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        method = cfg.method
        defs: list[Definition] = []
        bit_of: dict[Definition, int] = {}
        name_mask: dict[str, int] = {}

        param_names = [p.name for p in method.params]
        if not method.is_static:
            param_names.append("this")
        boundary_mask = 0
        for name in param_names:
            definition = (name, -1)
            bit = bit_of[definition] = len(defs)
            defs.append(definition)
            boundary_mask |= 1 << bit

        gen_mask: dict[int, int] = {}
        for idx, stmt in enumerate(method.statements):
            mask = 0
            for local in stmt.defs():
                definition = (local.name, idx)
                bit = bit_of.get(definition)
                if bit is None:
                    bit = bit_of[definition] = len(defs)
                    defs.append(definition)
                mask |= 1 << bit
            if mask:
                gen_mask[idx] = mask
        for (name, _idx), bit in bit_of.items():
            name_mask[name] = name_mask.get(name, 0) | (1 << bit)
        kill_mask: dict[int, int] = {
            idx: _union_name_masks(name_mask, defs, mask)
            for idx, mask in gen_mask.items()
        }

        self._defs = defs
        self._name_mask = name_mask
        self._gen_mask = gen_mask
        self._kill_mask = kill_mask
        self._boundary_mask = boundary_mask
        self._in: list[int] = [0] * cfg.node_count
        self._solve()

    def _transfer(self, node: int, state: int) -> int:
        gen = self._gen_mask.get(node)
        if gen is None:
            return state
        return (state & ~self._kill_mask[node]) | gen

    def _solve(self) -> None:
        cfg = self.cfg
        entry = cfg.entry
        preds = cfg.preds
        in_states = self._in
        out_states = [0] * cfg.node_count
        if cfg.acyclic:
            for node in range(cfg.node_count):
                if node == entry:
                    state = self._boundary_mask
                else:
                    state = 0
                    for pred in preds[node]:
                        state |= out_states[pred]
                in_states[node] = state
                out_states[node] = self._transfer(node, state)
            return
        succs = cfg.succs
        worklist: deque[int] = deque(range(cfg.node_count))
        queued = set(worklist)
        in_states[entry] = self._boundary_mask
        out_states[entry] = self._transfer(entry, self._boundary_mask)
        while worklist:
            node = worklist.popleft()
            queued.discard(node)
            if node != entry:
                state = 0
                for pred in preds[node]:
                    state |= out_states[pred]
                in_states[node] = state
            new_out = self._transfer(node, in_states[node])
            if new_out != out_states[node] or node == entry:
                out_states[node] = new_out
                for nxt in succs[node]:
                    if nxt not in queued:
                        queued.add(nxt)
                        worklist.append(nxt)

    # -- queries -------------------------------------------------------------

    def boundary(self) -> frozenset:
        return frozenset(
            self._defs[bit] for bit in _bits(self._boundary_mask)
        )

    def state_before(self, node: int) -> frozenset:
        """The fixed-point definition set entering ``node``."""
        return frozenset(self._defs[bit] for bit in _bits(self._in[node]))

    def reaching(self, node: int, local_name: str) -> frozenset[int]:
        """Indices of definitions of ``local_name`` reaching ``node``
        (``-1`` denotes the parameter definition)."""
        mask = self._in[node] & self._name_mask.get(local_name, 0)
        return frozenset(self._defs[bit][1] for bit in _bits(mask))


def _union_name_masks(
    name_mask: dict[str, int], defs: list[Definition], gen: int
) -> int:
    mask = 0
    for bit in _bits(gen):
        mask |= name_mask[defs[bit][0]]
    return mask


def _bits(mask: int):
    """Yield the set bit positions of a non-negative int."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class DefUseChains:
    """Def→use and use→def maps derived from reaching definitions."""

    def __init__(self, cfg: CFG, reaching: ReachingDefinitions | None = None) -> None:
        self.cfg = cfg
        self.reaching = reaching or ReachingDefinitions(cfg)
        #: def site -> set of use sites
        self.uses_of_def: dict[int, set[int]] = defaultdict(set)
        #: (use site, local) -> set of def sites
        self.defs_of_use: dict[tuple[int, str], set[int]] = defaultdict(set)
        rd = self.reaching
        for idx, stmt in enumerate(cfg.method.statements):
            for name in {local.name for local in stmt.uses()}:
                def_sites = set(rd.reaching(idx, name))
                self.defs_of_use[(idx, name)] = def_sites
                for site in def_sites:
                    self.uses_of_def[site].add(idx)

    def definition_sites(self, use_index: int, local_name: str) -> set[int]:
        """Definitions of ``local_name`` reaching ``use_index``.  Falls back
        to the reaching-definitions state for locals not syntactically used
        at the site (callers may ask about any live local)."""
        found = self.defs_of_use.get((use_index, local_name))
        if found is not None:
            return found
        return set(self.reaching.reaching(use_index, local_name))

    def use_sites(self, def_index: int) -> set[int]:
        return self.uses_of_def.get(def_index, set())
