"""Intraprocedural constant propagation.

NChecker uses constant propagation (paper §4.4.2) to recover the values
passed to config APIs — ``setMaxRetries(n)``, ``setReadTimeout(ms)`` — so
the improper-parameter check can reason about the actual retry count or
timeout even when it flows through locals.
"""

from __future__ import annotations

from typing import Optional, Union

from ..cfg.graph import CFG
from ..ir.statements import AssignStmt
from ..ir.values import BinaryExpr, CastExpr, Const, Local, UnaryExpr, Value
from .framework import DataflowAnalysis

#: Lattice per local: missing key = unknown, TOP = conflicting, else a value.
TOP = object()
#: Whole-environment bottom: "this program point not reached yet".  Joining
#: BOTTOM with anything yields the other state, which is what makes constants
#: defined before a loop survive the loop-header join.
BOTTOM = None
ConstValue = Union[int, float, bool, str, None, object]
Env = Optional[tuple[tuple[str, ConstValue], ...]]  # sorted environment or BOTTOM


def _env_get(env: Env, name: str) -> Optional[ConstValue]:
    for key, value in env:
        if key == name:
            return value
    return None


def _env_set(env: Env, name: str, value: ConstValue) -> Env:
    items = [(k, v) for k, v in env if k != name]
    items.append((name, value))
    items.sort(key=lambda kv: kv[0])
    return tuple(items)


class ConstantPropagation(DataflowAnalysis[Env]):
    """Forward must-analysis mapping locals to known constant values."""

    direction = "forward"

    def __init__(self, cfg: CFG) -> None:
        super().__init__(cfg)
        self.solve()

    def initial(self, node: int) -> Env:
        return BOTTOM

    def boundary(self) -> Env:
        return ()

    def join(self, states: list[Env]) -> Env:
        reached = [s for s in states if s is not BOTTOM]
        if not reached:
            return BOTTOM
        merged: dict[str, ConstValue] = dict(reached[0])
        for state in reached[1:]:
            other = dict(state)
            for name in list(merged):
                if name not in other:
                    del merged[name]
                elif merged[name] is not TOP and merged[name] != other[name]:
                    merged[name] = TOP
        return tuple(sorted(merged.items()))

    def _eval(self, value: Value, env: Env) -> ConstValue:
        if isinstance(value, Const):
            return value.value
        if isinstance(value, Local):
            found = _env_get(env, value.name)
            return TOP if found is None else found
        if isinstance(value, CastExpr):
            return self._eval(value.value, env)
        if isinstance(value, UnaryExpr):
            operand = self._eval(value.operand, env)
            if operand is TOP:
                return TOP
            if value.op == "neg" and isinstance(operand, (int, float)):
                return -operand
            if value.op == "not" and isinstance(operand, bool):
                return not operand
            return TOP
        if isinstance(value, BinaryExpr):
            left = self._eval(value.left, env)
            right = self._eval(value.right, env)
            if left is TOP or right is TOP:
                return TOP
            try:
                return _apply_binop(value.op, left, right)
            except (TypeError, ZeroDivisionError):
                return TOP
        return TOP

    def transfer(self, node: int, state: Env) -> Env:
        if state is BOTTOM:
            return BOTTOM
        stmt = self.cfg.stmt(node)
        if isinstance(stmt, AssignStmt) and isinstance(stmt.target, Local):
            result = self._eval(stmt.value, state)
            return _env_set(state, stmt.target.name, result)
        return state

    def value_before(self, node: int, local_name: str) -> Optional[ConstValue]:
        """The constant value of ``local_name`` entering statement ``node``,
        or ``None`` when unknown/unreached, or :data:`TOP` when conflicting."""
        state = self.state_before(node)
        if state is BOTTOM:
            return None
        return _env_get(state, local_name)

    def constant_argument(self, node: int, value: Value) -> Optional[ConstValue]:
        """Resolve an invoke argument to a constant if possible."""
        if isinstance(value, Const):
            return value.value
        if isinstance(value, Local):
            found = self.value_before(node, value.name)
            return None if found is TOP else found
        return None


def _apply_binop(op: str, left: ConstValue, right: ConstValue) -> ConstValue:
    if op == "+":
        return left + right  # type: ignore[operator]
    if op == "-":
        return left - right  # type: ignore[operator]
    if op == "*":
        return left * right  # type: ignore[operator]
    if op == "/":
        if isinstance(left, int) and isinstance(right, int):
            return left // right
        return left / right  # type: ignore[operator]
    if op == "%":
        return left % right  # type: ignore[operator]
    if op == "&":
        return left & right  # type: ignore[operator]
    if op == "|":
        return left | right  # type: ignore[operator]
    if op == "^":
        return left ^ right  # type: ignore[operator]
    if op == "<<":
        return left << right  # type: ignore[operator]
    if op == ">>":
        return left >> right  # type: ignore[operator]
    if op == "cmp":
        return (left > right) - (left < right)  # type: ignore[operator]
    raise TypeError(f"unknown op {op}")
