"""Flow-sensitive taint tracking over locals.

NChecker's config-API and response-validity checks (paper §4.4.1, §4.4.4)
both rest on taint: taint the HTTP client object at its allocation and
collect every method invoked on a tainted alias; taint the response object
at the request call site and check that validity checks guard its uses.

:class:`ForwardTaint` is a forward may-analysis whose state is the set of
tainted local names; assignments propagate taint through copies, casts,
and (configurably) through call results whose receiver/arguments are
tainted.  :func:`trace_origins` is the backward direction: walk def-use
chains through copy-like assignments back to the defining allocation or
call sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cfg.graph import CFG
from ..ir.statements import AssignStmt
from ..ir.values import (
    ArrayRef,
    CastExpr,
    FieldRef,
    InvokeExpr,
    Local,
    Value,
    locals_in,
)
from .framework import SetAnalysis
from .reaching import DefUseChains


@dataclass(frozen=True)
class TaintPolicy:
    """Tunes how taint flows through non-copy expressions.

    * ``through_call_results`` — the result of ``x = base.m(args)`` is
      tainted when the base or any argument is tainted (needed so
      ``body = response.getBody()`` taints ``body``).
    * ``through_fields`` — loading any field of a tainted base taints the
      result (coarse heap model; matches the paper's object-level taint).
    """

    through_call_results: bool = True
    through_fields: bool = True


class ForwardTaint(SetAnalysis):
    """Forward taint over local names.

    Seeds are ``(node, local_name)`` pairs: the local becomes tainted
    *after* the given statement executes (use the def site of the value
    of interest, or ``(-1, name)`` to taint a parameter at entry).
    """

    direction = "forward"
    must = False

    def __init__(
        self,
        cfg: CFG,
        seeds: set[tuple[int, str]],
        policy: TaintPolicy = TaintPolicy(),
    ) -> None:
        super().__init__(cfg)
        self.policy = policy
        self._seeds_by_node: dict[int, set[str]] = {}
        self._entry_seeds: frozenset[str] = frozenset(
            name for node, name in seeds if node < 0
        )
        for node, name in seeds:
            if node >= 0:
                self._seeds_by_node.setdefault(node, set()).add(name)
        self.solve()

    def boundary(self) -> frozenset:
        return self._entry_seeds

    def _value_tainted(self, value: Value, state: frozenset) -> bool:
        if isinstance(value, Local):
            return value.name in state
        if isinstance(value, CastExpr):
            return self._value_tainted(value.value, state)
        if isinstance(value, InvokeExpr):
            if not self.policy.through_call_results:
                return False
            return any(lc.name in state for lc in locals_in(value))
        if isinstance(value, (FieldRef, ArrayRef)):
            if not self.policy.through_fields:
                return False
            return any(lc.name in state for lc in locals_in(value))
        return any(lc.name in state for lc in locals_in(value))

    def transfer(self, node: int, state: frozenset) -> frozenset:
        stmt = self.cfg.stmt(node)
        result = state
        if isinstance(stmt, AssignStmt) and isinstance(stmt.target, Local):
            if self._value_tainted(stmt.value, state):
                result = result | {stmt.target.name}
            else:
                result = result - {stmt.target.name}
        seeded = self._seeds_by_node.get(node)
        if seeded:
            result = result | frozenset(seeded)
        return result

    def tainted_before(self, node: int) -> frozenset[str]:
        return self.state_before(node)

    def tainted_after(self, node: int) -> frozenset[str]:
        return self.state_after(node)

    def invoke_sites_on_tainted(self) -> list[tuple[int, InvokeExpr]]:
        """Call sites whose receiver is a tainted alias at that point."""
        sites: list[tuple[int, InvokeExpr]] = []
        for idx, expr in self.cfg.method.invoke_sites():
            if expr.base is not None and expr.base.name in self.tainted_before(idx):
                sites.append((idx, expr))
        return sites


def trace_origins(
    cfg: CFG,
    node: int,
    local_name: str,
    defuse: Optional[DefUseChains] = None,
    max_depth: int = 64,
) -> set[int]:
    """Backward taint: definition sites the value of ``local_name`` at
    ``node`` may originate from, following copy-like assignments.

    Returns statement indices whose right-hand side is *not* a plain copy
    (allocations, invokes, field loads, constants) — i.e. the origins.
    ``-1`` denotes a method parameter.
    """
    defuse = defuse or DefUseChains(cfg)
    origins: set[int] = set()
    seen: set[tuple[int, str]] = set()
    worklist: list[tuple[int, str, int]] = [(node, local_name, 0)]
    while worklist:
        at, name, depth = worklist.pop()
        if (at, name) in seen or depth > max_depth:
            continue
        seen.add((at, name))
        for def_site in defuse.definition_sites(at, name):
            if def_site < 0:
                origins.add(-1)
                continue
            stmt = cfg.method.statements[def_site]
            assert isinstance(stmt, AssignStmt)
            value = stmt.value
            if isinstance(value, Local):
                worklist.append((def_site, value.name, depth + 1))
            elif isinstance(value, CastExpr) and isinstance(value.value, Local):
                worklist.append((def_site, value.value.name, depth + 1))
            else:
                origins.add(def_site)
    return origins
