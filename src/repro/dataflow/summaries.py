"""Interprocedural summary-based dataflow engine (paper §4.4, done right).

NChecker's analyses are interprocedural: the config-API taint runs
"backward propagation until reaching the call site of creating the HTTP
client instance" across frames, the connectivity check needs the
transitive closure of "performs a connectivity check", the notification
check searches error-callback callees for UI sinks, and the response
check's obligation travels with the value through returns.  The seed
implementation approximated all four with hard-coded horizons (one
caller hop, ``callee_depth=2``).  This module is the real engine — the
standard Soot/FlowDroid move: **memoized per-method summaries computed
bottom-up over the SCC condensation of the CHA call graph**.

Per-method facts:

* ``params_to_return`` — parameter positions (``RECEIVER`` = the
  receiver) whose value may flow to the method's return value, composed
  through callees' summaries;
* ``config_effects(key, position)`` — the config-API calls applied
  (transitively, through callees the object is passed to) to the
  parameter at ``position``, with retry/timeout constants resolved in
  the frame that makes the call;
* ``performs_connectivity_check`` / ``notifies_ui`` /
  ``notifies_via_handler`` / ``sends_broadcast`` — transitive boolean
  facts over call-graph edges.

Soundness: all facts are *may*-facts.  At recursion the engine widens
to ⊤ — a cyclic ``params_to_return`` dependency treats every operand of
the cyclic call as flowing through, and a cyclic ``config_effects``
dependency reports :data:`CONFIG_TOP` ("assume configured"), which
consumers must treat as satisfying every config kind, the no-false-alarm
direction.  Unresolved virtual calls get the same ⊤ treatment the
intraprocedural :class:`~repro.dataflow.taint.TaintPolicy` always
applied: their results are assumed to carry any taint their operands
carry.

Summaries are memoized for the lifetime of the engine, and
:class:`SummaryCache` keeps one engine per APK (keyed by a structural
fingerprint, so patched/rebuilt apps miss), which is what makes repeat
``scan()`` calls and corpus sweeps stop re-deriving the same facts per
request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from ..callgraph.scc import condensation_order, condensation_wavefronts
from ..ir.method import IRMethod
from ..obs import metrics as obs_metrics
from ..obs import span
from ..ir.statements import AssignStmt, ReturnStmt
from ..ir.values import ArrayRef, CastExpr, FieldRef, InvokeExpr, Local, locals_in
from ..libmodels.android import (
    is_connectivity_check,
    is_handler_notification,
    is_ui_notification,
)
from ..libmodels.annotations import ConfigAPI, LibraryRegistry
from .configvalues import config_call_values
from .constants import ConstantPropagation
from .taint import ForwardTaint

if TYPE_CHECKING:
    from ..app.apk import APK
    from ..callgraph.cha import CallGraph
    from ..callgraph.entrypoints import MethodKey
    from ..callgraph.resolve import MethodAnalysisCache

#: Parameter position denoting the receiver (``this``).
RECEIVER: int = -1


class _Top:
    """⊤ for config-effect summaries: "unknown, assume configured"."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "CONFIG_TOP"


CONFIG_TOP = _Top()


@dataclass(frozen=True, eq=False)
class ConfigEffect:
    """One config-API call observed on a tracked object, with the values
    it pins down resolved in the frame that makes the call."""

    lib_key: str
    config: ConfigAPI
    method: "MethodKey"
    stmt_index: int
    retries: Optional[int] = None
    timeout_ms: Optional[int] = None


@dataclass
class MethodSummary:
    """The assembled summary of one method (convenience view; the checks
    use the engine's targeted accessors, which compute lazily)."""

    key: "MethodKey"
    params_to_return: frozenset[int]
    config_effects: dict[int, "tuple[ConfigEffect, ...] | _Top"]
    performs_connectivity_check: bool
    notifies_ui: bool
    notifies_via_handler: bool
    sends_broadcast: bool
    #: ⊤-widening was applied somewhere in this summary (recursion).
    widened: bool = False


@dataclass
class SummaryStats:
    """Cheap observability for the cache-effectiveness benchmarks."""

    bool_fact_passes: int = 0
    bool_fact_sccs: int = 0
    params_to_return_computed: int = 0
    params_to_return_hits: int = 0
    config_effects_computed: int = 0
    config_effects_hits: int = 0
    widenings: int = 0


def _is_broadcast_invoke(invoke: InvokeExpr) -> bool:
    from ..callgraph.icc import BROADCAST_METHODS

    return invoke.sig.name in BROADCAST_METHODS


#: The transitive boolean facts the engine serves: fact name →
#: (call-site predicate, propagate over all edge kinds?).  Notification
#: facts propagate over direct edges only — they mirror the legacy callee
#: descent, which resolved callees by signature, not through async edges.
BOOL_FACT_SPECS: dict[str, tuple[Callable[[InvokeExpr], bool], bool]] = {
    "connectivity": (is_connectivity_check, True),
    "ui": (is_ui_notification, False),
    "handler": (is_handler_notification, False),
    "broadcast": (_is_broadcast_invoke, False),
}


@dataclass
class _BoolFactState:
    """Memoized state of one transitive boolean fact.

    Holds only data (no predicate callables) so a cached engine stays
    picklable for the persistent artifact cache; accessors pass the
    predicate with every query (:data:`BOOL_FACT_SPECS`).
    """

    all_edge_kinds: bool
    #: method → fact, for every method in an evaluated SCC.
    resolved: dict["MethodKey", bool] = field(default_factory=dict)
    #: SCC indices already folded into ``resolved``.
    evaluated_sccs: set[int] = field(default_factory=set)
    #: Every method has an entry (a whole-app build happened).
    complete: bool = False


class SummaryEngine:
    """SCC-ordered interprocedural summaries over one app.

    Boolean facts are **demand-driven**: a point query evaluates only the
    SCCs in the queried method's (edge-kind-filtered) callee cone, in
    callee-first order, memoizing per-SCC results; whole-app views
    (``connectivity_methods``) and the ``eager`` ablation evaluate every
    SCC.  Either way the per-SCC fixpoint is the same, so answers are
    independent of query order, of eager vs. lazy mode, and of how many
    wavefront workers (``intra_jobs``) evaluated independent SCCs
    concurrently.
    """

    def __init__(
        self,
        graph: "CallGraph",
        registry: LibraryRegistry,
        cache: "MethodAnalysisCache",
    ) -> None:
        # Deferred: dataflow <-> callgraph would otherwise cycle at import.
        from ..callgraph.cha import EDGE_DIRECT

        self.graph = graph
        self.registry = registry
        self.cache = cache
        self.stats = SummaryStats()
        self._edge_direct = EDGE_DIRECT
        #: Ablation toggle (``--eager-summaries``): point queries build
        #: the whole-app fact map, the pre-demand-driven behavior.
        self.eager: bool = False
        #: Wavefront workers for whole-app fact builds and prewarming.
        #: Purely an execution detail: results, counters, and profile
        #: shapes are identical for any value (see ``prewarm_bool_facts``).
        self.intra_jobs: int = 1
        #: SCC condensation of the call graph, computed lazily so an
        #: incremental invalidation (which refreshes edges) can simply
        #: drop it and have the next fact pass recompute the order.
        self._scc_order: Optional[tuple[list, dict]] = None
        self._bool_states: dict[str, _BoolFactState] = {}
        self._ptr: dict["MethodKey", frozenset[int]] = {}
        self._ptr_in_progress: set["MethodKey"] = set()
        self._config: dict[
            tuple["MethodKey", int], "tuple[ConfigEffect, ...] | _Top"
        ] = {}
        self._config_in_progress: set[tuple["MethodKey", int]] = set()
        self._direct_maps: dict["MethodKey", dict[int, "MethodKey"]] = {}
        self._widened: set["MethodKey"] = set()

    def _ensure_scc_order(self) -> tuple[list, dict]:
        if self._scc_order is None:
            registry = obs_metrics()
            with span("scc-condensation"), registry.timer("scc.build_ms"):
                keys = list(self.graph.methods)
                self._scc_order = condensation_order(
                    keys, lambda k: [e.callee for e in self.graph.callees(k)]
                )
            registry.set_gauge("scc.components", len(self._scc_order[0]))
        return self._scc_order

    @property
    def sccs(self) -> list:
        return self._ensure_scc_order()[0]

    @property
    def scc_position(self) -> dict:
        return self._ensure_scc_order()[1]

    # -- incremental invalidation -------------------------------------------

    def invalidate_methods(self, keys: Iterable["MethodKey"]) -> None:
        """Drop every memoized fact that may depend on the given methods.

        Callers must pass the full dependency cone (the dirty methods plus
        their transitive callers — a summary folds in its callees'
        summaries, so dirtying a callee dirties every caller above it).
        The boolean fact maps and the SCC order are whole-app artifacts
        over call-graph edges and are dropped wholesale; they recompute in
        one cheap pass on next use.
        """
        keys = set(keys)
        obs_metrics().observe("dataflow.invalidation_cone", len(keys))
        self._scc_order = None
        self._bool_states.clear()
        self._widened -= keys
        for key in keys:
            self._ptr.pop(key, None)
            self._direct_maps.pop(key, None)
        for memo_key in [mk for mk in self._config if mk[0] in keys]:
            del self._config[memo_key]

    # -- transitive boolean facts -------------------------------------------

    def _bool_state(self, name: str, all_edge_kinds: bool) -> _BoolFactState:
        state = self._bool_states.get(name)
        if state is None:
            state = _BoolFactState(all_edge_kinds)
            self._bool_states[name] = state
            self.stats.bool_fact_passes += 1
            obs_metrics().inc("dataflow.bool_fact_passes")
        return state

    def _callee_keys(self, key: "MethodKey", all_edge_kinds: bool) -> list:
        if all_edge_kinds:
            return [e.callee for e in self.graph.callees(key)]
        edge_direct = self._edge_direct
        return [
            e.callee for e in self.graph.callees(key) if e.kind == edge_direct
        ]

    def _cone_indices(
        self, state: _BoolFactState, roots: Iterable["MethodKey"]
    ) -> set[int]:
        """SCC indices the given roots transitively depend on (through
        edges of the fact's kind), excluding already-evaluated SCCs."""
        sccs, position = self._ensure_scc_order()
        evaluated = state.evaluated_sccs
        needed: set[int] = set()
        stack = [
            idx
            for idx in (position.get(root) for root in roots)
            if idx is not None and idx not in evaluated
        ]
        while stack:
            idx = stack.pop()
            if idx in needed:
                continue
            needed.add(idx)
            for member in sccs[idx]:
                for callee in self._callee_keys(member, state.all_edge_kinds):
                    cidx = position.get(callee)
                    if (
                        cidx is not None
                        and cidx != idx
                        and cidx not in needed
                        and cidx not in evaluated
                    ):
                        stack.append(cidx)
        return needed

    def _eval_scc_values(
        self,
        scc: tuple,
        predicate: Callable[[InvokeExpr], bool],
        state: _BoolFactState,
    ) -> dict["MethodKey", bool]:
        """One SCC's facts: the local predicate per member, then the
        within-SCC (boolean-OR, hence fast) fixpoint, pulling callee facts
        outside the SCC from ``state.resolved``.  Thread-safe given its
        wavefront contract: every external dependency is resolved before
        this SCC is scheduled, and ``resolved`` is only written between
        wavefronts."""
        values: dict["MethodKey", bool] = {}
        for key in scc:
            method = self.graph.methods[key]
            values[key] = any(
                predicate(invoke) for _idx, invoke in method.invoke_sites()
            )
        resolved = state.resolved
        all_edge_kinds = state.all_edge_kinds
        edge_direct = self._edge_direct
        changed = True
        while changed:
            changed = False
            for key in scc:
                if values[key]:
                    continue
                for edge in self.graph.callees(key):
                    if not all_edge_kinds and edge.kind != edge_direct:
                        continue
                    if values.get(edge.callee, resolved.get(edge.callee, False)):
                        values[key] = True
                        changed = True
                        break
        return values

    def _resolve_sccs(
        self,
        state: _BoolFactState,
        predicate: Callable[[InvokeExpr], bool],
        indices: Iterable[int],
        jobs: Optional[int] = None,
    ) -> None:
        """Evaluate the given SCCs callee-first, in topological wavefronts.

        SCCs within one wavefront have no dependencies on each other, so
        with ``jobs > 1`` they are evaluated on a thread pool; results are
        merged wavefront-by-wavefront in sorted SCC order, making
        ``state.resolved`` identical for any worker count.
        """
        pending = [i for i in indices if i not in state.evaluated_sccs]
        if not pending:
            return
        sccs, position = self._ensure_scc_order()
        fronts = condensation_wavefronts(
            pending,
            sccs,
            position,
            lambda k: self._callee_keys(k, state.all_edge_kinds),
        )
        self.stats.bool_fact_sccs += len(pending)
        obs_metrics().inc("dataflow.bool_fact_sccs", len(pending))
        jobs = self.intra_jobs if jobs is None else jobs
        executor = None
        try:
            for front in fronts:
                if jobs > 1 and len(front) > 1:
                    if executor is None:
                        from concurrent.futures import ThreadPoolExecutor

                        executor = ThreadPoolExecutor(
                            max_workers=jobs, thread_name_prefix="nchecker-scc"
                        )
                    results = list(
                        executor.map(
                            lambda i: self._eval_scc_values(
                                sccs[i], predicate, state
                            ),
                            front,
                        )
                    )
                else:
                    results = [
                        self._eval_scc_values(sccs[i], predicate, state)
                        for i in front
                    ]
                for idx, values in zip(front, results):
                    state.resolved.update(values)
                    state.evaluated_sccs.add(idx)
        finally:
            if executor is not None:
                executor.shutdown(wait=True)

    def _resolve_full(
        self, state: _BoolFactState, predicate: Callable[[InvokeExpr], bool]
    ) -> None:
        if state.complete:
            return
        sccs, _position = self._ensure_scc_order()
        self._resolve_sccs(state, predicate, range(len(sccs)))
        state.complete = True

    def _bool_fact(
        self,
        name: str,
        predicate: Callable[[InvokeExpr], bool],
        all_edge_kinds: bool,
        key: "MethodKey",
    ) -> bool:
        state = self._bool_state(name, all_edge_kinds)
        cached = state.resolved.get(key)
        if cached is not None:
            return cached
        if state.complete or key not in self.graph.methods:
            return False
        if self.eager:
            self._resolve_full(state, predicate)
        else:
            # Demand-driven: evaluate only this key's callee cone, on the
            # querying thread (cones are small; prewarming covers the rest).
            self._resolve_sccs(
                state, predicate, self._cone_indices(state, (key,)), jobs=1
            )
        return state.resolved.get(key, False)

    def prewarm_bool_facts(
        self,
        demands: Iterable[tuple[str, Optional[Iterable["MethodKey"]]]],
        intra_jobs: Optional[int] = None,
    ) -> None:
        """Evaluate the fact cones the planned passes will query.

        ``demands`` pairs a fact name from :data:`BOOL_FACT_SPECS` with
        the methods whose facts will be demanded (``None`` = whole app,
        for facts served as whole-app views).  The decomposition into
        SCC wavefronts is the same for every ``intra_jobs`` value — the
        worker count only chooses how many independent SCCs of one
        wavefront evaluate concurrently — so deterministic counters and
        results do not depend on it.  Queries the prewarm did not cover
        simply fall back to lazy evaluation.
        """
        if intra_jobs is not None:
            self.intra_jobs = intra_jobs
        for name, roots in demands:
            predicate, all_edge_kinds = BOOL_FACT_SPECS[name]
            state = self._bool_state(name, all_edge_kinds)
            if state.complete:
                continue
            if roots is None or self.eager:
                self._resolve_full(state, predicate)
            else:
                self._resolve_sccs(
                    state, predicate, self._cone_indices(state, roots)
                )

    def performs_connectivity_check(self, key: "MethodKey") -> bool:
        return self._bool_fact("connectivity", is_connectivity_check, True, key)

    def connectivity_methods(self) -> set["MethodKey"]:
        """All methods that transitively perform a connectivity check —
        the memoized replacement for the connectivity check's private
        callers-of fixpoint (`core/checks/base.py:methods_invoking`).
        A whole-app view, so it always resolves every SCC."""
        state = self._bool_state("connectivity", True)
        self._resolve_full(state, is_connectivity_check)
        return {k for k, v in state.resolved.items() if v}

    def notifies_ui(self, key: "MethodKey") -> bool:
        return self._bool_fact("ui", is_ui_notification, False, key)

    def notifies_via_handler(self, key: "MethodKey") -> bool:
        return self._bool_fact("handler", is_handler_notification, False, key)

    def sends_broadcast(self, key: "MethodKey") -> bool:
        return self._bool_fact("broadcast", _is_broadcast_invoke, False, key)

    # -- parameter → return transfer ----------------------------------------

    def params_to_return(self, key: "MethodKey") -> frozenset[int]:
        """Parameter positions (``RECEIVER`` for ``this``) whose value may
        flow to the return value, through copies, casts, field loads of
        tracked objects, and callees' own transfer summaries."""
        cached = self._ptr.get(key)
        if cached is not None:
            self.stats.params_to_return_hits += 1
            return cached
        method = self.graph.methods.get(key)
        if method is None:
            return frozenset()
        self.stats.params_to_return_computed += 1
        self._ptr_in_progress.add(key)
        try:
            result = self._compute_ptr(key, method)
        finally:
            self._ptr_in_progress.discard(key)
        self._ptr[key] = result
        return result

    def _all_positions(self, method: IRMethod) -> frozenset[int]:
        positions = set(range(len(method.params)))
        if not method.is_static:
            positions.add(RECEIVER)
        return frozenset(positions)

    def _compute_ptr(self, key: "MethodKey", method: IRMethod) -> frozenset[int]:
        defuse = self.cache.defuse(method)
        param_pos = {p.name: i for i, p in enumerate(method.params)}
        if not method.is_static:
            param_pos["this"] = RECEIVER
        positions: set[int] = set()
        seen: set[tuple[int, str]] = set()
        worklist: list[tuple[int, str]] = [
            (idx, stmt.value.name)
            for idx, stmt in enumerate(method.statements)
            if isinstance(stmt, ReturnStmt) and isinstance(stmt.value, Local)
        ]
        iterations = 0
        while worklist:
            iterations += 1
            at, name = worklist.pop()
            if (at, name) in seen:
                continue
            seen.add((at, name))
            for def_site in defuse.definition_sites(at, name):
                if def_site < 0:
                    if name in param_pos:
                        positions.add(param_pos[name])
                    continue
                stmt = method.statements[def_site]
                if not isinstance(stmt, AssignStmt):
                    continue
                value = stmt.value
                if isinstance(value, CastExpr):
                    value = value.value
                if isinstance(value, Local):
                    worklist.append((def_site, value.name))
                elif isinstance(value, InvokeExpr):
                    worklist.extend(
                        (def_site, lc.name)
                        for lc in self._invoke_carriers(key, def_site, value, method)
                    )
                elif isinstance(value, (FieldRef, ArrayRef)):
                    # Field/array loads keep tracking the base object
                    # (object-level heap model); allocations and constants
                    # are fresh values — the walk stops there.
                    worklist.extend((def_site, lc.name) for lc in locals_in(value))
        if iterations:
            obs_metrics().inc("dataflow.worklist_iterations", iterations)
        return frozenset(positions)

    def _invoke_carriers(
        self, key: "MethodKey", idx: int, invoke: InvokeExpr, method: IRMethod
    ) -> Iterable[Local]:
        """Operands of a call whose value may flow into its result."""
        callee = self.direct_callee_at(key, idx)
        if callee is None or callee in self._ptr_in_progress:
            # Unresolved virtual call, or recursion: widen to ⊤ — every
            # operand may flow through (the TaintPolicy treatment).
            if callee in self._ptr_in_progress:
                self.stats.widenings += 1
                obs_metrics().inc("dataflow.widenings")
                self._widened.add(key)
            return locals_in(invoke)
        transfer = self.params_to_return(callee)
        carriers: list[Local] = []
        if RECEIVER in transfer and invoke.base is not None:
            carriers.append(invoke.base)
        for pos in transfer:
            if 0 <= pos < len(invoke.args) and isinstance(invoke.args[pos], Local):
                carriers.append(invoke.args[pos])
        return carriers

    # -- config effects on parameters ---------------------------------------

    def config_effects(
        self, key: "MethodKey", position: int
    ) -> "tuple[ConfigEffect, ...] | _Top":
        """Config-API calls applied to the parameter at ``position``
        (``RECEIVER`` for the receiver) by this method or, transitively,
        by callees it passes the object to.  :data:`CONFIG_TOP` when the
        flow crosses a recursive cycle (assume configured — sound in the
        no-false-alarm direction)."""
        memo_key = (key, position)
        if memo_key in self._config_in_progress:
            self.stats.widenings += 1
            obs_metrics().inc("dataflow.widenings")
            self._widened.add(key)
            return CONFIG_TOP
        cached = self._config.get(memo_key)
        if cached is not None:
            self.stats.config_effects_hits += 1
            return cached
        method = self.graph.methods.get(key)
        if method is None:
            return ()
        local = self._param_local(method, position)
        if local is None:
            self._config[memo_key] = ()
            return ()
        self.stats.config_effects_computed += 1
        self._config_in_progress.add(memo_key)
        try:
            result = self._compute_config_effects(key, method, local)
        finally:
            self._config_in_progress.discard(memo_key)
        self._config[memo_key] = result
        return result

    @staticmethod
    def _param_local(method: IRMethod, position: int) -> Optional[str]:
        if position == RECEIVER:
            return None if method.is_static else "this"
        if 0 <= position < len(method.params):
            return method.params[position].name
        return None

    def _compute_config_effects(
        self, key: "MethodKey", method: IRMethod, local: str
    ) -> "tuple[ConfigEffect, ...] | _Top":
        cfg = self.cache.cfg(method)
        defuse = self.cache.defuse(method)
        taint = ForwardTaint(cfg, {(-1, local)})
        constants: Optional[ConstantPropagation] = None
        effects: dict[tuple["MethodKey", int], ConfigEffect] = {}
        widened = False
        for idx, invoke in method.invoke_sites():
            tainted = taint.tainted_before(idx)
            touches = (
                invoke.base is not None and invoke.base.name in tainted
            ) or any(isinstance(a, Local) and a.name in tainted for a in invoke.args)
            if not touches:
                continue
            found = self.registry.find_config(invoke)
            if found is not None:
                lib, config = found
                if constants is None:
                    constants = self.cache.constants(method)
                values = config_call_values(
                    method, idx, invoke, config, cfg, defuse, constants
                )
                effects[(key, idx)] = ConfigEffect(
                    lib.key, config, key, idx, values.retries, values.timeout_ms
                )
                continue
            callee = self.direct_callee_at(key, idx)
            if callee is None:
                continue
            callee_method = self.graph.methods.get(callee)
            if callee_method is None:
                continue
            positions: list[int] = []
            if (
                invoke.base is not None
                and invoke.base.name in tainted
                and not callee_method.is_static
            ):
                positions.append(RECEIVER)
            for i, arg in enumerate(invoke.args):
                if (
                    isinstance(arg, Local)
                    and arg.name in tainted
                    and i < len(callee_method.params)
                ):
                    positions.append(i)
            for pos in positions:
                sub = self.config_effects(callee, pos)
                if sub is CONFIG_TOP:
                    widened = True
                else:
                    effects.update({(e.method, e.stmt_index): e for e in sub})
        if widened:
            return CONFIG_TOP
        return tuple(
            effects[k] for k in sorted(effects, key=lambda mk: (mk[0], mk[1]))
        )

    # -- assembled view ------------------------------------------------------

    def summary(self, key: "MethodKey") -> MethodSummary:
        method = self.graph.methods.get(key)
        n_params = len(method.params) if method is not None else 0
        positions = list(range(n_params))
        if method is not None and not method.is_static:
            positions.append(RECEIVER)
        return MethodSummary(
            key=key,
            params_to_return=self.params_to_return(key),
            config_effects={p: self.config_effects(key, p) for p in positions},
            performs_connectivity_check=self.performs_connectivity_check(key),
            notifies_ui=self.notifies_ui(key),
            notifies_via_handler=self.notifies_via_handler(key),
            sends_broadcast=self.sends_broadcast(key),
            widened=key in self._widened,
        )

    # -- helpers -------------------------------------------------------------

    def direct_callee_at(self, key: "MethodKey", idx: int) -> Optional["MethodKey"]:
        """The app method a direct call edge at ``(key, idx)`` targets."""
        direct = self._direct_maps.get(key)
        if direct is None:
            direct = {
                e.stmt_index: e.callee
                for e in self.graph.callees(key)
                if e.kind == self._edge_direct
            }
            self._direct_maps[key] = direct
        return direct.get(idx)


# ---------------------------------------------------------------------------
# Per-APK engine cache
# ---------------------------------------------------------------------------


def apk_fingerprint(apk: "APK") -> int:
    """A cheap structural fingerprint: any statement inserted or removed
    (the patcher's edits) changes it, invalidating cached summaries."""
    return hash(
        tuple(
            sorted(
                (m.class_name, m.name, m.sig.arity, len(m.statements))
                for m in apk.methods()
            )
        )
    )


@dataclass
class SummaryCache:
    """One summary engine per APK, LRU-bounded for corpus sweeps."""

    max_entries: int = 64
    hits: int = 0
    misses: int = 0
    _engines: dict[str, tuple[int, SummaryEngine]] = field(default_factory=dict)

    def engine_for(
        self,
        apk: "APK",
        graph: "CallGraph",
        registry: LibraryRegistry,
        cache: "MethodAnalysisCache",
    ) -> SummaryEngine:
        fingerprint = apk_fingerprint(apk)
        entry = self._engines.get(apk.package)
        if entry is not None and entry[0] == fingerprint:
            self.hits += 1
            # Refresh LRU position.
            self._engines[apk.package] = self._engines.pop(apk.package)
            return entry[1]
        self.misses += 1
        engine = SummaryEngine(graph, registry, cache)
        self._engines[apk.package] = (fingerprint, engine)
        while len(self._engines) > self.max_entries:
            self._engines.pop(next(iter(self._engines)))
        return engine
