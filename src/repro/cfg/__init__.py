"""Control-flow substrate: CFGs, dominators, loops, control dependence."""

from .dominators import DominatorTree, control_dependence
from .graph import CFG, may_throw
from .loops import Loop, loops_containing, natural_loops

__all__ = [
    "CFG",
    "DominatorTree",
    "Loop",
    "control_dependence",
    "loops_containing",
    "may_throw",
    "natural_loops",
]
