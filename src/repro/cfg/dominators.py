"""Dominator and post-dominator trees (Cooper–Harvey–Kennedy iterative).

Post-dominators and the derived control-dependence relation are what the
retry-loop identifier (paper §4.5) uses to decide whether a loop-exit
condition is control-dependent on statements in a catch block.
"""

from __future__ import annotations

from .graph import CFG


class DominatorTree:
    """Immediate-dominator tree over a CFG (or its reverse)."""

    def __init__(self, cfg: CFG, reverse: bool = False) -> None:
        self.cfg = cfg
        self.reverse = reverse
        if reverse:
            self._root = cfg.exit
            self._preds = cfg.succs
            self._succs = cfg.preds
        else:
            self._root = cfg.entry
            self._preds = cfg.preds
            self._succs = cfg.succs
        self.idom: dict[int, int] = {}
        self._compute()

    def _order(self) -> list[int]:
        """Reverse postorder of the (possibly reversed) graph."""
        seen = {self._root}
        order: list[int] = []
        stack: list[tuple[int, int]] = [(self._root, 0)]
        while stack:
            node, child_idx = stack[-1]
            succs = self._succs[node]
            if child_idx < len(succs):
                stack[-1] = (node, child_idx + 1)
                succ = succs[child_idx]
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, 0))
            else:
                order.append(node)
                stack.pop()
        order.reverse()
        return order

    def _compute(self) -> None:
        order = self._order()
        index = {node: i for i, node in enumerate(order)}
        idom: dict[int, int] = {self._root: self._root}

        def intersect(a: int, b: int) -> int:
            while a != b:
                while index[a] > index[b]:
                    a = idom[a]
                while index[b] > index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for node in order:
                if node == self._root:
                    continue
                candidates = [p for p in self._preds[node] if p in idom]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for pred in candidates[1:]:
                    new_idom = intersect(pred, new_idom)
                if idom.get(node) != new_idom:
                    idom[node] = new_idom
                    changed = True
        self.idom = idom

    def dominates(self, a: int, b: int) -> bool:
        """True when ``a`` (post)dominates ``b`` (reflexive)."""
        node = b
        while True:
            if node == a:
                return True
            parent = self.idom.get(node)
            if parent is None or parent == node:
                return node == a
            node = parent

    def dominators_of(self, node: int) -> set[int]:
        result = {node}
        current = node
        while True:
            parent = self.idom.get(current)
            if parent is None or parent == current:
                return result
            result.add(parent)
            current = parent


def control_dependence(cfg: CFG) -> dict[int, set[int]]:
    """Map each node to the set of branch nodes it is control-dependent on.

    Uses the classic Ferrante–Ottenstein–Warren construction: for every
    edge ``(a, b)`` where ``b`` does not post-dominate ``a``, the nodes on
    the post-dominator-tree path from ``b`` up to (exclusive) ``ipdom(a)``
    are control-dependent on ``a``.
    """
    pdom = DominatorTree(cfg, reverse=True)
    deps: dict[int, set[int]] = {node: set() for node in cfg.nodes()}
    for a in cfg.nodes():
        if len(cfg.succs[a]) < 2:
            continue
        a_ipdom = pdom.idom.get(a)
        for b in cfg.succs[a]:
            if b not in pdom.idom and b != cfg.exit:
                continue  # unreachable-from-exit node (infinite loop body)
            runner = b
            while runner != a_ipdom and runner is not None:
                deps[runner].add(a)
                if runner == a:  # loop back-edge: a depends on itself
                    break
                nxt = pdom.idom.get(runner)
                if nxt is None or nxt == runner:
                    break
                runner = nxt
    return deps
