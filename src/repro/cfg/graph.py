"""Statement-level control-flow graphs.

Nodes are statement indices into the method body; a synthetic exit node
(index ``len(statements)``) gives every method a unique exit, which the
post-dominator computation requires.  Exceptional control flow is modelled
conservatively: every potentially-throwing statement inside a trap range
has an edge to the trap handler (invocations and explicit throws may
throw; straight-line arithmetic may not — this matches how Soot builds
its ``ExceptionalUnitGraph`` for the analyses NChecker runs).
"""

from __future__ import annotations

from typing import Iterator

from ..ir.method import IRMethod
from ..ir.statements import (
    GotoStmt,
    IfStmt,
    InvokeStmt,
    ReturnStmt,
    Stmt,
    ThrowStmt,
)


def may_throw(stmt: Stmt) -> bool:
    """Whether the statement can transfer control to an exception handler."""
    if isinstance(stmt, (InvokeStmt, ThrowStmt)):
        return True
    invoke = stmt.invoke()
    return invoke is not None


class CFG:
    """Control-flow graph of one method.

    ``entry`` is statement 0; ``exit`` is the synthetic node
    ``len(statements)``.  ``succs``/``preds`` include both normal and
    exceptional edges; exceptional edges are additionally recorded in
    ``exceptional_edges`` so analyses can distinguish them.
    """

    __slots__ = (
        "method",
        "entry",
        "exit",
        "succs",
        "preds",
        "exceptional_edges",
        "_acyclic",
    )

    def __init__(self, method: IRMethod) -> None:
        if not method._validated:
            method.validate()
        self.method = method
        n = len(method.statements)
        self.entry = 0
        self.exit = n
        self.succs: list[list[int]] = [[] for _ in range(n + 1)]
        self.preds: list[list[int]] = [[] for _ in range(n + 1)]
        self.exceptional_edges: set[tuple[int, int]] = set()
        self._acyclic: bool | None = None
        self._build()

    def _add_edge(self, src: int, dst: int, exceptional: bool = False) -> None:
        if dst not in self.succs[src]:
            self.succs[src].append(dst)
            self.preds[dst].append(src)
        if exceptional:
            self.exceptional_edges.add((src, dst))

    def _resolve(self, label: str) -> int:
        """Branch target index; labels one past the end mean the exit."""
        idx = self.method.label_index(label)
        return min(idx, self.exit)

    def _build(self) -> None:
        method = self.method
        n = len(method.statements)
        # Resolve every trap's protected range and handler once, instead of
        # re-resolving labels per may-throw statement (`traps_covering`).
        trap_ranges: list[tuple[int, int, int]] = [
            (
                method.label_index(trap.begin),
                method.label_index(trap.end),
                self._resolve(trap.handler),
            )
            for trap in method.traps
        ]
        for idx, stmt in enumerate(method.statements):
            if isinstance(stmt, ReturnStmt):
                self._add_edge(idx, self.exit)
            elif isinstance(stmt, GotoStmt):
                self._add_edge(idx, self._resolve(stmt.target))
            elif isinstance(stmt, IfStmt):
                self._add_edge(idx, self._resolve(stmt.target))
                if idx + 1 <= n:
                    self._add_edge(idx, idx + 1)
            elif isinstance(stmt, ThrowStmt):
                handled = False
                for begin, end, handler in trap_ranges:
                    if begin <= idx < end:
                        self._add_edge(idx, handler, exceptional=True)
                        handled = True
                if not handled:
                    self._add_edge(idx, self.exit, exceptional=True)
                continue
            else:
                if idx + 1 <= n:
                    self._add_edge(idx, idx + 1)
            # Exceptional edges from throwing statements inside trap ranges.
            if trap_ranges and may_throw(stmt):
                for begin, end, handler in trap_ranges:
                    if begin <= idx < end:
                        self._add_edge(idx, handler, exceptional=True)

    # -- queries -----------------------------------------------------------

    @property
    def node_count(self) -> int:
        return self.exit + 1

    @property
    def acyclic(self) -> bool:
        """Whether every edge advances the statement index.

        Statement-index CFGs only cycle through an edge back to an
        equal-or-earlier index (fall-through, branches past the loop, and
        exits always advance), so "all edges advance" is exactly
        acyclicity — and statement order is then a topological order.
        Computed once and cached; dataflow solvers and loop detection both
        take single-pass fast paths on acyclic graphs.
        """
        if self._acyclic is None:
            self._acyclic = all(
                dst > src
                for src, dsts in enumerate(self.succs)
                for dst in dsts
            )
        return self._acyclic

    def nodes(self) -> range:
        return range(self.node_count)

    def stmt(self, node: int) -> Stmt | None:
        if node == self.exit:
            return None
        return self.method.statements[node]

    def reverse_postorder(self) -> list[int]:
        """RPO over nodes reachable from the entry."""
        seen: set[int] = set()
        order: list[int] = []

        def visit(start: int) -> None:
            stack: list[tuple[int, Iterator[int]]] = [(start, iter(self.succs[start]))]
            seen.add(start)
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.succs[succ])))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        visit(self.entry)
        order.reverse()
        return order

    def reachable_from(self, start: int) -> set[int]:
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for succ in self.succs[node]:
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return seen

    def reaches(self, src: int, dst: int) -> bool:
        return dst in self.reachable_from(src)
