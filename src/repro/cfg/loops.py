"""Natural-loop detection on the statement-level CFG.

Retry-logic identification (paper §4.5) starts from loops whose bodies
directly or transitively contain network request call sites; this module
finds the loops and their exits.
"""

from __future__ import annotations

from dataclasses import dataclass

from .dominators import DominatorTree
from .graph import CFG


@dataclass
class Loop:
    """A natural loop: header, member nodes, and its exit edges.

    ``exits`` are CFG edges ``(src, dst)`` with ``src`` inside the loop and
    ``dst`` outside; these carry the *retry conditions* of paper §4.5 when
    ``src`` is a conditional branch, or unconditional exits when ``src``
    is a goto/return/throw.
    """

    header: int
    body: frozenset[int]
    back_edges: tuple[tuple[int, int], ...]
    exits: tuple[tuple[int, int], ...] = ()

    def __contains__(self, node: int) -> bool:
        return node in self.body

    def __len__(self) -> int:
        return len(self.body)


def natural_loops(cfg: CFG, dom: DominatorTree | None = None) -> list[Loop]:
    """All natural loops, one per header (same-header loops are merged)."""
    # Fast path: an acyclic CFG has no back edges, hence no loops, and no
    # need to compute dominators at all.  Most methods are loop-free.
    if dom is None and cfg.acyclic:
        return []
    dom = dom or DominatorTree(cfg)
    reachable = cfg.reachable_from(cfg.entry)
    back_edges_by_header: dict[int, list[tuple[int, int]]] = {}
    for src in cfg.nodes():
        if src not in reachable:
            continue
        for dst in cfg.succs[src]:
            if dst in dom.idom and dom.dominates(dst, src):
                back_edges_by_header.setdefault(dst, []).append((src, dst))

    loops: list[Loop] = []
    for header, back_edges in sorted(back_edges_by_header.items()):
        body: set[int] = {header}
        worklist = [src for src, _ in back_edges]
        while worklist:
            node = worklist.pop()
            if node in body:
                continue
            body.add(node)
            worklist.extend(cfg.preds[node])
        exits: list[tuple[int, int]] = []
        for node in sorted(body):
            for succ in cfg.succs[node]:
                if succ not in body:
                    exits.append((node, succ))
        loops.append(
            Loop(header, frozenset(body), tuple(back_edges), tuple(exits))
        )
    return loops


def loops_containing(loops: list[Loop], node: int) -> list[Loop]:
    """Loops whose body contains ``node``, innermost (smallest) first."""
    return sorted((lp for lp in loops if node in lp), key=len)
