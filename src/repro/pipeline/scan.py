"""Scan sessions: the pass pipeline executed over one artifact store.

A :class:`ScanSession` owns the :class:`~repro.pipeline.artifacts.
ArtifactStore` of one APK and runs the enabled checks as scheduled
passes: the plan (from :mod:`repro.pipeline.passes`) says which passes
run in which order and which app artifacts they need; the session builds
exactly those, injects them into the shared ``AnalysisContext``, runs
the passes, and assembles the :class:`~repro.core.checker.ScanResult`
exactly as the hand-sequenced orchestrator did.

Sessions are the unit of incrementality: the patcher holds one session
per app, reports the methods each patch round touched, and
:meth:`ScanSession.invalidate_methods` narrows the rebuild to the dirty
region.  :class:`SessionCache` gives ``NChecker`` its repeat-scan
behaviour (one session per package, keyed by the structural
fingerprint, LRU-bounded for corpus sweeps) — the successor of the old
per-APK ``SummaryCache``.

Sessions are also where the **persistent cross-run cache**
(:mod:`repro.pipeline.cachestore`, ``NCheckerOptions.cache_backend`` /
``cache_dir``) plugs in: before the first pass runs, every valid cached
artifact for the app's content fingerprint is adopted into the store
(zero builds on a warm run), and after each scan the artifacts the run
had to build are written back through whatever backend the options
selected (local directory, in-memory, or a tier chain).  Output is
byte-identical with the cache hot, cold, or disabled, on every
backend — the cache only changes where artifacts come from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..dataflow.summaries import apk_fingerprint
from ..obs import metrics, span
from .artifacts import (
    ICC_MODEL,
    REQUESTS,
    RETRY_LOOPS,
    SUMMARIES,
    THREADCONTEXT,
    ArtifactStore,
)
from .passes import ScanPlan, ScheduledPass, build_plan, order_passes, resolve_reads

if TYPE_CHECKING:
    from ..app.apk import APK
    from ..callgraph.entrypoints import MethodKey
    from ..core.checker import NCheckerOptions, ScanResult
    from ..libmodels.annotations import LibraryRegistry


class ScanSession:
    """One APK's pass pipeline over its artifact store."""

    def __init__(
        self,
        apk: "APK",
        registry: "LibraryRegistry",
        options: "NCheckerOptions",
    ) -> None:
        self.apk = apk
        self.registry = registry
        self.options = options
        self.store = ArtifactStore(apk, registry)
        from .cachestore import CacheStore

        #: Persistent cross-run cache, or ``None`` (no ``cache_backend``
        #: and no ``cache_dir`` in the options).
        self.artifact_cache = CacheStore.from_options(options)
        #: ``(app_fingerprint, kind)`` pairs already persisted — loaded
        #: from or written to the backend by this session — so repeat
        #: scans rewrite nothing and a patch round persists only the
        #: rebuilt cone.
        self._cache_synced: set[tuple[str, str]] = set()
        self._app_fp: Optional[str] = None

    @property
    def disk_cache(self):
        """Pre-split alias for :attr:`artifact_cache`."""
        return self.artifact_cache

    # -- pass construction ---------------------------------------------------

    def _build_passes(self):
        """Fresh check instances for one scan (their per-request info maps
        are part of the scan's result), as (pass, enabled, instance)
        bookkeeping the result assembly needs."""
        from ..core.checks.callback_leak import CallbackLeakCheck
        from ..core.checks.config_apis import ConfigAPICheck
        from ..core.checks.connectivity import ConnectivityCheck
        from ..core.checks.notification import NotificationCheck
        from ..core.checks.offline_cache import OfflineCacheCheck
        from ..core.checks.response import ResponseCheck
        from ..core.checks.retry_params import RetryParameterCheck
        from ..core.checks.ui_thread_network import UiThreadNetworkCheck

        opts = self.options
        enabled = opts.enabled_checks
        icc_model = None
        if opts.inter_component and (
            "connectivity" in enabled or "failure-notification" in enabled
        ):
            icc_model = self.store.get(ICC_MODEL)

        config_check = ConfigAPICheck()
        notification_check = NotificationCheck(
            opts.notification_callee_depth, icc_model=icc_model
        )
        checks = [
            config_check,
            ConnectivityCheck(
                guard_aware=opts.guard_aware_connectivity,
                interprocedural=opts.interprocedural_connectivity,
                icc_model=icc_model,
            ),
            RetryParameterCheck(config_check),
            notification_check,
            ResponseCheck(),
            # The extended (taxonomy-driven) checks: registered here so
            # `enabled_checks` can switch them on, absent from the default
            # set so default-option output stays byte-identical.
            UiThreadNetworkCheck(),
            CallbackLeakCheck(),
            OfflineCacheCheck(),
        ]
        scheduled = [
            ScheduledPass(check, resolve_reads(check.reads(opts)))
            for check in checks
            if check.name in enabled
        ]
        if opts.check_network_switch:
            from ..core.checks.network_switch import NetworkSwitchCheck

            switch = NetworkSwitchCheck()
            scheduled.append(ScheduledPass(switch, resolve_reads(switch.reads(opts))))
        return scheduled, config_check, notification_check

    def plan(self) -> ScanPlan:
        """The scan plan under the current options (no artifacts built,
        except the ICC model when inter-component passes are enabled)."""
        scheduled, _config, _notification = self._build_passes()
        return build_plan(scheduled)

    # -- execution -----------------------------------------------------------

    def scan(self) -> "ScanResult":
        """Run the pipeline: build planned artifacts, run passes in
        dependency order, assemble the result.

        Each pass runs inside a ``pass:<name>`` span and records its wall
        time, findings emitted, and methods visited (the call-graph
        universe it analyses) into the active metrics registry.
        """
        import time

        from ..core.checker import ScanResult
        from ..core.findings import Finding

        # Adopt persisted artifacts before pass construction: the ICC
        # model is materialized inside _build_passes, so the preload must
        # already have happened for a warm run to stay build-free.
        self._preload_from_disk()
        scheduled, config_check, notification_check = self._build_passes()
        plan = build_plan(scheduled)
        store = self.store
        registry = metrics()

        with span("scan", package=self.apk.package):
            scan_start = time.perf_counter()
            ctx = store.context
            ctx.summaries = store.get(SUMMARIES) if plan.builds(SUMMARIES) else None
            ctx.threadcontext = (
                store.get(THREADCONTEXT) if plan.builds(THREADCONTEXT) else None
            )
            requests = store.get(REQUESTS)
            retry_loops = (
                store.get(RETRY_LOOPS) if plan.builds(RETRY_LOOPS) else []
            )
            ctx.retry_loops = retry_loops
            if ctx.summaries is not None:
                self._prewarm_summaries(
                    ctx, scheduled, requests, notification_check
                )

            findings: list[Finding] = []
            for scheduled_pass in order_passes(scheduled):
                name = scheduled_pass.name
                with span(f"pass:{name}", package=self.apk.package):
                    start = time.perf_counter()
                    emitted = scheduled_pass.check.run(ctx, requests)
                    registry.observe(
                        f"pass.{name}.wall_ms",
                        (time.perf_counter() - start) * 1000.0,
                    )
                registry.inc(f"pass.{name}.runs")
                registry.inc(f"pass.{name}.findings", len(emitted))
                registry.inc(
                    f"pass.{name}.methods_visited", len(ctx.callgraph.methods)
                )
                findings.extend(emitted)
            registry.inc("scan.apps")
            registry.observe(
                "scan.wall_ms", (time.perf_counter() - scan_start) * 1000.0
            )

        self._persist_to_disk()
        findings.sort(key=lambda f: (f.method_key, f.stmt_index, f.kind.value))
        return ScanResult(
            self.apk,
            requests,
            findings,
            retry_loops,
            config_info=dict(config_check.info_by_request),
            notification_info=dict(notification_check.info_by_request),
        )

    def _prewarm_summaries(
        self, ctx, scheduled, requests, notification_check
    ) -> None:
        """Evaluate the summary-fact cones the planned passes will query,
        before the pass loop runs them.

        The demands mirror the passes' actual queries: the connectivity
        and offline-cache passes read the whole-app connectivity view,
        and the failure-notification pass queries UI/handler (and, with
        displayed broadcasts in the ICC model, broadcast) facts on the
        error callbacks registered at request sites.  The decomposition
        into SCC wavefronts is identical for every ``intra_jobs`` value —
        the worker count only chooses how many independent SCCs of one
        wavefront evaluate concurrently — so counters and profile trees
        never depend on it.  Queries the prewarm did not anticipate fall
        back to lazy point evaluation inside the engine.
        """
        from ..callgraph.cha import EDGE_LIB_CALLBACK

        opts = self.options
        engine = ctx.summaries
        engine.eager = opts.eager_summaries
        engine.intra_jobs = max(1, opts.intra_jobs)
        planned = {scheduled_pass.name for scheduled_pass in scheduled}
        demands: list = []
        if planned & {"connectivity", "offline-cache"}:
            demands.append(("connectivity", None))
        if "failure-notification" in planned:
            roots = sorted(
                {
                    edge.callee
                    for request in requests
                    for edge in ctx.callgraph.callees(request.key)
                    if edge.stmt_index == request.stmt_index
                    and edge.kind == EDGE_LIB_CALLBACK
                }
            )
            if roots:
                demands.append(("ui", roots))
                demands.append(("handler", roots))
                icc = notification_check.icc_model
                if icc is not None and icc.broadcasts_displayed:
                    demands.append(("broadcast", roots))
        registry = metrics()
        with span("summary-prewarm", package=self.apk.package):
            with registry.timer("summaries.prewarm_ms"):
                engine.prewarm_bool_facts(demands)

    # -- persistent cache ----------------------------------------------------

    def _content_fingerprint(self) -> str:
        """The app's content address, memoized until an invalidation
        (the patcher's in-place mutations go through
        :meth:`invalidate_methods`, which drops the memo)."""
        if self._app_fp is None:
            from .cachestore import app_content_fingerprint

            self._app_fp = app_content_fingerprint(self.apk)
        return self._app_fp

    def _preload_from_disk(self) -> None:
        if self.artifact_cache is None:
            return
        fp = self._content_fingerprint()
        loaded = self.artifact_cache.load_into(self.store, fp, self.options)
        self._cache_synced.update((fp, kind) for kind in loaded)

    def _persist_to_disk(self) -> None:
        if self.artifact_cache is None:
            return
        fp = self._content_fingerprint()
        synced = {kind for f, kind in self._cache_synced if f == fp}
        written = self.artifact_cache.store_from(
            self.store, fp, self.options, exclude=synced
        )
        self._cache_synced.update((fp, kind) for kind in written)

    # -- incrementality ------------------------------------------------------

    def invalidate_methods(self, touched: "set[MethodKey]") -> None:
        """Forward a patch round's touched-method report to the store."""
        self._app_fp = None  # in-place mutation: re-fingerprint next scan
        self.store.invalidate_methods(touched)

    @property
    def fingerprint(self) -> int:
        return apk_fingerprint(self.apk)


@dataclass
class SessionCache:
    """One scan session per APK package, keyed by structural fingerprint.

    The successor of the per-APK ``SummaryCache``: a repeat ``scan()`` of
    a structurally unchanged app reuses the whole artifact store (call
    graph, CFGs, summaries, requests), and any statement inserted or
    removed (the patcher's edits) changes the fingerprint and misses.
    ``hits``/``misses`` keep the legacy counter semantics the ablation
    benchmarks assert.
    """

    max_entries: int = 64
    hits: int = 0
    misses: int = 0
    _sessions: dict[str, tuple[int, ScanSession]] = field(default_factory=dict)

    def session_for(
        self,
        apk: "APK",
        registry: "LibraryRegistry",
        options: "NCheckerOptions",
    ) -> ScanSession:
        fingerprint = apk_fingerprint(apk)
        entry = self._sessions.get(apk.package)
        if entry is not None and entry[0] == fingerprint:
            self.hits += 1
            # Refresh LRU position.
            self._sessions[apk.package] = self._sessions.pop(apk.package)
            return entry[1]
        self.misses += 1
        session = ScanSession(apk, registry, options)
        self._sessions[apk.package] = (fingerprint, session)
        while len(self._sessions) > self.max_entries:
            self._sessions.pop(next(iter(self._sessions)))
        return session
