"""Pass scheduling: declared artifact reads → ordered pipeline + plan.

Each check in :mod:`repro.core.checks` is a *pass*: it has a ``name``,
an ``after`` tuple naming passes whose products it consumes (the
retry-parameter check reads the config check's per-request info), and a
``reads(options)`` method declaring the artifact names it will pull from
the :class:`~repro.pipeline.artifacts.ArtifactStore` under the given
options.  The scheduler

* orders the enabled passes topologically over ``after`` (stable: ties
  keep registration order, so findings come out in the same order the
  hand-sequenced orchestrator produced), and
* computes the dependency-closed set of app artifacts any enabled pass
  (or the session itself) needs — everything else is provably skipped,
  which the plan records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from .artifacts import (
    ARTIFACTS,
    CALLGRAPH,
    ICC_MODEL,
    REQUESTS,
    RETRY_LOOPS,
    SUMMARIES,
    THREADCONTEXT,
    ArtifactKey,
)

if TYPE_CHECKING:
    from ..core.checks.base import Check

#: Canonical build order for app-scoped artifacts (dependencies first).
_APP_ARTIFACT_ORDER: tuple[ArtifactKey, ...] = (
    CALLGRAPH,
    REQUESTS,
    SUMMARIES,
    RETRY_LOOPS,
    ICC_MODEL,
    THREADCONTEXT,
)


@dataclass(frozen=True)
class ScheduledPass:
    """One enabled check with its resolved artifact reads."""

    check: "Check"
    reads: tuple[ArtifactKey, ...]

    @property
    def name(self) -> str:
        return self.check.name


@dataclass(frozen=True)
class ScanPlan:
    """What one scan will run and build — inspectable before execution."""

    #: Enabled pass names, in execution order.
    passes: tuple[str, ...]
    #: App-scoped artifacts the scan builds, dependencies first.
    artifacts: tuple[str, ...]
    #: App-scoped artifacts provably not needed by any enabled pass.
    skipped: tuple[str, ...]

    def builds(self, key: ArtifactKey) -> bool:
        return key.name in self.artifacts


def order_passes(passes: Sequence[ScheduledPass]) -> list[ScheduledPass]:
    """Stable topological order over the passes' ``after`` constraints.

    Constraints naming disabled (absent) passes are ignored — a pass that
    merely *orders after* another still runs alone (it degrades, as the
    retry-parameter check does without config info).
    """
    present = {p.name for p in passes}
    remaining = list(passes)
    ordered: list[ScheduledPass] = []
    done: set[str] = set()
    while remaining:
        progressed = False
        for candidate in remaining:
            after = tuple(getattr(candidate.check, "after", ()) or ())
            if all(dep in done or dep not in present for dep in after):
                ordered.append(candidate)
                done.add(candidate.name)
                remaining.remove(candidate)
                progressed = True
                break
        if not progressed:
            cycle = ", ".join(p.name for p in remaining)
            raise ValueError(f"pass ordering cycle among: {cycle}")
    return ordered


def resolve_reads(names: Sequence[str]) -> tuple[ArtifactKey, ...]:
    """Map declared artifact names to typed keys (unknown names are a
    programming error in the check, surfaced immediately)."""
    keys = []
    for name in names:
        key = ARTIFACTS.get(name)
        if key is None:
            raise KeyError(f"check declares unknown artifact {name!r}")
        keys.append(key)
    return tuple(keys)


def artifact_closure(reads: Sequence[ArtifactKey]) -> tuple[str, ...]:
    """Dependency-closed, build-ordered app artifact names for ``reads``."""
    needed: set[str] = set()

    def visit(key: ArtifactKey) -> None:
        if key.scope != "app" or key.name in needed:
            return
        needed.add(key.name)
        for dep in key.deps:
            visit(ARTIFACTS[dep])

    for key in reads:
        visit(key)
    return tuple(k.name for k in _APP_ARTIFACT_ORDER if k.name in needed)


def build_plan(
    passes: Sequence[ScheduledPass],
    session_reads: Sequence[ArtifactKey] = (REQUESTS,),
) -> ScanPlan:
    """The plan for one scan: ordered passes plus the artifact closure of
    their declared reads and the session's own reads (request extraction
    feeds every check and the result object)."""
    ordered = order_passes(passes)
    reads: list[ArtifactKey] = list(session_reads)
    for scheduled in ordered:
        reads.extend(scheduled.reads)
    needed = artifact_closure(reads)
    skipped = tuple(
        k.name for k in _APP_ARTIFACT_ORDER if k.name not in needed
    )
    return ScanPlan(
        passes=tuple(p.name for p in ordered),
        artifacts=needed,
        skipped=skipped,
    )
