"""Compatibility facade over :mod:`repro.pipeline.cachestore`.

The monolithic disk cache this module used to implement was split into
the layered cache-store subsystem: content addressing lives in
:mod:`repro.pipeline.cachestore.fingerprints`, serialization in
:mod:`repro.pipeline.cachestore.codec`, storage behind the
:class:`~repro.pipeline.cachestore.backend.CacheBackend` protocol
(local / memory / tiered implementations), and the session-facing glue
in :class:`~repro.pipeline.cachestore.store.CacheStore`.

:class:`DiskCache` survives here as a thin facade — a ``CacheStore``
pinned to a :class:`~repro.pipeline.cachestore.local.LocalDirBackend`
with the pre-split management API (``stats``/``gc``/``clear``) — for
code and docs that still say "the disk cache".  New code should use
``cachestore`` directly; see ``docs/CACHING.md``.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Optional

from .cachestore import (
    CACHE_FORMAT_VERSION,
    OPTIONS_READ_BY,
    CacheMiss,
    CacheStats,
    CacheStore,
    LocalDirBackend,
    app_content_fingerprint,
    entry_digest,
    format_size,
    method_content_hash,
    options_fingerprint,
    parse_size,
    registry_fingerprint,
)
from .cachestore.backend import GC_GRACE_SECONDS, EntryKey

if TYPE_CHECKING:
    from ..core.checker import NCheckerOptions

__all__ = [
    "CACHE_FORMAT_VERSION",
    "OPTIONS_READ_BY",
    "CacheMiss",
    "CacheStats",
    "DiskCache",
    "app_content_fingerprint",
    "entry_digest",
    "format_size",
    "method_content_hash",
    "options_fingerprint",
    "parse_size",
    "registry_fingerprint",
]


class DiskCache(CacheStore):
    """The pre-split API: one local directory, management methods on the
    cache object itself."""

    def __init__(self, root: str | Path) -> None:
        super().__init__(LocalDirBackend(root))
        self.root = self.backend.root

    @classmethod
    def from_options(cls, options: "NCheckerOptions") -> Optional["DiskCache"]:
        """The local cache ``options.cache_dir`` asks for, or ``None``
        (``cache_backend`` is the general form; use
        :meth:`CacheStore.from_options` for it)."""
        cache_dir = getattr(options, "cache_dir", None)
        return cls(cache_dir) if cache_dir else None

    # -- pre-split management API --------------------------------------------

    def app_dir(self, app_fp: str) -> Path:
        return self.backend.app_dir(app_fp)

    def entry_path(
        self, app_fp: str, kind: str, registry, options: "NCheckerOptions"
    ) -> Path:
        digest = entry_digest(kind, app_fp, registry, options)
        return self.backend.entry_path(EntryKey(app_fp, kind, digest))

    def _entry_files(self) -> list[Path]:
        return self.backend._entry_files()

    def stats(self) -> CacheStats:
        return self.backend.stats()

    def gc(
        self, max_bytes: int, grace_seconds: float = GC_GRACE_SECONDS
    ) -> tuple[int, int]:
        return self.backend.gc(max_bytes, grace_seconds)

    def clear(self) -> int:
        return self.backend.clear()
