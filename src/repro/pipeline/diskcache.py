"""Persistent cross-run artifact cache (``--cache-dir`` / ``nchecker cache``).

The :class:`~repro.pipeline.artifacts.ArtifactStore` amortizes analysis
work *within* one process: repeat scans of an unchanged app reuse the
call graph, summaries, requests, retry loops, and ICC model.  The paper's
evaluation, however, scans the same 285 apps over and over across many
``nchecker`` invocations (corpus re-runs, patch loops, CI), and every new
process used to start from zero.  This module extends the store across
processes: app-scoped artifacts are serialized to a content-addressed
on-disk store and loaded back at session start, so an unchanged app
re-scans with **zero artifact builds** and a patched app rebuilds only
the invalidation cone the store already computes.

Key derivation
--------------
Every entry is keyed by a fingerprint folding together

* the **app content**: a hash per method of its printed IR (the same text
  ``dumps_apk`` round-trips) plus the manifest's components and
  permissions — any statement, method, or component change misses;
* the **library-model version** (:data:`repro.libmodels.
  LIBMODELS_VERSION`) and the registered library keys — re-annotating a
  library invalidates everything derived under the old annotations;
* the **cache format version** — unpicklable layout changes miss instead
  of crashing;
* the declared :data:`NCheckerOptions <repro.core.checker.
  NCheckerOptions>` subset read by the artifact's builder
  (:data:`OPTIONS_READ_BY`).  Today every builder is options-independent
  (options select *which* artifacts build, never their content), so
  artifacts are shared across flag combinations; an option-sensitive
  builder added later declares its fields here and splits its entries.

Serialization
-------------
Artifacts reference live analysis objects — the APK, its methods, the
library registry, the store itself, and each other (the summary engine
holds the call graph).  A :class:`pickle.Pickler` subclass swaps each of
these for a stable *persistent id* (``("method", key)``,
``("artifact", "callgraph")``, ...) at dump time; loading resolves the
ids against the live session, so a cached summary engine comes back
wired to the freshly loaded APK's method objects and to whatever call
graph the store holds.  Everything else in an artifact is plain frozen
dataclasses and containers, pickled by value.

Failure policy
--------------
The cache is strictly best-effort: a corrupted, truncated, or
version-mismatched entry is a **miss** (logged at ``-v``), never a
crash — the artifact rebuilds and the bad entry is overwritten.  Writes
go through a temp file plus :func:`os.replace`, so parallel workers
(``--jobs``) sharing one cache directory race benignly: readers see
either the old or the new complete entry, never a torn one.

Telemetry: ``cache.disk.<kind>.hits`` / ``.misses`` counters and
``cache.disk.<kind>.load_ms`` / ``.store_ms`` timers land in the store's
registry (and the active global one), riding the same snapshot/merge
protocol as every other counter — ``--metrics`` of a ``--jobs N`` run
sums them across workers.

See ``docs/CACHING.md`` for the user-facing guide and
``nchecker cache stats|gc|clear`` for the management commands.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import struct
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from ..callgraph.entrypoints import method_key
from ..dataflow.summaries import CONFIG_TOP
from ..ir.method import IRMethod
from ..ir.printer import print_method
from ..libmodels import LIBMODELS_VERSION
from ..libmodels.annotations import LibraryModel
from ..obs import get_logger
from .artifacts import ARTIFACTS, ArtifactStore
from .passes import _APP_ARTIFACT_ORDER

if TYPE_CHECKING:
    from ..app.apk import APK
    from ..core.checker import NCheckerOptions

log = get_logger("diskcache")

#: Bump on any change to the entry layout or the pickled object shapes
#: that older readers/writers cannot handle; old entries then miss (and
#: are garbage-collected by ``nchecker cache gc``) instead of crashing.
CACHE_FORMAT_VERSION = 1

#: Entry header: magic, format version, blake2b-128 digest of the payload.
_MAGIC = b"NCKC"
_HEADER = struct.Struct(">4sI16s")

#: NCheckerOptions fields folded into each artifact kind's cache key —
#: the options subset the artifact's builder reads.  All empty today:
#: options decide which artifacts a scan plan *builds*, never what any
#: artifact *contains*, so entries are shared across flag combinations.
#: A future option-sensitive builder declares its fields here.
OPTIONS_READ_BY: dict[str, tuple[str, ...]] = {
    "callgraph": (),
    "summaries": (),
    "requests": (),
    "retry-loops": (),
    "icc-model": (),
    "threadcontext": (),
}


class CacheMiss(Exception):
    """An entry could not be used (absent dependency, unknown reference,
    corruption, version mismatch) — always handled as a rebuild."""


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def method_content_hash(method: IRMethod) -> bytes:
    """Digest of one method's printed IR — the per-method unit of the app
    fingerprint (a patched method changes exactly its own hash)."""
    return hashlib.blake2b(
        print_method(method).encode(), digest_size=16
    ).digest()


def app_content_fingerprint(apk: "APK") -> str:
    """Content address of one app: package, manifest surface, and every
    method's IR hash, order-independent over class file layout."""
    h = hashlib.blake2b(digest_size=20)
    h.update(apk.package.encode())
    for permission in apk.manifest.permissions:
        h.update(b"\0perm\0" + permission.encode())
    for kind, name in apk.manifest.components():
        h.update(b"\0comp\0" + kind.value.encode() + b"\0" + name.encode())
    entries = sorted(
        (repr(method_key(m)).encode(), method_content_hash(m))
        for m in apk.methods()
    )
    for key_repr, digest in entries:
        h.update(b"\0m\0" + key_repr + digest)
    return h.hexdigest()


def registry_fingerprint(registry) -> str:
    """Annotation-model component of the cache key: the model version plus
    the set of registered libraries (default vs extended registry)."""
    keys = ",".join(sorted(registry.libraries))
    return f"v{LIBMODELS_VERSION}:{keys}"


def options_fingerprint(kind: str, options: "NCheckerOptions") -> str:
    """The declared options subset for ``kind``, rendered stably."""
    fields = OPTIONS_READ_BY.get(kind, ())
    return ";".join(f"{f}={getattr(options, f)!r}" for f in fields)


def entry_digest(
    kind: str, app_fp: str, registry, options: "NCheckerOptions"
) -> str:
    """The file-name digest of one (app, artifact-kind, options) entry."""
    h = hashlib.blake2b(digest_size=16)
    h.update(app_fp.encode())
    h.update(b"\0" + registry_fingerprint(registry).encode())
    h.update(b"\0" + options_fingerprint(kind, options).encode())
    return h.hexdigest()


def parse_size(text: str) -> int:
    """``"512M"`` / ``"2G"`` / ``"4096"`` → bytes (for ``gc --max-size``)."""
    text = text.strip()
    units = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30, "T": 1 << 40}
    multiplier = 1
    if text and text[-1].upper() in units:
        multiplier = units[text[-1].upper()]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise ValueError(f"unparsable size: {text!r} (use e.g. 512M, 2G)")
    if value < 0:
        raise ValueError("size must be non-negative")
    return int(value * multiplier)


def format_size(n: int) -> str:
    for unit, width in (("G", 1 << 30), ("M", 1 << 20), ("K", 1 << 10)):
        if n >= width:
            return f"{n / width:.1f}{unit}"
    return f"{n}B"


# ---------------------------------------------------------------------------
# Persistent-id pickling
# ---------------------------------------------------------------------------


class _ArtifactPickler(pickle.Pickler):
    """Pickles one artifact, swapping live session objects for stable ids.

    ``artifact_ids`` maps ``id(value) -> kind`` for the *other* app-scoped
    artifacts in the store, so cross-artifact references (the summary
    engine's call graph) serialize as one tag instead of a duplicate
    object graph.
    """

    def __init__(self, buf, store: ArtifactStore, artifact_ids: dict[int, str]):
        super().__init__(buf, protocol=pickle.HIGHEST_PROTOCOL)
        self._store = store
        self._artifact_ids = artifact_ids

    def persistent_id(self, obj):
        name = self._artifact_ids.get(id(obj))
        if name is not None:
            return ("artifact", name)
        if obj is self._store:
            return ("store",)
        if obj is self._store.apk:
            return ("apk",)
        if obj is self._store.registry:
            return ("registry",)
        if obj is CONFIG_TOP:
            return ("config-top",)
        if isinstance(obj, IRMethod):
            return ("method", method_key(obj))
        if isinstance(obj, LibraryModel):
            return ("libmodel", obj.key)
        return None


class _ArtifactUnpickler(pickle.Unpickler):
    """Resolves persistent ids against the live session.

    An ``("artifact", kind)`` reference resolves through
    :meth:`ArtifactStore.get` — if the referenced dependency was not
    itself loadable it is built (an honest build, counted as such) so a
    valid dependent entry is never wasted.  Unknown method or library
    references raise :class:`CacheMiss` (they cannot occur when the
    fingerprint matched, but corruption must degrade to a rebuild).
    """

    def __init__(self, buf, store: ArtifactStore, methods: dict):
        super().__init__(buf)
        self._store = store
        self._methods = methods

    def persistent_load(self, pid):
        tag = pid[0]
        if tag == "artifact":
            return self._store.get(ARTIFACTS[pid[1]])
        if tag == "store":
            return self._store
        if tag == "apk":
            return self._store.apk
        if tag == "registry":
            return self._store.registry
        if tag == "config-top":
            return CONFIG_TOP
        if tag == "method":
            found = self._methods.get(pid[1])
            if found is None:
                raise CacheMiss(f"unknown method reference {pid[1]!r}")
            return found
        if tag == "libmodel":
            found = self._store.registry.libraries.get(pid[1])
            if found is None:
                raise CacheMiss(f"unknown library reference {pid[1]!r}")
            return found
        raise CacheMiss(f"unknown persistent id {pid!r}")


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------


@dataclass
class CacheStats:
    """What ``nchecker cache stats`` prints."""

    root: Path
    apps: int
    entries: int
    total_bytes: int
    #: kind -> (entry count, bytes)
    by_kind: dict[str, tuple[int, int]]

    def render(self) -> str:
        lines = [f"cache {self.root}"]
        lines.append(
            f"  {self.entries} entr{'y' if self.entries == 1 else 'ies'} "
            f"for {self.apps} app(s), {format_size(self.total_bytes)}"
        )
        for kind in sorted(self.by_kind):
            count, size = self.by_kind[kind]
            lines.append(f"  {kind:<12} {count:>5}  {format_size(size)}")
        return "\n".join(lines)


class DiskCache:
    """The on-disk artifact store behind ``--cache-dir``.

    Layout: ``<root>/v<FORMAT>/<app_fp[:2]>/<app_fp>/<kind>-<digest>.bin``
    — one directory per app fingerprint (the per-APK cache files that
    ``--jobs`` workers share), one entry file per artifact kind and
    declared-options subset.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).expanduser()

    @classmethod
    def from_options(cls, options: "NCheckerOptions") -> Optional["DiskCache"]:
        """The cache the options ask for, or ``None`` when disabled."""
        cache_dir = getattr(options, "cache_dir", None)
        return cls(cache_dir) if cache_dir else None

    # -- paths ---------------------------------------------------------------

    @property
    def _version_root(self) -> Path:
        return self.root / f"v{CACHE_FORMAT_VERSION}"

    def app_dir(self, app_fp: str) -> Path:
        return self._version_root / app_fp[:2] / app_fp

    def entry_path(
        self, app_fp: str, kind: str, registry, options: "NCheckerOptions"
    ) -> Path:
        digest = entry_digest(kind, app_fp, registry, options)
        return self.app_dir(app_fp) / f"{kind}-{digest}.bin"

    # -- session API ---------------------------------------------------------

    def load_into(
        self, store: ArtifactStore, app_fp: str, options: "NCheckerOptions"
    ) -> set[str]:
        """Adopt every valid cached artifact for ``store``'s app, in
        dependency order; returns the kinds loaded.

        Kinds already present in the store are left alone.  Invalid
        entries (truncated, corrupt, wrong version, dangling references)
        are deleted and treated as misses — the caller rebuilds on demand
        and :meth:`store_from` overwrites them.
        """
        loaded: set[str] = set()
        methods: Optional[dict] = None
        for key in _APP_ARTIFACT_ORDER:
            if store.peek(key) is not None:
                continue
            path = self.entry_path(app_fp, key.name, store.registry, options)
            try:
                data = path.read_bytes()
            except FileNotFoundError:
                continue
            except OSError as exc:
                log.debug("cache read failed for %s: %s", path, exc)
                continue
            if methods is None:
                methods = {method_key(m): m for m in store.apk.methods()}
            start = time.perf_counter()
            try:
                value = self._decode(data, store, methods)
            except CacheMiss as exc:
                log.info("cache entry %s unusable (%s): rebuilding", path, exc)
                store._count(f"cache.disk.{key.name}.misses")
                store._count("cache.disk.errors")
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            store.adopt(key, value)
            store._count(f"cache.disk.{key.name}.hits")
            store._observe(
                f"cache.disk.{key.name}.load_ms",
                (time.perf_counter() - start) * 1000.0,
            )
            if key.name == "callgraph":
                # Parity with _build_callgraph's gauges, so --stats reads
                # the same whether the graph was built or loaded.
                store._global.set_gauge("callgraph.methods", len(value.methods))
                store._global.set_gauge(
                    "callgraph.edges",
                    sum(len(edges) for edges in value.out_edges.values()),
                )
            loaded.add(key.name)
        return loaded

    def store_from(
        self,
        store: ArtifactStore,
        app_fp: str,
        options: "NCheckerOptions",
        exclude: set[str] = frozenset(),
    ) -> set[str]:
        """Persist the store's built app-scoped artifacts (everything
        present and not in ``exclude`` — the kinds already synced with
        this fingerprint); returns the kinds written.

        Every write is counted as a ``cache.disk.<kind>.misses`` — the
        cache could not supply the artifact, so the scan built it.
        """
        present = {
            key.name: store.peek(key)
            for key in _APP_ARTIFACT_ORDER
            if store.peek(key) is not None
        }
        artifact_ids = {id(value): name for name, value in present.items()}
        written: set[str] = set()
        for key in _APP_ARTIFACT_ORDER:
            value = present.get(key.name)
            if value is None or key.name in exclude:
                continue
            path = self.entry_path(app_fp, key.name, store.registry, options)
            ids = dict(artifact_ids)
            del ids[id(value)]  # the dumped artifact itself is no reference
            start = time.perf_counter()
            try:
                self._write_entry(path, store, value, ids)
            except (OSError, pickle.PicklingError) as exc:
                log.warning("cannot write cache entry %s: %s", path, exc)
                continue
            store._count(f"cache.disk.{key.name}.misses")
            store._observe(
                f"cache.disk.{key.name}.store_ms",
                (time.perf_counter() - start) * 1000.0,
            )
            written.add(key.name)
        return written

    # -- entry encoding ------------------------------------------------------

    def _decode(self, data: bytes, store: ArtifactStore, methods: dict):
        if len(data) < _HEADER.size:
            raise CacheMiss("truncated header")
        magic, version, digest = _HEADER.unpack_from(data)
        if magic != _MAGIC:
            raise CacheMiss("bad magic")
        if version != CACHE_FORMAT_VERSION:
            raise CacheMiss(
                f"format version {version} != {CACHE_FORMAT_VERSION}"
            )
        payload = data[_HEADER.size:]
        if hashlib.blake2b(payload, digest_size=16).digest() != digest:
            raise CacheMiss("payload checksum mismatch")
        try:
            return _ArtifactUnpickler(io.BytesIO(payload), store, methods).load()
        except CacheMiss:
            raise
        except Exception as exc:  # any unpickling failure is just a miss
            raise CacheMiss(f"unpickle failed: {exc!r}")

    def _write_entry(
        self, path: Path, store: ArtifactStore, value, artifact_ids: dict
    ) -> None:
        buf = io.BytesIO()
        _ArtifactPickler(buf, store, artifact_ids).dump(value)
        payload = buf.getvalue()
        blob = _HEADER.pack(
            _MAGIC,
            CACHE_FORMAT_VERSION,
            hashlib.blake2b(payload, digest_size=16).digest(),
        ) + payload
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- management (``nchecker cache``) -------------------------------------

    def _entry_files(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(
            p for p in self.root.glob("v*/??/*/*.bin") if p.is_file()
        )

    def stats(self) -> CacheStats:
        by_kind: dict[str, tuple[int, int]] = {}
        apps: set[str] = set()
        total = 0
        entries = 0
        for path in self._entry_files():
            kind = path.name.rsplit("-", 1)[0]
            size = path.stat().st_size
            count, kind_bytes = by_kind.get(kind, (0, 0))
            by_kind[kind] = (count + 1, kind_bytes + size)
            apps.add(path.parent.name)
            total += size
            entries += 1
        return CacheStats(self.root, len(apps), entries, total, by_kind)

    def gc(self, max_bytes: int) -> tuple[int, int]:
        """Drop least-recently-used entries until the cache fits
        ``max_bytes``; returns ``(entries removed, bytes freed)``."""
        files = [(p, p.stat()) for p in self._entry_files()]
        total = sum(st.st_size for _p, st in files)
        files.sort(key=lambda pair: pair[1].st_mtime)  # oldest first
        removed = 0
        freed = 0
        for path, st in files:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= st.st_size
            freed += st.st_size
            removed += 1
        self._prune_empty_dirs()
        return removed, freed

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self._entry_files():
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        self._prune_empty_dirs()
        return removed

    def _prune_empty_dirs(self) -> None:
        if not self.root.is_dir():
            return
        for directory in sorted(
            (p for p in self.root.glob("v*/**/") if p.is_dir()),
            key=lambda p: len(p.parts),
            reverse=True,
        ):
            try:
                directory.rmdir()  # fails (correctly) unless empty
            except OSError:
                pass
