"""Typed per-APK artifact store (the pipeline's "scene").

Every derived analysis product — the call graph, per-method CFGs and
def-use chains, the interprocedural summary engine, the extracted
requests, the customized retry loops, the ICC model — lives behind a
typed :class:`ArtifactKey` in one :class:`ArtifactStore` per APK.  The
store builds artifacts on demand (building an artifact first builds its
declared dependencies), counts hits/builds for the cache-effectiveness
benchmarks, and supports **dependency-aware invalidation**: when the
patcher mutates a set of methods in place, :meth:`ArtifactStore.
invalidate_methods` drops exactly the artifacts that may have changed —
the dirty methods' CFGs/def-use, their call edges, the summary entries
of the dirty methods and their transitive callers — and leaves the rest
warm for the next scan.

The store is duck-type compatible with
:class:`repro.callgraph.resolve.MethodAnalysisCache` (``cfg(method)`` /
``defuse(method)``), so the call graph, the summary engine, and every
check share it as the context cache.  Unlike the legacy cache it keys
method artifacts by :data:`MethodKey`, not ``id(method)``, which is what
makes targeted invalidation of in-place-mutated methods possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..callgraph.entrypoints import MethodKey, method_key

if TYPE_CHECKING:
    from ..app.apk import APK
    from ..callgraph.cha import CallGraph
    from ..cfg.graph import CFG as CFGGraph
    from ..core.requests import AnalysisContext, NetworkRequest
    from ..core.retry_loops import RetryLoop
    from ..dataflow.reaching import DefUseChains
    from ..dataflow.summaries import SummaryEngine
    from ..libmodels.annotations import LibraryRegistry


@dataclass(frozen=True)
class ArtifactKey:
    """Typed handle for one class of derived artifact.

    ``scope`` is ``"app"`` (one value per APK) or ``"method"`` (one value
    per method, accessed through the cache protocol).  ``deps`` names the
    app-scoped artifacts that must exist before this one can build; the
    store resolves them recursively, which is what lets a scan plan state
    "this check needs summaries" and get the call graph for free.
    """

    name: str
    scope: str = "app"
    deps: tuple[str, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.name


#: App-scoped artifacts.
CALLGRAPH = ArtifactKey("callgraph")
SUMMARIES = ArtifactKey("summaries", deps=("callgraph",))
REQUESTS = ArtifactKey("requests", deps=("callgraph",))
RETRY_LOOPS = ArtifactKey("retry-loops", deps=("requests",))
ICC_MODEL = ArtifactKey("icc-model")

#: Method-scoped artifacts (per-method, built through the cache protocol).
CFG = ArtifactKey("cfg", scope="method")
DEFUSE = ArtifactKey("defuse", scope="method", deps=("cfg",))

#: Name → key, for resolving the string dependencies above and the
#: artifact names checks declare.
ARTIFACTS: dict[str, ArtifactKey] = {
    key.name: key
    for key in (CALLGRAPH, SUMMARIES, REQUESTS, RETRY_LOOPS, ICC_MODEL, CFG, DEFUSE)
}


@dataclass
class ArtifactCounters:
    """Build/hit accounting, exposed to the benchmarks so incrementality
    claims ("only the dirty region rebuilt") are assertable."""

    builds: dict[str, int] = field(default_factory=dict)
    hits: dict[str, int] = field(default_factory=dict)
    invalidated_methods: int = 0

    def build(self, name: str) -> None:
        self.builds[name] = self.builds.get(name, 0) + 1

    def hit(self, name: str) -> None:
        self.hits[name] = self.hits.get(name, 0) + 1

    def builds_of(self, name: str) -> int:
        return self.builds.get(name, 0)

    def hits_of(self, name: str) -> int:
        return self.hits.get(name, 0)


class ArtifactStore:
    """All derived artifacts of one APK, built on demand."""

    def __init__(self, apk: "APK", registry: "LibraryRegistry") -> None:
        self.apk = apk
        self.registry = registry
        self.counters = ArtifactCounters()
        self._app: dict[str, object] = {}
        self._cfgs: dict[MethodKey, "CFGGraph"] = {}
        self._defuse: dict[MethodKey, "DefUseChains"] = {}
        self._context: Optional["AnalysisContext"] = None
        self._builders = {
            CALLGRAPH.name: self._build_callgraph,
            SUMMARIES.name: self._build_summaries,
            REQUESTS.name: self._build_requests,
            RETRY_LOOPS.name: self._build_retry_loops,
            ICC_MODEL.name: self._build_icc_model,
        }

    # -- app-scoped artifacts ------------------------------------------------

    def get(self, key: ArtifactKey):
        """The artifact for ``key``, building it (and its dependencies)
        if missing."""
        if key.scope != "app":
            raise ValueError(
                f"method-scoped artifact {key.name!r} is accessed per method "
                f"(store.cfg/defuse), not via get()"
            )
        if key.name in self._app:
            self.counters.hit(key.name)
            return self._app[key.name]
        for dep in key.deps:
            self.get(ARTIFACTS[dep])
        self.counters.build(key.name)
        value = self._builders[key.name]()
        self._app[key.name] = value
        return value

    def peek(self, key: ArtifactKey):
        """The artifact if already built, else ``None`` (never builds)."""
        return self._app.get(key.name)

    @property
    def context(self) -> "AnalysisContext":
        """The shared :class:`AnalysisContext` over this store.  Building
        it forces the call graph (its one mandatory field); ``summaries``
        and ``retry_loops`` are injected by the scan session according to
        the plan."""
        if self._context is None:
            from ..core.requests import AnalysisContext

            self._context = AnalysisContext(
                self.apk, self.registry, self.get(CALLGRAPH), self
            )
        return self._context

    # -- builders ------------------------------------------------------------

    def _build_callgraph(self) -> "CallGraph":
        from ..callgraph.cha import CallGraph

        return CallGraph(self.apk, self.registry, self)

    def _build_summaries(self) -> "SummaryEngine":
        from ..dataflow.summaries import SummaryEngine

        return SummaryEngine(self.get(CALLGRAPH), self.registry, self)

    def _build_requests(self) -> "list[NetworkRequest]":
        from ..core.requests import find_requests

        return find_requests(self.context)

    def _build_retry_loops(self) -> "list[RetryLoop]":
        from ..core.retry_loops import identify_retry_loops

        return identify_retry_loops(self.context, self.get(REQUESTS))

    def _build_icc_model(self):
        from ..callgraph.icc import build_icc_model

        return build_icc_model(self.apk, self)

    # -- method-scoped artifacts (MethodAnalysisCache protocol) --------------

    def cfg(self, method) -> "CFGGraph":
        key = method_key(method)
        cached = self._cfgs.get(key)
        if cached is not None:
            self.counters.hit(CFG.name)
            return cached
        from ..cfg.graph import CFG as CFGGraph

        self.counters.build(CFG.name)
        built = CFGGraph(method)
        self._cfgs[key] = built
        return built

    def defuse(self, method) -> "DefUseChains":
        key = method_key(method)
        cached = self._defuse.get(key)
        if cached is not None:
            self.counters.hit(DEFUSE.name)
            return cached
        from ..dataflow.reaching import DefUseChains

        self.counters.build(DEFUSE.name)
        built = DefUseChains(self.cfg(method))
        self._defuse[key] = built
        return built

    # -- invalidation --------------------------------------------------------

    def invalidate_methods(self, touched: "set[MethodKey] | frozenset[MethodKey]") -> None:
        """Dependency-aware invalidation after an in-place mutation of
        ``touched`` methods (the patcher's report).

        Order matters:

        1. drop the dirty methods' CFG/def-use (edge re-resolution reads
           receiver classes through this store);
        2. refresh the dirty methods' call-graph edges, collecting the
           summary dependency cone on both the old and the new edge sets
           (a caller of the old *or* new callee graph may see different
           facts);
        3. invalidate the summary entries of the dirty cone;
        4. drop the whole-app extraction artifacts (requests, retry
           loops, ICC model) — they enumerate statement indices, which
           insertions shift; they rebuild against the warm method cache.
        """
        touched = set(touched)
        if not touched:
            return
        self.counters.invalidated_methods += len(touched)
        for key in touched:
            self._cfgs.pop(key, None)
            self._defuse.pop(key, None)
        graph = self._app.get(CALLGRAPH.name)
        dirty = set(touched)
        if graph is not None:
            dirty |= graph.transitive_callers(touched)
            graph.refresh_methods(touched)
            dirty |= graph.transitive_callers(touched)
        engine = self._app.get(SUMMARIES.name)
        if engine is not None:
            engine.invalidate_methods(dirty)
        for key in (REQUESTS, RETRY_LOOPS, ICC_MODEL):
            self._app.pop(key.name, None)
        if self._context is not None:
            self._context.retry_loops = []
