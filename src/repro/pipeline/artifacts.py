"""Typed per-APK artifact store (the pipeline's "scene").

Every derived analysis product — the call graph, per-method CFGs and
def-use chains, the interprocedural summary engine, the extracted
requests, the customized retry loops, the ICC model — lives behind a
typed :class:`ArtifactKey` in one :class:`ArtifactStore` per APK.  The
store builds artifacts on demand (building an artifact first builds its
declared dependencies), counts hits/builds for the cache-effectiveness
benchmarks, and supports **dependency-aware invalidation**: when the
patcher mutates a set of methods in place, :meth:`ArtifactStore.
invalidate_methods` drops exactly the artifacts that may have changed —
the dirty methods' CFGs/def-use, their call edges, the summary entries
of the dirty methods and their transitive callers — and leaves the rest
warm for the next scan.

The store is duck-type compatible with
:class:`repro.callgraph.resolve.MethodAnalysisCache` (``cfg(method)`` /
``defuse(method)``), so the call graph, the summary engine, and every
check share it as the context cache.  Unlike the legacy cache it keys
method artifacts by :data:`MethodKey`, not ``id(method)``, which is what
makes targeted invalidation of in-place-mutated methods possible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..callgraph.entrypoints import MethodKey, method_key
from ..obs import span
from ..obs.metrics import MetricsRegistry
from ..obs.metrics import metrics as active_metrics

if TYPE_CHECKING:
    from ..app.apk import APK
    from ..callgraph.cha import CallGraph
    from ..cfg.graph import CFG as CFGGraph
    from ..core.requests import AnalysisContext, NetworkRequest
    from ..core.retry_loops import RetryLoop
    from ..dataflow.reaching import DefUseChains
    from ..dataflow.summaries import SummaryEngine
    from ..libmodels.annotations import LibraryRegistry


@dataclass(frozen=True)
class ArtifactKey:
    """Typed handle for one class of derived artifact.

    ``scope`` is ``"app"`` (one value per APK) or ``"method"`` (one value
    per method, accessed through the cache protocol).  ``deps`` names the
    app-scoped artifacts that must exist before this one can build; the
    store resolves them recursively, which is what lets a scan plan state
    "this check needs summaries" and get the call graph for free.
    """

    name: str
    scope: str = "app"
    deps: tuple[str, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.name


#: App-scoped artifacts.
CALLGRAPH = ArtifactKey("callgraph")
SUMMARIES = ArtifactKey("summaries", deps=("callgraph",))
REQUESTS = ArtifactKey("requests", deps=("callgraph",))
RETRY_LOOPS = ArtifactKey("retry-loops", deps=("requests",))
ICC_MODEL = ArtifactKey("icc-model")
THREADCONTEXT = ArtifactKey("threadcontext", deps=("callgraph",))

#: Method-scoped artifacts (per-method, built through the cache protocol).
CFG = ArtifactKey("cfg", scope="method")
DEFUSE = ArtifactKey("defuse", scope="method", deps=("cfg",))

#: Name → key, for resolving the string dependencies above and the
#: artifact names checks declare.
ARTIFACTS: dict[str, ArtifactKey] = {
    key.name: key
    for key in (
        CALLGRAPH,
        SUMMARIES,
        REQUESTS,
        RETRY_LOOPS,
        ICC_MODEL,
        THREADCONTEXT,
        CFG,
        DEFUSE,
    )
}


class ArtifactCounters:
    """Build/hit accounting — a read view over the store's local
    :class:`~repro.obs.metrics.MetricsRegistry`.

    The bespoke dict counters this class used to hold now live as
    ``artifact.<kind>.builds`` / ``artifact.<kind>.hits`` /
    ``artifact.invalidated_methods`` counters in the telemetry registry
    (one per store, mirrored into the active global registry so
    ``--metrics`` snapshots see them); the accessors keep the benchmark
    and test API of the pre-telemetry counters.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry

    @property
    def builds(self) -> dict[str, int]:
        return self._per_kind("builds")

    @property
    def hits(self) -> dict[str, int]:
        return self._per_kind("hits")

    @property
    def invalidated_methods(self) -> int:
        return self._registry.counter_value("artifact.invalidated_methods")

    def builds_of(self, name: str) -> int:
        return self._registry.counter_value(f"artifact.{name}.builds")

    def hits_of(self, name: str) -> int:
        return self._registry.counter_value(f"artifact.{name}.hits")

    def _per_kind(self, event: str) -> dict[str, int]:
        suffix = f".{event}"
        out: dict[str, int] = {}
        for name, value in self._registry.snapshot()["counters"].items():
            if name.startswith("artifact.") and name.endswith(suffix) and value:
                out[name[len("artifact."):-len(suffix)]] = value
        return out


class ArtifactStore:
    """All derived artifacts of one APK, built on demand."""

    def __init__(self, apk: "APK", registry: "LibraryRegistry") -> None:
        self.apk = apk
        self.registry = registry
        #: Store-local telemetry, mirrored into the registry that was
        #: active when the store was created (batch workers install a
        #: fresh one per app and ship its snapshot back to the parent).
        self.metrics = MetricsRegistry()
        self._global = active_metrics()
        self.counters = ArtifactCounters(self.metrics)
        self._counter_pairs: dict[str, tuple] = {}
        self._app: dict[str, object] = {}
        self._cfgs: dict[MethodKey, "CFGGraph"] = {}
        self._defuse: dict[MethodKey, "DefUseChains"] = {}
        self._constants: dict[MethodKey, object] = {}
        self._context: Optional["AnalysisContext"] = None
        self._builders = {
            CALLGRAPH.name: self._build_callgraph,
            SUMMARIES.name: self._build_summaries,
            REQUESTS.name: self._build_requests,
            RETRY_LOOPS.name: self._build_retry_loops,
            ICC_MODEL.name: self._build_icc_model,
            THREADCONTEXT.name: self._build_threadcontext,
        }

    # -- telemetry -----------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        """Bump a counter in the store-local registry and, when distinct,
        the active global one (so ``--metrics`` snapshots include it).

        Counter objects are resolved once per name: cache-hit accounting
        runs on every cfg/defuse/constants access, and the two name
        lookups per bump were measurable on cold scans.
        """
        pair = self._counter_pairs.get(name)
        if pair is None:
            local = self.metrics.counter(name)
            shared = (
                self._global.counter(name)
                if self._global is not self.metrics
                else None
            )
            pair = (local, shared)
            self._counter_pairs[name] = pair
        local, shared = pair
        local.inc(n)
        if shared is not None:
            shared.inc(n)

    def _observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)
        if self._global is not self.metrics:
            self._global.observe(name, value)

    # -- app-scoped artifacts ------------------------------------------------

    def get(self, key: ArtifactKey):
        """The artifact for ``key``, building it (and its dependencies)
        if missing."""
        if key.scope != "app":
            raise ValueError(
                f"method-scoped artifact {key.name!r} is accessed per method "
                f"(store.cfg/defuse), not via get()"
            )
        if key.name in self._app:
            self._count(f"artifact.{key.name}.hits")
            return self._app[key.name]
        for dep in key.deps:
            self.get(ARTIFACTS[dep])
        self._count(f"artifact.{key.name}.builds")
        with span(f"artifact:{key.name}", package=self.apk.package):
            start = time.perf_counter()
            value = self._builders[key.name]()
            self._observe(
                f"artifact.{key.name}.build_ms",
                (time.perf_counter() - start) * 1000.0,
            )
        self._app[key.name] = value
        return value

    def peek(self, key: ArtifactKey):
        """The artifact if already built, else ``None`` (never builds)."""
        return self._app.get(key.name)

    def adopt(self, key: ArtifactKey, value) -> None:
        """Install an externally produced artifact (a disk-cache load).

        Counts neither a build nor a hit — the disk cache keeps its own
        ``cache.disk.*`` accounting — so ``artifact.<kind>.builds`` stays
        an exact count of in-process construction work.
        """
        if key.scope != "app":
            raise ValueError(f"cannot adopt method-scoped artifact {key.name!r}")
        self._app[key.name] = value

    @property
    def context(self) -> "AnalysisContext":
        """The shared :class:`AnalysisContext` over this store.  Building
        it forces the call graph (its one mandatory field); ``summaries``
        and ``retry_loops`` are injected by the scan session according to
        the plan."""
        if self._context is None:
            from ..core.requests import AnalysisContext

            self._context = AnalysisContext(
                self.apk, self.registry, self.get(CALLGRAPH), self
            )
        return self._context

    # -- builders ------------------------------------------------------------

    def _build_callgraph(self) -> "CallGraph":
        from ..callgraph.cha import CallGraph

        graph = CallGraph(self.apk, self.registry, self)
        self._global.set_gauge("callgraph.methods", len(graph.methods))
        self._global.set_gauge(
            "callgraph.edges",
            sum(len(edges) for edges in graph.out_edges.values()),
        )
        return graph

    def _build_summaries(self) -> "SummaryEngine":
        from ..dataflow.summaries import SummaryEngine

        return SummaryEngine(self.get(CALLGRAPH), self.registry, self)

    def _build_requests(self) -> "list[NetworkRequest]":
        from ..core.requests import find_requests

        return find_requests(self.context)

    def _build_retry_loops(self) -> "list[RetryLoop]":
        from ..core.retry_loops import identify_retry_loops

        return identify_retry_loops(self.context, self.get(REQUESTS))

    def _build_icc_model(self):
        from ..callgraph.icc import build_icc_model

        return build_icc_model(self.apk, self)

    def _build_threadcontext(self):
        from ..dataflow.threadcontext import ThreadContextAnalysis

        return ThreadContextAnalysis(self.get(CALLGRAPH), self.registry)

    # -- method-scoped artifacts (MethodAnalysisCache protocol) --------------

    def cfg(self, method) -> "CFGGraph":
        key = method_key(method)
        cached = self._cfgs.get(key)
        if cached is not None:
            self._count("artifact.cfg.hits")
            return cached
        from ..cfg.graph import CFG as CFGGraph

        self._count("artifact.cfg.builds")
        start = time.perf_counter()
        built = CFGGraph(method)
        self._observe("artifact.cfg.build_ms",
                      (time.perf_counter() - start) * 1000.0)
        self._cfgs[key] = built
        return built

    def defuse(self, method) -> "DefUseChains":
        key = method_key(method)
        cached = self._defuse.get(key)
        if cached is not None:
            self._count("artifact.defuse.hits")
            return cached
        from ..dataflow.reaching import DefUseChains

        self._count("artifact.defuse.builds")
        cfg = self.cfg(method)
        start = time.perf_counter()
        built = DefUseChains(cfg)
        self._observe("artifact.defuse.build_ms",
                      (time.perf_counter() - start) * 1000.0)
        self._defuse[key] = built
        return built

    def constants(self, method):
        """The solved constant-propagation fixpoint for ``method`` — a
        pure per-method analysis shared by the config, retry, and request
        extraction passes."""
        key = method_key(method)
        cached = self._constants.get(key)
        if cached is not None:
            self._count("artifact.constants.hits")
            return cached
        from ..dataflow.constants import ConstantPropagation

        self._count("artifact.constants.builds")
        cfg = self.cfg(method)
        start = time.perf_counter()
        built = ConstantPropagation(cfg)
        self._observe("artifact.constants.build_ms",
                      (time.perf_counter() - start) * 1000.0)
        self._constants[key] = built
        return built

    # -- invalidation --------------------------------------------------------

    def invalidate_methods(self, touched: "set[MethodKey] | frozenset[MethodKey]") -> None:
        """Dependency-aware invalidation after an in-place mutation of
        ``touched`` methods (the patcher's report).

        Order matters:

        1. drop the dirty methods' CFG/def-use (edge re-resolution reads
           receiver classes through this store);
        2. refresh the dirty methods' call-graph edges, collecting the
           summary dependency cone on both the old and the new edge sets
           (a caller of the old *or* new callee graph may see different
           facts);
        3. invalidate the summary entries of the dirty cone;
        4. drop the whole-app extraction artifacts (requests, retry
           loops, ICC model, thread contexts) — they enumerate statement
           indices or call edges, which insertions shift; they rebuild
           against the warm method cache.
        """
        touched = set(touched)
        if not touched:
            return
        self._count("artifact.invalidated_methods", len(touched))
        for key in touched:
            self._cfgs.pop(key, None)
            self._defuse.pop(key, None)
            self._constants.pop(key, None)
        graph = self._app.get(CALLGRAPH.name)
        dirty = set(touched)
        if graph is not None:
            dirty |= graph.transitive_callers(touched)
            graph.refresh_methods(touched)
            dirty |= graph.transitive_callers(touched)
        engine = self._app.get(SUMMARIES.name)
        if engine is not None:
            engine.invalidate_methods(dirty)
        for key in (REQUESTS, RETRY_LOOPS, ICC_MODEL, THREADCONTEXT):
            self._app.pop(key.name, None)
        if self._context is not None:
            self._context.retry_loops = []
