"""Pass-pipeline architecture: artifact store, scheduled passes, batch
scanning, incremental re-scan.

* :mod:`repro.pipeline.artifacts` — the typed per-APK artifact store
  with build-on-demand and dependency-aware invalidation;
* :mod:`repro.pipeline.passes` — pass ordering and scan planning from
  the checks' declared artifact reads;
* :mod:`repro.pipeline.scan` — scan sessions (one store per APK) and
  the session cache behind ``NChecker``;
* :mod:`repro.pipeline.batch` — the parallel batch scanner
  (``nchecker scan --jobs N``) with deterministic, input-order-stable
  output;
* :mod:`repro.pipeline.cachestore` — the persistent cross-run cache as
  a layered subsystem: content addressing, codec, and the pluggable
  ``CacheBackend`` protocol (local / memory / tiered) behind
  ``--cache-backend`` (``repro.pipeline.diskcache`` is its thin
  compatibility facade).
"""

from .artifacts import (
    ARTIFACTS,
    CALLGRAPH,
    CFG,
    DEFUSE,
    ICC_MODEL,
    REQUESTS,
    RETRY_LOOPS,
    SUMMARIES,
    ArtifactCounters,
    ArtifactKey,
    ArtifactStore,
)
from .cachestore import (
    CacheBackend,
    CacheStore,
    LocalDirBackend,
    MemoryBackend,
    TieredBackend,
)
from .passes import ScanPlan, ScheduledPass, build_plan, order_passes, resolve_reads
from .scan import ScanSession, SessionCache

__all__ = [
    "ARTIFACTS",
    "CacheBackend",
    "CacheStore",
    "LocalDirBackend",
    "MemoryBackend",
    "TieredBackend",
    "ArtifactCounters",
    "ArtifactKey",
    "ArtifactStore",
    "CALLGRAPH",
    "CFG",
    "DEFUSE",
    "ICC_MODEL",
    "REQUESTS",
    "RETRY_LOOPS",
    "SUMMARIES",
    "ScanPlan",
    "ScanSession",
    "ScheduledPass",
    "SessionCache",
    "build_plan",
    "order_passes",
    "resolve_reads",
]
