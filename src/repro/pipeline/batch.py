"""Parallel batch scanning (``nchecker scan --jobs N``).

One worker process per job scans whole apps independently — the natural
parallel grain, since every artifact in the store is per-APK.  Workers
return :class:`ScanPayload` objects: fully *rendered* per-app output
(report texts, JSON dicts, SARIF result objects) rather than live
analysis objects, so the parent never re-derives anything and the bytes
printed are the same whether one process produced them or eight.

Determinism contract: ``ProcessPoolExecutor.map`` preserves input order,
payload rendering is a pure function of one app, and ``--jobs 1`` runs
the *same* payload function in-process — so the CLI output is
byte-identical across job counts, by construction.

:func:`scan_corpus` applies the same fan-out to the synthetic evaluation
corpus (generation is deterministic per app index, so workers regenerate
their slice instead of shipping APKs over the pipe).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from ..core.checker import NCheckerOptions
from ..obs import MetricsRegistry, Tracer, set_metrics, set_tracer, span

if TYPE_CHECKING:
    from ..core.checker import ScanResult
    from ..corpus.profiles import CorpusProfile


@dataclass(frozen=True)
class _ScanTask:
    """Picklable work order for one app file."""

    path: str
    options: NCheckerOptions
    want_json: bool
    want_sarif: bool
    want_stats: bool
    want_summary: bool
    #: Collect span events / a metrics snapshot for this app.  Workers
    #: install a fresh tracer/registry per task and ship the export back
    #: in the payload; the parent merges (`--trace`/`--metrics`/`--stats`).
    want_trace: bool = False
    want_metrics: bool = False
    #: Also fold this app's span stream into an aggregated profile tree
    #: (`--profile`; rides on the metrics snapshot so it merges across
    #: the pool with everything else).
    want_profile: bool = False


@dataclass
class ScanPayload:
    """Rendered scan output for one app (or the error that prevented it).

    Everything the CLI prints is pre-rendered here, in the worker, so the
    parent process only concatenates strings — the key to byte-identical
    output across ``--jobs`` values.
    """

    path: str
    ok: bool
    error: str = ""
    package: str = ""
    n_findings: int = 0
    n_requests: int = 0
    #: ``(label, value)`` rows from ``app_metrics`` (``--stats``).
    stats_rows: list = field(default_factory=list)
    #: Sorted ``(kind, count)`` pairs (``--summary``).
    summary_counts: list = field(default_factory=list)
    #: Rendered §4.6 warning reports (default output mode).
    report_texts: list = field(default_factory=list)
    #: ``ScanResult.to_dict()`` (``--json``).
    json_dict: Optional[dict] = None
    #: Finding kind values + SARIF result objects (``--sarif``).
    sarif_kind_values: list = field(default_factory=list)
    sarif_results: list = field(default_factory=list)
    #: Chrome trace events from this app's scan (``--trace``).
    trace_events: list = field(default_factory=list)
    #: Metrics snapshot of this app's scan (``--metrics``/``--stats``).
    metrics_snapshot: Optional[dict] = None


def _scan_payload(task: _ScanTask) -> ScanPayload:
    """Scan one app file and render its output (module-level so it can be
    dispatched to a worker process).

    When the task asks for telemetry, a fresh tracer/registry pair is
    installed for the duration of the scan and its export travels back in
    the payload — the parent merges across workers, so the telemetry of a
    ``--jobs N`` run is the sum of per-app snapshots regardless of which
    process scanned which app.
    """
    if not (task.want_trace or task.want_metrics or task.want_profile):
        return _render_payload(task)
    # Profiling needs the span stream, so it enables the tracer even
    # when no --trace file was asked for.
    trace = Tracer(enabled=task.want_trace or task.want_profile)
    registry = MetricsRegistry()
    old_tracer = set_tracer(trace)
    old_metrics = set_metrics(registry)
    try:
        payload = _render_payload(task)
    finally:
        set_tracer(old_tracer)
        set_metrics(old_metrics)
    if task.want_trace:
        payload.trace_events = trace.export()
    if task.want_metrics or task.want_profile:
        snapshot = registry.snapshot()
        if task.want_profile:
            from ..obs import profile_from_events

            snapshot["profile"] = profile_from_events(trace.export())
        payload.metrics_snapshot = snapshot
    return payload


def _render_payload(task: _ScanTask) -> ScanPayload:
    from ..app.loader import load_apk
    from ..ir.parser import ParseError

    try:
        with span("load", path=task.path):
            apk = load_apk(task.path)
    except FileNotFoundError:
        return ScanPayload(task.path, ok=False,
                           error=f"error: no such file: {task.path}")
    except (ParseError, ValueError) as exc:
        return ScanPayload(task.path, ok=False,
                           error=f"error: {task.path}: {exc}")

    from ..core.checker import NChecker

    result = NChecker(options=task.options).scan(apk)
    payload = ScanPayload(
        task.path,
        ok=True,
        package=apk.package,
        n_findings=len(result.findings),
        n_requests=len(result.requests),
    )
    if task.want_json:
        payload.json_dict = result.to_dict()
    if task.want_sarif:
        from ..eval.sarif import finding_result

        uri = Path(task.path).as_posix()
        payload.sarif_kind_values = [f.kind.value for f in result.findings]
        payload.sarif_results = [finding_result(f, uri) for f in result.findings]
    if task.want_json or task.want_sarif:
        return payload  # machine output modes print nothing per app
    if task.want_stats:
        from ..ir.metrics import app_metrics

        payload.stats_rows = list(app_metrics(apk).as_rows())
    if task.want_summary:
        payload.summary_counts = sorted(result.summary().items())
    else:
        payload.report_texts = [report.render() for report in result.reports()]
    return payload


@dataclass
class BatchScanner:
    """Fan app scans across processes with input-order-stable output.

    ``jobs <= 1`` runs the identical payload function in-process; any
    higher value uses a ``ProcessPoolExecutor`` whose ``map`` preserves
    input order, so results are deterministic either way.
    """

    options: NCheckerOptions = NCheckerOptions()
    jobs: int = 1

    def scan_paths(
        self,
        paths: Sequence[str],
        *,
        want_json: bool = False,
        want_sarif: bool = False,
        want_stats: bool = False,
        want_summary: bool = False,
        want_trace: bool = False,
        want_metrics: bool = False,
        want_profile: bool = False,
        progress: Optional[Callable[[int, int, ScanPayload], None]] = None,
    ) -> list[ScanPayload]:
        """Scan ``paths``; ``progress(done, total, payload)`` is invoked
        as each app's payload lands (in input order — the heartbeat the
        CLI's ``--progress`` prints)."""
        tasks = [
            _ScanTask(str(path), self.options, want_json, want_sarif,
                      want_stats, want_summary, want_trace, want_metrics,
                      want_profile)
            for path in paths
        ]
        return self._map(_scan_payload, tasks, progress)

    def _map(self, fn, tasks: list, progress=None) -> list:
        if self.jobs <= 1 or len(tasks) <= 1:
            payloads = []
            for task in tasks:
                payloads.append(fn(task))
                if progress is not None:
                    progress(len(payloads), len(tasks), payloads[-1])
            return payloads
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(self.jobs, len(tasks))) as pool:
            payloads = []
            for payload in pool.map(fn, tasks):
                payloads.append(payload)
                if progress is not None:
                    progress(len(payloads), len(tasks), payload)
            return payloads


# ---------------------------------------------------------------------------
# Corpus fan-out (experiments / benchmarks)
# ---------------------------------------------------------------------------


def _scan_corpus_chunk(task) -> tuple:
    """Regenerate and scan one slice of corpus app indices; returns the
    ``(index, result)`` pairs plus this worker's metrics snapshot (or
    ``None`` when the caller did not ask for telemetry)."""
    profile, indices, options, collect = task
    from ..core.checker import NChecker
    from ..corpus.generator import CorpusGenerator

    registry = MetricsRegistry() if collect else None
    old = set_metrics(registry) if collect else None
    try:
        generator = CorpusGenerator(profile)
        checker = NChecker(options=options)
        out = []
        for index in indices:
            apk, _truth = generator.generate_app(index)
            out.append((index, checker.scan(apk)))
    finally:
        if collect:
            set_metrics(old)
    return out, registry.snapshot() if collect else None


def scan_corpus(
    profile: "CorpusProfile",
    n_apps: int,
    jobs: int = 1,
    options: NCheckerOptions = NCheckerOptions(),
    telemetry: Optional[dict] = None,
) -> "list[ScanResult]":
    """Scan the synthetic corpus, optionally across worker processes.

    Returns results in app-index order regardless of ``jobs`` (generation
    is deterministic per index, so workers regenerate their own slice and
    the parent just reorders).

    Pass a dict as ``telemetry`` to receive the run's merged metrics
    snapshot in it (generation + scan counters and timings, summed over
    workers) — the public accounting the benchmarks and experiments
    assert on instead of reaching into store internals.
    """
    from ..obs import merge_snapshots, use_metrics

    profile = profile.scaled(n_apps)
    collect = telemetry is not None
    if jobs <= 1 or n_apps <= 1:
        from ..core.checker import NChecker
        from ..corpus.generator import CorpusGenerator

        if collect:
            with use_metrics() as registry:
                generator = CorpusGenerator(profile)
                checker = NChecker(options=options)
                results = [checker.scan(apk) for apk, _ in generator.iter_apps()]
            telemetry.update(merge_snapshots([registry.snapshot()]))
            return results
        generator = CorpusGenerator(profile)
        checker = NChecker(options=options)
        return [checker.scan(apk) for apk, _ in generator.iter_apps()]
    workers = min(jobs, n_apps)
    # Round-robin slices balance the load; the final sort restores input
    # order.
    chunks = [
        (profile, tuple(range(start, n_apps, workers)), options, collect)
        for start in range(workers)
    ]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=workers) as pool:
        chunk_results = list(pool.map(_scan_corpus_chunk, chunks))
    indexed = [pair for pairs, _snap in chunk_results for pair in pairs]
    indexed.sort(key=lambda pair: pair[0])
    if collect:
        telemetry.update(
            merge_snapshots([snap for _pairs, snap in chunk_results if snap])
        )
    return [result for _index, result in indexed]
