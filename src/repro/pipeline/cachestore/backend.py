"""The ``CacheBackend`` protocol: the narrow seam every cache tier
implements.

A backend is a content-addressed blob store.  It never interprets entry
payloads — serialization lives in :mod:`.codec`, addressing in
:mod:`.fingerprints` — it only moves opaque ``bytes`` under an
:class:`EntryKey`.  Four implementations ship today
(:class:`~repro.pipeline.cachestore.local.LocalDirBackend`,
:class:`~repro.pipeline.cachestore.memory.MemoryBackend`,
:class:`~repro.pipeline.cachestore.remote.RemoteBackend` — the
HTTP tier served by the ``nchecker serve`` daemon — and
:class:`~repro.pipeline.cachestore.tiered.TieredBackend`); each plugs
in behind the same five methods without touching the pipeline.

Semantics every backend MUST honour (enforced by the shared conformance
suite in ``tests/pipeline/test_cachestore.py``):

* **Best-effort, never raising.**  ``get`` returns ``None`` for an
  absent *or unreadable* entry; ``put`` returns the tiers actually
  written — possibly empty on I/O failure — and ``delete`` the number
  of copies removed.  Storage trouble degrades to a miss or a skipped
  write, never an exception out of the backend.
* **Atomic publication.**  A concurrent reader of ``put`` sees either
  the previous complete blob or the new complete blob, never a torn
  intermediate (the local backend writes a temp file and
  ``os.replace``\\ s it; the in-memory backend relies on atomic dict
  assignment).  Parallel ``--jobs`` workers sharing a backend therefore
  race benignly.
* **Corruption is a miss.**  Backends return blob bytes verbatim; the
  codec's magic/version/checksum header is what detects a damaged
  entry.  After the caller reports one (by ``delete``-ing the key), the
  backend must actually drop it so the rebuilt artifact's ``put``
  replaces it everywhere.
* **Eviction grace.**  ``gc`` never removes an entry younger than
  ``grace_seconds`` (default :data:`GC_GRACE_SECONDS`): a concurrent
  scanner that just published an entry must not lose it to a garbage
  collection racing the scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, runtime_checkable

#: ``gc`` keeps entries written within this many seconds regardless of
#: the size budget, so a collection racing a live scan cannot drop an
#: in-flight entry (override per call; the CLI exposes ``--min-age``).
GC_GRACE_SECONDS = 60.0


@dataclass(frozen=True)
class EntryKey:
    """Backend-independent address of one cache entry.

    ``app_fp`` is the app content fingerprint, ``kind`` the artifact
    kind, ``digest`` the :func:`~repro.pipeline.cachestore.fingerprints.
    entry_digest` folding registry/options state.  The same key names
    the same entry on every backend — that is what lets a tiered
    composition promote and write through without translation.
    """

    app_fp: str
    kind: str
    digest: str

    @property
    def filename(self) -> str:
        """Canonical file name (the on-disk layout every local-style
        backend shares, and the pre-refactor ``DiskCache`` wrote)."""
        return f"{self.kind}-{self.digest}.bin"


@dataclass(frozen=True)
class EntryInfo:
    """One stored entry, as enumerated by ``list_entries``."""

    key: EntryKey
    size: int
    mtime: float
    #: Name of the tier holding this copy (tiered backends enumerate
    #: every tier, so one key may appear once per tier).
    tier: str


@dataclass(frozen=True)
class GetResult:
    """A successful ``get``: the blob plus its provenance.

    ``tier`` names the tier that served the bytes — the namespace the
    caller's ``cache.<tier>.<kind>.hits`` accounting lands in.
    ``promoted`` names the faster tiers the entry was copied into on the
    way out (read-through promotion), counted as
    ``cache.<tier>.<kind>.promotions``.
    """

    blob: bytes
    tier: str
    promoted: tuple[str, ...] = ()


@runtime_checkable
class CacheBackend(Protocol):
    """What a cache tier must provide.  See the module docstring for the
    atomicity / corruption / grace semantics conformance requires."""

    #: Short tier name; namespaces this backend's metrics
    #: (``cache.<name>.*``) and labels its stats section.
    name: str

    def get(self, key: EntryKey) -> Optional[GetResult]:
        """The stored blob for ``key``, or ``None`` when absent or
        unreadable (an I/O error is a miss, never an exception)."""
        ...

    def put(self, key: EntryKey, blob: bytes) -> tuple[str, ...]:
        """Store ``blob`` under ``key`` atomically; returns the names of
        the tiers actually written (empty when every write failed —
        best-effort, the caller simply retries next run)."""
        ...

    def delete(self, key: EntryKey) -> int:
        """Drop every copy of ``key``; returns the number removed."""
        ...

    def list_entries(self) -> list[EntryInfo]:
        """Every stored entry (every per-tier copy), for stats/gc."""
        ...

    def stats(self) -> "CacheStats":
        """Aggregate entry counts and sizes (per kind, per tier)."""
        ...

    def gc(
        self, max_bytes: int, grace_seconds: float = GC_GRACE_SECONDS
    ) -> tuple[int, int]:
        """Evict least-recently-written entries until the backend fits
        ``max_bytes``, never touching entries younger than
        ``grace_seconds``; returns ``(entries removed, bytes freed)``."""
        ...

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        ...


# ---------------------------------------------------------------------------
# Sizes (gc budgets, stats rendering)
# ---------------------------------------------------------------------------

_SIZE_UNITS = {"B": 1, "K": 1 << 10, "M": 1 << 20, "G": 1 << 30, "T": 1 << 40}


def parse_size(text: str) -> int:
    """``"512M"`` / ``"1.5G"`` / ``"512m"`` / ``"4096"`` → bytes.

    Accepts fractional values and case-insensitive ``K/M/G/T`` (and
    ``B``) suffixes; :func:`format_size` output always round-trips
    through this parser."""
    text = text.strip()
    multiplier = 1
    if text and text[-1].upper() in _SIZE_UNITS:
        multiplier = _SIZE_UNITS[text[-1].upper()]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise ValueError(f"unparsable size: {text!r} (use e.g. 512M, 1.5G)")
    if value < 0:
        raise ValueError("size must be non-negative")
    return int(value * multiplier)


def format_size(n: int) -> str:
    """Human size, guaranteed to ``parse_size`` back to within one
    rendered decimal (``1536 -> "1.5K" -> 1536``)."""
    for unit, width in (("G", 1 << 30), ("M", 1 << 20), ("K", 1 << 10)):
        if n >= width:
            return f"{n / width:.1f}{unit}"
    return f"{n}B"


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------


@dataclass
class CacheStats:
    """What ``nchecker cache stats`` prints: aggregate entry counts and
    bytes, broken down per artifact kind (so cache growth is
    attributable) and — for tiered backends — per tier."""

    label: str
    apps: int
    entries: int
    total_bytes: int
    #: kind -> (entry count, bytes)
    by_kind: dict[str, tuple[int, int]]
    #: Per-tier sections (tiered backends only).
    tiers: list["CacheStats"] = field(default_factory=list)

    def render(self, indent: str = "") -> str:
        lines = [f"{indent}cache {self.label}"]
        lines.append(
            f"{indent}  {self.entries} "
            f"entr{'y' if self.entries == 1 else 'ies'} "
            f"for {self.apps} app(s), {format_size(self.total_bytes)}"
        )
        for kind in sorted(self.by_kind):
            count, size = self.by_kind[kind]
            lines.append(f"{indent}  {kind:<13} {count:>5}  {format_size(size)}")
        for tier in self.tiers:
            lines.append(tier.render(indent + "  ").replace(
                f"{indent}  cache ", f"{indent}  tier ", 1))
        return "\n".join(lines)


def stats_from_entries(label: str, entries: list[EntryInfo]) -> CacheStats:
    """Fold a ``list_entries`` result into a :class:`CacheStats` — the
    shared accounting every single-tier backend uses."""
    by_kind: dict[str, tuple[int, int]] = {}
    apps: set[str] = set()
    total = 0
    for info in entries:
        count, kind_bytes = by_kind.get(info.key.kind, (0, 0))
        by_kind[info.key.kind] = (count + 1, kind_bytes + info.size)
        apps.add(info.key.app_fp)
        total += info.size
    return CacheStats(label, len(apps), len(entries), total, by_kind)
