"""The layered cache-store subsystem (``--cache-backend`` /
``nchecker cache``).

The persistent cross-run artifact cache, split along its three concerns
so each can evolve (and be replaced) independently:

* :mod:`~repro.pipeline.cachestore.fingerprints` — content addressing:
  app/registry/options fingerprints and the per-entry digest;
* :mod:`~repro.pipeline.cachestore.codec` — serialization: the
  persistent-id pickler rewiring live session objects, plus the
  magic/version/checksum header enforcing corruption-is-a-miss;
* :mod:`~repro.pipeline.cachestore.backend` — the narrow
  :class:`CacheBackend` protocol (``get/put/delete/list_entries/stats``
  plus ``gc/clear`` management) every storage tier implements, with
  four implementations: :class:`LocalDirBackend` (the on-disk store,
  format-compatible with pre-split caches), :class:`MemoryBackend`
  (process-local), :class:`RemoteBackend` (a ``nchecker serve``
  daemon's ``/v1/cache`` API over HTTP — the fleet-wide tier), and
  :class:`TieredBackend` (read-through / write-through composition,
  e.g. ``memory+local`` or ``memory+remote:URL``).

:class:`CacheStore` (:mod:`~repro.pipeline.cachestore.store`) ties the
three together for the scan session; ``repro.pipeline.diskcache``
remains as a thin compatibility facade over ``local``.  The user-facing
guide is ``docs/CACHING.md``.
"""

from .backend import (
    GC_GRACE_SECONDS,
    CacheBackend,
    CacheStats,
    EntryInfo,
    EntryKey,
    GetResult,
    format_size,
    parse_size,
)
from .codec import CacheMiss, decode_artifact, encode_artifact
from .fingerprints import (
    CACHE_FORMAT_VERSION,
    OPTIONS_READ_BY,
    app_content_fingerprint,
    entry_digest,
    method_content_hash,
    options_fingerprint,
    registry_fingerprint,
)
from .local import LocalDirBackend
from .memory import MemoryBackend, shared_memory_backend
from .remote import RemoteBackend
from .store import CacheStore, backend_from_spec
from .tiered import TieredBackend

__all__ = [
    "CACHE_FORMAT_VERSION",
    "GC_GRACE_SECONDS",
    "OPTIONS_READ_BY",
    "CacheBackend",
    "CacheMiss",
    "CacheStats",
    "CacheStore",
    "EntryInfo",
    "EntryKey",
    "GetResult",
    "LocalDirBackend",
    "MemoryBackend",
    "RemoteBackend",
    "TieredBackend",
    "app_content_fingerprint",
    "backend_from_spec",
    "decode_artifact",
    "encode_artifact",
    "entry_digest",
    "format_size",
    "method_content_hash",
    "options_fingerprint",
    "parse_size",
    "registry_fingerprint",
    "shared_memory_backend",
]
