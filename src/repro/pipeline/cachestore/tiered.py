"""Read-through / write-through tier composition.

``TieredBackend([fast, ..., slow])`` chains backends fastest-first:

* **get** asks each tier in order and serves the first hit; the blob is
  then *promoted* — copied into every faster tier — so the next read in
  this process (or, for ``local`` over a future remote tier, on this
  host) is served closer.  The :class:`~repro.pipeline.cachestore.
  backend.GetResult` reports the serving tier and the promoted tiers,
  which the session turns into per-tier hit/promotion counters.
* **put** writes through to *every* tier, so a freshly built artifact
  is immediately visible at all levels and a fleet sharing the slow
  tier amortizes the build.
* **delete** drops every copy — essential for corruption handling,
  where a bad blob may already have been promoted before the codec
  rejected it.

Composition today is ``memory`` over ``local``; the seam is exactly
what a ``local`` over HTTP/S3-style *remote* tier needs tomorrow.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .backend import (
    GC_GRACE_SECONDS,
    CacheBackend,
    CacheStats,
    EntryInfo,
    EntryKey,
    GetResult,
)


class TieredBackend:
    """Compose backends fastest-first with promotion and write-through."""

    def __init__(self, tiers: Sequence[CacheBackend]) -> None:
        if not tiers:
            raise ValueError("TieredBackend needs at least one tier")
        names = [tier.name for tier in tiers]
        if len(set(names)) != len(names):
            raise ValueError(
                f"tier names must be distinct for attribution, got {names}"
            )
        self.tiers = tuple(tiers)
        self.name = "+".join(names)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TieredBackend({self.name})"

    def get(self, key: EntryKey) -> Optional[GetResult]:
        for index, tier in enumerate(self.tiers):
            result = tier.get(key)
            if result is None:
                continue
            promoted = tuple(
                name
                for faster in self.tiers[:index]
                for name in faster.put(key, result.blob)
            )
            return GetResult(result.blob, result.tier, promoted + result.promoted)
        return None

    def put(self, key: EntryKey, blob: bytes) -> tuple[str, ...]:
        return tuple(
            name for tier in self.tiers for name in tier.put(key, blob)
        )

    def delete(self, key: EntryKey) -> int:
        return sum(tier.delete(key) for tier in self.tiers)

    def list_entries(self) -> list[EntryInfo]:
        return [info for tier in self.tiers for info in tier.list_entries()]

    def stats(self) -> CacheStats:
        sections = [tier.stats() for tier in self.tiers]
        return CacheStats(
            self.name,
            apps=max((s.apps for s in sections), default=0),
            entries=sum(s.entries for s in sections),
            total_bytes=sum(s.total_bytes for s in sections),
            by_kind=_merge_kinds(sections),
            tiers=sections,
        )

    def gc(
        self, max_bytes: int, grace_seconds: float = GC_GRACE_SECONDS
    ) -> tuple[int, int]:
        """Apply the budget to each tier independently (a small fast tier
        in front of a large slow one is the point of the composition)."""
        removed = 0
        freed = 0
        for tier in self.tiers:
            tier_removed, tier_freed = tier.gc(max_bytes, grace_seconds)
            removed += tier_removed
            freed += tier_freed
        return removed, freed

    def clear(self) -> int:
        return sum(tier.clear() for tier in self.tiers)


def _merge_kinds(
    sections: Sequence[CacheStats],
) -> dict[str, tuple[int, int]]:
    merged: dict[str, tuple[int, int]] = {}
    for section in sections:
        for kind, (count, size) in section.by_kind.items():
            have_count, have_size = merged.get(kind, (0, 0))
            merged[kind] = (have_count + count, have_size + size)
    return merged
