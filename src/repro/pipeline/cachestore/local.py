"""The local-directory backend — today's on-disk cache, behind the seam.

Layout (format-compatible with every cache the pre-refactor
``DiskCache`` wrote):

    <root>/v<FORMAT>/<app_fp[:2]>/<app_fp>/<kind>-<digest>.bin

one directory per app fingerprint (the per-APK cache files that
``--jobs`` workers share), one entry file per artifact kind and
declared-options subset.  Writes go through a temp file plus
:func:`os.replace`, so parallel workers sharing one directory race
benignly: readers see either the old or the new complete entry, never a
torn one.
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path
from typing import Optional

from ...obs import get_logger
from . import fingerprints
from .backend import (
    GC_GRACE_SECONDS,
    CacheStats,
    EntryInfo,
    EntryKey,
    GetResult,
    stats_from_entries,
)

log = get_logger("cachestore.local")


class LocalDirBackend:
    """Content-addressed blob store over one local directory."""

    def __init__(self, root: str | Path, name: str = "local") -> None:
        self.root = Path(root).expanduser()
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LocalDirBackend({str(self.root)!r})"

    # -- paths ---------------------------------------------------------------

    @property
    def _version_root(self) -> Path:
        # Read through the module so a format bump (or a test's
        # monkeypatch) moves the path and the old tree becomes garbage,
        # not a crash.
        return self.root / f"v{fingerprints.CACHE_FORMAT_VERSION}"

    def app_dir(self, app_fp: str) -> Path:
        return self._version_root / app_fp[:2] / app_fp

    def entry_path(self, key: EntryKey) -> Path:
        return self.app_dir(key.app_fp) / key.filename

    # -- blob store ----------------------------------------------------------

    def get(self, key: EntryKey) -> Optional[GetResult]:
        path = self.entry_path(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            log.debug("cache read failed for %s: %s", path, exc)
            return None
        return GetResult(blob, self.name)

    def put(self, key: EntryKey, blob: bytes) -> tuple[str, ...]:
        path = self.entry_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        except OSError as exc:
            log.warning("cannot write cache entry %s: %s", path, exc)
            return ()
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except OSError as exc:
            log.warning("cannot write cache entry %s: %s", path, exc)
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return ()
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return (self.name,)

    def delete(self, key: EntryKey) -> int:
        try:
            self.entry_path(key).unlink()
        except OSError:
            return 0
        return 1

    # -- enumeration / management --------------------------------------------

    def _entry_files(self) -> list[Path]:
        """Every entry file under every format-version directory (stats,
        gc, and clear cover stale ``v<N>`` trees too)."""
        if not self.root.is_dir():
            return []
        return sorted(
            p for p in self.root.glob("v*/??/*/*.bin") if p.is_file()
        )

    def list_entries(self) -> list[EntryInfo]:
        entries = []
        for path in self._entry_files():
            kind, _, digest = path.stem.rpartition("-")
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append(EntryInfo(
                EntryKey(path.parent.name, kind, digest),
                st.st_size, st.st_mtime, self.name,
            ))
        return entries

    def stats(self) -> CacheStats:
        return stats_from_entries(
            f"{self.name} {self.root}", self.list_entries()
        )

    def gc(
        self, max_bytes: int, grace_seconds: float = GC_GRACE_SECONDS
    ) -> tuple[int, int]:
        files = []
        for p in self._entry_files():
            try:
                files.append((p, p.stat()))
            except OSError:
                continue
        total = sum(st.st_size for _p, st in files)
        files.sort(key=lambda pair: pair[1].st_mtime)  # oldest first
        fresh_after = time.time() - grace_seconds
        removed = 0
        freed = 0
        for path, st in files:
            if total <= max_bytes:
                break
            if st.st_mtime > fresh_after:
                # Within the grace window: a concurrent scanner may have
                # just published this entry — never evict it mid-flight.
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= st.st_size
            freed += st.st_size
            removed += 1
        self._prune_empty_dirs()
        return removed, freed

    def clear(self) -> int:
        removed = 0
        for path in self._entry_files():
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        self._prune_empty_dirs()
        return removed

    def _prune_empty_dirs(self) -> None:
        if not self.root.is_dir():
            return
        for directory in sorted(
            (p for p in self.root.glob("v*/**/") if p.is_dir()),
            key=lambda p: len(p.parts),
            reverse=True,
        ):
            try:
                directory.rmdir()  # fails (correctly) unless empty
            except OSError:
                pass
