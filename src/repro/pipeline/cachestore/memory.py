"""The in-process backend — for tests, library embedding, and the fast
tier of a tiered composition.

Entries live in one dict; atomic publication is a single dict
assignment under the GIL, so the conformance contract holds trivially.
A :class:`MemoryBackend` is process-local by construction: ``--jobs``
workers each resolve their own (documented in ``docs/CACHING.md``), so
its value in a multi-process run comes from fronting a shared persistent
tier (``memory+local``), not from cross-process sharing.

The ``memory`` *spec tier* (``--cache-backend memory`` or
``memory+local``) resolves to one process-wide shared instance
(:func:`shared_memory_backend`), so every session in a process —
repeat CLI invocations in tests, a long-lived ``nchecker serve`` worker
tomorrow — sees the same entries.  Direct construction gives a private
store.
"""

from __future__ import annotations

import time
from typing import Optional

from .backend import (
    GC_GRACE_SECONDS,
    CacheStats,
    EntryInfo,
    EntryKey,
    GetResult,
    stats_from_entries,
)


class MemoryBackend:
    """Content-addressed blob store over a process-local dict."""

    def __init__(self, name: str = "memory") -> None:
        self.name = name
        #: key -> (blob, write time) — write time drives gc LRU order
        #: and the eviction grace window, mirroring file mtimes.
        self._entries: dict[EntryKey, tuple[bytes, float]] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryBackend(entries={len(self._entries)})"

    def get(self, key: EntryKey) -> Optional[GetResult]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        return GetResult(entry[0], self.name)

    def put(self, key: EntryKey, blob: bytes) -> tuple[str, ...]:
        self._entries[key] = (bytes(blob), time.time())
        return (self.name,)

    def delete(self, key: EntryKey) -> int:
        return 1 if self._entries.pop(key, None) is not None else 0

    def list_entries(self) -> list[EntryInfo]:
        return [
            EntryInfo(key, len(blob), mtime, self.name)
            for key, (blob, mtime) in sorted(
                self._entries.items(),
                key=lambda item: (item[0].app_fp, item[0].kind, item[0].digest),
            )
        ]

    def stats(self) -> CacheStats:
        return stats_from_entries(self.name, self.list_entries())

    def gc(
        self, max_bytes: int, grace_seconds: float = GC_GRACE_SECONDS
    ) -> tuple[int, int]:
        total = sum(len(blob) for blob, _t in self._entries.values())
        fresh_after = time.time() - grace_seconds
        removed = 0
        freed = 0
        for key, (blob, mtime) in sorted(
            self._entries.items(), key=lambda item: item[1][1]
        ):  # oldest first
            if total <= max_bytes:
                break
            if mtime > fresh_after:
                continue  # grace window: never evict an in-flight entry
            del self._entries[key]
            total -= len(blob)
            freed += len(blob)
            removed += 1
        return removed, freed

    def clear(self) -> int:
        removed = len(self._entries)
        self._entries.clear()
        return removed


#: The instance ``--cache-backend`` specs resolve the ``memory`` tier to
#: — one per process, shared across sessions (see module docstring).
_SHARED = MemoryBackend()


def shared_memory_backend() -> MemoryBackend:
    """The process-wide shared :class:`MemoryBackend` behind the
    ``memory`` spec tier."""
    return _SHARED
