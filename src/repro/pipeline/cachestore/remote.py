"""The remote backend — a cache tier served over HTTP.

:class:`RemoteBackend` is the client half of the fleet-wide cache: it
speaks the tiny blob API the ``nchecker serve`` daemon exposes under
``/v1/cache`` (see ``docs/SERVICE.md``), so every host pointed at one
daemon shares a single artifact store.  Selected with the
``remote:URL`` spec tier, usually behind faster tiers::

    --cache-backend memory+remote:http://cache.internal:8321

Semantics match every other tier (the conformance battery in
``tests/pipeline/test_cachestore.py`` runs against a live daemon):

* **Never raise.**  Network trouble — connection refused, timeouts, a
  5xx from the server, a half-closed socket — degrades to a miss, a
  skipped write, or an empty listing.  A scan must finish with the
  cache server down exactly as it would with no cache at all.
* **Corruption is a miss.**  Blob bytes travel verbatim; the codec's
  header checksum decides validity on the client, and a reported
  corruption ``delete`` drops the server-side copy.
* **Atomicity and gc grace** are the serving backend's problem: the
  daemon stores blobs in a :class:`~repro.pipeline.cachestore.local.
  LocalDirBackend`, which already provides both.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Optional

from ...obs import get_logger
from .backend import (
    GC_GRACE_SECONDS,
    CacheStats,
    EntryInfo,
    EntryKey,
    GetResult,
    stats_from_entries,
)

log = get_logger("cachestore.remote")

#: Per-request network timeout.  Short on purpose: a slow cache server
#: must degrade to a miss quickly, not stall the scan behind it.
DEFAULT_TIMEOUT = 5.0


class RemoteBackend:
    """Content-addressed blob store over the daemon's ``/v1/cache`` API."""

    def __init__(
        self,
        url: str,
        name: str = "remote",
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        base = url.rstrip("/")
        if not base.endswith("/v1/cache"):
            base += "/v1/cache"
        self.base_url = base
        self.name = name
        self.timeout = timeout

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteBackend({self.base_url!r})"

    # -- transport -----------------------------------------------------------

    def _request(
        self,
        url: str,
        method: str = "GET",
        data: Optional[bytes] = None,
        content_type: str = "application/octet-stream",
    ) -> Optional[tuple[int, bytes]]:
        """One HTTP exchange, or ``None`` when the server is unreachable.

        HTTP error statuses come back as ``(status, body)`` like any
        other response — a 404 is a miss, not an exception — so only
        transport-level failures hit the ``None`` path."""
        request = urllib.request.Request(url, data=data, method=method)
        if data is not None:
            request.add_header("Content-Type", content_type)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            body = exc.read() if exc.fp is not None else b""
            exc.close()
            return exc.code, body
        except Exception as exc:
            log.debug("remote cache %s %s failed: %s", method, url, exc)
            return None

    def _json(
        self, url: str, method: str = "GET", payload: Optional[dict] = None
    ) -> Optional[dict]:
        data = None
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
        reply = self._request(url, method, data, content_type="application/json")
        if reply is None or reply[0] != 200:
            return None
        try:
            decoded = json.loads(reply[1])
        except ValueError as exc:
            log.debug("remote cache sent unparsable JSON from %s: %s", url, exc)
            return None
        return decoded if isinstance(decoded, dict) else None

    def entry_url(self, key: EntryKey) -> str:
        return f"{self.base_url}/{key.app_fp}/{key.kind}/{key.digest}"

    # -- blob store ----------------------------------------------------------

    def get(self, key: EntryKey) -> Optional[GetResult]:
        reply = self._request(self.entry_url(key))
        if reply is None or reply[0] != 200:
            return None
        return GetResult(reply[1], self.name)

    def put(self, key: EntryKey, blob: bytes) -> tuple[str, ...]:
        reply = self._request(self.entry_url(key), "PUT", blob)
        if reply is None or reply[0] not in (200, 201):
            return ()
        return (self.name,)

    def delete(self, key: EntryKey) -> int:
        reply = self._request(self.entry_url(key), "DELETE")
        if reply is None or reply[0] != 200:
            return 0
        try:
            return int(json.loads(reply[1]).get("removed", 0))
        except (ValueError, AttributeError):
            return 0

    # -- enumeration / management --------------------------------------------

    def list_entries(self) -> list[EntryInfo]:
        reply = self._json(f"{self.base_url}/entries")
        if reply is None:
            return []
        entries = []
        for row in reply.get("entries", ()):
            try:
                entries.append(EntryInfo(
                    EntryKey(row["app_fp"], row["kind"], row["digest"]),
                    int(row["size"]), float(row["mtime"]), self.name,
                ))
            except (KeyError, TypeError, ValueError):
                continue
        return entries

    def stats(self) -> CacheStats:
        return stats_from_entries(
            f"{self.name} {self.base_url}", self.list_entries()
        )

    def gc(
        self, max_bytes: int, grace_seconds: float = GC_GRACE_SECONDS
    ) -> tuple[int, int]:
        reply = self._json(
            f"{self.base_url}/gc", "POST",
            {"max_bytes": max_bytes, "grace_seconds": grace_seconds},
        )
        if reply is None:
            return 0, 0
        return int(reply.get("removed", 0)), int(reply.get("freed", 0))

    def clear(self) -> int:
        reply = self._json(f"{self.base_url}/clear", "POST", {})
        if reply is None:
            return 0
        return int(reply.get("removed", 0))
