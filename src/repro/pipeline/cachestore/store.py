"""The session-facing cache: artifacts in, artifacts out, any backend.

:class:`CacheStore` is what a :class:`~repro.pipeline.scan.ScanSession`
holds: it owns the addressing (:mod:`.fingerprints`), the serialization
(:mod:`.codec`), and the telemetry, and delegates storage to one
:class:`~repro.pipeline.cachestore.backend.CacheBackend`.  Nothing here
knows whether the bytes live in a directory, a dict, or a tier chain —
that is the whole point of the seam.

Telemetry is namespaced per tier: ``cache.<tier>.<kind>.hits`` /
``.misses`` / ``.promotions`` counters and
``cache.<tier>.<kind>.load_ms`` / ``.store_ms`` timers land in the
store's registry (and the active global one), riding the same
snapshot/merge protocol as every other counter — ``--metrics`` of a
``--jobs N`` run sums them across workers.  A hit is attributed to the
tier that served it; a write-back counts one miss per tier written (the
cache could not supply the artifact, so the scan built it — that
semantic is per tier, which is what makes ``hits/(hits+misses)`` a true
per-tier hit rate).

Backend specs
-------------
``NCheckerOptions.cache_backend`` / ``--cache-backend SPEC`` select the
composition with a tiny grammar::

    SPEC := TIER ('+' TIER)*        # fastest tier first
    TIER := 'memory' | 'local' [':' DIR] | 'remote' ':' URL

``local`` without a directory uses the resolved cache root
(``options.cache_dir``); ``remote`` needs an ``http://`` or
``https://`` URL naming a ``nchecker serve`` daemon (its ``/v1/cache``
blueprint — ``docs/SERVICE.md``).  Two or more tiers compose into a
:class:`~repro.pipeline.cachestore.tiered.TieredBackend` with
read-through promotion and write-through.  Examples: ``local``,
``memory``, ``memory+local``, ``memory+local:/tmp/cache``,
``memory+remote:http://cache.internal:8321``.
"""

from __future__ import annotations

import pickle
import time
from typing import TYPE_CHECKING, Optional

from ...callgraph.entrypoints import method_key
from ...obs import get_logger
from ..artifacts import ArtifactStore
from ..passes import _APP_ARTIFACT_ORDER
from .backend import CacheBackend, EntryKey
from .codec import CacheMiss, decode_artifact, encode_artifact
from .fingerprints import entry_digest
from .local import LocalDirBackend
from .memory import shared_memory_backend
from .remote import RemoteBackend
from .tiered import TieredBackend

if TYPE_CHECKING:
    from ...core.checker import NCheckerOptions

log = get_logger("cachestore")


def backend_from_spec(
    spec: str, local_root: Optional[str] = None
) -> CacheBackend:
    """Parse a ``--cache-backend`` spec (grammar in the module docstring)
    into a live backend; raises :class:`ValueError` on a bad spec."""
    tiers: list[CacheBackend] = []
    for part in spec.split("+"):
        name, _, arg = part.strip().partition(":")
        if name == "memory":
            if arg:
                raise ValueError(
                    f"bad cache backend tier {part!r}: memory takes no argument"
                )
            tiers.append(shared_memory_backend())
        elif name == "local":
            root = arg or local_root
            if not root:
                raise ValueError(
                    "local cache tier needs a directory: use local:DIR "
                    "or set a cache root (--cache-dir / cache_dir)"
                )
            tiers.append(LocalDirBackend(root))
        elif name == "remote":
            if not arg.startswith(("http://", "https://")):
                raise ValueError(
                    f"remote cache tier needs a server URL: use "
                    f"remote:http://HOST:PORT (got {part.strip()!r})"
                )
            tiers.append(RemoteBackend(arg))
        else:
            raise ValueError(
                f"unknown cache backend tier {name!r} "
                f"(expected 'memory', 'local[:DIR]', or 'remote:URL')"
            )
    if len(tiers) == 1:
        return tiers[0]
    return TieredBackend(tiers)


class CacheStore:
    """Persistent artifact cache over one pluggable backend."""

    def __init__(self, backend: CacheBackend) -> None:
        self.backend = backend

    @classmethod
    def from_options(cls, options: "NCheckerOptions") -> Optional["CacheStore"]:
        """The cache the options ask for, or ``None`` when disabled.

        ``cache_backend`` may be a spec string (see module docstring) or
        a live :class:`CacheBackend` (library embedding); it wins over
        ``cache_dir``, which remains the one-directory shorthand for a
        plain local backend."""
        backend = getattr(options, "cache_backend", None)
        cache_dir = getattr(options, "cache_dir", None)
        if backend is None:
            return cls(LocalDirBackend(cache_dir)) if cache_dir else None
        if isinstance(backend, str):
            backend = backend_from_spec(backend, local_root=cache_dir)
        return cls(backend)

    def entry_key(
        self, app_fp: str, kind: str, registry, options: "NCheckerOptions"
    ) -> EntryKey:
        return EntryKey(
            app_fp, kind, entry_digest(kind, app_fp, registry, options)
        )

    # -- session API ---------------------------------------------------------

    def load_into(
        self, store: ArtifactStore, app_fp: str, options: "NCheckerOptions"
    ) -> set[str]:
        """Adopt every valid cached artifact for ``store``'s app, in
        dependency order; returns the kinds loaded.

        Kinds already present in the store are left alone.  Invalid
        entries (truncated, corrupt, wrong version, dangling references)
        are deleted from every tier and treated as misses — the caller
        rebuilds on demand and :meth:`store_from` overwrites them.
        """
        loaded: set[str] = set()
        methods: Optional[dict] = None
        for key in _APP_ARTIFACT_ORDER:
            if store.peek(key) is not None:
                continue
            entry = self.entry_key(app_fp, key.name, store.registry, options)
            result = self.backend.get(entry)
            if result is None:
                continue
            if methods is None:
                methods = {method_key(m): m for m in store.apk.methods()}
            start = time.perf_counter()
            try:
                value = decode_artifact(result.blob, store, methods)
            except CacheMiss as exc:
                log.info(
                    "cache entry %s/%s unusable (%s): rebuilding",
                    app_fp[:12], key.name, exc,
                )
                store._count(f"cache.{result.tier}.{key.name}.misses")
                store._count(f"cache.{result.tier}.errors")
                # Drop every copy: a corrupt blob may already have been
                # promoted into faster tiers before the codec saw it.
                self.backend.delete(entry)
                continue
            store.adopt(key, value)
            store._count(f"cache.{result.tier}.{key.name}.hits")
            for tier in result.promoted:
                store._count(f"cache.{tier}.{key.name}.promotions")
            store._observe(
                f"cache.{result.tier}.{key.name}.load_ms",
                (time.perf_counter() - start) * 1000.0,
            )
            if key.name == "callgraph":
                # Parity with _build_callgraph's gauges, so --stats reads
                # the same whether the graph was built or loaded.
                store._global.set_gauge("callgraph.methods", len(value.methods))
                store._global.set_gauge(
                    "callgraph.edges",
                    sum(len(edges) for edges in value.out_edges.values()),
                )
            loaded.add(key.name)
        return loaded

    def store_from(
        self,
        store: ArtifactStore,
        app_fp: str,
        options: "NCheckerOptions",
        exclude: set[str] = frozenset(),
    ) -> set[str]:
        """Persist the store's built app-scoped artifacts (everything
        present and not in ``exclude`` — the kinds already synced with
        this fingerprint); returns the kinds written.

        Every tier written counts one ``cache.<tier>.<kind>.misses`` —
        the tier could not supply the artifact, so the scan built it.
        """
        present = {
            key.name: store.peek(key)
            for key in _APP_ARTIFACT_ORDER
            if store.peek(key) is not None
        }
        artifact_ids = {id(value): name for name, value in present.items()}
        written: set[str] = set()
        for key in _APP_ARTIFACT_ORDER:
            value = present.get(key.name)
            if value is None or key.name in exclude:
                continue
            entry = self.entry_key(app_fp, key.name, store.registry, options)
            ids = dict(artifact_ids)
            del ids[id(value)]  # the dumped artifact itself is no reference
            start = time.perf_counter()
            try:
                blob = encode_artifact(store, value, ids)
            except pickle.PicklingError as exc:
                log.warning("cannot encode cache entry %s: %s", key.name, exc)
                continue
            tiers = self.backend.put(entry, blob)
            if not tiers:
                continue  # every tier failed; retried next run
            for tier in tiers:
                store._count(f"cache.{tier}.{key.name}.misses")
            store._observe(
                f"cache.{self.backend.name}.{key.name}.store_ms",
                (time.perf_counter() - start) * 1000.0,
            )
            written.add(key.name)
        return written
