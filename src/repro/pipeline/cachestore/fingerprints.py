"""Content addressing for the persistent artifact cache.

Every cache entry is addressed by a fingerprint folding together

* the **app content**: a hash per method of its printed IR (the same
  text ``dumps_apk`` round-trips) plus the manifest's components and
  permissions — any statement, method, or component change misses;
* the **library-model version** (:data:`repro.libmodels.
  LIBMODELS_VERSION`) and the registered library keys — re-annotating a
  library invalidates everything derived under the old annotations;
* the **cache format version** — unpicklable layout changes miss
  instead of crashing;
* the declared :class:`NCheckerOptions <repro.core.checker.
  NCheckerOptions>` subset read by the artifact's builder
  (:data:`OPTIONS_READ_BY`).  Today every builder is
  options-independent (options select *which* artifacts build, never
  their content), so artifacts are shared across flag combinations; an
  option-sensitive builder added later declares its fields here and
  splits its entries.

These functions are pure over their inputs: no backend ever influences
an address, which is what lets every backend (local directory,
in-memory, tiered, a future remote) serve the very same entries.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from ...callgraph.entrypoints import method_key
from ...ir.method import IRMethod
from ...ir.printer import print_method
from ...libmodels import LIBMODELS_VERSION

if TYPE_CHECKING:
    from ...app.apk import APK
    from ...core.checker import NCheckerOptions

#: Bump on any change to the entry layout or the pickled object shapes
#: that older readers/writers cannot handle; old entries then miss (and
#: are garbage-collected by ``nchecker cache gc``) instead of crashing.
#: Folded into both the entry header (:mod:`.codec`) and the local
#: backend's ``v<N>`` path segment.
CACHE_FORMAT_VERSION = 2  # v2: __slots__ IR values/statements change pickle shapes

#: NCheckerOptions fields folded into each artifact kind's cache key —
#: the options subset the artifact's builder reads.  All empty today:
#: options decide which artifacts a scan plan *builds*, never what any
#: artifact *contains*, so entries are shared across flag combinations.
#: A future option-sensitive builder declares its fields here.
OPTIONS_READ_BY: dict[str, tuple[str, ...]] = {
    "callgraph": (),
    "summaries": (),
    "requests": (),
    "retry-loops": (),
    "icc-model": (),
    "threadcontext": (),
}


def method_content_hash(method: IRMethod) -> bytes:
    """Digest of one method's printed IR — the per-method unit of the app
    fingerprint (a patched method changes exactly its own hash)."""
    return hashlib.blake2b(
        print_method(method).encode(), digest_size=16
    ).digest()


def app_content_fingerprint(apk: "APK") -> str:
    """Content address of one app: package, manifest surface, and every
    method's IR hash, order-independent over class file layout."""
    h = hashlib.blake2b(digest_size=20)
    h.update(apk.package.encode())
    for permission in apk.manifest.permissions:
        h.update(b"\0perm\0" + permission.encode())
    for kind, name in apk.manifest.components():
        h.update(b"\0comp\0" + kind.value.encode() + b"\0" + name.encode())
    entries = sorted(
        (repr(method_key(m)).encode(), method_content_hash(m))
        for m in apk.methods()
    )
    for key_repr, digest in entries:
        h.update(b"\0m\0" + key_repr + digest)
    return h.hexdigest()


def registry_fingerprint(registry) -> str:
    """Annotation-model component of the cache key: the model version plus
    the set of registered libraries (default vs extended registry)."""
    keys = ",".join(sorted(registry.libraries))
    return f"v{LIBMODELS_VERSION}:{keys}"


def options_fingerprint(kind: str, options: "NCheckerOptions") -> str:
    """The declared options subset for ``kind``, rendered stably."""
    fields = OPTIONS_READ_BY.get(kind, ())
    return ";".join(f"{f}={getattr(options, f)!r}" for f in fields)


def scan_options_fingerprint(options: "NCheckerOptions") -> str:
    """One digest over every analysis-shaping option field — the whole-run
    counterpart of the per-kind :func:`options_fingerprint`.

    The run ledger (:mod:`repro.obs.events`) stamps this on every record
    so ``nchecker bench compare`` never silently diffs runs produced
    under different flags.  Storage-only fields (``cache_dir``,
    ``cache_backend``) are excluded: they can never change scan output,
    and a live backend instance has no stable repr anyway.
    ``intra_jobs`` is likewise excluded — it only picks how many threads
    evaluate one wavefront's independent SCCs, with results, counters,
    and profile shapes identical for any value.  (``eager_summaries``
    *is* folded in: it changes work-volume counters.)  Unordered
    collections are sorted before hashing so the digest is stable across
    interpreter hash seeds.
    """
    import dataclasses

    h = hashlib.blake2b(digest_size=12)
    h.update(f"fmt{CACHE_FORMAT_VERSION};lib{LIBMODELS_VERSION}".encode())
    for field in dataclasses.fields(options):
        if field.name in ("cache_dir", "cache_backend", "intra_jobs"):
            continue
        value = getattr(options, field.name)
        if isinstance(value, (set, frozenset)):
            value = sorted(value)
        h.update(f"\0{field.name}={value!r}".encode())
    return h.hexdigest()


def entry_digest(
    kind: str, app_fp: str, registry, options: "NCheckerOptions"
) -> str:
    """The per-entry digest of one (app, artifact-kind, options) triple —
    the backend-independent half of the entry address (the app
    fingerprint plus this digest name an entry on every backend)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(app_fp.encode())
    h.update(b"\0" + registry_fingerprint(registry).encode())
    h.update(b"\0" + options_fingerprint(kind, options).encode())
    return h.hexdigest()
