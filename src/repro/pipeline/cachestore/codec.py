"""Entry serialization: persistent-id pickling plus the integrity header.

Artifacts reference live analysis objects — the APK, its methods, the
library registry, the store itself, and each other (the summary engine
holds the call graph).  A :class:`pickle.Pickler` subclass swaps each of
these for a stable *persistent id* (``("method", key)``,
``("artifact", "callgraph")``, ...) at dump time; loading resolves the
ids against the live session, so a cached summary engine comes back
wired to the freshly loaded APK's method objects and to whatever call
graph the store holds.  Everything else in an artifact is plain frozen
dataclasses and containers, pickled by value.

Every encoded blob carries a ``NCKC``-magic header with the cache
format version and a blake2b checksum of the payload.  Decoding is
where **corruption-is-a-miss** is enforced for every backend: a
truncated, bit-flipped, or version-mismatched blob raises
:class:`CacheMiss` — always handled as a rebuild, never a crash —
regardless of which tier served the bytes.
"""

from __future__ import annotations

import hashlib
import io
import pickle
import struct

from ...callgraph.entrypoints import method_key
from ...dataflow.summaries import CONFIG_TOP
from ...ir.method import IRMethod
from ...libmodels.annotations import LibraryModel
from ..artifacts import ARTIFACTS, ArtifactStore
from . import fingerprints

#: Entry header: magic, format version, blake2b-128 digest of the payload.
MAGIC = b"NCKC"
HEADER = struct.Struct(">4sI16s")


class CacheMiss(Exception):
    """An entry could not be used (absent dependency, unknown reference,
    corruption, version mismatch) — always handled as a rebuild."""


class _ArtifactPickler(pickle.Pickler):
    """Pickles one artifact, swapping live session objects for stable ids.

    ``artifact_ids`` maps ``id(value) -> kind`` for the *other* app-scoped
    artifacts in the store, so cross-artifact references (the summary
    engine's call graph) serialize as one tag instead of a duplicate
    object graph.
    """

    def __init__(self, buf, store: ArtifactStore, artifact_ids: dict[int, str]):
        super().__init__(buf, protocol=pickle.HIGHEST_PROTOCOL)
        self._store = store
        self._artifact_ids = artifact_ids

    def persistent_id(self, obj):
        name = self._artifact_ids.get(id(obj))
        if name is not None:
            return ("artifact", name)
        if obj is self._store:
            return ("store",)
        if obj is self._store.apk:
            return ("apk",)
        if obj is self._store.registry:
            return ("registry",)
        if obj is CONFIG_TOP:
            return ("config-top",)
        if isinstance(obj, IRMethod):
            return ("method", method_key(obj))
        if isinstance(obj, LibraryModel):
            return ("libmodel", obj.key)
        return None


class _ArtifactUnpickler(pickle.Unpickler):
    """Resolves persistent ids against the live session.

    An ``("artifact", kind)`` reference resolves through
    :meth:`ArtifactStore.get` — if the referenced dependency was not
    itself loadable it is built (an honest build, counted as such) so a
    valid dependent entry is never wasted.  Unknown method or library
    references raise :class:`CacheMiss` (they cannot occur when the
    fingerprint matched, but corruption must degrade to a rebuild).
    """

    def __init__(self, buf, store: ArtifactStore, methods: dict):
        super().__init__(buf)
        self._store = store
        self._methods = methods

    def persistent_load(self, pid):
        tag = pid[0]
        if tag == "artifact":
            return self._store.get(ARTIFACTS[pid[1]])
        if tag == "store":
            return self._store
        if tag == "apk":
            return self._store.apk
        if tag == "registry":
            return self._store.registry
        if tag == "config-top":
            return CONFIG_TOP
        if tag == "method":
            found = self._methods.get(pid[1])
            if found is None:
                raise CacheMiss(f"unknown method reference {pid[1]!r}")
            return found
        if tag == "libmodel":
            found = self._store.registry.libraries.get(pid[1])
            if found is None:
                raise CacheMiss(f"unknown library reference {pid[1]!r}")
            return found
        raise CacheMiss(f"unknown persistent id {pid!r}")


def encode_artifact(
    store: ArtifactStore, value, artifact_ids: dict[int, str]
) -> bytes:
    """One artifact → a self-verifying blob (header + pickled payload).

    May raise :class:`pickle.PicklingError` for an unpicklable artifact;
    the caller skips the write (best-effort policy)."""
    buf = io.BytesIO()
    _ArtifactPickler(buf, store, artifact_ids).dump(value)
    payload = buf.getvalue()
    header = HEADER.pack(
        MAGIC,
        fingerprints.CACHE_FORMAT_VERSION,
        hashlib.blake2b(payload, digest_size=16).digest(),
    )
    return header + payload


def decode_artifact(data: bytes, store: ArtifactStore, methods: dict):
    """A blob → the live artifact, or :class:`CacheMiss` for anything a
    backend could have mangled (truncation, corruption, version skew)."""
    if len(data) < HEADER.size:
        raise CacheMiss("truncated header")
    magic, version, digest = HEADER.unpack_from(data)
    if magic != MAGIC:
        raise CacheMiss("bad magic")
    if version != fingerprints.CACHE_FORMAT_VERSION:
        raise CacheMiss(
            f"format version {version} != {fingerprints.CACHE_FORMAT_VERSION}"
        )
    payload = data[HEADER.size:]
    if hashlib.blake2b(payload, digest_size=16).digest() != digest:
        raise CacheMiss("payload checksum mismatch")
    try:
        return _ArtifactUnpickler(io.BytesIO(payload), store, methods).load()
    except CacheMiss:
        raise
    except Exception as exc:  # any unpickling failure is just a miss
        raise CacheMiss(f"unpickle failed: {exc!r}")
