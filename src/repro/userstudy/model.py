"""Controlled user-study model (paper §5.4, Table 10, Fig 10).

The paper recruited 20 volunteers (≈6 months of Android experience) and
measured how long they took to fix 7 real NPDs given NChecker's warning
reports; the headline result is a 1.7 ± 0.14 minute average.  We model
each task's difficulty as a per-kind base time and each participant as a
multiplicative skill factor (log-normal), then reproduce Fig 10's
per-task means with 95 % confidence intervals.

The "GPSLogger (no retried exception)" task is special-cased exactly as
the paper reports: only 1 of 20 volunteers could reason about exception
classes, so it is excluded from the timing figure.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..core.defects import DefectKind


@dataclass(frozen=True)
class StudyTask:
    """One row of Table 10."""

    name: str
    app: str
    kind: DefectKind
    correct_fix: str
    #: Mean fix time (minutes) for a median participant (calibrated to
    #: Fig 10's bar heights).
    base_minutes: float
    #: Fraction of participants able to produce the correct fix.
    solve_rate: float = 1.0
    #: Included in the Fig 10 timing aggregate?
    in_timing_figure: bool = True
    #: Control-arm parameters: without NChecker's report the volunteer
    #: must first localise the defect and work out which API is missing —
    #: the §5.4 observation ("majority of the volunteers immediately
    #: realized the problem after reading the NChecker report") inverted.
    no_report_multiplier: float = 6.0
    no_report_solve_rate: float = 0.45


#: Table 10 — the 7 study NPDs (base times calibrated to Fig 10).
STUDY_TASKS: tuple[StudyTask, ...] = (
    StudyTask(
        "AnkiDroid (no conn. check)",
        "AnkiDroid",
        DefectKind.MISSED_CONNECTIVITY_CHECK,
        "Add connectivity check before the request. Show error message if "
        "not connected.",
        base_minutes=2.1,
    ),
    StudyTask(
        "GPSLogger (no timeout)",
        "GPSLogger",
        DefectKind.MISSED_TIMEOUT,
        "Add timeout API to set timeout value",
        base_minutes=1.4,
    ),
    StudyTask(
        "GPSLogger (no retry times)",
        "GPSLogger",
        DefectKind.MISSED_RETRY,
        "Add retry API to set retry times",
        base_minutes=1.5,
    ),
    StudyTask(
        "GPSLogger (no retried exception)",
        "GPSLogger",
        DefectKind.MISSED_RETRY,
        "Add another retry API to set exception class that should be retried",
        base_minutes=6.0,
        solve_rate=1 / 20,
        in_timing_figure=False,  # excluded in the paper: most volunteers
        # do not know the network exception types
    ),
    StudyTask(
        "DevFest (no error mesg)",
        "DevFest",
        DefectKind.MISSED_NOTIFICATION,
        "Add error message in callback according to the error status.",
        base_minutes=1.9,
    ),
    StudyTask(
        "DevFest (invalid resp.)",
        "DevFest",
        DefectKind.MISSED_RESPONSE_CHECK,
        "Add null check and status check on the response before reading its body",
        base_minutes=2.2,
    ),
    StudyTask(
        "Maoshishu (over retry)",
        "Maoshishu",
        DefectKind.OVER_RETRY_POST,
        "Add retry API and set retry time to be 0",
        base_minutes=1.1,
    ),
)

#: §5.4: 20 undergraduate volunteers, ~6 months Android experience.
N_PARTICIPANTS = 20


@dataclass
class TaskResult:
    """Aggregated outcome for one task across participants."""

    task: StudyTask
    times_minutes: list[float]
    solved: int

    @property
    def mean(self) -> float:
        return sum(self.times_minutes) / len(self.times_minutes)

    @property
    def ci95(self) -> float:
        n = len(self.times_minutes)
        mean = self.mean
        variance = sum((t - mean) ** 2 for t in self.times_minutes) / max(n - 1, 1)
        return 1.96 * math.sqrt(variance / n)


@dataclass
class StudyResult:
    tasks: list[TaskResult]

    def timing_tasks(self) -> list[TaskResult]:
        return [t for t in self.tasks if t.task.in_timing_figure]

    @property
    def overall_mean(self) -> float:
        times = [t for task in self.timing_tasks() for t in task.times_minutes]
        return sum(times) / len(times)

    @property
    def overall_ci95(self) -> float:
        times = [t for task in self.timing_tasks() for t in task.times_minutes]
        n = len(times)
        mean = self.overall_mean
        variance = sum((t - mean) ** 2 for t in times) / (n - 1)
        return 1.96 * math.sqrt(variance / n)


def run_study(
    seed: int = 2016,
    n_participants: int = N_PARTICIPANTS,
    with_reports: bool = True,
) -> StudyResult:
    """Simulate the §5.4 study.

    Each participant p has a skill factor ~ LogNormal(0, 0.25); each task
    sample is ``base_minutes × skill × LogNormal(0, 0.18)`` noise, which
    yields per-task CIs of the Fig 10 magnitude.

    ``with_reports=False`` is the control arm the paper did not run: the
    same tasks without NChecker's localisation and fix suggestions.  Fix
    times multiply by each task's ``no_report_multiplier`` (the volunteer
    has to find the defect first) and solve rates drop.
    """
    rng = random.Random(seed if with_reports else f"{seed}:control")
    skills = [rng.lognormvariate(0.0, 0.25) for _ in range(n_participants)]
    results: list[TaskResult] = []
    for task in STUDY_TASKS:
        multiplier = 1.0 if with_reports else task.no_report_multiplier
        solve_rate = task.solve_rate if with_reports else min(
            task.solve_rate, task.no_report_solve_rate
        )
        times: list[float] = []
        solved = 0
        for skill in skills:
            if rng.random() < solve_rate:
                solved += 1
            noise = rng.lognormvariate(0.0, 0.18)
            times.append(task.base_minutes * multiplier * skill * noise)
        results.append(TaskResult(task, times, solved))
    return StudyResult(results)
