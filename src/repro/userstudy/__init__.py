"""User-study model (paper §5.4): Table 10 tasks and Fig 10 fix times."""

from .model import (
    N_PARTICIPANTS,
    STUDY_TASKS,
    StudyResult,
    StudyTask,
    TaskResult,
    run_study,
)

__all__ = [
    "N_PARTICIPANTS",
    "STUDY_TASKS",
    "StudyResult",
    "StudyTask",
    "TaskResult",
    "run_study",
]
