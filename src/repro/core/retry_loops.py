"""Customized retry-logic identification (paper §4.5, Fig 6).

Apps that do not use library retry APIs often hand-roll retry loops.  The
challenge is telling retry loops apart from ordinary loops that send a
*sequence* of requests.  Following the paper, a loop containing a target
API is a retry loop when either:

(a) an **unconditional exit** (return/break edge) is unreachable from the
    statements of the catch block — control leaves the loop only when the
    request succeeds (Fig 6(b)); or
(b) a **conditional exit**'s condition is data/control-dependent on
    statements in the catch block — the catch block decides whether to go
    around again (Fig 6(c)), possibly through a callee's catch block
    whose boolean result feeds the condition (Fig 6(d)).

The module additionally classifies a retry loop as *aggressive* when it
retries without (growing) backoff — the Telegram bug of Fig 2, which
reconnects every 500 ms and pins the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cfg.dominators import DominatorTree
from ..cfg.graph import CFG
from ..cfg.loops import Loop, natural_loops
from ..dataflow.constants import TOP, ConstantPropagation
from ..dataflow.slicing import Slicer
from ..ir.method import IRMethod
from ..ir.statements import AssignStmt, IfStmt
from .requests import AnalysisContext, NetworkRequest

#: Method names whose invocation inside a loop constitutes an
#: inter-attempt delay.
_SLEEP_METHODS = frozenset({"sleep", "wait", "postDelayed", "awaitTermination"})
#: Threshold below which a *fixed* retry interval is considered aggressive
#: (Fig 2's Telegram loop used 500 ms).
_AGGRESSIVE_FIXED_DELAY_MS = 2000


@dataclass
class RetryLoop:
    """An identified customized retry loop."""

    method: IRMethod
    loop: Loop
    #: Statement indices of the request call sites the loop retries
    #: (direct target-API sites, or call sites of request-bearing callees).
    request_sites: tuple[int, ...]
    #: "unconditional-exit" (Fig 6(b)) or "catch-dependent" (Fig 6(c)/(d)).
    kind: str
    #: True when the loop delays between attempts with a growing (or at
    #: least large) interval.
    has_backoff: bool
    #: Keys of request-bearing callee methods this loop retries (the
    #: Fig 6(d) indirection), in addition to direct ``request_sites``.
    retried_callees: tuple[tuple[str, str, int], ...] = ()

    @property
    def aggressive(self) -> bool:
        return not self.has_backoff


def identify_retry_loops(
    ctx: AnalysisContext, requests: list[NetworkRequest]
) -> list[RetryLoop]:
    """All customized retry loops in the app.

    Besides loops directly containing a target API, loops in *callers* of
    request-bearing methods are inspected (paper §4.5 step 1: "if the loop
    is implemented in some caller of the method including target API, we
    recursively parse the caller").  One caller level is traversed, which
    covers the Fig 6(d) shape.
    """
    # Methods containing requests, and the catch-y-ness of each.
    request_sites_by_method: dict[int, list[int]] = {}
    methods_by_id: dict[int, IRMethod] = {}
    for request in requests:
        methods_by_id[id(request.method)] = request.method
        request_sites_by_method.setdefault(id(request.method), []).append(
            request.stmt_index
        )
    request_method_keys = {
        (m.class_name, m.name, m.sig.arity) for m in methods_by_id.values()
    }

    #: caller method -> call-site indices that invoke request-bearing callees
    indirect_sites: dict[int, list[tuple[int, IRMethod]]] = {}
    for key, method in ctx.callgraph.methods.items():
        for edge in ctx.callgraph.callees(key):
            if edge.callee in request_method_keys:
                callee_method = ctx.callgraph.methods[edge.callee]
                indirect_sites.setdefault(id(method), []).append(
                    (edge.stmt_index, callee_method)
                )
                methods_by_id.setdefault(id(method), method)

    found: list[RetryLoop] = []
    for method_id, method in methods_by_id.items():
        direct = request_sites_by_method.get(method_id, [])
        indirect = indirect_sites.get(method_id, [])
        if not direct and not indirect:
            continue
        found.extend(_loops_in_method(ctx, method, direct, indirect))
    return found


def _loops_in_method(
    ctx: AnalysisContext,
    method: IRMethod,
    direct_sites: list[int],
    indirect_sites: list[tuple[int, IRMethod]],
) -> list[RetryLoop]:
    cfg = ctx.cache.cfg(method)
    loops = natural_loops(cfg)
    if not loops:
        return []
    slicer = Slicer(cfg, ctx.cache.defuse(method))
    results: list[RetryLoop] = []
    for loop in loops:
        sites_in_loop = [s for s in direct_sites if s in loop.body]
        callees_in_loop = [
            (s, callee) for s, callee in indirect_sites if s in loop.body
        ]
        if not sites_in_loop and not callees_in_loop:
            continue
        handler_stmts = _handler_statements(cfg, method, loop)
        catchy_callee_results = _catchy_callee_result_sites(
            method, [s for s, _ in callees_in_loop],
            [callee for _, callee in callees_in_loop],
        )
        kind = _classify(cfg, slicer, loop, handler_stmts, catchy_callee_results)
        if kind is None:
            continue
        all_sites = tuple(sorted(sites_in_loop + [s for s, _ in callees_in_loop]))
        results.append(
            RetryLoop(
                method,
                loop,
                all_sites,
                kind,
                has_backoff=_has_backoff(ctx, cfg, method, loop),
                retried_callees=tuple(
                    (c.class_name, c.name, c.sig.arity) for _, c in callees_in_loop
                ),
            )
        )
    return results


def _handler_statements(cfg: CFG, method: IRMethod, loop: Loop) -> set[int]:
    """Statements of catch blocks whose handler lies inside the loop.

    The catch-block extent is the set of nodes *dominated* by the handler
    entry: code after the try/catch that is shared with the normal path
    (e.g. a sequence loop's item-counter increment) is reachable from the
    handler but not dominated by it, and must not count — otherwise every
    per-item error-swallowing loop would look like a retry loop.
    """
    handler_entries = [h for h in method.trap_handlers() if h in loop.body]
    if not handler_entries:
        return set()
    dom = DominatorTree(cfg)
    stmts: set[int] = set()
    for entry in handler_entries:
        for node in loop.body:
            if dom.dominates(entry, node):
                stmts.add(node)
    return stmts


def _catchy_callee_result_sites(
    method: IRMethod, call_sites: list[int], callees: list[IRMethod]
) -> set[int]:
    """Call sites whose callee contains a catch block and whose result is
    assigned — the Fig 6(d) pattern (``success = send(request)`` where
    ``send`` swallows IOException into its return value)."""
    catchy = {id(c) for c in callees if c.traps}
    sites: set[int] = set()
    for site, callee in zip(call_sites, callees):
        stmt = method.statements[site]
        if id(callee) in catchy and isinstance(stmt, AssignStmt):
            sites.add(site)
    return sites


def _classify(
    cfg: CFG,
    slicer: Slicer,
    loop: Loop,
    handler_stmts: set[int],
    catchy_callee_results: set[int],
) -> Optional[str]:
    """Apply the Fig 6 rules; None means "not a retry loop"."""
    if not handler_stmts and not catchy_callee_results:
        return None
    unconditional, conditional = _split_exits(cfg, loop)

    # Rule (a): an unconditional exit unreachable from the catch block
    # (without re-passing the header, i.e. without re-sending).
    if handler_stmts:
        for src, _dst in unconditional:
            if not _reachable_within_loop(cfg, loop, handler_stmts, src):
                return "unconditional-exit"

    # Rule (b): a conditional exit whose condition depends on the catch
    # block — directly, or via a catchy callee's assigned result.
    depends_on = handler_stmts | catchy_callee_results
    for src, _dst in conditional:
        if slicer.backward_slice(src) & depends_on:
            return "catch-dependent"
    return None


def _split_exits(
    cfg: CFG, loop: Loop
) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    unconditional: list[tuple[int, int]] = []
    conditional: list[tuple[int, int]] = []
    for src, dst in loop.exits:
        stmt = cfg.stmt(src)
        if isinstance(stmt, IfStmt):
            conditional.append((src, dst))
        else:
            unconditional.append((src, dst))
    return unconditional, conditional


def _reachable_within_loop(
    cfg: CFG, loop: Loop, sources: set[int], target: int
) -> bool:
    """Reachability inside the loop body with the header removed, so
    "reaching the exit" cannot go around via another request attempt."""
    frontier = [s for s in sources if s in loop.body]
    seen = set(frontier)
    while frontier:
        node = frontier.pop()
        if node == target:
            return True
        for succ in cfg.succs[node]:
            if succ == target:
                return True
            if succ in loop.body and succ != loop.header and succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return False


def _has_backoff(ctx, cfg: CFG, method: IRMethod, loop: Loop) -> bool:
    """A loop backs off when it delays between attempts with a non-constant
    (growing) interval, or a fixed interval that is not aggressive."""
    constants: Optional[ConstantPropagation] = None
    for idx in sorted(loop.body):
        if idx >= len(method.statements):
            continue
        invoke = method.statements[idx].invoke()
        if invoke is None or invoke.sig.name not in _SLEEP_METHODS:
            continue
        if not invoke.args:
            return True
        if constants is None:
            constants = ctx.cache.constants(method)
        delay = constants.constant_argument(idx, invoke.args[0])
        if delay is None or delay is TOP:
            return True  # non-constant delay: assume growing backoff
        if isinstance(delay, (int, float)) and delay >= _AGGRESSIVE_FIXED_DELAY_MS:
            return True
    return False
