"""The NPD taxonomy: root causes (Table 3), UX impacts (Fig 4), API
misuse patterns (Table 5), and the concrete defect kinds NChecker reports
(Table 6 rows)."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Impact(Enum):
    """UX impact categories and their share among the 90 studied NPDs
    (paper Fig 4)."""

    DYSFUNCTION = "Dysfunction"
    UNFRIENDLY_UI = "Unfriendly UI"
    CRASH_FREEZE = "Crash/Freeze"
    BATTERY_DRAIN = "Battery drain"


#: Fig 4 distribution (percent of the 90 studied NPDs).
IMPACT_DISTRIBUTION: dict[Impact, int] = {
    Impact.DYSFUNCTION: 36,
    Impact.UNFRIENDLY_UI: 33,
    Impact.CRASH_FREEZE: 21,
    Impact.BATTERY_DRAIN: 10,
}


class RootCause(Enum):
    """Root causes of the studied NPDs (paper Table 3 / §2.3)."""

    NO_CONNECTIVITY_CHECK = "No connectivity checks"
    MISHANDLED_TRANSIENT = "Mishandling transient error"
    MISHANDLED_PERMANENT = "Mishandling permanent error"
    MISHANDLED_SWITCH = "Mishandling network switch"


#: Table 3: cases (of 90) per root cause.
ROOT_CAUSE_CASES: dict[RootCause, int] = {
    RootCause.NO_CONNECTIVITY_CHECK: 27,
    RootCause.MISHANDLED_TRANSIENT: 12,
    RootCause.MISHANDLED_PERMANENT: 24,
    RootCause.MISHANDLED_SWITCH: 27,
}


class MisusePattern(Enum):
    """API misuse patterns (paper Table 5 / §4.2)."""

    MISS_REQUEST_SETTING = "Miss request setting APIs"
    IMPROPER_PARAMETERS = "Improper API parameters"
    NO_ERROR_MESSAGE = "No/implicit error message"
    MISS_RESPONSE_CHECK = "Miss response checking APIs"


class DefectKind(Enum):
    """The concrete defect kinds NChecker detects (Table 6 rows plus the
    sub-kinds of improper retry from Table 8 and §4.4.3's error-type
    check)."""

    MISSED_CONNECTIVITY_CHECK = "missed-connectivity-check"
    MISSED_TIMEOUT = "missed-timeout"
    MISSED_RETRY = "missed-retry"
    NO_RETRY_TIME_SENSITIVE = "no-retry-time-sensitive"
    OVER_RETRY_SERVICE = "over-retry-in-service"
    OVER_RETRY_POST = "over-retry-on-post"
    MISSED_NOTIFICATION = "missed-failure-notification"
    MISSED_ERROR_TYPE_CHECK = "missed-error-type-check"
    MISSED_RESPONSE_CHECK = "missed-response-check"
    AGGRESSIVE_RETRY_LOOP = "aggressive-retry-loop"
    #: Experimental (paper Cause 4.1, unchecked by the original tool):
    #: long-lived connections never re-established on network switches.
    NO_RECONNECT_ON_SWITCH = "no-reconnection-on-switch"
    #: Extended taxonomy classes (PAPERS.md: *Detecting Connectivity
    #: Issues in Android Apps*), powered by the thread-context and
    #: callback-lifecycle analyses — opt-in via ``enabled_checks``.
    UI_THREAD_NETWORK = "ui-thread-network"
    CALLBACK_LEAK = "callback-leak"
    MISSED_OFFLINE_CACHE = "missed-offline-cache"


#: Defect kind → API misuse pattern (Table 5 column mapping).
KIND_PATTERN: dict[DefectKind, MisusePattern] = {
    DefectKind.MISSED_CONNECTIVITY_CHECK: MisusePattern.MISS_REQUEST_SETTING,
    DefectKind.MISSED_TIMEOUT: MisusePattern.MISS_REQUEST_SETTING,
    DefectKind.MISSED_RETRY: MisusePattern.MISS_REQUEST_SETTING,
    DefectKind.NO_RETRY_TIME_SENSITIVE: MisusePattern.IMPROPER_PARAMETERS,
    DefectKind.OVER_RETRY_SERVICE: MisusePattern.IMPROPER_PARAMETERS,
    DefectKind.OVER_RETRY_POST: MisusePattern.IMPROPER_PARAMETERS,
    DefectKind.MISSED_NOTIFICATION: MisusePattern.NO_ERROR_MESSAGE,
    DefectKind.MISSED_ERROR_TYPE_CHECK: MisusePattern.NO_ERROR_MESSAGE,
    DefectKind.MISSED_RESPONSE_CHECK: MisusePattern.MISS_RESPONSE_CHECK,
    DefectKind.AGGRESSIVE_RETRY_LOOP: MisusePattern.IMPROPER_PARAMETERS,
    DefectKind.NO_RECONNECT_ON_SWITCH: MisusePattern.MISS_REQUEST_SETTING,
    DefectKind.UI_THREAD_NETWORK: MisusePattern.MISS_REQUEST_SETTING,
    DefectKind.CALLBACK_LEAK: MisusePattern.MISS_REQUEST_SETTING,
    DefectKind.MISSED_OFFLINE_CACHE: MisusePattern.MISS_REQUEST_SETTING,
}

#: Defect kind → root cause (how Table 5 column 2 maps patterns back to §2.3).
KIND_ROOT_CAUSE: dict[DefectKind, RootCause] = {
    DefectKind.MISSED_CONNECTIVITY_CHECK: RootCause.NO_CONNECTIVITY_CHECK,
    DefectKind.MISSED_TIMEOUT: RootCause.MISHANDLED_PERMANENT,
    DefectKind.MISSED_RETRY: RootCause.MISHANDLED_TRANSIENT,
    DefectKind.NO_RETRY_TIME_SENSITIVE: RootCause.MISHANDLED_TRANSIENT,
    DefectKind.OVER_RETRY_SERVICE: RootCause.MISHANDLED_TRANSIENT,
    DefectKind.OVER_RETRY_POST: RootCause.MISHANDLED_TRANSIENT,
    DefectKind.MISSED_NOTIFICATION: RootCause.MISHANDLED_PERMANENT,
    DefectKind.MISSED_ERROR_TYPE_CHECK: RootCause.MISHANDLED_PERMANENT,
    DefectKind.MISSED_RESPONSE_CHECK: RootCause.MISHANDLED_PERMANENT,
    DefectKind.AGGRESSIVE_RETRY_LOOP: RootCause.MISHANDLED_TRANSIENT,
    DefectKind.NO_RECONNECT_ON_SWITCH: RootCause.MISHANDLED_SWITCH,
    DefectKind.UI_THREAD_NETWORK: RootCause.MISHANDLED_PERMANENT,
    DefectKind.CALLBACK_LEAK: RootCause.MISHANDLED_SWITCH,
    DefectKind.MISSED_OFFLINE_CACHE: RootCause.MISHANDLED_PERMANENT,
}

#: Defect kind → dominant UX impact (used in reports — paper §4.6 item 2).
KIND_IMPACT: dict[DefectKind, Impact] = {
    DefectKind.MISSED_CONNECTIVITY_CHECK: Impact.BATTERY_DRAIN,
    DefectKind.MISSED_TIMEOUT: Impact.UNFRIENDLY_UI,
    DefectKind.MISSED_RETRY: Impact.DYSFUNCTION,
    DefectKind.NO_RETRY_TIME_SENSITIVE: Impact.DYSFUNCTION,
    DefectKind.OVER_RETRY_SERVICE: Impact.BATTERY_DRAIN,
    DefectKind.OVER_RETRY_POST: Impact.DYSFUNCTION,
    DefectKind.MISSED_NOTIFICATION: Impact.UNFRIENDLY_UI,
    DefectKind.MISSED_ERROR_TYPE_CHECK: Impact.UNFRIENDLY_UI,
    DefectKind.MISSED_RESPONSE_CHECK: Impact.CRASH_FREEZE,
    DefectKind.AGGRESSIVE_RETRY_LOOP: Impact.BATTERY_DRAIN,
    DefectKind.NO_RECONNECT_ON_SWITCH: Impact.DYSFUNCTION,
    DefectKind.UI_THREAD_NETWORK: Impact.CRASH_FREEZE,
    DefectKind.CALLBACK_LEAK: Impact.BATTERY_DRAIN,
    DefectKind.MISSED_OFFLINE_CACHE: Impact.DYSFUNCTION,
}

#: Fix-suggestion templates (paper §4.6 item 5, Fig 7); `{api}` is the
#: misused/missing API, `{target}` the request API.
FIX_SUGGESTIONS: dict[DefectKind, str] = {
    DefectKind.MISSED_CONNECTIVITY_CHECK: (
        "Use getActiveNetworkInfo() to check connectivity before {target}. "
        "Show error message if no connection."
    ),
    DefectKind.MISSED_TIMEOUT: (
        "Call {api} to set an explicit timeout before {target}; the default "
        "can block far longer than users tolerate."
    ),
    DefectKind.MISSED_RETRY: (
        "Call {api} to set a retry policy for {target}; transient mobile "
        "network errors need bounded retries."
    ),
    DefectKind.NO_RETRY_TIME_SENSITIVE: (
        "This user-initiated request never retries; call {api} with a small "
        "retry count so transient errors do not surface to the user."
    ),
    DefectKind.OVER_RETRY_SERVICE: (
        "Background requests should not retry aggressively; call {api} with "
        "0 retries to save energy and mobile data."
    ),
    DefectKind.OVER_RETRY_POST: (
        "POST is not idempotent; disable automatic retries via {api} "
        "(HTTP/1.1: a user agent MUST NOT automatically retry a request "
        "with a non-idempotent method)."
    ),
    DefectKind.MISSED_NOTIFICATION: (
        "Show a UI message (Toast/AlertDialog) in the error callback of "
        "{target} so users can tell network failures from empty results."
    ),
    DefectKind.MISSED_ERROR_TYPE_CHECK: (
        "Inspect the error object passed to the callback (NoConnectionError, "
        "TimeoutError, ClientError...) and handle each cause accordingly."
    ),
    DefectKind.MISSED_RESPONSE_CHECK: (
        "Call {api} (or null-check the response) before reading the body; "
        "responses can be invalid under network disruptions."
    ),
    DefectKind.AGGRESSIVE_RETRY_LOOP: (
        "This hand-rolled retry loop reconnects without backoff; add an "
        "exponential backoff delay between attempts to avoid battery drain."
    ),
    DefectKind.NO_RECONNECT_ON_SWITCH: (
        "Register a connectivity BroadcastReceiver (or call "
        "setReconnectionAllowed(true)) and re-establish {target} when the "
        "network switches; the old connection is stale after a WiFi/cellular "
        "hop."
    ),
    DefectKind.UI_THREAD_NETWORK: (
        "Move the blocking {target} call off the main thread (wrap it in an "
        "AsyncTask.doInBackground or a worker Runnable); on the UI thread it "
        "freezes the app and throws NetworkOnMainThreadException."
    ),
    DefectKind.CALLBACK_LEAK: (
        "Pair {api} with its unregistration on every lifecycle exit path "
        "(unregister in onPause/onDestroy what onResume/onCreate registers); "
        "a leaked connectivity callback keeps firing after the component is "
        "gone and drains the battery."
    ),
    DefectKind.MISSED_OFFLINE_CACHE: (
        "The connectivity-failure branch around {target} leaves the user "
        "with nothing; cache successful responses (LruCache/"
        "SharedPreferences) and serve the cached copy when the network is "
        "unavailable."
    ),
}


@dataclass(frozen=True)
class DefectInfo:
    """Static metadata for one defect kind."""

    kind: DefectKind
    pattern: MisusePattern
    root_cause: RootCause
    impact: Impact
    fix_template: str


def defect_info(kind: DefectKind) -> DefectInfo:
    return DefectInfo(
        kind,
        KIND_PATTERN[kind],
        KIND_ROOT_CAUSE[kind],
        KIND_IMPACT[kind],
        FIX_SUGGESTIONS[kind],
    )
