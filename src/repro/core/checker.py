"""The NChecker orchestrator (paper §4).

``NChecker.scan(apk)`` runs the full pipeline: build the call graph,
extract network requests with their contexts, identify customized retry
loops, and run the four analyses of §4.4.  The result object carries the
findings plus the per-request facts the evaluation harness aggregates
into the paper's tables and CDFs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..app.apk import APK
from ..dataflow.summaries import SummaryCache
from ..libmodels import default_registry
from ..libmodels.annotations import LibraryRegistry
from .checks.config_apis import ConfigAPICheck, RequestConfigInfo
from .checks.connectivity import ConnectivityCheck
from .checks.notification import NotificationCheck, NotificationInfo
from .checks.response import ResponseCheck
from .checks.retry_params import RetryParameterCheck
from .defects import DefectKind
from .findings import Finding
from .report import WarningReport, build_report
from .requests import AnalysisContext, NetworkRequest, RequestLocation, find_requests
from .retry_loops import RetryLoop, identify_retry_loops


@dataclass(frozen=True)
class NCheckerOptions:
    """Analysis knobs; the defaults reproduce the paper's configuration.

    The non-default settings exist for the ablation benchmarks:
    ``guard_aware_connectivity`` trades the paper's path-insensitive
    connectivity check (cheap, 5 known FNs) for a control-dependence-aware
    one; ``interprocedural_connectivity=False`` restricts the check to the
    request's own method; ``detect_retry_loops=False`` disables §4.5.
    """

    guard_aware_connectivity: bool = False
    interprocedural_connectivity: bool = True
    detect_retry_loops: bool = True
    #: Use the interprocedural summary engine (`repro.dataflow.summaries`)
    #: for the §4.4 analyses: config taint climbs caller chains to the
    #: client's allocation, response obligations propagate through
    #: arbitrarily deep returns, and notification/connectivity facts are
    #: transitive over the call graph.  ``False`` is the ablation
    #: baseline: the seed's horizon-limited paths (one caller hop for
    #: config, one return hop for responses, ``notification_callee_depth``
    #: for UI sinks).
    summary_based: bool = True
    #: Callee search depth for the *legacy* notification walk; ignored
    #: when ``summary_based`` is on (the summary facts are transitive).
    notification_callee_depth: int = 2
    #: Enable the experimental network-switch analysis (paper Cause 4,
    #: which the original tool could not check — §4.2).  Needs a registry
    #: including the aSmack model (`repro.libmodels.extended_registry`).
    check_network_switch: bool = False
    #: Enable the inter-component extension (the paper's §4.7 future work:
    #: IccTA-style flows).  Launcher-side connectivity checks and
    #: broadcast-routed error displays are then recognised, removing the
    #: paper's two FP classes.
    inter_component: bool = False
    enabled_checks: frozenset[str] = frozenset(
        {"connectivity", "config-apis", "retry-parameters",
         "failure-notification", "invalid-response"}
    )


@dataclass
class ScanResult:
    """Everything one app scan produced."""

    apk: APK
    requests: list[NetworkRequest]
    findings: list[Finding]
    retry_loops: list[RetryLoop]
    config_info: dict[RequestLocation, RequestConfigInfo] = field(default_factory=dict)
    notification_info: dict[RequestLocation, NotificationInfo] = field(
        default_factory=dict
    )

    @property
    def package(self) -> str:
        return self.apk.package

    @property
    def is_buggy(self) -> bool:
        return bool(self.findings)

    def findings_of(self, *kinds: DefectKind) -> list[Finding]:
        wanted = set(kinds)
        return [f for f in self.findings if f.kind in wanted]

    def count_of(self, *kinds: DefectKind) -> int:
        return len(self.findings_of(*kinds))

    def config_of(self, request: NetworkRequest) -> Optional[RequestConfigInfo]:
        return self.config_info.get(request.loc)

    def notification_of(self, request: NetworkRequest) -> Optional[NotificationInfo]:
        return self.notification_info.get(request.loc)

    def libraries_used(self) -> set[str]:
        return {r.library.key for r in self.requests}

    def reports(self) -> list[WarningReport]:
        return [build_report(f) for f in self.findings]

    def to_dict(self) -> dict:
        """JSON-safe view of the scan (for `nchecker scan --json`)."""
        return {
            "package": self.package,
            "requests": [
                {
                    "location": r.location(),
                    "library": r.library.key,
                    "target": r.target.qualified,
                    "http_method": r.http_method.value,
                    "user_initiated": r.user_initiated,
                    "background": r.background,
                }
                for r in self.requests
            ],
            "findings": [
                {
                    "kind": f.kind.value,
                    "location": f.location,
                    "message": f.message,
                    "context": f.context,
                    "default_caused": f.default_caused,
                    "impact": f.info.impact.value,
                    "root_cause": f.info.root_cause.value,
                }
                for f in self.findings
            ],
            "summary": self.summary(),
            "custom_retry_loops": len(self.retry_loops),
        }

    def summary(self) -> dict[str, int]:
        by_kind: dict[str, int] = {}
        for finding in self.findings:
            by_kind[finding.kind.value] = by_kind.get(finding.kind.value, 0) + 1
        return by_kind


class NChecker:
    """Static NPD detector for Android-style app binaries."""

    def __init__(
        self,
        registry: Optional[LibraryRegistry] = None,
        options: NCheckerOptions = NCheckerOptions(),
    ) -> None:
        self.registry = registry or default_registry()
        self.options = options
        #: Per-APK interprocedural summaries, reused across repeat scans
        #: of the same (structurally unchanged) app.
        self.summary_cache = SummaryCache()

    def scan(self, apk: APK) -> ScanResult:
        """Run all enabled analyses over one app."""
        ctx = AnalysisContext.build(apk, self.registry)
        if self.options.summary_based:
            ctx.summaries = self.summary_cache.engine_for(
                apk, ctx.callgraph, self.registry, ctx.cache
            )
        requests = find_requests(ctx)

        retry_loops: list[RetryLoop] = []
        if self.options.detect_retry_loops:
            retry_loops = identify_retry_loops(ctx, requests)
        # The config check reads the loops off the context.
        ctx.retry_loops = retry_loops

        findings: list[Finding] = []
        opts = self.options

        icc_model = None
        if opts.inter_component:
            from ..callgraph.icc import build_icc_model

            icc_model = build_icc_model(apk, ctx.cache)

        config_check = ConfigAPICheck()
        if "config-apis" in opts.enabled_checks:
            findings.extend(config_check.run(ctx, requests))

        if "connectivity" in opts.enabled_checks:
            connectivity = ConnectivityCheck(
                guard_aware=opts.guard_aware_connectivity,
                interprocedural=opts.interprocedural_connectivity,
                icc_model=icc_model,
            )
            findings.extend(connectivity.run(ctx, requests))

        if "retry-parameters" in opts.enabled_checks:
            retry_check = RetryParameterCheck(config_check)
            findings.extend(retry_check.run(ctx, requests))

        notification_check = NotificationCheck(
            opts.notification_callee_depth, icc_model=icc_model
        )
        if "failure-notification" in opts.enabled_checks:
            findings.extend(notification_check.run(ctx, requests))

        if "invalid-response" in opts.enabled_checks:
            findings.extend(ResponseCheck().run(ctx, requests))

        if opts.check_network_switch:
            from .checks.network_switch import NetworkSwitchCheck

            findings.extend(NetworkSwitchCheck().run(ctx, requests))

        findings.sort(key=lambda f: (f.method_key, f.stmt_index, f.kind.value))
        return ScanResult(
            apk,
            requests,
            findings,
            retry_loops,
            config_info=dict(config_check.info_by_request),
            notification_info=dict(notification_check.info_by_request),
        )
