"""The NChecker orchestrator (paper §4).

``NChecker.scan(apk)`` runs the full pipeline — build the call graph,
extract network requests with their contexts, identify customized retry
loops, and run the four analyses of §4.4 — as a **pass pipeline** over a
per-APK artifact store (see :mod:`repro.pipeline`): each enabled check
declares the artifacts it reads, the scheduler orders the passes and
builds only the artifacts some enabled pass needs, and repeat scans of a
structurally unchanged app reuse the whole store.  The result object
carries the findings plus the per-request facts the evaluation harness
aggregates into the paper's tables and CDFs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..app.apk import APK
from ..libmodels import default_registry
from ..libmodels.annotations import LibraryRegistry
from .checks.config_apis import RequestConfigInfo
from .checks.notification import NotificationInfo
from .defects import DefectKind
from .findings import Finding
from .report import WarningReport, build_report
from .requests import NetworkRequest, RequestLocation
from .retry_loops import RetryLoop

if TYPE_CHECKING:
    from ..pipeline.passes import ScanPlan
    from ..pipeline.scan import ScanSession


#: The paper's five analyses — the default ``enabled_checks`` set.
DEFAULT_CHECKS: frozenset[str] = frozenset(
    {"connectivity", "config-apis", "retry-parameters",
     "failure-notification", "invalid-response"}
)

#: The extended taxonomy checks (thread-context & callback-lifecycle
#: analyses).  Opt-in: enable with
#: ``NCheckerOptions(enabled_checks=DEFAULT_CHECKS | EXTENDED_CHECKS)``
#: or ``nchecker scan --extended-checks``; default output stays
#: byte-identical with them off.
EXTENDED_CHECKS: frozenset[str] = frozenset(
    {"ui-thread-network", "callback-leak", "offline-cache"}
)


@dataclass(frozen=True)
class NCheckerOptions:
    """Analysis knobs; the defaults reproduce the paper's configuration.

    The non-default settings exist for the ablation benchmarks:
    ``guard_aware_connectivity`` trades the paper's path-insensitive
    connectivity check (cheap, 5 known FNs) for a control-dependence-aware
    one; ``interprocedural_connectivity=False`` restricts the check to the
    request's own method; ``detect_retry_loops=False`` disables §4.5.
    """

    guard_aware_connectivity: bool = False
    interprocedural_connectivity: bool = True
    detect_retry_loops: bool = True
    #: Use the interprocedural summary engine (`repro.dataflow.summaries`)
    #: for the §4.4 analyses: config taint climbs caller chains to the
    #: client's allocation, response obligations propagate through
    #: arbitrarily deep returns, and notification/connectivity facts are
    #: transitive over the call graph.  ``False`` is the ablation
    #: baseline: the seed's horizon-limited paths (one caller hop for
    #: config, one return hop for responses, ``notification_callee_depth``
    #: for UI sinks).
    summary_based: bool = True
    #: Callee search depth for the *legacy* notification walk; ignored
    #: when ``summary_based`` is on (the summary facts are transitive).
    notification_callee_depth: int = 2
    #: Ablation baseline for the demand-driven summary engine: build
    #: whole-app fact maps on the first point query (the pre-lazy
    #: behavior) instead of evaluating only the queried callee cones.
    #: Results are identical either way; only work volume differs.
    eager_summaries: bool = False
    #: Wavefront workers for summary prewarming: independent SCCs of the
    #: call-graph condensation evaluate concurrently on up to this many
    #: threads.  Purely an execution detail — results, counters, and
    #: profile shapes are identical for any value — so it is excluded
    #: from the scan-options fingerprint.
    intra_jobs: int = 1
    #: Enable the experimental network-switch analysis (paper Cause 4,
    #: which the original tool could not check — §4.2).  Needs a registry
    #: including the aSmack model (`repro.libmodels.extended_registry`).
    check_network_switch: bool = False
    #: Enable the inter-component extension (the paper's §4.7 future work:
    #: IccTA-style flows).  Launcher-side connectivity checks and
    #: broadcast-routed error displays are then recognised, removing the
    #: paper's two FP classes.
    inter_component: bool = False
    #: Root directory of the persistent cross-run artifact cache
    #: (:mod:`repro.pipeline.cachestore`) — the one-directory shorthand
    #: for a plain local backend.  ``None`` — the library default —
    #: keeps every artifact in-memory only; the CLI resolves this to
    #: ``$NCHECKER_CACHE_DIR`` or ``~/.cache/nchecker`` unless
    #: ``--no-disk-cache`` is given.  Cached artifacts are keyed by app
    #: content, so the flag can never change scan output — only where the
    #: artifacts come from.
    cache_dir: Optional[str] = None
    #: Which cache backend composition to use: a spec string
    #: (``"local"``, ``"memory"``, ``"memory+local"``,
    #: ``"local:/some/dir"`` — grammar in
    #: :mod:`repro.pipeline.cachestore.store`) or a live
    #: :class:`~repro.pipeline.cachestore.backend.CacheBackend` instance
    #: for library embedding.  Wins over ``cache_dir`` when set; a
    #: pathless ``local`` tier takes its directory from ``cache_dir``.
    #: Like ``cache_dir``, this can never change scan output.
    cache_backend: Optional[object] = None
    enabled_checks: frozenset[str] = DEFAULT_CHECKS


@dataclass
class ScanResult:
    """Everything one app scan produced."""

    apk: APK
    requests: list[NetworkRequest]
    findings: list[Finding]
    retry_loops: list[RetryLoop]
    config_info: dict[RequestLocation, RequestConfigInfo] = field(default_factory=dict)
    notification_info: dict[RequestLocation, NotificationInfo] = field(
        default_factory=dict
    )

    @property
    def package(self) -> str:
        return self.apk.package

    @property
    def is_buggy(self) -> bool:
        return bool(self.findings)

    def findings_of(self, *kinds: DefectKind) -> list[Finding]:
        wanted = set(kinds)
        return [f for f in self.findings if f.kind in wanted]

    def count_of(self, *kinds: DefectKind) -> int:
        return len(self.findings_of(*kinds))

    def config_of(self, request: NetworkRequest) -> Optional[RequestConfigInfo]:
        return self.config_info.get(request.loc)

    def notification_of(self, request: NetworkRequest) -> Optional[NotificationInfo]:
        return self.notification_info.get(request.loc)

    def libraries_used(self) -> set[str]:
        return {r.library.key for r in self.requests}

    def reports(self) -> list[WarningReport]:
        return [build_report(f) for f in self.findings]

    def to_dict(self) -> dict:
        """JSON-safe view of the scan (for `nchecker scan --json`)."""
        return {
            "package": self.package,
            "requests": [
                {
                    "location": r.location(),
                    "library": r.library.key,
                    "target": r.target.qualified,
                    "http_method": r.http_method.value,
                    "user_initiated": r.user_initiated,
                    "background": r.background,
                }
                for r in self.requests
            ],
            "findings": [
                {
                    "kind": f.kind.value,
                    "location": f.location,
                    "message": f.message,
                    "context": f.context,
                    "default_caused": f.default_caused,
                    "impact": f.info.impact.value,
                    "root_cause": f.info.root_cause.value,
                }
                for f in self.findings
            ],
            "summary": self.summary(),
            "custom_retry_loops": len(self.retry_loops),
        }

    def summary(self) -> dict[str, int]:
        by_kind: dict[str, int] = {}
        for finding in self.findings:
            by_kind[finding.kind.value] = by_kind.get(finding.kind.value, 0) + 1
        return by_kind


class NChecker:
    """Static NPD detector for Android-style app binaries.

    A thin façade over :class:`repro.pipeline.scan.ScanSession`: each
    scanned app gets a session owning its artifact store, cached per
    package (keyed by structural fingerprint) so repeat scans of the same
    app — corpus rescans, scan-after-patch comparisons — reuse every
    derived artifact instead of just the summary engine.
    """

    def __init__(
        self,
        registry: Optional[LibraryRegistry] = None,
        options: NCheckerOptions = NCheckerOptions(),
    ) -> None:
        from ..pipeline.scan import SessionCache

        self.registry = registry or default_registry()
        self.options = options
        #: Per-APK scan sessions (artifact stores), reused across repeat
        #: scans of the same (structurally unchanged) app.
        self.sessions = SessionCache()

    @property
    def summary_cache(self):
        """Legacy alias for :attr:`sessions` — the session cache subsumes
        the old per-APK ``SummaryCache`` and keeps its hit/miss counter
        semantics (one miss per structurally distinct app state)."""
        return self.sessions

    def scan(self, apk: APK) -> ScanResult:
        """Run all enabled analyses over one app."""
        return self.session_for(apk).scan()

    def session_for(self, apk: APK) -> "ScanSession":
        """The (cached) scan session for ``apk``."""
        return self.sessions.session_for(apk, self.registry, self.options)

    def open_session(self, apk: APK) -> "ScanSession":
        """A fresh, uncached session over ``apk`` — the patcher's entry
        point for incremental re-scan loops, where the caller owns the
        app object and mutates it in place between scans."""
        from ..pipeline.scan import ScanSession

        return ScanSession(apk, self.registry, self.options)

    def plan_for(self, apk: APK) -> "ScanPlan":
        """The scan plan (ordered passes, needed/skipped artifacts) the
        current options produce for ``apk``."""
        return self.session_for(apk).plan()
