"""Warning-report generation (paper §4.6, Fig 7).

Each report carries five items aimed at developers with little networking
background: the NPD information (API + location), the UX impact, the
request context (user vs. background), the call stack from an entry
point, and a concrete fix suggestion.
"""

from __future__ import annotations

from dataclasses import dataclass

from .defects import FIX_SUGGESTIONS, KIND_IMPACT
from .findings import Finding


@dataclass
class WarningReport:
    """A rendered NChecker warning (Fig 7 structure)."""

    npd_information: str
    npd_impact: str
    request_context: str
    call_stack: list[str]
    fix_suggestion: str

    def render(self) -> str:
        lines = [
            "NPD Information",
            f"  {self.npd_information}",
            "NPD impact",
            f"  {self.npd_impact}",
            "Network request context",
            f"  {self.request_context}",
            "Network request call stack",
        ]
        lines.extend(f"  {frame}" for frame in self.call_stack)
        lines.append("Fix Suggestion")
        lines.append(f"  {self.fix_suggestion}")
        return "\n".join(lines)


def build_report(finding: Finding) -> WarningReport:
    """Assemble the §4.6 report for one finding."""
    kind = finding.kind
    impact = KIND_IMPACT[kind]
    target = (
        finding.request.target.qualified if finding.request is not None else "request"
    )
    suggested_api = finding.details.get("suggested_api", target)
    fix = FIX_SUGGESTIONS[kind].format(api=suggested_api, target=target)

    context_line = {
        "user": (
            "Request made by user. Need to notify users if connection is "
            "unavailable."
        ),
        "background": (
            "Request made by a background service. Avoid retries and cache "
            "the operation to save energy."
        ),
        "both": "Request reachable from both user actions and background services.",
        "unknown": "Request context could not be determined.",
    }[finding.context]

    call_stack = _call_stack_lines(finding)
    return WarningReport(
        npd_information=f"{finding.message}! at {finding.location}",
        npd_impact=impact.value,
        request_context=context_line,
        call_stack=call_stack,
        fix_suggestion=fix,
    )


def _call_stack_lines(finding: Finding) -> list[str]:
    if finding.request is None or not finding.request.chains:
        cls, name, _ = finding.method_key
        return [f"({cls.rsplit('.', 1)[-1]}.{name}: {finding.stmt_index})"]
    chain = min(finding.request.chains, key=len)
    frames = chain.frames()
    frames.append((finding.request.key, finding.request.stmt_index))
    lines = []
    for depth, (key, site) in enumerate(frames):
        cls, name, _ = key
        prefix = "" if depth == 0 else "-" * depth + "> "
        lines.append(f"{prefix}({cls.rsplit('.', 1)[-1]}.{name}: {site})")
    return lines
