"""NChecker core: the paper's contribution.

Public surface:

* :class:`NChecker` / :class:`NCheckerOptions` — the detector;
* :class:`ScanResult` / :class:`Finding` — results;
* :func:`build_report` — §4.6 warning reports;
* the NPD taxonomy (:class:`DefectKind`, :class:`Impact`, ...).
"""

from .checker import NChecker, NCheckerOptions, ScanResult
from .defects import (
    DefectKind,
    FIX_SUGGESTIONS,
    IMPACT_DISTRIBUTION,
    Impact,
    KIND_IMPACT,
    KIND_PATTERN,
    KIND_ROOT_CAUSE,
    MisusePattern,
    ROOT_CAUSE_CASES,
    RootCause,
    defect_info,
)
from .diff import ScanDiff, diff_scans
from .findings import Finding, context_of
from .patcher import AppliedPatch, PatchResult, Patcher
from .report import WarningReport, build_report
from .requests import AnalysisContext, NetworkRequest, find_requests
from .retry_loops import RetryLoop, identify_retry_loops

__all__ = [
    "AnalysisContext",
    "DefectKind",
    "FIX_SUGGESTIONS",
    "Finding",
    "IMPACT_DISTRIBUTION",
    "Impact",
    "KIND_IMPACT",
    "KIND_PATTERN",
    "KIND_ROOT_CAUSE",
    "MisusePattern",
    "NChecker",
    "NCheckerOptions",
    "NetworkRequest",
    "PatchResult",
    "Patcher",
    "AppliedPatch",
    "ROOT_CAUSE_CASES",
    "RetryLoop",
    "RootCause",
    "ScanDiff",
    "diff_scans",
    "ScanResult",
    "WarningReport",
    "build_report",
    "context_of",
    "defect_info",
    "find_requests",
    "identify_retry_loops",
]
